// Parser for the `.cov` model description language, a compact SMV-like
// dialect sufficient for the circuits in the paper:
//
//   MODULE queue;                     -- optional, names the model
//   VAR    wptr : uint<3>;            -- latched state, word type
//   VAR    wrap : bool;               -- latched state, boolean
//   VAR    cnt  : 0..7;               -- range sugar: uint<3>
//   IVAR   stall : bool;              -- free primary input
//   DEFINE full := wptr == rptr & wrap;
//   INIT   wptr == 0;                 -- initial-state constraint
//   INIT   wrap := false;             -- initial-value assignment
//   NEXT   wptr := stall ? wptr : wptr + 1;
//   FAIRNESS !stall;
//   DONTCARE cnt > 5;
//   SPEC AG(full -> AX !push_ok) OBSERVE full;
//
// Comments run from `--` or `//` to end of line. Statements end with `;`.
// SPEC bodies are stored as raw text and parsed by the CTL layer.
#pragma once

#include <string>

#include "model/model.h"

namespace covest::model {

/// Parses a model from source text; throws `std::runtime_error` with
/// line/column context on syntax or type errors. The returned model has
/// been `validate()`d.
Model parse_model(const std::string& source);

/// Reads a model file into a string; throws `std::runtime_error`
/// ("cannot open model file '<path>'") when it cannot be opened. Split
/// out of `parse_model_file` so callers that key caches on the raw
/// source bytes (the engine's warm model cache) read the file exactly
/// once and parse the very text they hashed.
std::string read_model_file(const std::string& path);

/// Parses source that was read from `path`: identical to `parse_model`
/// except that errors are prefixed with the path, byte-for-byte the
/// messages `parse_model_file` reports.
Model parse_model_source(const std::string& source, const std::string& path);

/// Reads and parses a model file
/// (`parse_model_source(read_model_file(path), path)`).
Model parse_model_file(const std::string& path);

}  // namespace covest::model
