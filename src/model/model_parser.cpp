#include "model/model_parser.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "expr/expr_parser.h"
#include "expr/lexer.h"

namespace covest::model {

namespace {

using expr::Token;
using expr::TokenKind;
using expr::TokenStream;

unsigned bits_for(std::uint64_t max_value) {
  unsigned w = 1;
  while ((max_value >> w) != 0) ++w;
  return w;
}

expr::Type parse_type(TokenStream& ts) {
  if (ts.accept_ident("bool") || ts.accept_ident("boolean")) {
    return expr::Type::boolean();
  }
  if (ts.accept_ident("uint")) {
    ts.expect_punct("<");
    const Token& w = ts.peek();
    if (w.kind != TokenKind::kNumber || w.value == 0 || w.value > 32) {
      ts.fail("expected width in 1..32");
    }
    ts.next();
    ts.expect_punct(">");
    return expr::Type::word(static_cast<unsigned>(w.value));
  }
  if (ts.peek().kind == TokenKind::kNumber) {
    // Range sugar "lo..hi" -> uint of the width needed for hi.
    const Token lo = ts.next();
    ts.expect_punct("..");
    const Token& hi = ts.peek();
    if (hi.kind != TokenKind::kNumber) ts.fail("expected range upper bound");
    ts.next();
    if (lo.value != 0) ts.fail("ranges must start at 0");
    if (hi.value == 0) ts.fail("range upper bound must be positive");
    return expr::Type::word(bits_for(hi.value));
  }
  ts.fail("expected a type (bool, uint<W> or 0..N)");
}

expr::Expr parse_rhs_expression(TokenStream& ts) {
  expr::ExprParser parser(ts);
  return parser.parse();
}

/// Collects the raw text of a SPEC body up to OBSERVE or ';'.
std::string collect_spec_text(TokenStream& ts) {
  std::ostringstream text;
  bool first = true;
  while (!ts.at_end() && !ts.peek().is_punct(";") &&
         !ts.peek().is_ident("OBSERVE")) {
    const Token t = ts.next();
    if (!first) text << " ";
    text << t.text;
    first = false;
  }
  return text.str();
}

}  // namespace

Model parse_model(const std::string& source) {
  TokenStream ts(source);
  Model model;
  bool named = false;

  while (!ts.at_end()) {
    const Token keyword = ts.expect_ident();

    if (keyword.text == "MODULE") {
      const Token name = ts.expect_ident();
      if (!named) {
        model = Model(name.text);
        named = true;
      }
      ts.expect_punct(";");
      continue;
    }

    if (keyword.text == "VAR" || keyword.text == "IVAR") {
      const Token name = ts.expect_ident();
      ts.expect_punct(":");
      Signal s;
      s.name = name.text;
      s.kind = keyword.text == "VAR" ? SignalKind::kState : SignalKind::kInput;
      s.type = parse_type(ts);
      ts.expect_punct(";");
      model.add_signal(std::move(s));
      continue;
    }

    if (keyword.text == "DEFINE") {
      const Token name = ts.expect_ident();
      ts.expect_punct(":=");
      Signal s;
      s.name = name.text;
      s.kind = SignalKind::kDefine;
      s.define = parse_rhs_expression(ts);
      ts.expect_punct(";");
      // Infer the define's declared type from its expansion.
      Model probe = model;  // Defines may reference earlier signals only.
      probe.add_signal(s);
      s.type = expr::infer_type(probe.expand_defines(s.define),
                                probe.type_resolver());
      model.add_signal(std::move(s));
      continue;
    }

    if (keyword.text == "INIT") {
      // "INIT name := expr;" assigns; "INIT expr;" constrains.
      if (ts.peek().kind == TokenKind::kIdent &&
          ts.peek(1).is_punct(":=")) {
        const Token name = ts.expect_ident();
        ts.expect_punct(":=");
        model.set_init(name.text, parse_rhs_expression(ts));
      } else {
        model.add_init_constraint(parse_rhs_expression(ts));
      }
      ts.expect_punct(";");
      continue;
    }

    if (keyword.text == "NEXT") {
      const Token name = ts.expect_ident();
      ts.expect_punct(":=");
      model.set_next(name.text, parse_rhs_expression(ts));
      ts.expect_punct(";");
      continue;
    }

    if (keyword.text == "FAIRNESS") {
      model.add_fairness(parse_rhs_expression(ts));
      ts.expect_punct(";");
      continue;
    }

    if (keyword.text == "DONTCARE") {
      model.add_dontcare(parse_rhs_expression(ts));
      ts.expect_punct(";");
      continue;
    }

    if (keyword.text == "SPEC") {
      SpecEntry spec;
      spec.ctl_text = collect_spec_text(ts);
      if (ts.accept_ident("OBSERVE")) {
        do {
          spec.observed.push_back(ts.expect_ident().text);
        } while (ts.accept_punct(","));
      }
      ts.expect_punct(";");
      model.add_spec(std::move(spec));
      continue;
    }

    ts.fail("unknown statement '" + keyword.text + "'");
  }

  model.validate();
  return model;
}

std::string read_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

Model parse_model_source(const std::string& source, const std::string& path) {
  try {
    return parse_model(source);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

Model parse_model_file(const std::string& path) {
  return parse_model_source(read_model_file(path), path);
}

}  // namespace covest::model
