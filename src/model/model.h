// Circuit models: named signals with next-state and initial-value
// semantics, plus fairness constraints, don't-care sets and property
// annotations.
//
// A model is the textual/programmatic description (this header); it is
// *elaborated* into a symbolic FSM (fsm/symbolic_fsm.h) for model checking
// and coverage estimation, and into an explicit Kripke structure
// (xstate/explicit_model.h) by the reference engine.
//
// The paper (Definition 1) views the circuit as a Mealy machine
// M = <S, T_M, P, S_I>; state signals span S, `next` assignments induce
// T_M, `init` values and INIT constraints induce S_I, and every boolean
// signal or word bit is a candidate atomic proposition / observed signal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace covest::model {

enum class SignalKind {
  kState,   ///< Latched: has `next` (else free-running) and optional `init`.
  kInput,   ///< Unconstrained primary input (IVAR).
  kDefine,  ///< Named combinational macro.
};

struct Signal {
  std::string name;
  SignalKind kind = SignalKind::kState;
  expr::Type type;
  expr::Expr next;    ///< kState only; invalid => unconstrained next value.
  expr::Expr init;    ///< kState only; invalid => unconstrained initial value.
  expr::Expr define;  ///< kDefine only.
};

/// A property line from a model file: raw CTL text plus the observed
/// signals declared for coverage ("SPEC <ctl> [OBSERVE name[, name]*];").
struct SpecEntry {
  std::string ctl_text;
  std::vector<std::string> observed;
  std::string comment;  ///< Optional label for reports.
};

class Model {
 public:
  explicit Model(std::string name = "main") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- Construction -----------------------------------------------------------

  /// Declares a signal; throws on duplicate names.
  void add_signal(Signal signal);
  void add_init_constraint(expr::Expr constraint);
  void add_fairness(expr::Expr constraint);
  void add_dontcare(expr::Expr dontcare);
  void add_spec(SpecEntry spec) { specs_.push_back(std::move(spec)); }

  /// Attaches/replaces the next-state function of a state signal.
  void set_next(const std::string& name, expr::Expr next);
  /// Attaches/replaces the initial value of a state signal.
  void set_init(const std::string& name, expr::Expr init);

  // -- Introspection -----------------------------------------------------------

  const std::vector<Signal>& signals() const { return signals_; }
  const Signal* find_signal(const std::string& name) const;
  const Signal& signal(const std::string& name) const;
  bool has_signal(const std::string& name) const {
    return find_signal(name) != nullptr;
  }

  const std::vector<expr::Expr>& init_constraints() const {
    return init_constraints_;
  }
  const std::vector<expr::Expr>& fairness() const { return fairness_; }
  const std::vector<expr::Expr>& dontcares() const { return dontcares_; }
  const std::vector<SpecEntry>& specs() const { return specs_; }

  /// Type resolver over the model's signals (defines included).
  expr::TypeResolver type_resolver() const;

  /// Expands DEFINE references transitively; throws on cyclic definitions.
  /// When `except` is non-null, references to that define are preserved
  /// (the coverage estimator keeps an observed DEFINE signal symbolic so
  /// its label can be flipped).
  expr::Expr expand_defines(const expr::Expr& e,
                            const std::string* except = nullptr) const;

  /// Total number of latched state bits (word signals count their width).
  unsigned state_bit_count() const;

  /// Checks that every expression in the model is well-typed, that `next`
  /// and `init` types match their signals, and that DEFINEs are acyclic.
  /// Throws `std::runtime_error` with a descriptive message otherwise.
  void validate() const;

 private:
  std::string name_;
  std::vector<Signal> signals_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<expr::Expr> init_constraints_;
  std::vector<expr::Expr> fairness_;
  std::vector<expr::Expr> dontcares_;
  std::vector<SpecEntry> specs_;
};

/// Fluent construction API used by the example programs and the benchmark
/// circuits. Returns `expr::Expr` references so circuits read naturally:
///
///   ModelBuilder b("counter");
///   auto count = b.state_word("count", 3, 0);
///   auto stall = b.input_bool("stall");
///   b.next("count", ite(stall, count, count + b.lit(1, 3)));
class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name = "main") : model_(std::move(name)) {}

  expr::Expr state_bool(const std::string& name,
                        std::optional<bool> init = std::nullopt);
  expr::Expr state_word(const std::string& name, unsigned width,
                        std::optional<std::uint64_t> init = std::nullopt);
  expr::Expr input_bool(const std::string& name);
  expr::Expr input_word(const std::string& name, unsigned width);
  expr::Expr define(const std::string& name, expr::Expr value);

  void next(const std::string& name, expr::Expr e) {
    model_.set_next(name, std::move(e));
  }
  void init_constraint(expr::Expr e) {
    model_.add_init_constraint(std::move(e));
  }
  void fairness(expr::Expr e) { model_.add_fairness(std::move(e)); }
  void dontcare(expr::Expr e) { model_.add_dontcare(std::move(e)); }
  void spec(std::string ctl_text, std::vector<std::string> observed = {},
            std::string comment = {});

  /// Word literal convenience.
  static expr::Expr lit(std::uint64_t value, unsigned width) {
    return expr::Expr::word_const(value, width);
  }

  /// Validates and returns the finished model.
  Model build() {
    model_.validate();
    return std::move(model_);
  }

 private:
  Model model_;
};

}  // namespace covest::model
