#include "model/model.h"

#include <stdexcept>
#include <unordered_set>

namespace covest::model {

using expr::Expr;
using expr::Type;

void Model::add_signal(Signal signal) {
  if (index_.count(signal.name) != 0) {
    throw std::runtime_error("duplicate signal '" + signal.name + "'");
  }
  index_.emplace(signal.name, signals_.size());
  signals_.push_back(std::move(signal));
}

void Model::add_init_constraint(Expr constraint) {
  init_constraints_.push_back(std::move(constraint));
}

void Model::add_fairness(Expr constraint) {
  fairness_.push_back(std::move(constraint));
}

void Model::add_dontcare(Expr dontcare) {
  dontcares_.push_back(std::move(dontcare));
}

void Model::set_next(const std::string& name, Expr next) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::runtime_error("set_next: unknown signal '" + name + "'");
  }
  Signal& s = signals_[it->second];
  if (s.kind != SignalKind::kState) {
    throw std::runtime_error("set_next: '" + name + "' is not a state signal");
  }
  s.next = std::move(next);
}

void Model::set_init(const std::string& name, Expr init) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::runtime_error("set_init: unknown signal '" + name + "'");
  }
  Signal& s = signals_[it->second];
  if (s.kind != SignalKind::kState) {
    throw std::runtime_error("set_init: '" + name + "' is not a state signal");
  }
  s.init = std::move(init);
}

const Signal* Model::find_signal(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &signals_[it->second];
}

const Signal& Model::signal(const std::string& name) const {
  const Signal* s = find_signal(name);
  if (s == nullptr) {
    throw std::runtime_error("unknown signal '" + name + "'");
  }
  return *s;
}

expr::TypeResolver Model::type_resolver() const {
  return [this](const std::string& name) -> std::optional<Type> {
    const Signal* s = find_signal(name);
    if (s == nullptr) return std::nullopt;
    return s->type;
  };
}

Expr Model::expand_defines(const Expr& e, const std::string* except) const {
  // Iterate to a fixed point; cycle detection via a depth bound equal to
  // the number of defines (a legal chain can be at most that long).
  Expr current = e;
  std::size_t num_defines = 0;
  for (const Signal& s : signals_) {
    if (s.kind == SignalKind::kDefine) ++num_defines;
  }
  for (std::size_t round = 0; round <= num_defines; ++round) {
    bool changed = false;
    for (const std::string& name : expr::referenced_signals(current)) {
      if (except != nullptr && name == *except) continue;
      const Signal* s = find_signal(name);
      if (s != nullptr && s->kind == SignalKind::kDefine) {
        current = expr::substitute_signal(current, name, s->define);
        changed = true;
      }
    }
    if (!changed) return current;
  }
  throw std::runtime_error("cyclic DEFINE detected while expanding '" +
                           expr::to_string(e) + "'");
}

unsigned Model::state_bit_count() const {
  unsigned bits = 0;
  for (const Signal& s : signals_) {
    if (s.kind == SignalKind::kState) {
      bits += s.type.is_bool ? 1 : s.type.width;
    }
  }
  return bits;
}

void Model::validate() const {
  const expr::TypeResolver types = type_resolver();
  for (const Signal& s : signals_) {
    if (s.kind == SignalKind::kState) {
      if (s.next.valid()) {
        const Type t = expr::infer_type(expand_defines(s.next), types);
        if (t.is_bool != s.type.is_bool ||
            (!t.is_bool && t.width > s.type.width)) {
          throw std::runtime_error("next(" + s.name + ") has type " +
                                   to_string(t) + ", signal has type " +
                                   to_string(s.type));
        }
      }
      if (s.init.valid()) {
        const Type t = expr::infer_type(expand_defines(s.init), types);
        if (t.is_bool != s.type.is_bool ||
            (!t.is_bool && t.width > s.type.width)) {
          throw std::runtime_error("init(" + s.name + ") has type " +
                                   to_string(t) + ", signal has type " +
                                   to_string(s.type));
        }
      }
    }
    if (s.kind == SignalKind::kDefine) {
      expr::infer_type(expand_defines(s.define), types);  // Checks cycles too.
    }
  }
  for (const Expr& e : init_constraints_) {
    if (!expr::infer_type(expand_defines(e), types).is_bool) {
      throw std::runtime_error("INIT constraint must be boolean: " +
                               to_string(e));
    }
  }
  for (const Expr& e : fairness_) {
    if (!expr::infer_type(expand_defines(e), types).is_bool) {
      throw std::runtime_error("FAIRNESS constraint must be boolean: " +
                               to_string(e));
    }
  }
  for (const Expr& e : dontcares_) {
    if (!expr::infer_type(expand_defines(e), types).is_bool) {
      throw std::runtime_error("DONTCARE must be boolean: " + to_string(e));
    }
  }
  // OBSERVE targets resolve at parse/validate time, not at suite
  // execution: a typo'd signal in a model file is a graceful error line
  // with the model's context, never a mid-run surprise.
  for (const SpecEntry& spec : specs_) {
    for (const std::string& observed : spec.observed) {
      if (!has_signal(observed)) {
        throw std::runtime_error("SPEC observes unknown signal '" + observed +
                                 "'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ModelBuilder
// ---------------------------------------------------------------------------

Expr ModelBuilder::state_bool(const std::string& name,
                              std::optional<bool> init) {
  Signal s;
  s.name = name;
  s.kind = SignalKind::kState;
  s.type = Type::boolean();
  if (init) s.init = Expr::bool_const(*init);
  model_.add_signal(std::move(s));
  return Expr::var(name);
}

Expr ModelBuilder::state_word(const std::string& name, unsigned width,
                              std::optional<std::uint64_t> init) {
  Signal s;
  s.name = name;
  s.kind = SignalKind::kState;
  s.type = Type::word(width);
  if (init) s.init = Expr::word_const(*init, width);
  model_.add_signal(std::move(s));
  return Expr::var(name);
}

Expr ModelBuilder::input_bool(const std::string& name) {
  Signal s;
  s.name = name;
  s.kind = SignalKind::kInput;
  s.type = Type::boolean();
  model_.add_signal(std::move(s));
  return Expr::var(name);
}

Expr ModelBuilder::input_word(const std::string& name, unsigned width) {
  Signal s;
  s.name = name;
  s.kind = SignalKind::kInput;
  s.type = Type::word(width);
  model_.add_signal(std::move(s));
  return Expr::var(name);
}

Expr ModelBuilder::define(const std::string& name, Expr value) {
  Signal s;
  s.name = name;
  s.kind = SignalKind::kDefine;
  // The define's type is inferred lazily during validation; record the
  // best-effort type now for the resolver (bool if inference fails).
  s.define = std::move(value);
  try {
    s.type = expr::infer_type(model_.expand_defines(s.define),
                              model_.type_resolver());
  } catch (const std::exception&) {
    throw;  // A define must only reference already-declared signals.
  }
  model_.add_signal(std::move(s));
  return Expr::var(name);
}

void ModelBuilder::spec(std::string ctl_text,
                        std::vector<std::string> observed,
                        std::string comment) {
  SpecEntry entry;
  entry.ctl_text = std::move(ctl_text);
  entry.observed = std::move(observed);
  entry.comment = std::move(comment);
  model_.add_spec(std::move(entry));
}

}  // namespace covest::model
