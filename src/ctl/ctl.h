// CTL formula AST and structural utilities.
//
// Atomic propositions are boolean `expr::Expr`s over model signals. After
// parsing (or programmatic construction) formulas are *collapsed*:
// purely-propositional And/Or/Not/Iff subtrees merge into single kProp
// atoms, while implications keep their structure. The collapse matters to
// the coverage semantics: the paper's observability transformation
// (Definition 5) treats `b -> f` specially — only the consequent
// contributes coverage — so `b -> b'` must stay an implication, whereas
// `!stall & count < 5` is one propositional atom.
//
// The acceptable ACTL subset of the paper (Section 2.1):
//
//   f ::= b | b -> f | AX f | AG f | A[f U g] | f & g      (+ AF f sugar)
//
// `acceptable_actl_violation` reports why a formula falls outside it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace covest::ctl {

enum class CtlOp {
  kProp,
  kNot, kAnd, kOr, kImplies, kIff,
  kAX, kEX, kAF, kEF, kAG, kEG,
  kAU, kEU,
};

struct FormulaNode;

/// Immutable shared-AST CTL formula handle.
class Formula {
 public:
  Formula() = default;

  bool valid() const { return node_ != nullptr; }
  CtlOp op() const;
  /// kProp only: the atomic proposition.
  const expr::Expr& prop() const;
  /// Subformula access (0-based; AU/EU have two, unary temporal one).
  const Formula& arg(std::size_t i) const;
  std::size_t arity() const;

  /// Stable identity for memoization tables.
  const void* id() const { return node_.get(); }

  /// Underlying shared node (null for an invalid handle).
  const FormulaNode* node() const { return node_.get(); }

  // -- Factories --------------------------------------------------------------
  static Formula prop(expr::Expr e);
  static Formula make(CtlOp op, std::vector<Formula> args);

  static Formula AX(Formula f) { return make(CtlOp::kAX, {std::move(f)}); }
  static Formula EX(Formula f) { return make(CtlOp::kEX, {std::move(f)}); }
  static Formula AF(Formula f) { return make(CtlOp::kAF, {std::move(f)}); }
  static Formula EF(Formula f) { return make(CtlOp::kEF, {std::move(f)}); }
  static Formula AG(Formula f) { return make(CtlOp::kAG, {std::move(f)}); }
  static Formula EG(Formula f) { return make(CtlOp::kEG, {std::move(f)}); }
  static Formula AU(Formula f, Formula g) {
    return make(CtlOp::kAU, {std::move(f), std::move(g)});
  }
  static Formula EU(Formula f, Formula g) {
    return make(CtlOp::kEU, {std::move(f), std::move(g)});
  }

  Formula implies(const Formula& rhs) const {
    return make(CtlOp::kImplies, {*this, rhs});
  }

 private:
  explicit Formula(std::shared_ptr<const FormulaNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const FormulaNode> node_;
};

struct FormulaNode {
  CtlOp op = CtlOp::kProp;
  expr::Expr prop;
  std::vector<Formula> args;
  /// Structural hash over op/atom/subformulas, computed once at
  /// construction (subformula hashes are already cached, so this is O(1)
  /// per node).
  std::size_t hash = 0;
};

inline Formula operator!(const Formula& f) {
  return Formula::make(CtlOp::kNot, {f});
}
inline Formula operator&(const Formula& a, const Formula& b) {
  return Formula::make(CtlOp::kAnd, {a, b});
}
inline Formula operator|(const Formula& a, const Formula& b) {
  return Formula::make(CtlOp::kOr, {a, b});
}

/// Structural hash of a formula (cached per node, O(1) after
/// construction). Structurally identical formulas hash equal even when
/// parsed separately — the key property the model checker's memo relies
/// on to share satisfaction sets across a suite.
std::size_t structural_hash(const Formula& f);

/// Structural equality: same operator tree and structurally equal atoms.
bool structural_equal(const Formula& a, const Formula& b);

/// Hash/equality functors for structural formula keys in hash maps.
struct FormulaStructuralHash {
  std::size_t operator()(const Formula& f) const { return structural_hash(f); }
};
struct FormulaStructuralEq {
  bool operator()(const Formula& a, const Formula& b) const {
    return structural_equal(a, b);
  }
};

/// Merges propositional And/Or/Not/Iff subtrees into single kProp atoms.
/// Implications are never merged (unless buried under a propositional
/// operator, where the structure cannot be preserved anyway). Idempotent.
Formula collapse_propositional(const Formula& f);

/// Empty string when `f` (after collapse) lies in the paper's acceptable
/// ACTL subset; otherwise a human-readable reason.
std::string acceptable_actl_violation(const Formula& f);

/// Rewrites every atomic proposition through `fn` (used for DEFINE
/// expansion and the observability flip).
Formula transform_props(const Formula& f,
                        const std::function<expr::Expr(const expr::Expr&)>& fn);

/// Pretty-prints (A[.. U ..] style, minimal parentheses).
std::string to_string(const Formula& f);

}  // namespace covest::ctl
