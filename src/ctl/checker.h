// Symbolic CTL model checker with fairness.
//
// Computes satisfaction sets by the textbook fix-point characterisations
// (McMillan '93), existential operators first and universal operators by
// duality. Under Büchi fairness constraints {c_k} the checker switches to
// fair-CTL semantics:
//
//   fair        = EG_fair true   (states with some fair path)
//   EX_fair p   = EX (p & fair)
//   E[p U q]f   = E[p U (q & fair)]
//   EG_fair p   = Emerson-Lei: gfp Z. p & /\_k EX E[p U (Z & c_k)]
//
// Satisfaction sets are memoized per formula node; the coverage estimator
// reuses the same checker instance so sub-formula results computed during
// verification are shared with coverage estimation — the memoization the
// paper recommends in Section 3.
//
// Thread safety: the memo and the fair-states cache are guarded by a
// recursive mutex, so concurrent estimator threads (a shared-mode
// `BddManager`, see bdd.h) may call `sat`/`holds`/`fair_states`. After
// verification the memo holds every sub-formula of the suite, so those
// calls are brief cache hits; a miss computes its fix-point under the
// lock, which is correct (BDD operations are shared-mode safe) but
// serializes — verify first, estimate after, as Session::run does.
// `check` (counterexample generation) stays a verification-phase,
// single-caller API.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "bdd/bdd.h"
#include "ctl/ctl.h"
#include "fsm/symbolic_fsm.h"
#include "fsm/trace.h"

namespace covest::ctl {

/// Outcome of checking one property.
struct CheckResult {
  bool holds = false;
  /// For failed properties: a shortest path from an initial state to a
  /// reachable state violating the formula (meaningful for invariant-like
  /// failures; always a genuine reachable non-satisfying state).
  std::optional<fsm::Trace> counterexample;
};

class ModelChecker {
 public:
  explicit ModelChecker(const fsm::SymbolicFsm& fsm) : fsm_(fsm) {}

  const fsm::SymbolicFsm& fsm() const { return fsm_; }

  /// Satisfaction set of `f` over the FSM's state space (memoized).
  bdd::Bdd sat(const Formula& f);

  /// True when every initial state satisfies `f` (fair semantics when the
  /// model carries fairness constraints).
  bool holds(const Formula& f);

  /// `holds` plus a counterexample trace on failure.
  CheckResult check(const Formula& f);

  /// States with at least one fair path (all states when no fairness
  /// constraints are declared). Cached.
  const bdd::Bdd& fair_states();

  /// Number of memoized sub-formula satisfaction sets (for the
  /// memoization ablation benchmark).
  std::size_t memo_size() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return memo_.size();
  }
  void clear_memo() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    memo_.clear();
  }

 private:
  bdd::Bdd compute(const Formula& f);
  bdd::Bdd ex(const bdd::Bdd& p);                     // Fair EX.
  bdd::Bdd eu(const bdd::Bdd& p, const bdd::Bdd& q);  // Fair EU.
  bdd::Bdd eg(const bdd::Bdd& p);                     // Fair EG.
  bdd::Bdd eu_plain(const bdd::Bdd& p, const bdd::Bdd& q);
  bdd::Bdd eg_plain(const bdd::Bdd& p);

  const fsm::SymbolicFsm& fsm_;
  /// Guards `memo_` and `fair_` against concurrent estimator threads.
  /// Recursive because `compute` re-enters `sat` for sub-formulas.
  mutable std::recursive_mutex mu_;
  /// Keyed by *structural* formula hash/equality, so identical SPEC
  /// sub-formulas parsed separately share satisfaction sets across a
  /// suite, and the Formula keys keep their ASTs alive for free.
  std::unordered_map<Formula, bdd::Bdd, FormulaStructuralHash,
                     FormulaStructuralEq>
      memo_;
  std::optional<bdd::Bdd> fair_;
};

}  // namespace covest::ctl
