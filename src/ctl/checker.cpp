#include "ctl/checker.h"

#include <stdexcept>

#include "util/governance.h"

namespace covest::ctl {

using bdd::Bdd;

Bdd ModelChecker::sat(const Formula& f) {
  // Post-verification this is a pure memo hit (every sub-formula of a
  // checked suite is present), so estimator threads only hold the lock
  // for a hash lookup; a genuine miss computes its fix-point under the
  // (recursive) lock.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = memo_.find(f);
  if (it != memo_.end()) return it->second;
  Bdd result = compute(f);
  memo_.emplace(f, result);
  return result;
}

Bdd ModelChecker::compute(const Formula& f) {
  switch (f.op()) {
    case CtlOp::kProp:
      return fsm_.blast_bool(f.prop());
    case CtlOp::kNot:
      return !sat(f.arg(0));
    case CtlOp::kAnd:
      return sat(f.arg(0)) & sat(f.arg(1));
    case CtlOp::kOr:
      return sat(f.arg(0)) | sat(f.arg(1));
    case CtlOp::kImplies:
      return sat(f.arg(0)).implies(sat(f.arg(1)));
    case CtlOp::kIff:
      return sat(f.arg(0)).iff(sat(f.arg(1)));
    case CtlOp::kEX:
      return ex(sat(f.arg(0)));
    case CtlOp::kAX:
      return !ex(!sat(f.arg(0)));
    case CtlOp::kEU:
      return eu(sat(f.arg(0)), sat(f.arg(1)));
    case CtlOp::kEF:
      return eu(fsm_.mgr().bdd_true(), sat(f.arg(0)));
    case CtlOp::kEG:
      return eg(sat(f.arg(0)));
    case CtlOp::kAG:
      return !eu(fsm_.mgr().bdd_true(), !sat(f.arg(0)));
    case CtlOp::kAF:
      return !eg(!sat(f.arg(0)));
    case CtlOp::kAU: {
      // A[p U q] = !(E[!q U (!p & !q)] | EG !q).
      const Bdd np = !sat(f.arg(0));
      const Bdd nq = !sat(f.arg(1));
      return !(eu(nq, np & nq) | eg(nq));
    }
  }
  throw std::logic_error("unhandled CTL operator");
}

const Bdd& ModelChecker::fair_states() {
  // The optional is engaged at most once, so the returned reference
  // stays valid after the lock is released.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!fair_) {
    // EG_fair true: Emerson-Lei over the trivial invariant.
    fair_ = fsm_.fairness().empty() ? fsm_.mgr().bdd_true()
                                    : eg(fsm_.mgr().bdd_true());
  }
  return *fair_;
}

Bdd ModelChecker::ex(const Bdd& p) {
  return fsm_.backward(p & fair_states());
}

Bdd ModelChecker::eu(const Bdd& p, const Bdd& q) {
  return eu_plain(p, q & fair_states());
}

Bdd ModelChecker::eu_plain(const Bdd& p, const Bdd& q) {
  // lfp Z. q | (p & EX Z). Under kChaining the loop keeps the classic
  // accumulated-set (Gauss-Seidel) discipline — the whole Z goes back
  // through the chained clusters each round; otherwise it runs the
  // frontier (BFS) discipline, which preimages only the newly-added
  // states (preimage distributes over union, so both converge to the
  // identical least fixpoint).
  if (fsm_.image_strategy() == image::ImageStrategy::kChaining) {
    Bdd z = q;
    while (true) {
      covest::governor_tick();
      const Bdd next = z | (p & fsm_.backward(z));
      if (next == z) return z;
      z = next;
    }
  }
  Bdd z = q;
  Bdd frontier = q;
  while (!frontier.is_false()) {
    covest::governor_tick();
    frontier = (p & fsm_.backward(frontier)) - z;
    z |= frontier;
  }
  return z;
}

Bdd ModelChecker::eg(const Bdd& p) {
  if (fsm_.fairness().empty()) return eg_plain(p);
  // Emerson-Lei: gfp Z. p & /\_k EX E[p U (Z & c_k)].
  Bdd z = p;
  while (true) {
    covest::governor_tick();
    Bdd next = p;
    for (const Bdd& c : fsm_.fairness()) {
      next &= fsm_.backward(eu_plain(p, z & c));
    }
    if (next == z) return z;
    z = next;
  }
}

Bdd ModelChecker::eg_plain(const Bdd& p) {
  // gfp Z. p & EX Z.
  Bdd z = p;
  while (true) {
    covest::governor_tick();
    const Bdd next = z & fsm_.backward(z);
    if (next == z) return z;
    z = next;
  }
}

bool ModelChecker::holds(const Formula& f) {
  return fsm_.initial_states().subset_of(sat(f));
}

CheckResult ModelChecker::check(const Formula& f) {
  CheckResult result;
  result.holds = holds(f);
  if (!result.holds) {
    // Recurse into the first failing conjunct (property suites are often
    // conjunctions of AG implications); for AG g the classic
    // counterexample is a shortest path to a reachable state violating
    // the body g; otherwise fall back to a reachable state outside
    // sat(f).
    if (f.op() == CtlOp::kAnd) {
      return check(holds(f.arg(0)) ? f.arg(1) : f.arg(0));
    }
    const Bdd reach = fsm_.reachable(fsm_.initial_states());
    const Bdd bad = f.op() == CtlOp::kAG ? reach - sat(f.arg(0))
                                         : reach - sat(f);
    result.counterexample =
        fsm::shortest_trace(fsm_, fsm_.initial_states(), bad);
  }
  return result;
}

}  // namespace covest::ctl
