#include "ctl/ctl_parser.h"

#include <set>
#include <stdexcept>

#include "expr/expr_parser.h"

namespace covest::ctl {

namespace {

using expr::Token;
using expr::TokenKind;
using expr::TokenStream;

const std::set<std::string>& temporal_keywords() {
  static const std::set<std::string> kws{"AX", "EX", "AF", "EF", "AG",
                                         "EG", "A",  "E",  "U"};
  return kws;
}

class CtlParser {
 public:
  explicit CtlParser(TokenStream& ts) : ts_(ts) {}

  Formula parse() { return parse_iff(); }

 private:
  Formula parse_iff() {
    Formula lhs = parse_implies();
    while (ts_.accept_punct("<->")) {
      lhs = Formula::make(CtlOp::kIff, {lhs, parse_implies()});
    }
    return lhs;
  }

  Formula parse_implies() {
    Formula lhs = parse_or();
    if (ts_.accept_punct("->")) {
      return lhs.implies(parse_implies());
    }
    return lhs;
  }

  Formula parse_or() {
    Formula lhs = parse_and();
    while (ts_.peek().is_punct("|") || ts_.peek().is_punct("||")) {
      ts_.next();
      lhs = lhs | parse_and();
    }
    return lhs;
  }

  Formula parse_and() {
    Formula lhs = parse_unary();
    while (ts_.peek().is_punct("&") || ts_.peek().is_punct("&&")) {
      ts_.next();
      lhs = lhs & parse_unary();
    }
    return lhs;
  }

  Formula parse_unary() {
    if (ts_.accept_punct("!")) return !parse_unary();
    const Token& t = ts_.peek();
    if (t.kind == TokenKind::kIdent) {
      if (t.text == "AX" || t.text == "EX" || t.text == "AF" ||
          t.text == "EF" || t.text == "AG" || t.text == "EG") {
        const std::string op = ts_.next().text;
        Formula sub = parse_unary();
        if (op == "AX") return Formula::AX(sub);
        if (op == "EX") return Formula::EX(sub);
        if (op == "AF") return Formula::AF(sub);
        if (op == "EF") return Formula::EF(sub);
        if (op == "AG") return Formula::AG(sub);
        return Formula::EG(sub);
      }
      if (t.text == "A" || t.text == "E") {
        const bool universal = ts_.next().text == "A";
        ts_.expect_punct("[");
        Formula left = parse_iff();
        if (!ts_.accept_ident("U")) ts_.fail("expected 'U' in until formula");
        Formula right = parse_iff();
        ts_.expect_punct("]");
        return universal ? Formula::AU(left, right) : Formula::EU(left, right);
      }
    }
    return parse_primary();
  }

  Formula parse_primary() {
    if (ts_.peek().is_punct("(")) {
      // Ambiguity: '(' may open a subformula or an arithmetic atom like
      // `(x + y) == 3`. Try the formula reading; backtrack if it fails or
      // if the closing paren is followed by a token that can only
      // continue an expression.
      const std::size_t mark = ts_.position();
      try {
        ts_.next();  // '('
        Formula inner = parse_iff();
        ts_.expect_punct(")");
        static const char* kExprContinuations[] = {"==", "!=", "<",  "<=",
                                                   ">",  ">=", "+",  "-",
                                                   "*",  "?",  "^",  "["};
        for (const char* cont : kExprContinuations) {
          if (ts_.peek().is_punct(cont)) {
            throw std::runtime_error("expression continuation");
          }
        }
        return inner;
      } catch (const std::exception&) {
        ts_.rewind(mark);
        return parse_atom();
      }
    }
    return parse_atom();
  }

  Formula parse_atom() {
    expr::ExprParser parser(ts_, temporal_keywords());
    return Formula::prop(parser.parse_atom());
  }

  TokenStream& ts_;
};

}  // namespace

Formula parse_ctl(expr::TokenStream& ts) {
  CtlParser parser(ts);
  return collapse_propositional(parser.parse());
}

Formula parse_ctl(const std::string& text) {
  expr::TokenStream ts(text);
  Formula f = parse_ctl(ts);
  if (!ts.at_end()) ts.fail("unexpected trailing input after CTL formula");
  return f;
}

}  // namespace covest::ctl
