// Parser for CTL property text.
//
// Formula grammar (loosest first), sharing the expression parser for
// atomic propositions:
//
//   formula := imp ( '<->' imp )*
//   imp     := or [ '->' imp ]                      -- right associative
//   or      := and ( ('|'|'||') and )*
//   and     := unary ( ('&'|'&&') unary )*
//   unary   := '!' unary
//            | ('AX'|'EX'|'AF'|'EF'|'AG'|'EG') unary
//            | ('A'|'E') '[' formula 'U' formula ']'
//            | primary
//   primary := '(' formula ')'   -- with backtracking, see below
//            | atom              -- comparison-level expression
//
// A '(' can open either a temporal subformula or a parenthesised
// arithmetic atom such as `(x + y) == 3`; the parser first tries the
// formula reading and backtracks when the closing paren is followed by an
// arithmetic/comparison token (or when the formula reading fails).
//
// `AX`, `EX`, `AF`, `EF`, `AG`, `EG`, `A`, `E` and `U` are reserved words
// inside properties and cannot name signals there.
//
// The returned formula is already `collapse_propositional`ed.
#pragma once

#include <string>

#include "ctl/ctl.h"
#include "expr/lexer.h"

namespace covest::ctl {

/// Parses a standalone CTL formula; throws `std::runtime_error` with
/// line/column context on errors (including trailing input).
Formula parse_ctl(const std::string& text);

/// Parses a formula from an existing token stream (used by tools that
/// embed CTL in larger files).
Formula parse_ctl(expr::TokenStream& ts);

}  // namespace covest::ctl
