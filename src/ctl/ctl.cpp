#include "ctl/ctl.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace covest::ctl {

using expr::Expr;

CtlOp Formula::op() const { return node_->op; }

const Expr& Formula::prop() const {
  if (node_->op != CtlOp::kProp) {
    throw std::logic_error("prop() on a non-atomic formula");
  }
  return node_->prop;
}

const Formula& Formula::arg(std::size_t i) const { return node_->args.at(i); }

std::size_t Formula::arity() const { return node_->args.size(); }

namespace {

std::size_t node_hash(const FormulaNode& n) {
  std::uint64_t h = static_cast<std::uint64_t>(n.op) + 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  if (n.op == CtlOp::kProp) mix(expr::structural_hash(n.prop));
  for (const Formula& a : n.args) mix(structural_hash(a));
  return static_cast<std::size_t>(h);
}

}  // namespace

Formula Formula::prop(Expr e) {
  auto node = std::make_shared<FormulaNode>();
  node->op = CtlOp::kProp;
  node->prop = std::move(e);
  node->hash = node_hash(*node);
  return Formula(std::move(node));
}

Formula Formula::make(CtlOp op, std::vector<Formula> args) {
  if (op == CtlOp::kProp) {
    throw std::logic_error("use Formula::prop for atomic propositions");
  }
  auto node = std::make_shared<FormulaNode>();
  node->op = op;
  node->args = std::move(args);
  for (const Formula& f : node->args) {
    if (!f.valid()) throw std::runtime_error("invalid subformula");
  }
  const std::size_t expected =
      (op == CtlOp::kAU || op == CtlOp::kEU || op == CtlOp::kAnd ||
       op == CtlOp::kOr || op == CtlOp::kImplies || op == CtlOp::kIff)
          ? 2
          : 1;
  if (node->args.size() != expected) {
    throw std::logic_error("wrong arity for CTL operator");
  }
  node->hash = node_hash(*node);
  return Formula(std::move(node));
}

std::size_t structural_hash(const Formula& f) {
  return f.valid() ? f.node()->hash : 0;
}

bool structural_equal(const Formula& a, const Formula& b) {
  if (a.id() == b.id()) return true;
  if (!a.valid() || !b.valid()) return false;
  if (a.op() != b.op() || a.arity() != b.arity()) return false;
  if (structural_hash(a) != structural_hash(b)) return false;
  if (a.op() == CtlOp::kProp) return expr::structural_equal(a.prop(), b.prop());
  for (std::size_t i = 0; i < a.arity(); ++i) {
    if (!structural_equal(a.arg(i), b.arg(i))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Collapse
// ---------------------------------------------------------------------------

namespace {

// Subtrees mergeable into one atom. Implications are excluded: the paper
// gives `b -> f` its own coverage rule (only the consequent contributes),
// so `(a -> b) & c` keeps its structure while `!a & b` merges. Users who
// *want* an implication inside an atom can write it at the expression
// level, e.g. `((a -> b)) == flag` — "the syntax of the formula better
// captures the verification intent of the user" (paper, Section 2.1).
bool subtree_is_propositional(const Formula& f) {
  switch (f.op()) {
    case CtlOp::kProp:
      return true;
    case CtlOp::kNot:
    case CtlOp::kAnd:
    case CtlOp::kOr:
    case CtlOp::kIff:
      for (std::size_t i = 0; i < f.arity(); ++i) {
        if (!subtree_is_propositional(f.arg(i))) return false;
      }
      return true;
    default:
      return false;
  }
}

Expr subtree_to_expr(const Formula& f) {
  switch (f.op()) {
    case CtlOp::kProp:
      return f.prop();
    case CtlOp::kNot:
      return !subtree_to_expr(f.arg(0));
    case CtlOp::kAnd:
      return subtree_to_expr(f.arg(0)) & subtree_to_expr(f.arg(1));
    case CtlOp::kOr:
      return subtree_to_expr(f.arg(0)) | subtree_to_expr(f.arg(1));
    case CtlOp::kImplies:
      return subtree_to_expr(f.arg(0)).implies(subtree_to_expr(f.arg(1)));
    case CtlOp::kIff:
      return subtree_to_expr(f.arg(0)).iff(subtree_to_expr(f.arg(1)));
    default:
      throw std::logic_error("subtree_to_expr on temporal operator");
  }
}

}  // namespace

Formula collapse_propositional(const Formula& f) {
  // Implications keep their structure: the coverage semantics of
  // `b -> f` differs from the atom `b -> f` (Definition 5 gives coverage
  // only to the consequent).
  if (f.op() == CtlOp::kProp) return f;

  if (subtree_is_propositional(f)) {
    return Formula::prop(subtree_to_expr(f));
  }

  std::vector<Formula> args;
  for (std::size_t i = 0; i < f.arity(); ++i) {
    args.push_back(collapse_propositional(f.arg(i)));
  }
  return Formula::make(f.op(), std::move(args));
}

// ---------------------------------------------------------------------------
// Acceptable ACTL subset
// ---------------------------------------------------------------------------

namespace {

std::string check_acceptable(const Formula& f) {
  switch (f.op()) {
    case CtlOp::kProp:
      return {};
    case CtlOp::kImplies: {
      if (f.arg(0).op() != CtlOp::kProp) {
        return "the antecedent of '->' must be propositional";
      }
      return check_acceptable(f.arg(1));
    }
    case CtlOp::kAnd: {
      std::string r = check_acceptable(f.arg(0));
      if (!r.empty()) return r;
      return check_acceptable(f.arg(1));
    }
    case CtlOp::kAX:
    case CtlOp::kAG:
    case CtlOp::kAF:
      return check_acceptable(f.arg(0));
    case CtlOp::kAU: {
      std::string r = check_acceptable(f.arg(0));
      if (!r.empty()) return r;
      return check_acceptable(f.arg(1));
    }
    case CtlOp::kOr:
      return "disjunction of temporal formulas is outside the subset";
    case CtlOp::kNot:
      return "negation of a temporal formula is outside the subset";
    case CtlOp::kIff:
      return "'<->' between temporal formulas is outside the subset";
    case CtlOp::kEX:
    case CtlOp::kEF:
    case CtlOp::kEG:
    case CtlOp::kEU:
      return "existential path quantifiers are outside the ACTL subset";
  }
  return "unknown operator";
}

}  // namespace

std::string acceptable_actl_violation(const Formula& f) {
  return check_acceptable(collapse_propositional(f));
}

// ---------------------------------------------------------------------------
// Prop rewriting
// ---------------------------------------------------------------------------

Formula transform_props(
    const Formula& f,
    const std::function<expr::Expr(const expr::Expr&)>& fn) {
  if (f.op() == CtlOp::kProp) {
    return Formula::prop(fn(f.prop()));
  }
  std::vector<Formula> args;
  for (std::size_t i = 0; i < f.arity(); ++i) {
    args.push_back(transform_props(f.arg(i), fn));
  }
  return Formula::make(f.op(), std::move(args));
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

namespace {

void print(std::ostream& os, const Formula& f, bool parenthesize) {
  const auto wrap = [&](const char* prefix, const Formula& sub) {
    os << prefix;
    print(os, sub, true);
  };
  switch (f.op()) {
    case CtlOp::kProp:
      os << expr::to_string(f.prop());
      return;
    case CtlOp::kNot:
      wrap("!", f.arg(0));
      return;
    case CtlOp::kAX: wrap("AX ", f.arg(0)); return;
    case CtlOp::kEX: wrap("EX ", f.arg(0)); return;
    case CtlOp::kAF: wrap("AF ", f.arg(0)); return;
    case CtlOp::kEF: wrap("EF ", f.arg(0)); return;
    case CtlOp::kAG: wrap("AG ", f.arg(0)); return;
    case CtlOp::kEG: wrap("EG ", f.arg(0)); return;
    case CtlOp::kAU:
    case CtlOp::kEU:
      os << (f.op() == CtlOp::kAU ? "A[" : "E[");
      print(os, f.arg(0), false);
      os << " U ";
      print(os, f.arg(1), false);
      os << "]";
      return;
    default:
      break;
  }
  // Binary boolean connectives.
  const char* token = f.op() == CtlOp::kAnd       ? " & "
                      : f.op() == CtlOp::kOr      ? " | "
                      : f.op() == CtlOp::kImplies ? " -> "
                                                  : " <-> ";
  if (parenthesize) os << "(";
  print(os, f.arg(0), true);
  os << token;
  print(os, f.arg(1), true);
  if (parenthesize) os << ")";
}

}  // namespace

std::string to_string(const Formula& f) {
  if (!f.valid()) return "<null>";
  std::ostringstream os;
  print(os, f, false);
  return os.str();
}

}  // namespace covest::ctl
