// The suite-level engine facade.
//
// The paper's workflow (Section 4.1, Table 2) is suite-shaped: verify
// every SPEC of a model, then report one coverage row per observed
// signal, with uncovered-state samples and traces to the holes. This
// header is the one public entry point for that workflow:
//
//   engine::CoverageRequest req;
//   req.model_path = "examples/models/arbiter.cov";
//   req.want_traces = true;
//   engine::SuiteResult result = engine::Engine().run(req);
//
// A `CoverageRequest` declares the job (model source, property suite,
// observed signals, limits, policies); the `Engine` owns the whole
// parse -> elaborate -> verify -> estimate pipeline — BDD manager, FSM,
// model checker and coverage estimator — and returns a structured
// `SuiteResult` that the CLI, the Table-2 bench harness and the tests
// all render through the same serializers (result_json.h /
// result_text.h).
//
// Callers that re-estimate many suites on one model (the Section-5
// narrative: add properties, re-measure) open a `Session` instead: it
// keeps the checker's memoized satisfaction sets and the estimator's
// fix-point caches warm across runs.
//
// Progress and cancellation: `RunHooks::on_progress` is invoked after
// every pipeline step at per-property and per-signal granularity;
// returning false cancels the run, which finishes with the results
// computed so far and `SuiteResult::cancelled = true`. Sharded runs
// (`CoverageRequest::shards > 1`) report through the same hook — chunk
// 0's rows drive it — plus `RunHooks::on_shard_row` for every chunk's
// rows, so callers written against the serial API stay valid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/coverage.h"
#include "core/observed.h"
#include "ctl/checker.h"
#include "ctl/ctl.h"
#include "fsm/symbolic_fsm.h"
#include "model/model.h"

namespace covest::engine {

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

/// One property of the suite: CTL text (parsed by the engine) or an
/// already-built formula, plus the observed signals it targets.
struct PropertySpec {
  /// Parsed with ctl::parse_ctl when `formula` is invalid.
  std::string ctl_text;
  /// Takes precedence over `ctl_text` when valid.
  ctl::Formula formula;
  /// Signals whose rows this property contributes to; empty means every
  /// requested signal (relevance is still filtered per-atom, so a
  /// property that never mentions a signal contributes nothing to it).
  std::vector<std::string> observe;
  /// Optional label for reports.
  std::string comment;

  static PropertySpec text(std::string ctl,
                           std::vector<std::string> observe = {}) {
    PropertySpec s;
    s.ctl_text = std::move(ctl);
    s.observe = std::move(observe);
    return s;
  }
  static PropertySpec of(ctl::Formula f,
                         std::vector<std::string> observe = {}) {
    PropertySpec s;
    s.formula = std::move(f);
    s.observe = std::move(observe);
    return s;
  }
};

/// How a sharded request (shards > 1) is executed.
enum class ShardMode {
  /// One session, one shared BddManager: the model is parsed, elaborated
  /// and verified exactly once, and only the per-signal estimation rows
  /// fan out across up to `shards` estimator threads (bdd.h shared
  /// mode). The default — verification cost is paid once per suite.
  kSharedManager,
  /// Each shard is an independent executor task with its own manager
  /// and re-verifies the whole suite (verification cost × shards, zero
  /// lock contention). Kept for benchmarking the trade-off against
  /// kSharedManager; results are byte-identical either way.
  kReplicated,
};

/// Hard cap on estimator threads per suite: an untrusted request's
/// `shards` value must bound thread creation, not the other way around.
inline constexpr std::size_t kMaxEstimatorThreads = 32;

/// The estimator-thread count a sharded request actually gets: clamped
/// to the number of signal rows (spare threads would idle) and to
/// `kMaxEstimatorThreads`; at least 1.
std::size_t effective_shards(std::size_t requested, std::size_t rows);

/// Contiguous chunk [first, last) of `total` rows owned by `shard` of
/// `shards`. Chunked (not strided) assignment keeps
/// concatenation-in-shard-order equal to request order even for partial
/// (cancelled) shards. Shared by the session's in-manager fan-out and
/// the executor's replicated sharding.
std::pair<std::size_t, std::size_t> shard_chunk_range(std::size_t total,
                                                      std::size_t shard,
                                                      std::size_t shards);

/// Structured final status of a suite run: the machine-readable failure
/// taxonomy the result JSON, the executor and the CLIs all share. `kOk`
/// and `kCancelled` mirror the pre-existing `cancelled` flag; `kError`
/// mirrors a non-empty `SuiteResult::error`; the three governance
/// statuses are new and always come with a partial (never corrupt)
/// result.
enum class ResultStatus {
  kOk,
  kCancelled,          ///< A progress hook returned false.
  kDeadlineExceeded,   ///< `deadline_ms` expired mid-run.
  kResourceExhausted,  ///< The BddManager node budget was hit.
  kAdmissionRejected,  ///< A bounded executor queue refused the job.
  kError,              ///< Structured error (see `SuiteResult::error`).
};

/// JSON/CLI spelling: "ok", "cancelled", "deadline_exceeded",
/// "resource_exhausted", "admission_rejected", "error".
const char* to_string(ResultStatus status) noexcept;

/// Strict inverse of `to_string`: false (and `*out` untouched) for
/// anything but the six canonical spellings.
bool result_status_from_string(const std::string& text, ResultStatus* out);

/// Declarative description of one suite job.
struct CoverageRequest {
  // -- Model source: exactly one of the three -------------------------------
  /// `.cov` file to parse (see model/model_parser.h).
  std::string model_path;
  /// Inline `.cov` source text; parsed at execution. Serializable (unlike
  /// `model`), so JSON requests can carry the whole model with them.
  /// Takes precedence over `model_path`.
  std::string model_source;
  /// In-memory model; takes precedence over both text sources.
  std::optional<model::Model> model;

  // -- Suite ----------------------------------------------------------------
  /// Properties to verify and cover. Empty means the model's own SPEC
  /// entries (the `.cov` workflow).
  std::vector<PropertySpec> properties;
  /// Signals to report rows for (each expands to all of its bits). Empty
  /// means the union of the suite's OBSERVE clauses, sorted by name.
  std::vector<std::string> signals;

  // -- Policy ---------------------------------------------------------------
  /// Estimator policy. `options.image_strategy` travels as the
  /// top-level `"image_strategy"` JSON field (like `table_mode`), not
  /// inside the `"options"` object.
  core::CoverageOptions options;
  /// When false (default), properties that fail verification are skipped:
  /// they contribute nothing to coverage, matching Definition 3's
  /// precondition M |= f. When true, failing properties stay in the
  /// suite rows (their covered sets are empty anyway).
  bool skip_failing = false;
  /// Uncovered-state samples per signal row.
  std::size_t uncovered_limit = 4;
  /// Compute a shortest input trace to an uncovered state per signal row.
  bool want_traces = false;
  /// Intra-suite signal sharding: split the signal rows across up to
  /// this many estimator threads (see `effective_shards` for the
  /// clamp). Under the default `ShardMode::kSharedManager`,
  /// `Session::run` itself fans the rows out over one shared manager
  /// after verifying the suite exactly once; rows are merged back in
  /// request order and are bit-identical to the serial path.
  std::size_t shards = 1;
  ShardMode shard_mode = ShardMode::kSharedManager;
  /// How the shared manager of a `kSharedManager` fan-out synchronizes
  /// its unique tables and computed cache: the lock-free CAS table
  /// (default) or the striped-lock baseline (kept for benchmarking;
  /// results are byte-identical either way). Ignored when the run
  /// never enters shared mode (serial or replicated).
  bdd::TableMode table_mode = bdd::TableMode::kLockFree;

  // -- Resource governance ----------------------------------------------------
  /// Wall-clock budget for the whole run in milliseconds (0 = none).
  /// Measured on the monotonic clock from job start (under the
  /// executor, from submission — queue time counts). Expiry stops the
  /// run at the next governance tick — the phase-boundary hook points
  /// or the coarse tick inside the BDD fix-point loops — and yields the
  /// partial result with `ResultStatus::kDeadlineExceeded`.
  std::uint64_t deadline_ms = 0;
  /// Node budget for this run's BddManager(s), 0 = unlimited (see
  /// bdd::BddManager::set_max_live_nodes for the exact semantics).
  /// Exhaustion yields `ResultStatus::kResourceExhausted` with the
  /// count and budget recorded in the failing phase's stats.
  std::size_t max_live_nodes = 0;
};

/// The effective property suite of a request on its model: the request's
/// own properties, else the model's SPEC entries. `Session::run` and the
/// executor's shard validation both resolve through here — the sharded
/// path must agree with the serial path on this list.
std::vector<PropertySpec> resolve_suite(const CoverageRequest& request,
                                        const model::Model& model);

/// The effective signal-row names: the request's explicit signals, else
/// the sorted union of the resolved suite's OBSERVE lists. Signal
/// sharding splits exactly this list, so row merge order is request
/// order by construction.
std::vector<std::string> resolve_signal_names(const CoverageRequest& request,
                                              const model::Model& model);

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

/// A rendered witness trace (counterexample or path to a coverage hole):
/// per step, the signal values in declaration order.
struct TraceResult {
  using Step = std::vector<std::pair<std::string, std::uint64_t>>;
  std::vector<Step> steps;
  /// Human-readable multi-line form ("step k: sig=val ...").
  std::string text;
};

/// Verification outcome of one suite property.
struct PropertyResult {
  std::string ctl_text;  ///< Canonical rendering of the checked formula.
  std::string comment;
  std::vector<std::string> observe;
  bool holds = false;
  /// Failed and `skip_failing` was off: excluded from coverage.
  bool skipped = false;
  std::optional<TraceResult> counterexample;
  double check_ms = 0.0;
};

/// One Table-2 row: coverage of one observed signal (word signals union
/// their bits) over the verified suite.
struct SignalRow {
  std::string name;
  std::size_t num_properties = 0;  ///< Suite properties mentioning the signal.
  double covered_count = 0.0;      ///< |covered ∩ coverage space|.
  double percent = 0.0;            ///< Definition 4.
  std::vector<std::string> uncovered;  ///< Sampled holes ("sig=val ...").
  std::optional<TraceResult> trace;    ///< Shortest path to a hole.
  double estimate_ms = 0.0;
  /// Live BDD handle of the covered set, for library callers that keep
  /// composing (valid while the Session/Engine's manager is alive).
  bdd::Bdd covered;
};

/// BDD-manager snapshot at the end of a pipeline phase.
struct PhaseStats {
  double ms = 0.0;
  std::size_t live_nodes = 0;
  std::size_t peak_live_nodes = 0;
  double cache_hit_rate = 0.0;  ///< Computed-cache hit rate, cumulative.
  /// How many times this phase actually executed for the job: 1 for a
  /// serial or shared-manager run (the whole point of the shared-manager
  /// sharding is verify.passes == 1), one per shard that elaborated for
  /// a replicated sharded run, 0 when the phase never ran (errors,
  /// early cancellation).
  std::size_t passes = 0;
  /// The manager's `max_live_nodes` budget during the run; 0 when
  /// unbudgeted (and then omitted from the JSON stats).
  std::size_t node_budget = 0;
  /// Partitioned-image shape (image/image.h): how many partial
  /// relations the model elaborated into, how many clusters they were
  /// conjoined into, and the partial count of the largest cluster.
  /// Session runs stamp all three on every phase; 0 everywhere for
  /// results that never elaborated (and then omitted from the JSON).
  std::size_t partial_relations = 0;
  std::size_t clusters = 0;
  std::size_t largest_cluster = 0;
  /// Shared-mode reclamation counters (bdd::BddStats), cumulative for
  /// the manager: collections run inside shared epochs, dead slots
  /// moved onto retire batches, and slots actually returned to the free
  /// list after their grace period. All zero for serial runs (and then
  /// omitted from the JSON stats).
  std::size_t shared_gc_runs = 0;
  std::size_t retired_nodes = 0;
  std::size_t reclaimed_nodes = 0;
};

/// Structured outcome of a whole suite run.
struct SuiteResult {
  /// One-shot `Engine::run` parks its Session here so the `covered` BDD
  /// handles in `signals` outlive the call. Declared first: members are
  /// destroyed in reverse declaration order, and the handles below must
  /// die before their manager. `Session::run` results instead stay valid
  /// for the session's lifetime.
  std::shared_ptr<void> retain;

  std::string model_name;
  unsigned state_bits = 0;
  double reachable_states = 0.0;
  double space_count = 0.0;  ///< |coverage space|.

  std::vector<PropertyResult> properties;
  std::vector<SignalRow> signals;

  std::size_t failures = 0;  ///< Properties that failed verification.
  bool cancelled = false;    ///< A progress hook aborted the run.
  /// Non-empty when the job failed before producing a full result: no
  /// model source, model/CTL parse error, unknown signal... The batch
  /// paths (executor, covest_batch) report errors structurally instead
  /// of throwing; `Engine::run` rethrows for API compatibility.
  std::string error;
  /// Structured status (the taxonomy above). Partial results from a
  /// deadline/budget/admission stop are well-formed — completed
  /// property and row prefixes are byte-identical to the corresponding
  /// prefix of an unlimited run — just truncated.
  ResultStatus status = ResultStatus::kOk;
  /// Human-readable detail for non-ok statuses ("estimate: deadline of
  /// 50 ms expired", ...). Empty when `status == kOk`.
  std::string status_detail;

  PhaseStats elaborate;  ///< Parse + FSM elaboration.
  PhaseStats verify;     ///< Model checking of the suite.
  PhaseStats estimate;   ///< Coverage estimation + hole reporting.
  double total_ms = 0.0;

  bool all_passed() const { return failures == 0 && error.empty(); }
};

// ---------------------------------------------------------------------------
// Progress and cancellation
// ---------------------------------------------------------------------------

/// One progress tick. Phases advance monotonically; within kVerify and
/// kEstimate, `index`/`total` count properties and signal rows.
struct Progress {
  enum class Phase { kElaborate, kVerify, kEstimate, kDone };
  Phase phase = Phase::kElaborate;
  std::size_t index = 0;  ///< Completed items in this phase (1-based).
  std::size_t total = 0;  ///< Items in this phase.
  std::string item;       ///< Property text or signal name just finished.
  bool ok = true;         ///< kVerify: did the property hold?
  double percent = 0.0;   ///< kEstimate: the row's coverage percentage.
};

/// Return false to cancel: the run stops after the current item and
/// returns the partial SuiteResult with `cancelled` set.
using ProgressFn = std::function<bool(const Progress&)>;

/// Per-row callback of a sharded (shared-manager) run: fires once per
/// completed signal row from the estimating thread, with the shard
/// (chunk) index — including chunk 0, whose rows also drive
/// `on_progress`. Return false to cancel the whole run. Called
/// concurrently from different shards; the callee synchronizes.
using ShardRowFn = std::function<bool(std::size_t shard, const Progress&)>;

struct RunHooks {
  /// The serial progress contract: elaborate/verify ticks, then — in a
  /// serial run — one tick per signal row; in a sharded run only chunk
  /// 0's rows tick here (the other chunks report via `on_shard_row`).
  ProgressFn on_progress;
  ShardRowFn on_shard_row;
};

// ---------------------------------------------------------------------------
// Session and Engine
// ---------------------------------------------------------------------------

/// An elaborated model with its checker/estimator state. One session =
/// one BDD manager; repeated `run` calls share memoized satisfaction
/// sets and fix-point caches (the reuse the paper recommends in
/// Section 3).
///
/// Verified-suite split: beyond the checker's per-formula memo, the
/// session records the *suite-level* verification artifacts — the
/// PropertyResult list (counterexample traces included) and the failure
/// count — keyed by a structural hash of the resolved suite (raw CTL
/// text, collapsed-formula structural hash, observe lists, comments,
/// `skip_failing`). A repeat `run` whose suite hashes to a stored
/// record skips the verify phase entirely: the cached outcomes are
/// replayed, `SuiteResult::verify.passes` reports 0, no verify
/// progress ticks fire, and the estimate phase proceeds exactly as on
/// the cold run — byte-identical results (stats aside), since every
/// intermediate is a canonical BDD with exact counts. This is the
/// per-request half of the warm model cache (session_cache.h holds the
/// cross-request half).
class Session {
 public:
  /// `max_live_nodes` (0 = unlimited) budgets the session's manager for
  /// its whole life, elaboration included; the constructor throws
  /// covest::ResourceExhausted when elaboration itself exhausts it.
  explicit Session(const model::Model& model,
                   core::CoverageOptions options = {},
                   std::size_t max_live_nodes = 0);

  const model::Model& model() const { return fsm_.model(); }
  const fsm::SymbolicFsm& fsm() const { return fsm_; }
  ctl::ModelChecker& checker() { return checker_; }
  core::CoverageEstimator& estimator() { return estimator_; }

  /// Runs the suite part of `request` against this session's model (the
  /// request's model source is ignored). When `request.shards > 1` the
  /// pipeline still parses/elaborates/verifies exactly once, then fans
  /// the per-signal estimation rows out across `effective_shards`
  /// estimator threads sharing this session's BDD manager (bdd.h shared
  /// mode); the merged rows are byte-identical to a serial run. The
  /// manager is exclusive again (owned by the calling thread) when
  /// `run` returns.
  SuiteResult run(const CoverageRequest& request, const RunHooks& hooks = {});

  /// Distinct verified suites recorded by this session (bounded; see
  /// `kMaxVerifiedSuites`). Exposed for tests and cache diagnostics.
  std::size_t verified_suite_count() const { return verified_.size(); }

  /// Cap on recorded verified suites per session: past it the record is
  /// cleared wholesale (the checker's per-formula memo stays, so a
  /// re-verify after a clear is still cheap). Suites per model are few
  /// in practice; this only bounds a pathological client.
  static constexpr std::size_t kMaxVerifiedSuites = 16;

 private:
  /// The suite-level verification artifacts one cold run records and a
  /// warm run replays.
  struct VerifiedSuite {
    std::vector<PropertyResult> properties;
    std::size_t failures = 0;
  };

  SignalRow estimate_row(const CoverageRequest& request,
                         const std::string& name,
                         const std::vector<PropertySpec>& specs,
                         const std::vector<ctl::Formula>& formulas,
                         const std::vector<PropertyResult>& outcomes);

  fsm::SymbolicFsm fsm_;
  ctl::ModelChecker checker_;
  core::CoverageEstimator estimator_;
  /// |reachable(init)| is suite-invariant; computed on the first run.
  std::optional<double> reachable_count_;
  /// Suite hash -> artifacts of a completed verify phase.
  std::unordered_map<std::uint64_t, VerifiedSuite> verified_;
};

/// The facade: resolves the request's model source and executes the
/// pipeline. Stateless — each `run` elaborates a fresh session; use
/// `open` to keep the session (and its caches) for follow-up suites.
///
/// `run` is layered on the multi-worker `engine::Executor`
/// (executor.h): it submits the request to a single-worker executor and
/// waits, so the one-shot path and the batch path execute the same
/// code. Two consequences for callers: `RunHooks::on_progress` is
/// invoked on the worker thread (the caller blocks meanwhile, so no
/// synchronization is needed, but thread-affine callbacks must not
/// assume the calling thread), and failures of any original exception
/// type surface as the worker's structured `SuiteResult::error`,
/// rethrown here as `std::runtime_error` carrying the original message
/// — blocking callers keep exception semantics, batch callers get data.
class Engine {
 public:
  /// Parses/copies the request's model (no elaboration).
  static model::Model load_model(const CoverageRequest& request);

  /// Elaborates the request's model into a reusable session.
  std::unique_ptr<Session> open(const CoverageRequest& request) const;

  /// One-shot: load, elaborate, verify, estimate, report.
  SuiteResult run(const CoverageRequest& request,
                  const RunHooks& hooks = {}) const;
};

}  // namespace covest::engine
