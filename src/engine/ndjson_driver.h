// Shared NDJSON framing and dispatch for the batch and server drivers.
//
// Both front-ends speak the same wire contract — one JSON
// `CoverageRequest` per input line, one compact JSON `SuiteResult` per
// output line, *in input order* — and both pace submission with a
// bounded window over one `engine::Executor` so that a huge input
// stream bounds resident memory by the worker count, not the stream
// length. This header is that contract, factored out of
// `examples/covest_batch.cpp` so `covest_serve` cannot drift from it:
//
//   engine::NdjsonDispatcher dispatch(executor, 2 * workers, emit);
//   while (std::getline(in, line)) {
//     if (engine::ndjson_trimmed(line).empty()) continue;
//     dispatch.push(engine::parse_request_line(line, defaults, "", false));
//   }
//   dispatch.drain();
//   return dispatch.exit_code();
//
// Line grammar (see covest_batch --help): a line starting with `{` is a
// full JSON request (request_json.h schema); in manifest mode a bare
// line is a `.cov` model path resolved against the manifest directory.
// Input defects never abort the stream — a malformed line becomes a
// result line with `summary.error`, keeping the one-in/one-out pairing.
//
// A dispatcher is single-consumer: one thread pushes lines and receives
// `emit` callbacks (the batch main loop, or one server connection's
// reader thread). Many dispatchers may share one executor — that is the
// server's concurrency model.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "engine/executor.h"
#include "image/image.h"

namespace covest::engine {

// ---------------------------------------------------------------------------
// Line helpers
// ---------------------------------------------------------------------------

/// `line` with ASCII whitespace stripped from both ends.
std::string ndjson_trimmed(const std::string& line);

/// Manifest comment/blank test: blank, `#`, or `--` lines are skipped.
/// (Stdin/socket streams skip only blank lines — comment-looking
/// garbage must produce an error line, not silently shift the
/// one-output-per-input pairing.)
bool ndjson_comment_or_blank(const std::string& line);

/// Directory prefix of `path` including the trailing '/', empty when
/// `path` has no '/'. Relative model paths resolve against this.
std::string ndjson_dirname(const std::string& path);

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// Driver-level knobs applied to every parsed request line — the
/// `--shards/--deadline-ms/--max-nodes/--table-mode/--image-strategy/
/// --parallel-apply` flags both binaries accept.
struct RequestDefaults {
  std::size_t shards = 0;       ///< 0 = leave the request's own value.
  std::size_t deadline_ms = 0;  ///< 0 = leave the request's own value.
  std::size_t max_nodes = 0;    ///< 0 = leave the request's own value.
  /// In-operation parallel-apply workers; 0 = leave the request's value.
  std::size_t parallel_apply = 0;
  std::optional<bdd::TableMode> table_mode;  ///< Unset = per-request value.
  /// Unset = per-request value.
  std::optional<image::ImageStrategy> image_strategy;
  bool want_traces = false;  ///< Applied to bare model-path lines only.
  /// How a set flag meets a request that also sets the field: the batch
  /// driver's flags win (true — a CLI override for the whole batch);
  /// the server's flags are defaults and a request's own nonzero value
  /// wins (false).
  bool flags_override = true;
};

/// One parsed input line: a request, or the input defect that replaced
/// it (never submitted; emitted as an error result line).
struct ParsedLine {
  CoverageRequest request;
  std::string input_error;
};

/// Parses one non-blank input line into a job. `base_dir` resolves
/// relative model paths — bare path lines and JSON `model_path` fields
/// alike (empty resolves against the process cwd). `allow_paths` is the
/// manifest dialect; NDJSON streams (stdin, sockets) require JSON.
ParsedLine parse_request_line(const std::string& raw,
                              const RequestDefaults& defaults,
                              const std::string& base_dir, bool allow_paths);

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// The bounded-window submit/emit loop. `push` submits a line's request
/// (or records its input error) and, once more than `window` lines are
/// in flight, blocks on the *oldest* one and emits its result — so
/// results stream strictly in input order while up to `window` jobs
/// overlap, and a finished-but-unprinted job (whose covered-set handles
/// pin BDD node pools) never waits behind more than `window` peers.
class NdjsonDispatcher {
 public:
  using EmitFn = std::function<void(const SuiteResult&)>;

  /// `window` is clamped to at least 1. `emit` is called on the pushing
  /// thread, once per pushed line, in push order.
  NdjsonDispatcher(Executor& executor, std::size_t window, EmitFn emit);
  ~NdjsonDispatcher();

  NdjsonDispatcher(const NdjsonDispatcher&) = delete;
  NdjsonDispatcher& operator=(const NdjsonDispatcher&) = delete;

  /// Submits one parsed line; may emit one (older) result.
  void push(ParsedLine line);

  /// Emits every already-finished result at the front of the line,
  /// without blocking. The batch driver never needs this (EOF ends the
  /// stream, then `drain` flushes), but a long-lived socket does: a
  /// client that keeps the connection open while waiting for replies
  /// would otherwise see nothing until `window` more lines arrive. The
  /// server's reader ticks this while polling. Returns the number of
  /// lines emitted.
  std::size_t flush_ready();

  /// Emits every in-flight result, blocking until the last worker
  /// finishes. push/drain may be interleaved freely.
  void drain();

  /// Like `drain`, but bounded: waits up to `per_job` for each
  /// in-flight result (`JobHandle::wait_for`). Returns false — with the
  /// remaining jobs still in flight — as soon as one result fails to
  /// arrive in time; the caller decides between another grace period
  /// and abandoning the drain (the server's SIGTERM path).
  bool drain_for(std::chrono::milliseconds per_job);

  /// Lines pushed but not yet emitted.
  std::size_t in_flight() const { return pending_.size(); }

  /// Aggregated exit code of everything emitted so far, the shared
  /// 0/1/3 contract: 3 = some job was stopped by a resource limit
  /// (trumps 1), 1 = some error or property failure, else 0.
  int exit_code() const;

 private:
  struct Pending {
    JobHandle handle;          ///< Invalid when `input_error` is set.
    std::string input_error;
  };

  void emit_front();

  Executor& executor_;
  const std::size_t window_;
  EmitFn emit_;
  std::deque<Pending> pending_;
  bool any_error_ = false;
  bool any_failure_ = false;
  bool any_limited_ = false;
};

}  // namespace covest::engine
