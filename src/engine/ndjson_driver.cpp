#include "engine/ndjson_driver.h"

#include <cctype>
#include <utility>

#include "engine/request_json.h"

namespace covest::engine {

std::string ndjson_trimmed(const std::string& line) {
  std::size_t b = 0, e = line.size();
  while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
  return line.substr(b, e - b);
}

bool ndjson_comment_or_blank(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  if (i == line.size()) return true;
  if (line[i] == '#') return true;
  return line.compare(i, 2, "--") == 0;
}

std::string ndjson_dirname(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

ParsedLine parse_request_line(const std::string& raw,
                              const RequestDefaults& defaults,
                              const std::string& base_dir, bool allow_paths) {
  ParsedLine job;
  const std::string line = ndjson_trimmed(raw);
  // Prefixing in place (rather than move-through-a-helper) sidesteps a
  // GCC maybe-uninitialized false positive on the moved-from string.
  const auto resolve = [&base_dir](std::string* path) {
    if (!base_dir.empty() && !path->empty() && (*path)[0] != '/') {
      path->insert(0, base_dir);
    }
  };
  if (!line.empty() && line[0] == '{') {
    std::string error;
    if (!parse_request(line, &job.request, &error)) {
      job.input_error = error;
    } else {
      resolve(&job.request.model_path);
    }
  } else if (allow_paths) {
    job.request.model_path = line;
    resolve(&job.request.model_path);
    job.request.want_traces = defaults.want_traces;
  } else {
    job.input_error = "stdin lines must be JSON requests (start with '{')";
  }
  if (!job.input_error.empty()) return job;
  const bool flags_win = defaults.flags_override;
  if (defaults.shards > 0 && (flags_win || job.request.shards <= 1)) {
    job.request.shards = defaults.shards;
  }
  if (defaults.deadline_ms > 0 &&
      (flags_win || job.request.deadline_ms == 0)) {
    job.request.deadline_ms = defaults.deadline_ms;
  }
  if (defaults.max_nodes > 0 &&
      (flags_win || job.request.max_live_nodes == 0)) {
    job.request.max_live_nodes = defaults.max_nodes;
  }
  if (defaults.parallel_apply > 0 &&
      (flags_win || job.request.options.parallel_apply == 0)) {
    job.request.options.parallel_apply = defaults.parallel_apply;
  }
  if (defaults.table_mode) {
    job.request.table_mode = *defaults.table_mode;
  }
  if (defaults.image_strategy) {
    job.request.options.image_strategy = *defaults.image_strategy;
  }
  return job;
}

// ---------------------------------------------------------------------------
// NdjsonDispatcher
// ---------------------------------------------------------------------------

NdjsonDispatcher::NdjsonDispatcher(Executor& executor, std::size_t window,
                                   EmitFn emit)
    : executor_(executor),
      window_(window == 0 ? 1 : window),
      emit_(std::move(emit)) {}

NdjsonDispatcher::~NdjsonDispatcher() {
  // An abandoned dispatcher (a server connection that died mid-stream)
  // must not leave workers computing results nobody will take — and a
  // taken result's managers must be rebound *somewhere*. Cancel, then
  // take-and-drop on this thread.
  for (Pending& p : pending_) {
    if (p.handle.valid()) p.handle.cancel();
  }
  while (!pending_.empty()) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    if (p.handle.valid()) p.handle.take();
  }
}

void NdjsonDispatcher::push(ParsedLine line) {
  Pending p;
  if (!line.input_error.empty()) {
    p.input_error = std::move(line.input_error);
  } else {
    p.handle = executor_.submit(std::move(line.request));
  }
  pending_.push_back(std::move(p));
  while (pending_.size() > window_) emit_front();
}

std::size_t NdjsonDispatcher::flush_ready() {
  std::size_t emitted = 0;
  while (!pending_.empty()) {
    const Pending& front = pending_.front();
    // A zero-timeout wait is a completion probe; input-error lines
    // (invalid handle) are always ready.
    if (front.handle.valid() &&
        !front.handle.wait_for(std::chrono::milliseconds(0))) {
      break;
    }
    emit_front();
    ++emitted;
  }
  return emitted;
}

void NdjsonDispatcher::drain() {
  while (!pending_.empty()) emit_front();
}

bool NdjsonDispatcher::drain_for(std::chrono::milliseconds per_job) {
  while (!pending_.empty()) {
    const Pending& front = pending_.front();
    if (front.handle.valid() && !front.handle.wait_for(per_job)) {
      return false;
    }
    emit_front();
  }
  return true;
}

void NdjsonDispatcher::emit_front() {
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  SuiteResult result;
  if (!p.input_error.empty()) {
    result.error = std::move(p.input_error);
    result.status = ResultStatus::kError;
  } else {
    result = p.handle.take();
  }
  any_error_ = any_error_ || !result.error.empty();
  any_failure_ = any_failure_ || result.failures > 0;
  any_limited_ = any_limited_ ||
                 result.status == ResultStatus::kDeadlineExceeded ||
                 result.status == ResultStatus::kResourceExhausted ||
                 result.status == ResultStatus::kAdmissionRejected;
  if (emit_) emit_(result);
}

int NdjsonDispatcher::exit_code() const {
  if (any_limited_) return 3;  // Resource limits trump property failures.
  return (any_error_ || any_failure_) ? 1 : 0;
}

}  // namespace covest::engine
