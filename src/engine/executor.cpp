#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "core/observed.h"
#include "ctl/ctl_parser.h"
#include "engine/session_cache.h"
#include "model/model_parser.h"
#include "util/governance.h"
#include "util/time.h"

namespace covest::engine {

namespace detail {

/// Shared state of one submitted job. Workers fill `shard_results`; the
/// last shard to finish merges them into `result` and flips `ready`.
struct JobState {
  std::uint64_t id = 0;
  CoverageRequest request;
  JobHooks hooks;
  JobEventFn executor_event;  ///< Executor-wide tap (may be empty).
  /// Executor-owned warm model cache; nullptr when disabled. Outlives
  /// every job (the executor destructor drains before Impl dies).
  SessionCache* cache = nullptr;

  /// Executor tasks for this job: 1 for serial and shared-manager
  /// sharded jobs (the session fans estimation threads out itself),
  /// the clamped shard count for replicated sharding.
  std::size_t shard_count = 1;
  /// Shard count reported on events: the effective estimator-thread
  /// count for shared-manager jobs (set by the worker once the signal
  /// rows are resolved, before any estimation event fires), else
  /// `shard_count`.
  std::size_t event_shards = 1;
  /// The job-wide deadline clock, started at submission so queue time
  /// counts; all of the job's tasks (and, through the thread-local
  /// scope, every estimator thread they spawn) tick against it.
  std::shared_ptr<covest::RunGovernor> governor;
  std::atomic<bool> cancel{false};
  /// A shard hit an error: sibling shards abort early — their rows
  /// would be dropped anyway, because an errored job reports error-only
  /// exactly like the serial path. Distinct from `cancel` so the merged
  /// result does not masquerade as user-cancelled.
  std::atomic<bool> failed{false};
  std::atomic<bool> started{false};

  mutable std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  bool taken = false;
  std::size_t shards_done = 0;
  std::vector<SuiteResult> shard_results;
  /// One session per shard that actually elaborated; keeps every manager
  /// behind the merged result's `covered` handles alive, and is the list
  /// `take()` rebinds to the consuming thread.
  std::vector<std::shared_ptr<Session>> sessions;
  SuiteResult result;

  /// Events are a fire-and-forget tap: a throwing callback must not
  /// kill a worker thread (std::terminate) or fail the job, so
  /// exceptions are swallowed here — the documented contract.
  void emit(JobEvent event) const {
    event.job = id;
    event.shards = event_shards;
    if (hooks.on_event) {
      try {
        hooks.on_event(event);
      } catch (...) {
      }
    }
    if (executor_event) {
      try {
        executor_event(event);
      } catch (...) {
      }
    }
  }
};

}  // namespace detail

namespace {

using detail::JobState;
using util::Clock;
using util::ms_since;

/// Fail-fast request validation, run on the worker before any BDD work:
/// every property must parse and every requested signal must exist.
/// Throws std::runtime_error with a per-job message; the worker turns it
/// into `SuiteResult::error`.
void validate_request(const CoverageRequest& request, const model::Model& m,
                      const std::vector<std::string>& signal_names) {
  for (const PropertySpec& s : resolve_suite(request, m)) {
    if (s.formula.valid()) continue;
    try {
      ctl::parse_ctl(s.ctl_text);
    } catch (const std::exception& e) {
      throw std::runtime_error("property '" + s.ctl_text +
                               "': " + e.what());
    }
  }
  for (const std::string& name : signal_names) {
    core::observe_all_bits(m, name);  // Throws for unknown signals.
  }
}

/// Returns a leased (or leasable, freshly elaborated) session to the
/// warm cache on every exit path of `run_shard`. Destruction happens on
/// the worker thread, which owns the manager and is therefore the only
/// thread allowed to measure `live_node_count` — the occupancy figure
/// recorded with the parked entry.
struct LeaseReturn {
  SessionCache* cache = nullptr;
  SessionKey key;
  std::shared_ptr<Session>* session = nullptr;
  ~LeaseReturn() {
    if (cache == nullptr || session == nullptr || *session == nullptr) {
      return;
    }
    const std::size_t live = (*session)->fsm().mgr().live_node_count();
    cache->release(key, std::move(*session), live);
  }
};

/// The contiguous chunk of `names` owned by `shard` of `shards`
/// (replicated mode only; the shared-manager path chunks row indices
/// through the same engine::shard_chunk_range).
std::vector<std::string> shard_chunk(const std::vector<std::string>& names,
                                     std::size_t shard, std::size_t shards) {
  const auto [first, last] = shard_chunk_range(names.size(), shard, shards);
  return {names.begin() + first, names.begin() + last};
}

/// Runs one task of one job on the calling (worker) thread.
///
/// For a serial or shared-manager job this is the job's only task: the
/// session is built ONCE, verification runs ONCE, and (for shards > 1)
/// `Session::run` fans the estimation rows out across estimator threads
/// over the session's shared BDD manager. For a replicated sharded job
/// (ShardMode::kReplicated) each task builds its own session and
/// re-verifies, exactly as before PR 4 — the benchmark baseline.
///
/// Everything symbolic — manager, FSM, session — is owned by this job;
/// only the JobState slots are shared with other workers. Never throws.
SuiteResult run_shard(JobState& job, std::size_t shard) {
  const auto t0 = Clock::now();
  SuiteResult result;

  if (job.cancel.load(std::memory_order_relaxed) ||
      job.failed.load(std::memory_order_relaxed)) {
    result.cancelled = true;
    result.status = ResultStatus::kCancelled;
    return result;
  }

  if (!job.started.exchange(true)) {
    JobEvent started;
    started.kind = JobEvent::Kind::kStarted;
    started.shard = shard;
    job.emit(started);
  }

  // Install the job's deadline governor for everything below: the
  // session adopts it instead of creating its own, so parse and
  // elaborate (which run before Session::run) are governed too.
  covest::RunGovernor::Scope governor_scope(job.governor.get());
  const char* stage = "parse";
  try {
    // Replicated sharding splits the *signals* across independent tasks
    // (each re-verifies on its own manager); the shared-manager path
    // hands the whole row list to one session and lets it fan the rows
    // out across estimator threads. Gate on the requested MODE, not the
    // clamped task count: a replicated request on a 1-worker executor
    // collapses to one serial task — it must not silently fall through
    // to the shared-manager fan-out it opted out of.
    const bool replicated =
        job.request.shard_mode == ShardMode::kReplicated;

    // Warm model cache: lease a parked session keyed by the raw source
    // bytes + elaboration options instead of re-parsing/elaborating.
    // Replicated jobs bypass it (re-elaboration is that mode's point),
    // as do in-memory models (no stable bytes to key on).
    std::shared_ptr<Session> session;
    std::optional<model::Model> parsed;
    SessionKey cache_key;
    const bool leasable = job.cache != nullptr && !replicated &&
                          !job.request.model.has_value();
    if (leasable) {
      std::string source;
      if (!job.request.model_source.empty()) {
        source = job.request.model_source;
      } else if (!job.request.model_path.empty()) {
        source = model::read_model_file(job.request.model_path);
      } else {
        throw std::runtime_error(
            "CoverageRequest: set `model`, `model_source` or `model_path` "
            "as the model source");
      }
      cache_key = SessionCache::key_of(source, job.request.options,
                                       job.request.max_live_nodes);
      session = job.cache->acquire(cache_key);
      if (!session) {
        // Parse the very bytes that were hashed: a file edited between
        // read and parse cannot poison the key.
        parsed = job.request.model_source.empty()
                     ? model::parse_model_source(source,
                                                 job.request.model_path)
                     : model::parse_model(source);
      }
    } else {
      parsed = Engine::load_model(job.request);
    }
    const bool cache_hit = session != nullptr;
    // Whatever exit path runs below, a leasable session goes back to
    // the cache; only the non-cached path parks it on the job instead.
    LeaseReturn lease{job.cache, cache_key, leasable ? &session : nullptr};

    const model::Model& m = cache_hit ? session->model() : *parsed;
    const std::vector<std::string> names =
        resolve_signal_names(job.request, m);
    job.governor->tick();  // Parse-phase deadline boundary.

    CoverageRequest shard_request = job.request;
    if (replicated) {
      shard_request.signals = job.shard_count > 1
                                  ? shard_chunk(names, shard, job.shard_count)
                                  : names;
      shard_request.shards = 1;  // Each replica estimates serially.
    } else {
      shard_request.signals = names;
      job.event_shards = std::max<std::size_t>(
          1, effective_shards(job.request.shards, names.size()));
    }
    // A trailing shard of a small suite may own no rows; the suite's
    // verification outcome comes from shard 0, so there is nothing to do.
    if (shard != 0 && shard_request.signals.empty()) return result;

    // Fail-fast validation runs once, on the shard that carries the
    // suite-level result; a defect any shard would hit (bad CTL, unknown
    // signal) surfaces as shard 0's — and thus the job's — error.
    if (shard == 0) validate_request(job.request, m, names);

    stage = "elaborate";
    if (!session) {
      session = std::make_shared<Session>(m, job.request.options,
                                          job.request.max_live_nodes);
    }
    const double elaborate_ms = ms_since(t0);
    job.governor->tick();  // Elaborate-phase deadline boundary.

    // The facade's elaborate tick (shard 0 carries the serial progress
    // contract; other shards only report through events).
    if (shard == 0 && job.hooks.on_progress) {
      Progress p;
      p.phase = Progress::Phase::kElaborate;
      p.index = p.total = 1;
      p.item = session->model().name();
      if (!job.hooks.on_progress(p)) {
        job.cancel.store(true, std::memory_order_relaxed);
        result.model_name = session->model().name();
        result.state_bits = session->model().state_bit_count();
        result.cancelled = true;
        result.status = ResultStatus::kCancelled;
        result.elaborate.ms = elaborate_ms;
        result.total_ms = ms_since(t0);
        return result;
      }
    }

    RunHooks session_hooks;
    // Touched by the worker (verify ticks) and, in a sharded run, the
    // session's estimator threads (row callbacks) — hence atomic.
    std::atomic<bool> estimating{false};
    const std::size_t row_count = shard_request.signals.size();
    const bool sharded_rows = !replicated && job.event_shards > 1;
    const auto emit_estimating = [&job, shard, &estimating, row_count] {
      if (estimating.exchange(true)) return;
      JobEvent ev;
      ev.kind = JobEvent::Kind::kEstimating;
      ev.shard = shard;
      ev.progress.phase = Progress::Phase::kEstimate;
      ev.progress.total = row_count;  ///< This task's rows.
      job.emit(ev);
    };
    session_hooks.on_progress = [&job, shard, &estimating, &emit_estimating,
                                 sharded_rows](const Progress& p) {
      if (p.phase == Progress::Phase::kVerify ||
          p.phase == Progress::Phase::kEstimate) {
        // Estimation begins when the last property has been verified
        // (the zero-property fallback fires before the first row tick).
        if (p.phase == Progress::Phase::kEstimate &&
            !estimating.load(std::memory_order_relaxed)) {
          emit_estimating();
        }
        // Sharded rows report through on_shard_row below (which sees
        // every chunk); emitting chunk 0's ticks here too would
        // double-count them.
        if (!(sharded_rows && p.phase == Progress::Phase::kEstimate)) {
          JobEvent ev;
          ev.kind = p.phase == Progress::Phase::kVerify
                        ? JobEvent::Kind::kVerifying
                        : JobEvent::Kind::kRowDone;
          ev.shard = shard;
          ev.progress = p;
          job.emit(ev);
        }
        if (p.phase == Progress::Phase::kVerify && p.index == p.total &&
            !estimating.load(std::memory_order_relaxed)) {
          emit_estimating();
        }
      }
      bool keep_going = true;
      if (shard == 0 && job.hooks.on_progress) {
        keep_going = job.hooks.on_progress(p);
        if (!keep_going) job.cancel.store(true, std::memory_order_relaxed);
      }
      return keep_going && !job.cancel.load(std::memory_order_relaxed) &&
             !job.failed.load(std::memory_order_relaxed);
    };
    if (sharded_rows) {
      session_hooks.on_shard_row = [&job, &emit_estimating](
                                       std::size_t chunk, const Progress& p) {
        emit_estimating();
        JobEvent ev;
        ev.kind = JobEvent::Kind::kRowDone;
        ev.shard = chunk;
        ev.progress = p;
        job.emit(ev);
        return !job.cancel.load(std::memory_order_relaxed) &&
               !job.failed.load(std::memory_order_relaxed);
      };
    }

    result = session->run(shard_request, session_hooks);
    result.elaborate.ms = elaborate_ms;
    // Parse + elaborate never ran on a hit — the warm half of the
    // contract `covest_serve_test` asserts (`verify.passes == 0` is the
    // session's verified-suite half).
    if (cache_hit) result.elaborate.passes = 0;
    result.total_ms = ms_since(t0);

    if (leasable) {
      // Parked sessions are re-leased by arbitrary workers: no live
      // handle may escape this result to a consumer thread, where its
      // destruction would race the next lease. Rows stay exact — only
      // the composable `covered` handle is dropped (the cache-enabled
      // contract documented on ExecutorOptions::session_cache).
      for (SignalRow& row : result.signals) row.covered = bdd::Bdd();
    } else {
      std::lock_guard<std::mutex> lock(job.mu);
      job.sessions.push_back(std::move(session));
    }
  } catch (const covest::DeadlineExceeded& e) {
    // Expired before Session::run could convert it (parse/elaborate
    // boundaries above; inside the run the session returns the status
    // as data). A structured status, not an error — so no `failed`
    // fail-fast: replicated siblings share the job governor and expire
    // at their own next tick.
    result = SuiteResult{};
    result.status = ResultStatus::kDeadlineExceeded;
    result.status_detail = std::string(stage) + ": " + e.what();
    result.total_ms = ms_since(t0);
  } catch (const covest::ResourceExhausted& e) {
    result = SuiteResult{};
    result.status = ResultStatus::kResourceExhausted;
    result.status_detail = std::string(stage) + ": " + e.what();
    result.elaborate.live_nodes = e.live_nodes();
    result.elaborate.node_budget = e.budget();
    result.total_ms = ms_since(t0);
  } catch (const std::exception& e) {
    result.error = e.what();
    result.status = ResultStatus::kError;
    result.total_ms = ms_since(t0);
    job.failed.store(true, std::memory_order_relaxed);
  } catch (...) {
    result.error = "unknown error in coverage worker";
    result.status = ResultStatus::kError;
    result.total_ms = ms_since(t0);
    job.failed.store(true, std::memory_order_relaxed);
  }
  return result;
}

/// Merges the per-shard results (called under job.mu once every shard is
/// done). Shard 0 carries the suite-level fields; rows concatenate in
/// shard order, which is request order by construction.
SuiteResult merge_shards(JobState& job) {
  SuiteResult merged = std::move(job.shard_results[0]);
  for (std::size_t s = 1; s < job.shard_results.size(); ++s) {
    SuiteResult& r = job.shard_results[s];
    for (SignalRow& row : r.signals) merged.signals.push_back(std::move(row));
    if (merged.error.empty() && !r.error.empty()) merged.error = r.error;
    merged.cancelled = merged.cancelled || r.cancelled;
    // First non-ok status wins (shard order == request order), matching
    // the sharded error rule below and the in-session "first shard's
    // defect wins" rule.
    if (merged.status == ResultStatus::kOk &&
        r.status != ResultStatus::kOk) {
      merged.status = r.status;
      merged.status_detail = std::move(r.status_detail);
    }
    merged.total_ms = std::max(merged.total_ms, r.total_ms);
    // Report the CPU actually spent: every replicated shard elaborates
    // and re-verifies the whole suite, so phase times — and the `passes`
    // counters, the observable "verification ran K times" record — sum
    // across shards (node counts stay shard 0's; pools are per-manager
    // and do not add up meaningfully). Shared-manager jobs never get
    // here with more than one result: their single session verified
    // once and reports passes == 1.
    merged.elaborate.ms += r.elaborate.ms;
    merged.verify.ms += r.verify.ms;
    merged.estimate.ms += r.estimate.ms;
    merged.elaborate.passes += r.elaborate.passes;
    merged.verify.passes += r.verify.passes;
    merged.estimate.passes += r.estimate.passes;
  }
  if (!merged.error.empty()) {
    // Error-only, exactly like the serial path (which fails before
    // producing any rows): partial rows from sibling shards that
    // finished before the error propagated are dropped, and the abort
    // of those siblings must not read as a user cancellation.
    SuiteResult error_only;
    error_only.error = std::move(merged.error);
    error_only.status = ResultStatus::kError;
    error_only.total_ms = merged.total_ms;
    return error_only;
  }
  // One retain for all shard managers: the merged rows' covered handles
  // span several managers, each owned by one of these sessions.
  merged.retain =
      std::make_shared<std::vector<std::shared_ptr<Session>>>(job.sessions);
  return merged;
}

}  // namespace

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

std::uint64_t JobHandle::id() const { return state_ ? state_->id : 0; }

bool JobHandle::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

void JobHandle::wait() const {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->ready; });
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [this] { return state_->ready; });
}

void JobHandle::cancel() const {
  if (state_) state_->cancel.store(true, std::memory_order_relaxed);
}

SuiteResult JobHandle::take() const {
  if (!state_) throw std::runtime_error("JobHandle::take on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->ready; });
  if (state_->taken) {
    throw std::runtime_error("JobHandle::take: result already taken");
  }
  state_->taken = true;
  // Hand the symbolic state over to the consuming thread: the workers
  // are done with these managers, and the caller may keep composing with
  // the result's covered-set handles.
  for (const std::shared_ptr<Session>& s : state_->sessions) {
    s->fsm().mgr().rebind_to_current_thread();
  }
  SuiteResult result = std::move(state_->result);
  // Session lifetime now rides on the result's `retain` alone: a live
  // JobHandle must not pin a finished job's BDD managers, or a batch
  // that holds its handles keeps every node pool resident at once.
  state_->sessions.clear();
  state_->shard_results.clear();
  return result;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct Executor::Impl {
  struct Task {
    std::shared_ptr<JobState> job;
    std::size_t shard = 0;
  };

  std::mutex mu;
  std::condition_variable cv;
  /// Signalled by workers when they pop a task; blocked (kBlock-policy)
  /// submitters wait on it for queue room.
  std::condition_variable space_cv;
  std::deque<Task> queue;
  bool stopping = false;
  /// Maintenance window: while set, workers stop popping tasks; the
  /// maintainer waits on `idle_cv` for `active_tasks` to hit zero and
  /// then owns every parked session (no leases are in flight).
  bool maintenance = false;
  std::size_t active_tasks = 0;
  std::condition_variable idle_cv;
  /// Immutable after construction (read without `mu`).
  std::size_t max_queue_depth = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  std::uint64_t next_job_id = 1;
  /// Every live submitted job (weak: dead once taken and dropped);
  /// cancel_all walks it, submit prunes expired entries amortized.
  std::vector<std::weak_ptr<JobState>> jobs;
  std::size_t next_prune = 64;
  JobEventFn on_event;
  /// Warm model cache; nullptr when disabled. Held here so it outlives
  /// every job (the destructor drains workers before Impl dies).
  std::shared_ptr<SessionCache> session_cache;
};

Executor::Executor(ExecutorOptions options) : impl_(new Impl) {
  impl_->on_event = std::move(options.on_event);
  impl_->max_queue_depth = options.max_queue_depth;
  impl_->admission = options.admission;
  impl_->session_cache = std::move(options.session_cache);
  std::size_t n = options.workers;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::Executor(std::size_t workers)
    : Executor([workers] {
        ExecutorOptions options;
        options.workers = workers;
        return options;
      }()) {}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::worker_loop() {
  for (;;) {
    Impl::Task task;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait(lock, [this] {
        return impl_->stopping ||
               (!impl_->queue.empty() && !impl_->maintenance);
      });
      // Drain semantics: accepted work still runs during shutdown.
      if (impl_->queue.empty()) return;
      task = std::move(impl_->queue.front());
      impl_->queue.pop_front();
      ++impl_->active_tasks;
    }
    impl_->space_cv.notify_all();  // A bounded queue just gained room.

    JobState& job = *task.job;
    SuiteResult shard_result = run_shard(job, task.shard);
    {
      // The lease (if any) was returned inside run_shard; a waiting
      // maintenance window may proceed once the last task lands here.
      std::lock_guard<std::mutex> lock(impl_->mu);
      --impl_->active_tasks;
    }
    impl_->idle_cv.notify_all();

    bool finished = false;
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.shard_results[task.shard] = std::move(shard_result);
      if (++job.shards_done == job.shard_count) {
        job.result = merge_shards(job);
        finished = true;
      }
    }
    if (finished) {
      // kFinished fires before the result becomes takeable, so the
      // event stream is complete once a waiter unblocks.
      JobEvent ev;
      ev.kind = JobEvent::Kind::kFinished;
      ev.cancelled = job.result.cancelled;
      ev.error = job.result.error;
      ev.status = job.result.status;
      job.emit(ev);
      {
        std::lock_guard<std::mutex> lock(job.mu);
        job.ready = true;
      }
      job.cv.notify_all();
    }
  }
}

JobHandle Executor::submit(CoverageRequest request, JobHooks hooks) {
  auto state = std::make_shared<JobState>();
  state->request = std::move(request);
  state->hooks = std::move(hooks);
  state->executor_event = impl_->on_event;
  state->cache = impl_->session_cache.get();
  // A shared-manager sharded job is ONE task: the session spawns its own
  // estimator threads after verifying once (`effective_shards` bounds
  // them by the row count, so an absurd request cannot spawn unbounded
  // threads). Replicated sharding still multiplies tasks and is clamped
  // to the pool width — extra replicas could not run concurrently and
  // would only multiply the re-verification cost.
  state->shard_count =
      state->request.shard_mode == ShardMode::kReplicated
          ? std::clamp<std::size_t>(state->request.shards, 1, threads_.size())
          : 1;
  state->event_shards = state->shard_count;
  state->shard_results.resize(state->shard_count);
  // The deadline clock starts now: queue wait counts, as a server's
  // admission-to-response budget would.
  state->governor =
      std::make_shared<covest::RunGovernor>(state->request.deadline_ms);

  const bool injected_reject = covest::FaultInjector::should_fail(
      covest::FaultInjector::Site::kAdmission);
  bool reject = injected_reject;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    state->id = impl_->next_job_id++;
    // Amortized registry pruning: dead jobs (taken and dropped) leave
    // expired weak_ptrs behind; a long-lived executor must not grow.
    if (impl_->jobs.size() >= impl_->next_prune) {
      std::erase_if(impl_->jobs,
                    [](const std::weak_ptr<JobState>& w) { return w.expired(); });
      impl_->next_prune = std::max<std::size_t>(64, impl_->jobs.size() * 2);
    }
    impl_->jobs.push_back(state);
    if (!reject && impl_->max_queue_depth != 0 &&
        impl_->admission == AdmissionPolicy::kReject &&
        impl_->queue.size() + state->shard_count > impl_->max_queue_depth) {
      reject = true;
    }
  }
  if (reject) {
    // Refused at admission: the job never reaches a worker, so its
    // event stream is a single kFinished (kQueued would be a lie — the
    // rejected-job stream shape is documented on AdmissionPolicy).
    state->result.status = ResultStatus::kAdmissionRejected;
    state->result.status_detail =
        injected_reject
            ? "admission rejected (fault injection)"
            : "executor queue full (max_queue_depth=" +
                  std::to_string(impl_->max_queue_depth) + ")";
    JobEvent finished;
    finished.kind = JobEvent::Kind::kFinished;
    finished.status = state->result.status;
    state->emit(finished);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->ready = true;
    }
    state->cv.notify_all();
    return JobHandle(state);
  }
  // kQueued fires before the tasks become visible to workers, so a
  // job's event stream always starts with it.
  JobEvent queued;
  queued.kind = JobEvent::Kind::kQueued;
  state->emit(queued);
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (impl_->max_queue_depth != 0 &&
        impl_->admission == AdmissionPolicy::kBlock) {
      // Backpressure: hold the submitter until the queue has room. An
      // empty queue always admits (a job wider than the whole bound
      // must not deadlock), and shutdown releases the wait — accepted
      // work still runs under the destructor's drain semantics.
      impl_->space_cv.wait(lock, [this, &state] {
        return impl_->stopping || impl_->queue.empty() ||
               impl_->queue.size() + state->shard_count <=
                   impl_->max_queue_depth;
      });
    }
    for (std::size_t s = 0; s < state->shard_count; ++s) {
      impl_->queue.push_back(Impl::Task{state, s});
    }
  }
  impl_->cv.notify_all();
  return JobHandle(state);
}

std::size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queue.size();
}

std::vector<SuiteResult> Executor::run_all(
    std::vector<CoverageRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (CoverageRequest& r : requests) handles.push_back(submit(std::move(r)));
  std::vector<SuiteResult> results;
  results.reserve(handles.size());
  for (const JobHandle& h : handles) results.push_back(h.take());
  return results;
}

std::size_t Executor::cancel_all() {
  std::vector<std::weak_ptr<JobState>> jobs;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    jobs = impl_->jobs;
  }
  std::size_t reached = 0;
  for (const std::weak_ptr<JobState>& w : jobs) {
    if (const std::shared_ptr<JobState> job = w.lock()) {
      std::unique_lock<std::mutex> lock(job->mu);
      if (!job->ready) {
        job->cancel.store(true, std::memory_order_relaxed);
        ++reached;
      }
    }
  }
  return reached;
}

MaintenanceStats Executor::maintenance(bool sift) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->maintenance = true;
  // Drain: workers stop popping once the flag is up; wait for the tasks
  // already in flight to return their leases.
  impl_->idle_cv.wait(lock, [this] { return impl_->active_tasks == 0; });
  MaintenanceStats stats;
  if (impl_->session_cache) {
    // Holding `mu` for the pass is the point: submitters and workers
    // stay parked, so every cached session is reachable and quiescent.
    stats = impl_->session_cache->maintain(sift);
  }
  impl_->maintenance = false;
  lock.unlock();
  impl_->cv.notify_all();
  return stats;
}

}  // namespace covest::engine
