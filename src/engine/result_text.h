// Human-readable rendering of `SuiteResult` — the classic coverage_tool
// report (PASS/FAIL lines, the per-signal coverage table, uncovered
// samples and hole traces), produced from the same structured result the
// JSON serializer consumes.
#pragma once

#include <string>

#include "engine/engine.h"

namespace covest::engine {

struct TextOptions {
  /// Mention --skip-failing in the failure footer (CLI sets this; API
  /// callers usually don't want CLI flag hints in their output).
  bool cli_hints = false;
};

/// Renders the full suite report as a multi-line string.
std::string render_text(const SuiteResult& result,
                        const TextOptions& options = {});

}  // namespace covest::engine
