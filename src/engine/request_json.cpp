#include "engine/request_json.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ctl/ctl.h"
#include "engine/json.h"
#include "image/image.h"

namespace covest::engine {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

/// Tiny struct-shaped writer: the request schema is flat enough that a
/// purpose-built emitter is clearer than a generic one.
class RequestWriter {
 public:
  explicit RequestWriter(bool pretty) : pretty_(pretty) {}

  void field_string(const char* key, const std::string& value) {
    begin_field(key);
    json::write_escaped(os_, value);
  }
  void field_bool(const char* key, bool value) {
    begin_field(key);
    os_ << (value ? "true" : "false");
  }
  void field_count(const char* key, std::size_t value) {
    begin_field(key);
    os_ << value;
  }
  void field_raw(const char* key, const std::string& rendered) {
    begin_field(key);
    os_ << rendered;
  }

  std::string finish() {
    os_ << (pretty_ ? "\n}" : "}");
    os_ << '\n';
    return os_.str();
  }

 private:
  void begin_field(const char* key) {
    os_ << (first_ ? "{" : ",");
    first_ = false;
    if (pretty_) os_ << "\n  ";
    json::write_escaped(os_, key);
    os_ << (pretty_ ? ": " : ":");
  }

  std::ostringstream os_;
  bool pretty_;
  bool first_ = true;
};

std::string render_string_array(const std::vector<std::string>& items) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ',';
    json::write_escaped(os, items[i]);
  }
  os << ']';
  return os.str();
}

std::string render_properties(const std::vector<PropertySpec>& props,
                              bool pretty) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < props.size(); ++i) {
    const PropertySpec& p = props[i];
    if (i != 0) os << ',';
    if (pretty) os << "\n    ";
    os << '{';
    os << "\"ctl\":";
    if (pretty) os << ' ';
    // A programmatic formula serializes through its canonical rendering;
    // explicit text wins so round-trips preserve the author's form.
    json::write_escaped(
        os, !p.ctl_text.empty()
                ? p.ctl_text
                : (p.formula.valid() ? ctl::to_string(p.formula)
                                     : std::string()));
    os << ",\"observe\":";
    if (pretty) os << ' ';
    os << render_string_array(p.observe);
    if (!p.comment.empty()) {
      os << ",\"comment\":";
      if (pretty) os << ' ';
      json::write_escaped(os, p.comment);
    }
    os << '}';
  }
  if (pretty && !props.empty()) os << "\n  ";
  os << ']';
  return os.str();
}

}  // namespace

std::string to_json(const CoverageRequest& request,
                    const JsonOptions& options) {
  if (request.model.has_value()) {
    throw std::invalid_argument(
        "CoverageRequest with an in-memory model cannot be serialized; use "
        "model_source or model_path");
  }
  RequestWriter w(options.pretty);
  if (!request.model_path.empty()) {
    w.field_string("model_path", request.model_path);
  }
  if (!request.model_source.empty()) {
    w.field_string("model", request.model_source);
  }
  w.field_raw("properties", render_properties(request.properties,
                                              options.pretty));
  w.field_raw("signals", render_string_array(request.signals));
  {
    std::ostringstream os;
    os << "{\"restrict_to_fair\":";
    if (options.pretty) os << ' ';
    os << (request.options.restrict_to_fair ? "true" : "false");
    os << ",\"exclude_dontcares\":";
    if (options.pretty) os << ' ';
    os << (request.options.exclude_dontcares ? "true" : "false");
    os << '}';
    w.field_raw("options", os.str());
  }
  w.field_bool("skip_failing", request.skip_failing);
  w.field_count("uncovered_limit", request.uncovered_limit);
  w.field_bool("want_traces", request.want_traces);
  w.field_count("shards", request.shards);
  w.field_string("shard_mode",
                 request.shard_mode == ShardMode::kReplicated
                     ? "replicated"
                     : "shared_manager");
  w.field_string("table_mode",
                 request.table_mode == bdd::TableMode::kStriped ? "striped"
                                                                : "lockfree");
  w.field_string("image_strategy",
                 image::to_string(request.options.image_strategy));
  // Omitted when 0 (= serial, the default), so pre-parallel documents
  // and their goldens stay byte-identical.
  if (request.options.parallel_apply != 0) {
    w.field_count("parallel_apply", request.options.parallel_apply);
  }
  // Governance limits are omitted when unset, so pre-governance
  // documents (and their goldens) stay byte-identical.
  if (request.deadline_ms != 0) {
    w.field_count("deadline_ms",
                  static_cast<std::size_t>(request.deadline_ms));
  }
  if (request.max_live_nodes != 0) {
    w.field_count("max_live_nodes", request.max_live_nodes);
  }
  return w.finish();
}

// ---------------------------------------------------------------------------
// Parser: schema mapping over the shared JSON DOM (engine/json.h).
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void schema_fail(const std::string& what) {
  throw std::runtime_error("request JSON: " + what);
}

/// RFC 8259 leaves duplicate member names to the implementation; here a
/// duplicate means the document describes two different jobs at once, so
/// it is rejected rather than silently last-wins.
class DuplicateKeyGuard {
 public:
  void check(const std::string& key, const char* where) {
    if (!seen_.insert(key).second) {
      schema_fail("duplicate key '" + key + "'" + where);
    }
  }

 private:
  std::set<std::string> seen_;
};

const char* type_name(json::Value::Type t) {
  switch (t) {
    case json::Value::Type::kNull: return "null";
    case json::Value::Type::kBool: return "bool";
    case json::Value::Type::kNumber: return "number";
    case json::Value::Type::kString: return "string";
    case json::Value::Type::kArray: return "array";
    case json::Value::Type::kObject: return "object";
  }
  return "?";
}

const std::string& as_string(const json::Value& v, const char* key) {
  if (v.type != json::Value::Type::kString) {
    schema_fail(std::string("'") + key + "' must be a string, got " +
                type_name(v.type));
  }
  return v.string;
}

bool as_bool(const json::Value& v, const char* key) {
  if (v.type != json::Value::Type::kBool) {
    schema_fail(std::string("'") + key + "' must be a boolean, got " +
                type_name(v.type));
  }
  return v.boolean;
}

std::size_t as_count(const json::Value& v, const char* key) {
  if (v.type != json::Value::Type::kNumber || v.number < 0.0 ||
      v.number != std::floor(v.number) || v.number > 1e15) {
    schema_fail(std::string("'") + key +
                "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v.number);
}

std::vector<std::string> as_string_array(const json::Value& v,
                                         const char* key) {
  if (v.type != json::Value::Type::kArray) {
    schema_fail(std::string("'") + key + "' must be an array, got " +
                type_name(v.type));
  }
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const json::Value& e : v.array) out.push_back(as_string(e, key));
  return out;
}

PropertySpec parse_property(const json::Value& v) {
  if (v.type != json::Value::Type::kObject) {
    schema_fail("'properties' entries must be objects");
  }
  PropertySpec spec;
  bool have_ctl = false;
  DuplicateKeyGuard dup;
  for (const auto& [key, value] : v.object) {
    dup.check(key, " in a property");
    if (key == "ctl") {
      spec.ctl_text = as_string(value, "ctl");
      have_ctl = true;
    } else if (key == "observe") {
      spec.observe = as_string_array(value, "observe");
    } else if (key == "comment") {
      spec.comment = as_string(value, "comment");
    } else {
      schema_fail("unknown key '" + key + "' in a property");
    }
  }
  if (!have_ctl) schema_fail("a property needs a 'ctl' formula");
  return spec;
}

core::CoverageOptions parse_options(const json::Value& v) {
  if (v.type != json::Value::Type::kObject) {
    schema_fail("'options' must be an object");
  }
  core::CoverageOptions options;
  DuplicateKeyGuard dup;
  for (const auto& [key, value] : v.object) {
    dup.check(key, " in 'options'");
    if (key == "restrict_to_fair") {
      options.restrict_to_fair = as_bool(value, "restrict_to_fair");
    } else if (key == "exclude_dontcares") {
      options.exclude_dontcares = as_bool(value, "exclude_dontcares");
    } else {
      schema_fail("unknown key '" + key + "' in 'options'");
    }
  }
  return options;
}

}  // namespace

CoverageRequest request_from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  if (root.type != json::Value::Type::kObject) {
    schema_fail("a request must be a JSON object");
  }
  CoverageRequest request;
  DuplicateKeyGuard dup;
  for (const auto& [key, value] : root.object) {
    dup.check(key, "");
    if (key == "model_path") {
      request.model_path = as_string(value, "model_path");
    } else if (key == "model") {
      request.model_source = as_string(value, "model");
    } else if (key == "properties") {
      if (value.type != json::Value::Type::kArray) {
        schema_fail("'properties' must be an array");
      }
      for (const json::Value& e : value.array) {
        request.properties.push_back(parse_property(e));
      }
    } else if (key == "signals") {
      request.signals = as_string_array(value, "signals");
    } else if (key == "options") {
      request.options = parse_options(value);
    } else if (key == "skip_failing") {
      request.skip_failing = as_bool(value, "skip_failing");
    } else if (key == "uncovered_limit") {
      request.uncovered_limit = as_count(value, "uncovered_limit");
    } else if (key == "want_traces") {
      request.want_traces = as_bool(value, "want_traces");
    } else if (key == "shards") {
      request.shards = as_count(value, "shards");
      if (request.shards == 0) schema_fail("'shards' must be >= 1");
    } else if (key == "shard_mode") {
      const std::string& mode = as_string(value, "shard_mode");
      if (mode == "shared_manager") {
        request.shard_mode = ShardMode::kSharedManager;
      } else if (mode == "replicated") {
        request.shard_mode = ShardMode::kReplicated;
      } else {
        schema_fail("'shard_mode' must be 'shared_manager' or 'replicated'");
      }
    } else if (key == "deadline_ms") {
      request.deadline_ms = as_count(value, "deadline_ms");
      if (request.deadline_ms == 0) schema_fail("'deadline_ms' must be >= 1");
    } else if (key == "max_live_nodes") {
      request.max_live_nodes = as_count(value, "max_live_nodes");
      if (request.max_live_nodes == 0) {
        schema_fail("'max_live_nodes' must be >= 1");
      }
    } else if (key == "table_mode") {
      const std::string& mode = as_string(value, "table_mode");
      if (mode == "lockfree") {
        request.table_mode = bdd::TableMode::kLockFree;
      } else if (mode == "striped") {
        request.table_mode = bdd::TableMode::kStriped;
      } else {
        schema_fail("'table_mode' must be 'lockfree' or 'striped'");
      }
    } else if (key == "image_strategy") {
      const std::string& strategy = as_string(value, "image_strategy");
      if (!image::image_strategy_from_string(
              strategy, &request.options.image_strategy)) {
        schema_fail(
            "'image_strategy' must be 'monolithic', 'partitioned' or "
            "'chaining'");
      }
    } else if (key == "parallel_apply") {
      request.options.parallel_apply = as_count(value, "parallel_apply");
      if (request.options.parallel_apply == 0) {
        schema_fail("'parallel_apply' must be >= 1 (omit for serial)");
      }
    } else {
      schema_fail("unknown key '" + key + "'");
    }
  }
  return request;
}

bool parse_request(const std::string& text, CoverageRequest* out,
                   std::string* error) {
  try {
    *out = request_from_json(text);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace covest::engine
