// JSON serialization of `CoverageRequest` — the missing half of the
// request/result round-trip. Results have serialized since the facade
// landed (result_json.h); this header lets requests travel the same
// way, so a suite job can be described in a file, shipped over a queue,
// and fanned out by the executor (`covest_batch` reads NDJSON requests
// built from exactly this schema).
//
// Canonical schema (writer field order; all fields optional on input):
//
//   {
//     "model_path": "examples/models/counter.cov",
//     "model": "MODULE m; VAR x : bool; ...",   // inline .cov source
//     "properties": [
//       {"ctl": "AG (x)", "observe": ["x"], "comment": "..."}
//     ],
//     "signals": ["x"],
//     "options": {"restrict_to_fair": true, "exclude_dontcares": true},
//     "skip_failing": false,
//     "uncovered_limit": 4,
//     "want_traces": false,
//     "shards": 1,
//     "shard_mode": "shared_manager",   // or "replicated"
//     "table_mode": "lockfree",         // or "striped" (shared-manager
//                                       //     synchronization choice)
//     "deadline_ms": 500,               // wall-clock budget (>= 1);
//                                       //     omitted when unlimited
//     "max_live_nodes": 100000          // BDD node budget (>= 1);
//   }                                   //     omitted when unlimited
//
// The writer emits the canonical form: fixed field order, every policy
// field present, empty model sources omitted. Parsing a canonical
// document and re-serializing it is byte-identical (the golden-file
// contract). The parser accepts any field order, rejects unknown keys
// and type mismatches with positional messages, and never accepts
// values the execution layer would misinterpret (negative or fractional
// counts, shards = 0).
#pragma once

#include <string>

#include "engine/engine.h"
#include "engine/result_json.h"  // JsonOptions

namespace covest::engine {

/// Serializes a request in canonical form. `options.pretty = false`
/// yields one NDJSON-ready line (single trailing newline, none inside).
/// A request carrying an in-memory `model` cannot be serialized (there
/// is no source text to write) — that throws std::invalid_argument.
std::string to_json(const CoverageRequest& request,
                    const JsonOptions& options = {});

/// Parses a request document. Throws std::runtime_error with a byte
/// offset on malformed JSON, unknown keys or type mismatches.
CoverageRequest request_from_json(const std::string& text);

/// Non-throwing wrapper: returns false and fills `error` instead.
bool parse_request(const std::string& text, CoverageRequest* out,
                   std::string* error);

}  // namespace covest::engine
