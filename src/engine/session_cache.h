// The warm model cache — the cross-request half of the server's
// parse/elaborate/verify reuse (Session::run's verified-suite record is
// the per-suite half).
//
// A `SessionCache` parks elaborated `Session`s between jobs, keyed by
// the *raw model source bytes* plus everything that shapes elaboration:
// the `core::CoverageOptions` policy bits and the manager's node
// budget. A 64-bit structural hash accelerates the scan, but a hit
// requires the exact inputs to match — a hash collision misses instead
// of serving the wrong model. A repeat request whose source matches a
// parked session skips parse and elaborate entirely; if its suite also
// matches the session's verified-suite record, verification is skipped
// too and the whole request reduces to (cached) estimation. Keying on
// the bytes — not the path — means an edited model file misses
// naturally and a moved-but-identical file still hits.
//
// Leases, not shared access. A `BddManager` is thread-affine, so a
// parked session can never be used by two jobs at once: `acquire`
// *removes* the entry and hands the caller exclusive ownership;
// `release` rebinds nothing (the caller's thread already owns the
// manager) and re-inserts. Two concurrent requests for the same key
// simply miss on the second — it elaborates its own session, and on
// release the younger duplicate is discarded. The executor strips the
// live `covered` BDD handles from a leased job's rows before release,
// so nothing a consumer thread destroys can race the next lease's
// worker (see executor.cpp).
//
// Capacity is a hard entry cap with oldest-release-first eviction; an
// evicted or superseded session is destroyed on the calling thread
// (its manager is rebound here first — destruction is single-threaded
// by the cache mutex's happens-before).
//
// Thread safety: every member is safe to call from any thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/coverage.h"

namespace covest::engine {

class Session;

/// A cache key: the 64-bit structural hash for fast scanning plus the
/// exact inputs it was derived from. Lookups compare the hash first and
/// then the exact fields — a `std::hash` collision between two different
/// model sources must miss, never serve the wrong elaborated model.
/// `hash` is writable as a test seam (force two keys onto one value).
struct SessionKey {
  std::uint64_t hash = 0;
  std::string source;
  core::CoverageOptions options;
  std::size_t max_live_nodes = 0;

  /// Exact equality: hash AND every elaboration-shaping input.
  bool matches(const SessionKey& other) const;
};

/// What one `maintain` pass did, summed over the parked sessions.
struct MaintenanceStats {
  std::size_t sessions = 0;          ///< Parked sessions visited.
  std::size_t live_nodes_before = 0;  ///< As recorded at release time.
  std::size_t live_nodes_after = 0;   ///< Re-measured after GC (+sift).
};

/// Point-in-time counters of a `SessionCache`. Hits + misses equal the
/// `acquire` calls. Every `release` either parks its session
/// (`insertions`, bumping `evictions` too when the oldest entry was
/// displaced to make room) or drops it as a duplicate (`discards`), so
/// insertions + discards equal the `release` calls. `live_nodes` sums
/// the parked sessions' BDD node counts as recorded at release time —
/// the server's cache-occupancy metric.
struct SessionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t discards = 0;
  std::size_t entries = 0;
  std::size_t live_nodes = 0;
};

class SessionCache {
 public:
  /// `capacity` = max parked sessions (at least 1).
  explicit SessionCache(std::size_t capacity = 8);
  ~SessionCache();

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// The cache key of a request: the raw model source bytes plus the
  /// elaboration-shaping knobs, with the structural hash precomputed.
  /// Two requests with matching keys elaborate byte-identical sessions.
  static SessionKey key_of(std::string source,
                           const core::CoverageOptions& options,
                           std::size_t max_live_nodes);

  /// Takes the parked session matching `key` (hash and exact inputs)
  /// out of the cache (exclusive lease), or returns nullptr on a miss.
  /// The session's manager is rebound to the calling thread before it
  /// is returned.
  std::shared_ptr<Session> acquire(const SessionKey& key);

  /// Parks `session` under `key`. `live_nodes` is the manager's node
  /// count as measured by the releasing (owning) thread — the cache
  /// must not touch a parked manager, so occupancy is recorded here.
  /// A duplicate key discards `session`; a full cache evicts its
  /// oldest-released entry.
  void release(const SessionKey& key, std::shared_ptr<Session> session,
               std::size_t live_nodes);

  /// Runs a full exclusive GC (and, when `sift` is set, a variable
  /// reorder) on every parked session, rebinding each manager to the
  /// calling thread. The caller must guarantee no concurrent
  /// acquire/release holds a lease it intends to return mid-pass — the
  /// executor's maintenance window drains in-flight jobs first. Parked
  /// sessions are in exclusive mode (shared epochs never outlive a
  /// run), so plain `gc()`/`reorder_sift()` apply. Sifting preserves
  /// node slots and live handles (see bdd_reorder.cpp) but changes the
  /// variable order — and with it witness/trace bytes — so byte-stable
  /// servers keep it off.
  MaintenanceStats maintain(bool sift);

  /// Destroys every parked session (on the calling thread).
  void clear();

  std::size_t capacity() const { return capacity_; }
  SessionCacheStats stats() const;

 private:
  struct Entry {
    SessionKey key;
    std::shared_ptr<Session> session;
    std::size_t live_nodes = 0;
  };

  struct State;
  const std::size_t capacity_;
  std::unique_ptr<State> state_;
};

}  // namespace covest::engine
