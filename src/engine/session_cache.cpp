#include "engine/session_cache.h"

#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>

#include "engine/engine.h"

namespace covest::engine {

/// Parked entries in release order (front = oldest, the eviction
/// victim). The deque stays tiny (== capacity), so linear scans beat
/// any index structure.
struct SessionCache::State {
  mutable std::mutex mu;
  std::deque<Entry> entries;
  SessionCacheStats stats;
};

namespace {

/// Rebinds the session's manager to this thread and drops the handle —
/// destruction of a thread-affine manager must happen on a thread that
/// owns it (the cache mutex serializes, so the rebind itself is safe).
void destroy_here(std::shared_ptr<Session>&& session) {
  session->fsm().mgr().rebind_to_current_thread();
  session.reset();
}

}  // namespace

bool SessionKey::matches(const SessionKey& other) const {
  // Hash first: it almost always decides, and the exact compare after
  // it is what turns a collision into a miss instead of a wrong model.
  return hash == other.hash && max_live_nodes == other.max_live_nodes &&
         options.restrict_to_fair == other.options.restrict_to_fair &&
         options.exclude_dontcares == other.options.exclude_dontcares &&
         options.require_holds == other.options.require_holds &&
         options.image_strategy == other.options.image_strategy &&
         options.parallel_apply == other.options.parallel_apply &&
         source == other.source;
}

SessionCache::SessionCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), state_(new State) {}

SessionCache::~SessionCache() { clear(); }

SessionKey SessionCache::key_of(std::string source,
                                const core::CoverageOptions& options,
                                std::size_t max_live_nodes) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::string>{}(source));
  mix(source.size());
  mix((options.restrict_to_fair ? 1u : 0u) |
      (options.exclude_dontcares ? 2u : 0u) |
      (options.require_holds ? 4u : 0u) |
      (static_cast<unsigned>(options.image_strategy) << 3));
  // Parallel-apply sessions keyed apart: a lease's epochs spawn worker
  // pools, and mixing the worker count keeps warm replays of a request
  // shape on a session with the same shape.
  mix(options.parallel_apply);
  mix(max_live_nodes);

  SessionKey key;
  key.hash = h;
  key.source = std::move(source);
  key.options = options;
  key.max_live_nodes = max_live_nodes;
  return key;
}

std::shared_ptr<Session> SessionCache::acquire(const SessionKey& key) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (auto it = state_->entries.begin(); it != state_->entries.end();
         ++it) {
      if (it->key.matches(key)) {
        session = std::move(it->session);
        state_->entries.erase(it);
        ++state_->stats.hits;
        break;
      }
    }
    if (!session) ++state_->stats.misses;
  }
  // The lease is exclusive from here on: hand the manager to the
  // calling (worker) thread outside the lock.
  if (session) session->fsm().mgr().rebind_to_current_thread();
  return session;
}

void SessionCache::release(const SessionKey& key,
                           std::shared_ptr<Session> session,
                           std::size_t live_nodes) {
  if (!session) return;
  std::shared_ptr<Session> doomed;  ///< Destroyed outside the lock.
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (const Entry& e : state_->entries) {
      if (e.key.matches(key)) {
        // A concurrent miss elaborated a duplicate; the incumbent (with
        // its warmer caches) wins and the younger copy is dropped.
        ++state_->stats.discards;
        doomed = std::move(session);
        break;
      }
    }
    if (!doomed) {
      if (state_->entries.size() >= capacity_) {
        doomed = std::move(state_->entries.front().session);
        state_->entries.pop_front();
        ++state_->stats.evictions;
      }
      state_->entries.push_back(Entry{key, std::move(session), live_nodes});
      ++state_->stats.insertions;
    }
  }
  if (doomed) destroy_here(std::move(doomed));
}

MaintenanceStats SessionCache::maintain(bool sift) {
  MaintenanceStats out;
  std::lock_guard<std::mutex> lock(state_->mu);
  for (Entry& e : state_->entries) {
    bdd::BddManager& mgr = e.session->fsm().mgr();
    // The mutex serializes with the releasing worker, so the rebind
    // observes the parked manager's final state.
    mgr.rebind_to_current_thread();
    out.live_nodes_before += e.live_nodes;
    mgr.gc();
    if (sift) mgr.reorder_sift();
    e.live_nodes = mgr.live_node_count();
    out.live_nodes_after += e.live_nodes;
    ++out.sessions;
  }
  return out;
}

void SessionCache::clear() {
  std::deque<Entry> drained;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    drained.swap(state_->entries);
  }
  for (Entry& e : drained) destroy_here(std::move(e.session));
}

SessionCacheStats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  SessionCacheStats s = state_->stats;
  s.entries = state_->entries.size();
  s.live_nodes = 0;
  for (const Entry& e : state_->entries) s.live_nodes += e.live_nodes;
  return s;
}

}  // namespace covest::engine
