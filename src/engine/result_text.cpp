#include "engine/result_text.h"

#include <cstdio>
#include <sstream>

namespace covest::engine {

namespace {

void indent_lines(std::ostringstream& os, const std::string& block,
                  const char* prefix) {
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) os << prefix << line << "\n";
}

}  // namespace

std::string render_text(const SuiteResult& r, const TextOptions& options) {
  std::ostringstream os;
  char buf[160];

  if (!r.error.empty()) {
    os << "error: " << r.error << "\n";
    return os.str();
  }

  std::snprintf(buf, sizeof buf, "model %s: %u state bits, %.0f reachable states\n",
                r.model_name.c_str(), r.state_bits, r.reachable_states);
  os << buf;

  for (const PropertyResult& p : r.properties) {
    os << "[" << (p.holds ? "PASS" : "FAIL") << "] " << p.ctl_text;
    if (!p.comment.empty()) os << "  -- " << p.comment;
    os << "\n";
    if (!p.holds && p.counterexample) {
      os << "  counterexample:\n";
      indent_lines(os, p.counterexample->text, "");
    }
  }
  bool any_skipped = false;
  for (const PropertyResult& p : r.properties) any_skipped |= p.skipped;
  if (any_skipped) {
    std::snprintf(buf, sizeof buf,
                  "\n%zu SPEC(s) failed; their coverage is skipped",
                  r.failures);
    os << buf;
    if (options.cli_hints) os << " (use --skip-failing to include the rest)";
    os << ".\n";
  }
  if (r.cancelled) {
    os << "\nrun cancelled; partial results follow.\n";
  }

  std::snprintf(buf, sizeof buf,
                "\ncoverage space: %.0f states "
                "(reachable, fair, excluding DONTCAREs)\n\n",
                r.space_count);
  os << buf;

  std::snprintf(buf, sizeof buf, "%-16s %6s %9s\n", "signal", "#prop", "%cov");
  os << buf;
  for (const SignalRow& s : r.signals) {
    std::snprintf(buf, sizeof buf, "%-16s %6zu %8.2f%%\n", s.name.c_str(),
                  s.num_properties, s.percent);
    os << buf;
    for (const std::string& hole : s.uncovered) {
      os << "    uncovered: " << hole << "\n";
    }
    if (s.trace) {
      os << "    trace:\n";
      indent_lines(os, s.trace->text, "");
    }
  }
  return os.str();
}

}  // namespace covest::engine
