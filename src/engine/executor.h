// Asynchronous multi-worker execution of coverage suites — the batch
// layer on top of the engine facade.
//
// The paper's workflow is many suites × many observed signals; this is
// the subsystem that serves it at scale. An `Executor` owns a pool of
// `std::thread` workers; each job builds its BDD state *locally*: one
// `BddManager`/FSM/`Session` constructed on the worker thread. Between
// jobs there is no shared mutable symbolic state — only the job queue
// and result slots are synchronized. *Within* a sharded job, the
// session's manager enters bdd.h shared mode for the estimation phase
// (below).
//
//   engine::Executor ex(engine::ExecutorOptions{4});
//   engine::JobHandle a = ex.submit(request_a);
//   engine::JobHandle b = ex.submit(request_b);
//   engine::SuiteResult ra = a.take();   // blocks; rebinds managers
//
// Deterministic ordering: `run_all` returns one result per request in
// submit order regardless of which worker finishes first, and every row
// of every result is bit-identical to the serial `Engine::run` path.
//
// Signal sharding: a request with `shards = K > 1` under the default
// `ShardMode::kSharedManager` stays ONE job on ONE worker — the model
// is parsed, elaborated and verified exactly once — and only the
// per-signal estimation rows fan out across `effective_shards`
// estimator threads sharing that session's BddManager. The legacy
// `ShardMode::kReplicated` instead splits the rows across up to K
// independent tasks that each re-verify on their own manager (kept as
// the benchmark baseline; `BENCH_engine.json` records both). Either
// way, chunks concatenate back in request order and completed runs are
// bit-identical to serial; a *cancelled* sharded run keeps each chunk's
// prefix, so the partial row list may have interior gaps (row order is
// still request order) — unlike the serial path, whose partial result
// is always one prefix. `SuiteResult` phase stats expose the
// difference: `verify.passes` is 1 for a shared-manager run and the
// number of elaborated shards for a replicated one.
//
// Errors: nothing a job does throws out of a worker. Model/CTL parse
// errors, unknown signals and missing model sources all surface as
// `SuiteResult::error` on that job's result.
//
// Events: per-job streaming events (queued / started / verifying /
// estimating / row-done / finished) are a superset of the facade's
// `RunHooks` progress ticks. Event callbacks run on worker threads
// (kQueued on the submitting thread); the callee synchronizes.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/session_cache.h"

namespace covest::engine {

namespace detail {
struct JobState;
}  // namespace detail

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One streaming event in a job's lifecycle. `kVerifying`, `kEstimating`
/// and `kRowDone` carry the underlying `Progress` tick.
struct JobEvent {
  enum class Kind {
    kQueued,      ///< Accepted by `submit` (fires on the submitting thread).
    kStarted,     ///< A worker began elaborating the job's first shard.
    kVerifying,   ///< One property checked (`progress` has index/total/ok).
    kEstimating,  ///< Verification done, coverage estimation begins.
    kRowDone,     ///< One signal row estimated (`progress` has percent).
    kFinished,    ///< Result ready; `cancelled`/`error` summarize it.
  };
  std::uint64_t job = 0;  ///< Monotonic per-executor job id (submit order).
  Kind kind = Kind::kQueued;
  std::size_t shard = 0;   ///< Shard (estimator chunk) that produced it.
  std::size_t shards = 1;  ///< Effective shards of this job (kQueued may
                           ///< still report 1: rows aren't resolved yet).
  Progress progress;       ///< Valid for kVerifying/kEstimating/kRowDone.
  bool cancelled = false;  ///< kFinished: the job was cancelled.
  std::string error;       ///< kFinished: the job's structured error.
  /// kFinished: the job's structured status (deadline/budget/admission
  /// outcomes included — `cancelled`/`error` above only mirror two of
  /// the six statuses).
  ResultStatus status = ResultStatus::kOk;
};

/// Called from worker threads (kQueued: from the submitting thread).
/// Fire-and-forget: exceptions thrown by the callback are swallowed —
/// an event tap can neither fail a job nor kill a worker.
using JobEventFn = std::function<void(const JobEvent&)>;

/// Per-job callbacks. `on_progress` follows the facade contract
/// (RunHooks): it receives shard 0's ticks in serial order and may
/// cancel the whole job by returning false. `on_event` receives every
/// shard's events.
struct JobHooks {
  ProgressFn on_progress;
  JobEventFn on_event;
};

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Future-like handle to a submitted job. Copyable; all copies refer to
/// the same job. The result can be taken exactly once.
class JobHandle {
 public:
  JobHandle() = default;

  /// True when the handle refers to a job (default-constructed ones don't).
  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;

  /// True once the result is ready (non-blocking).
  bool done() const;

  /// Blocks until the result is ready.
  void wait() const;

  /// Blocks up to `timeout` for the result. Returns true when the
  /// result became ready in time (false for empty handles too).
  bool wait_for(std::chrono::milliseconds timeout) const;

  /// Requests cancellation: a queued job finishes immediately with
  /// `cancelled` set; a running job stops after its current item and
  /// returns the partial result (the facade's cancellation semantics).
  void cancel() const;

  /// Blocks, then moves the result out (valid once per job). The BDD
  /// managers behind the result's live `covered` handles are rebound to
  /// the calling thread, so library callers may keep composing with them.
  SuiteResult take() const;

 private:
  friend class Executor;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// What `submit` does when a bounded task queue is full.
enum class AdmissionPolicy {
  /// Block the submitting thread until the queue has room — natural
  /// backpressure for producer loops. The default.
  kBlock,
  /// Refuse the job immediately: it finishes with
  /// `ResultStatus::kAdmissionRejected`, never reaches a worker, and
  /// its event stream is a single kFinished.
  kReject,
};

struct ExecutorOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t workers = 1;
  /// Executor-wide event tap, called in addition to each job's own
  /// `JobHooks::on_event`.
  JobEventFn on_event;
  /// Bounded admission: when nonzero, `submit` refuses to grow the task
  /// queue past this many queued tasks (replicated shards count
  /// individually). 0 = unbounded, the pre-governance behavior.
  std::size_t max_queue_depth = 0;
  /// Full-queue policy; only consulted when `max_queue_depth != 0`.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Warm model cache (session_cache.h), shared across jobs: a
  /// non-replicated job whose model comes as text (`model_source` or
  /// `model_path`) leases a parked session keyed by the source bytes +
  /// elaboration options instead of re-parsing/elaborating — and, when
  /// the suite matches the session's verified-suite record, skips
  /// verification too. Leased jobs return *detached* results: the live
  /// `covered` BDD handles are stripped before the session is parked
  /// (they would otherwise race the next lease), so library callers
  /// that compose with covered sets should not enable the cache.
  /// nullptr (the default) preserves the session-per-job behavior.
  std::shared_ptr<SessionCache> session_cache;
};

/// The worker pool. Destruction drains: it waits for every submitted
/// job to finish (call `cancel_all` first for a fast shutdown).
class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});
  explicit Executor(std::size_t workers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Tasks currently queued (not yet picked up by a worker) — the
  /// server's queue-depth metric. A racy snapshot by nature.
  std::size_t queue_depth() const;

  /// Enqueues one suite job. A sharded request under the default
  /// shared-manager mode stays one task (its session spawns the
  /// estimator threads); replicated sharding enqueues its shards,
  /// clamped to the worker count. Never throws for request defects —
  /// they come back as `SuiteResult::error` on the handle.
  ///
  /// Governance: a request's `deadline_ms` clock starts here, at
  /// submission — time spent waiting in the queue counts against the
  /// deadline, as a server's would. With a bounded queue
  /// (`ExecutorOptions::max_queue_depth`) a full queue either blocks
  /// this call (kBlock) or finishes the job immediately with
  /// `ResultStatus::kAdmissionRejected` (kReject).
  JobHandle submit(CoverageRequest request, JobHooks hooks = {});

  /// Convenience barrier: submits every request, waits, and returns the
  /// results in request order.
  std::vector<SuiteResult> run_all(std::vector<CoverageRequest> requests);

  /// Drain-all cancellation: cancels every job that has not finished
  /// (queued jobs complete as cancelled without running). Returns the
  /// number of jobs the cancellation reached.
  std::size_t cancel_all();

  /// Stop-the-world maintenance window: stops handing queued tasks to
  /// workers, waits for every in-flight task to finish, then runs a
  /// full exclusive GC (and, when `sift` is set, a variable reorder —
  /// which changes witness/trace bytes, so byte-stable servers keep it
  /// off) over every session parked in the warm cache, and resumes.
  /// Queued jobs are not lost — they run as soon as the window closes;
  /// submitters block for the duration. No-op counters when the
  /// executor has no session cache. One caller at a time.
  MaintenanceStats maintenance(bool sift = false);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> threads_;

  void worker_loop();
};

}  // namespace covest::engine
