// JSON serialization of `SuiteResult` — the machine-readable output of
// the engine facade (`coverage_tool --json`, the bench harness, CI
// smoke checks and the golden-file tests all consume this one layer).
//
// The writer is self-contained (no third-party JSON dependency) and
// emits a stable field order, so serialized results diff cleanly. A
// minimal validating parser is included for round-trip checks.
#pragma once

#include <string>

#include "engine/engine.h"

namespace covest::engine {

struct JsonOptions {
  /// Two-space indentation; compact single-line output when false.
  bool pretty = true;
  /// Include timing and BDD-manager statistics. Golden-file tests turn
  /// this off: everything else in a SuiteResult is deterministic.
  bool include_stats = true;
};

/// Serializes a suite result. Field order is fixed:
/// model / summary / properties / signals [/ stats].
std::string to_json(const SuiteResult& result, const JsonOptions& options = {});

/// Validates that `text` is one well-formed JSON value (RFC 8259
/// grammar; no extensions; strict on \u escapes — surrogate pairs must
/// pair up, lone surrogates are rejected). Returns true on success;
/// otherwise fills `error` (when non-null) with a message carrying the
/// byte offset.
bool validate_json(const std::string& text, std::string* error = nullptr);

}  // namespace covest::engine
