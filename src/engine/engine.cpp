#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <set>
#include <stdexcept>
#include <thread>

#include "ctl/ctl_parser.h"
#include "engine/executor.h"
#include "fsm/trace.h"
#include "model/model_parser.h"
#include "util/governance.h"
#include "util/time.h"

namespace covest::engine {

namespace {

using util::Clock;
using util::ms_since;

/// Renders a symbolic trace into the self-contained result form (values
/// in declaration order, so serializations are deterministic).
TraceResult make_trace_result(const fsm::SymbolicFsm& fsm,
                              const fsm::Trace& trace) {
  TraceResult out;
  out.steps.reserve(trace.steps.size());
  for (const fsm::TraceStep& step : trace.steps) {
    TraceResult::Step rendered;
    for (const fsm::SignalLayout& l : fsm.layouts()) {
      const auto it = step.values.find(l.name);
      if (it != step.values.end()) rendered.emplace_back(l.name, it->second);
    }
    out.steps.push_back(std::move(rendered));
  }
  out.text = trace.to_string(fsm);
  return out;
}

PhaseStats snapshot(bdd::BddManager& mgr, double ms) {
  const bdd::BddStats& st = mgr.stats();
  PhaseStats p;
  p.ms = ms;
  p.live_nodes = mgr.live_node_count();
  p.peak_live_nodes = st.peak_live_nodes;
  p.cache_hit_rate = st.cache_hit_rate();
  p.passes = 1;  // This session ran the phase once; merges may sum.
  p.node_budget = mgr.max_live_nodes();
  p.shared_gc_runs = st.shared_gc_runs;
  p.retired_nodes = st.retired_nodes;
  p.reclaimed_nodes = st.reclaimed_nodes;
  return p;
}

}  // namespace

const char* to_string(ResultStatus status) noexcept {
  switch (status) {
    case ResultStatus::kOk:
      return "ok";
    case ResultStatus::kCancelled:
      return "cancelled";
    case ResultStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ResultStatus::kResourceExhausted:
      return "resource_exhausted";
    case ResultStatus::kAdmissionRejected:
      return "admission_rejected";
    case ResultStatus::kError:
      return "error";
  }
  return "ok";  // Unreachable for in-range enums.
}

bool result_status_from_string(const std::string& text, ResultStatus* out) {
  for (const ResultStatus s :
       {ResultStatus::kOk, ResultStatus::kCancelled,
        ResultStatus::kDeadlineExceeded, ResultStatus::kResourceExhausted,
        ResultStatus::kAdmissionRejected, ResultStatus::kError}) {
    if (text == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::size_t effective_shards(std::size_t requested, std::size_t rows) {
  if (requested <= 1 || rows <= 1) return 1;
  return std::min({requested, rows, kMaxEstimatorThreads});
}

std::pair<std::size_t, std::size_t> shard_chunk_range(std::size_t total,
                                                      std::size_t shard,
                                                      std::size_t shards) {
  const std::size_t base = total / shards;
  const std::size_t rem = total % shards;
  const std::size_t first = shard * base + std::min(shard, rem);
  return {first, first + base + (shard < rem ? 1 : 0)};
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

namespace {

/// The suite runs are lenient by construction: failing properties are
/// policy (skip or include-with-empty-coverage), never an exception.
core::CoverageOptions lenient(core::CoverageOptions options) {
  options.require_holds = false;
  return options;
}

/// Opens a shared epoch with a work-stealing pool (bdd/parallel.h) for
/// one phase when the request asks for in-operation parallelism, and
/// registers the calling thread as its single client. The epoch must be
/// closed — `close()` explicitly, or destruction on the unwind path —
/// before any snapshot: `live_node_count` is exclusive-only. No-op when
/// `parallel_apply` is 0 or the manager is already shared (the sharded
/// fan-out passes its own ParallelConfig to begin_shared instead).
class ParallelPhase {
 public:
  ParallelPhase(bdd::BddManager& mgr, const CoverageRequest& request) {
    if (request.options.parallel_apply >= 1 && !mgr.in_shared_mode()) {
      bdd::ParallelConfig par;
      par.workers = request.options.parallel_apply;
      mgr.begin_shared(1, request.table_mode, par);
      mgr.register_shard_thread();
      mgr_ = &mgr;
    }
  }
  ~ParallelPhase() { close(); }
  ParallelPhase(const ParallelPhase&) = delete;
  ParallelPhase& operator=(const ParallelPhase&) = delete;

  void close() {
    if (mgr_ != nullptr) {
      mgr_->end_shared();
      mgr_ = nullptr;
    }
  }

 private:
  bdd::BddManager* mgr_ = nullptr;
};

/// The sharded fan-out's epoch configuration: estimator threads are the
/// clients; `parallel_apply` workers' worth of helpers steal from all
/// of them through one pool.
bdd::ParallelConfig parallel_config(const CoverageRequest& request) {
  bdd::ParallelConfig par;
  par.workers = request.options.parallel_apply;
  return par;
}

/// Structural hash of a resolved suite — the key of the session's
/// verified-suite record. Everything a cold verify phase bakes into its
/// artifacts participates: the raw CTL text (PropertyResult::ctl_text
/// prefers it over the canonical rendering, so two spellings of one
/// formula must not collide), the collapsed formula's structural hash,
/// the observe lists and comments (copied into the results verbatim),
/// and `skip_failing` (it decides `skipped` and row eligibility).
std::uint64_t suite_hash(const std::vector<PropertySpec>& specs,
                         const std::vector<ctl::Formula>& formulas,
                         bool skip_failing) {
  std::uint64_t h = specs.size() + 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  const std::hash<std::string> str_hash;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    mix(str_hash(specs[i].ctl_text));
    mix(static_cast<std::uint64_t>(ctl::structural_hash(formulas[i])));
    mix(specs[i].observe.size());
    for (const std::string& o : specs[i].observe) mix(str_hash(o));
    mix(str_hash(specs[i].comment));
  }
  mix(skip_failing ? 1 : 2);
  return h;
}

}  // namespace

std::vector<PropertySpec> resolve_suite(const CoverageRequest& request,
                                        const model::Model& model) {
  if (!request.properties.empty()) return request.properties;
  std::vector<PropertySpec> specs;
  specs.reserve(model.specs().size());
  for (const model::SpecEntry& s : model.specs()) {
    PropertySpec spec;
    spec.ctl_text = s.ctl_text;
    spec.observe = s.observed;
    spec.comment = s.comment;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::string> resolve_signal_names(const CoverageRequest& request,
                                              const model::Model& model) {
  if (!request.signals.empty()) return request.signals;
  std::set<std::string> seen;
  for (const PropertySpec& s : resolve_suite(request, model)) {
    for (const std::string& n : s.observe) seen.insert(n);
  }
  return {seen.begin(), seen.end()};
}

Session::Session(const model::Model& model, core::CoverageOptions options,
                 std::size_t max_live_nodes)
    : fsm_(model, max_live_nodes, options.image_strategy),
      checker_(fsm_),
      estimator_(checker_, lenient(options)) {}

/// One signal row. Everything read here is immutable during estimation
/// (specs/formulas/outcomes are fixed once verification finished) or
/// internally synchronized (checker memo, estimator fix-point caches,
/// the shared-mode BDD manager), so sharded runs call this concurrently
/// from several estimator threads — and because every intermediate is a
/// canonical BDD with exact counts, the row is identical no matter
/// which thread computes it.
SignalRow Session::estimate_row(const CoverageRequest& request,
                                const std::string& name,
                                const std::vector<PropertySpec>& specs,
                                const std::vector<ctl::Formula>& formulas,
                                const std::vector<PropertyResult>& outcomes) {
  const auto t_row = Clock::now();
  const std::vector<core::ObservedSignal> group =
      core::observe_all_bits(model(), name);

  std::vector<ctl::Formula> eligible;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (outcomes[j].skipped) continue;
    const std::vector<std::string>& obs = specs[j].observe;
    if (obs.empty() || std::find(obs.begin(), obs.end(), name) != obs.end()) {
      eligible.push_back(formulas[j]);
    }
  }

  const core::SignalCoverage sc = estimator_.coverage(eligible, group);
  SignalRow row;
  row.name = name;
  row.num_properties = sc.num_properties;
  row.covered_count = sc.covered_count;
  row.percent = sc.percent;
  row.covered = sc.covered;
  // Hole reporting is skippable work: don't compute the uncovered set
  // at all when nothing was asked for (the bench harness sets limit 0
  // precisely to keep the estimate timing pure).
  if (request.uncovered_limit > 0) {
    row.uncovered =
        estimator_.uncovered_examples(sc.covered, request.uncovered_limit);
  }
  if (request.want_traces) {
    if (const auto trace = estimator_.trace_to_uncovered(sc.covered)) {
      row.trace = make_trace_result(fsm_, *trace);
    }
  }
  row.estimate_ms = ms_since(t_row);
  return row;
}

SuiteResult Session::run(const CoverageRequest& request,
                         const RunHooks& hooks) {
  const auto t_run = Clock::now();

  // Governance: adopt the ambient governor when one is installed (the
  // executor's, whose clock started at submission so queue time counts);
  // direct library callers get a local one scoped to this run. Either
  // way every phase boundary below and every BDD fix-point iteration
  // under this frame ticks against the same deadline.
  std::optional<covest::RunGovernor> local_governor;
  std::optional<covest::RunGovernor::Scope> local_scope;
  covest::RunGovernor* governor = covest::RunGovernor::current();
  if (governor == nullptr) {
    local_governor.emplace(request.deadline_ms);
    governor = &*local_governor;
    local_scope.emplace(governor);
  }

  SuiteResult result;
  const model::Model& m = model();
  result.model_name = m.name();
  result.state_bits = m.state_bit_count();

  // Every phase snapshot carries the partitioned-relation shape, so a
  // strategy's per-phase win is observable next to its timings.
  const auto snap = [this](double ms) {
    PhaseStats p = snapshot(fsm_.mgr(), ms);
    p.partial_relations = fsm_.relation().partial_count();
    p.clusters = fsm_.relation().cluster_count();
    p.largest_cluster = fsm_.relation().largest_cluster();
    return p;
  };
  result.elaborate = snap(0.0);

  const auto progress = [&hooks](const Progress& p) {
    return !hooks.on_progress || hooks.on_progress(p);
  };

  // Converts a governance stop into the partial-result contract: the
  // completed prefix stays, the failing phase's stats record where and
  // why the run was limited, and nothing throws past this frame.
  const auto mark_limited = [&](ResultStatus status, const char* phase_name,
                                const char* what, PhaseStats* phase,
                                double phase_ms, std::size_t live,
                                std::size_t budget) {
    *phase = snap(phase_ms);
    if (live != 0) phase->live_nodes = live;
    if (budget != 0) phase->node_budget = budget;
    result.status = status;
    result.status_detail = std::string(phase_name) + ": " + what;
    result.total_ms = ms_since(t_run);
  };

  // -- Resolve the suite ----------------------------------------------------
  const std::vector<PropertySpec> specs = resolve_suite(request, m);
  std::vector<ctl::Formula> formulas;
  formulas.reserve(specs.size());
  for (const PropertySpec& s : specs) {
    ctl::Formula f = s.formula.valid() ? s.formula : ctl::parse_ctl(s.ctl_text);
    // Collapsing here (idempotent for parsed text) keys the checker's
    // structural memo on the exact form the coverage recursion re-checks.
    formulas.push_back(ctl::collapse_propositional(f));
  }

  // -- Verify ---------------------------------------------------------------
  // Warm path: a suite this session has verified before replays the
  // recorded outcomes (counterexample traces included) and never enters
  // the verify loop — verify.passes reports 0 and no verify progress
  // ticks fire. The estimate phase below runs either way; its caches
  // are keyed by canonical BDDs, so warm rows are byte-identical to
  // cold ones.
  const std::uint64_t key = suite_hash(specs, formulas, request.skip_failing);
  const auto warm = verified_.find(key);
  if (warm != verified_.end()) {
    result.properties = warm->second.properties;
    result.failures = warm->second.failures;
    result.verify = snap(0.0);
    result.verify.passes = 0;
  } else {
    const auto t_verify = Clock::now();
    try {
      // Model checking routes through the same apply/exists kernels as
      // estimation, so the phase parallelizes the same way. The epoch
      // closes (unwind or scope exit) before any snap().
      ParallelPhase par(fsm_.mgr(), request);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        governor->tick();  // Phase-boundary deadline check.
        fsm_.mgr().quiescent_point();  // Reclamation grace announcement.
        const auto t_prop = Clock::now();
        const ctl::CheckResult check = checker_.check(formulas[i]);
        PropertyResult pr;
        pr.ctl_text = !specs[i].ctl_text.empty() ? specs[i].ctl_text
                                                 : ctl::to_string(formulas[i]);
        pr.comment = specs[i].comment;
        pr.observe = specs[i].observe;
        pr.holds = check.holds;
        pr.skipped = !check.holds && !request.skip_failing;
        if (check.counterexample) {
          pr.counterexample = make_trace_result(fsm_, *check.counterexample);
        }
        pr.check_ms = ms_since(t_prop);
        if (!pr.holds) ++result.failures;
        result.properties.push_back(std::move(pr));
  
        Progress p;
        p.phase = Progress::Phase::kVerify;
        p.index = i + 1;
        p.total = specs.size();
        p.item = result.properties.back().ctl_text;
        p.ok = check.holds;
        if (!progress(p)) {
          par.close();  // snapshot() needs the manager exclusive.
          result.cancelled = true;
          result.status = ResultStatus::kCancelled;
          result.verify = snap(ms_since(t_verify));
          result.total_ms = ms_since(t_run);
          return result;
        }
      }
    } catch (const covest::DeadlineExceeded& e) {
      mark_limited(ResultStatus::kDeadlineExceeded, "verify", e.what(),
                   &result.verify, ms_since(t_verify), 0, 0);
      return result;
    } catch (const covest::ResourceExhausted& e) {
      mark_limited(ResultStatus::kResourceExhausted, "verify", e.what(),
                   &result.verify, ms_since(t_verify), e.live_nodes(),
                   e.budget());
      return result;
    }
    result.verify = snap(ms_since(t_verify));
    // Record the artifacts only for fully-verified suites: partial results
    // returned above must re-verify. The cap clears wholesale — suites are
    // few and small, and wholesale keeps no LRU bookkeeping.
    if (verified_.size() >= kMaxVerifiedSuites) verified_.clear();
    verified_.emplace(key, VerifiedSuite{result.properties, result.failures});
  }

  // -- Resolve the signal rows ----------------------------------------------
  const std::vector<std::string> names = resolve_signal_names(request, m);

  // -- Estimate -------------------------------------------------------------
  // The plain-reachability count is bookkeeping, not estimation: keep it
  // outside the estimate timer so the verification-vs-coverage cost
  // comparison (Table 2's point) stays faithful. It can still hit the
  // deadline or budget (the reachability fix-point ticks), attributed
  // to the estimate phase it gates.
  const auto t_estimate = Clock::now();
  try {
    ParallelPhase par(fsm_.mgr(), request);
    if (!reachable_count_) {
      reachable_count_ =
          fsm_.count_states(fsm_.reachable(fsm_.initial_states()));
    }
    result.reachable_states = *reachable_count_;
    result.space_count = fsm_.count_states(estimator_.coverage_space());
  } catch (const covest::DeadlineExceeded& e) {
    mark_limited(ResultStatus::kDeadlineExceeded, "estimate", e.what(),
                 &result.estimate, ms_since(t_estimate), 0, 0);
    return result;
  } catch (const covest::ResourceExhausted& e) {
    mark_limited(ResultStatus::kResourceExhausted, "estimate", e.what(),
                 &result.estimate, ms_since(t_estimate), e.live_nodes(),
                 e.budget());
    return result;
  }

  const std::size_t fan_out = effective_shards(request.shards, names.size());
  if (fan_out <= 1) {
    // Serial estimation: one row at a time on the calling thread. With
    // parallel_apply the rows still run in request order — only each
    // row's BDD operations fan out to the pool.
    try {
      ParallelPhase par(fsm_.mgr(), request);
      for (std::size_t i = 0; i < names.size(); ++i) {
        governor->tick();  // Per-row deadline check.
        fsm_.mgr().quiescent_point();  // Reclamation grace announcement.
        SignalRow row = estimate_row(request, names[i], specs, formulas,
                                     result.properties);

        Progress p;
        p.phase = Progress::Phase::kEstimate;
        p.index = i + 1;
        p.total = names.size();
        p.item = names[i];
        p.percent = row.percent;
        result.signals.push_back(std::move(row));
        if (!progress(p)) {
          par.close();  // snapshot() needs the manager exclusive.
          result.cancelled = true;
          result.status = ResultStatus::kCancelled;
          result.estimate = snap(ms_since(t_estimate));
          result.total_ms = ms_since(t_run);
          return result;
        }
      }
    } catch (const covest::DeadlineExceeded& e) {
      mark_limited(ResultStatus::kDeadlineExceeded, "estimate", e.what(),
                   &result.estimate, ms_since(t_estimate), 0, 0);
      return result;
    } catch (const covest::ResourceExhausted& e) {
      mark_limited(ResultStatus::kResourceExhausted, "estimate", e.what(),
                   &result.estimate, ms_since(t_estimate), e.live_nodes(),
                   e.budget());
      return result;
    }
  } else {
    // Sharded estimation: the suite was parsed, elaborated and verified
    // exactly once above; now only the rows fan out. Chunk s owns the
    // contiguous row range shard_chunk_range(names, s, fan_out), so
    // concatenating the chunks reproduces request order — and because
    // every BDD is canonical and every count exact, the merged rows are
    // byte-identical to the serial loop. Cancellation keeps each
    // chunk's prefix (the documented sharded-cancel semantics: request
    // order with interior gaps).
    bdd::BddManager& mgr = fsm_.mgr();
    std::vector<std::vector<SignalRow>> chunk_rows(fan_out);
    std::vector<std::exception_ptr> failures(fan_out);
    std::atomic<bool> stop{false};
    std::atomic<bool> cancelled{false};
    // With parallel_apply the estimator threads are the epoch's clients
    // and the pool's helpers steal from all of them at once.
    mgr.begin_shared(fan_out, request.table_mode, parallel_config(request));
    {
      std::vector<std::thread> estimators;
      estimators.reserve(fan_out);
      for (std::size_t s = 0; s < fan_out; ++s) {
        estimators.emplace_back([&, s] {
          // All estimator threads share the run's governor: the fixed
          // deadline is read-only and the expiry latch is atomic, so
          // one shard expiring stops the siblings at their next tick.
          covest::RunGovernor::Scope thread_scope(governor);
          try {
            mgr.register_shard_thread();
            const auto [first, last] =
                shard_chunk_range(names.size(), s, fan_out);
            for (std::size_t i = first; i < last; ++i) {
              if (stop.load(std::memory_order_relaxed)) break;
              governor->tick();  // Per-row deadline check.
              mgr.quiescent_point();  // Reclamation grace announcement.
              SignalRow row = estimate_row(request, names[i], specs,
                                           formulas, result.properties);

              Progress p;
              p.phase = Progress::Phase::kEstimate;
              p.index = i + 1;
              p.total = names.size();
              p.item = names[i];
              p.percent = row.percent;
              chunk_rows[s].push_back(std::move(row));

              bool keep_going = true;
              if (hooks.on_shard_row && !hooks.on_shard_row(s, p)) {
                keep_going = false;
              }
              // Chunk 0 also drives the serial progress contract.
              if (s == 0 && hooks.on_progress && !hooks.on_progress(p)) {
                keep_going = false;
              }
              if (!keep_going) {
                cancelled.store(true, std::memory_order_relaxed);
                stop.store(true, std::memory_order_relaxed);
                break;
              }
            }
            // Done with this chunk: a finished shard's stale epoch view
            // must not stall reclamation for siblings still estimating.
            mgr.mark_thread_passive();
          } catch (...) {
            failures[s] = std::current_exception();
            stop.store(true, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : estimators) t.join();
    }
    mgr.end_shared();
    std::exception_ptr first;
    for (const std::exception_ptr& e : failures) {
      if (e) {
        first = e;  // First shard's defect wins.
        break;
      }
    }
    ResultStatus limited_status = ResultStatus::kOk;
    std::string limited_what;
    std::size_t limited_live = 0;
    std::size_t limited_budget = 0;
    if (first) {
      // Governance stops become partial results with the chunk prefixes
      // computed so far (the same shape as a sharded cancel); anything
      // else keeps the pre-existing contract and rethrows out of this
      // frame as a structured error.
      try {
        std::rethrow_exception(first);
      } catch (const covest::DeadlineExceeded& e) {
        limited_status = ResultStatus::kDeadlineExceeded;
        limited_what = e.what();
      } catch (const covest::ResourceExhausted& e) {
        limited_status = ResultStatus::kResourceExhausted;
        limited_what = e.what();
        limited_live = e.live_nodes();
        limited_budget = e.budget();
      }
    }
    for (std::vector<SignalRow>& chunk : chunk_rows) {
      for (SignalRow& row : chunk) result.signals.push_back(std::move(row));
    }
    if (limited_status != ResultStatus::kOk) {
      mark_limited(limited_status, "estimate", limited_what.c_str(),
                   &result.estimate, ms_since(t_estimate), limited_live,
                   limited_budget);
      return result;
    }
    if (cancelled.load()) {
      result.cancelled = true;
      result.status = ResultStatus::kCancelled;
      result.estimate = snap(ms_since(t_estimate));
      result.total_ms = ms_since(t_run);
      return result;
    }
  }
  result.estimate = snap(ms_since(t_estimate));

  Progress done;
  done.phase = Progress::Phase::kDone;
  done.index = done.total = names.size();
  progress(done);  // Cancellation after the last item is a no-op.

  result.total_ms = ms_since(t_run);
  return result;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

model::Model Engine::load_model(const CoverageRequest& request) {
  if (request.model) return *request.model;
  if (!request.model_source.empty()) {
    return model::parse_model(request.model_source);
  }
  if (!request.model_path.empty()) {
    return model::parse_model_file(request.model_path);
  }
  throw std::runtime_error(
      "CoverageRequest: set `model`, `model_source` or `model_path` as the "
      "model source");
}

std::unique_ptr<Session> Engine::open(const CoverageRequest& request) const {
  return std::make_unique<Session>(load_model(request), request.options,
                                   request.max_live_nodes);
}

SuiteResult Engine::run(const CoverageRequest& request,
                        const RunHooks& hooks) const {
  // One-shot runs are a one-job batch: submit to a single-worker
  // executor and wait, so this path and covest_batch execute the same
  // pipeline code. A sharded request still fans out here: the session
  // spawns its own estimator threads after verifying once, so the one
  // worker is no longer the concurrency ceiling.
  Executor executor{ExecutorOptions{}};
  JobHooks job_hooks;
  job_hooks.on_progress = hooks.on_progress;
  SuiteResult result = executor.submit(request, job_hooks).take();
  // Blocking callers keep exception semantics; only the batch layers
  // report errors structurally.
  if (!result.error.empty()) throw std::runtime_error(result.error);
  return result;
}

}  // namespace covest::engine
