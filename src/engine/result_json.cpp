#include "engine/result_json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "engine/json.h"

namespace covest::engine {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

/// Streaming writer producing deterministic, optionally pretty output.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  std::string str() const { return os_.str(); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Starts a member inside an object; follow with a value call.
  void key(const std::string& name) {
    separate();
    raw_string(name);
    os_ << (pretty_ ? ": " : ":");
    just_keyed_ = true;
  }

  void string(const std::string& s) {
    value_separator();
    raw_string(s);
  }
  void boolean(bool v) {
    value_separator();
    os_ << (v ? "true" : "false");
  }

  void number(double v) {
    value_separator();
    if (!std::isfinite(v)) {  // JSON has no Inf/NaN.
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os_ << buf;
  }

  void number(std::uint64_t v) {
    value_separator();
    os_ << v;
  }

 private:
  void raw_string(const std::string& s) { json::write_escaped(os_, s); }

  void open(char c) {
    value_separator();
    os_ << c;
    depth_++;
    first_.push_back(true);
  }

  void close(char c) {
    depth_--;
    const bool empty = first_.back();
    first_.pop_back();
    if (pretty_ && !empty) newline();
    os_ << c;
  }

  /// Comma/newline before an array element or object key.
  void separate() {
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
    if (pretty_) newline();
  }

  /// Array elements separate themselves; values after `key` must not.
  void value_separator() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!first_.empty()) separate();
  }

  void newline() {
    os_ << '\n';
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }

  std::ostringstream os_;
  bool pretty_;
  bool just_keyed_ = false;
  int depth_ = 0;
  std::vector<bool> first_;
};

void write_trace(JsonWriter& w, const TraceResult& trace) {
  w.begin_object();
  w.key("steps");
  w.begin_array();
  for (const TraceResult::Step& step : trace.steps) {
    w.begin_object();
    for (const auto& [name, value] : step) {
      w.key(name);
      w.number(static_cast<std::uint64_t>(value));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_phase(JsonWriter& w, const PhaseStats& phase) {
  w.begin_object();
  w.key("ms");
  w.number(phase.ms);
  w.key("live_nodes");
  w.number(static_cast<std::uint64_t>(phase.live_nodes));
  w.key("peak_live_nodes");
  w.number(static_cast<std::uint64_t>(phase.peak_live_nodes));
  w.key("cache_hit_rate");
  w.number(phase.cache_hit_rate);
  w.key("passes");
  w.number(static_cast<std::uint64_t>(phase.passes));
  if (phase.node_budget != 0) {  // Only budgeted runs carry one.
    w.key("node_budget");
    w.number(static_cast<std::uint64_t>(phase.node_budget));
  }
  if (phase.partial_relations != 0) {  // Only elaborated sessions carry them.
    w.key("partial_relations");
    w.number(static_cast<std::uint64_t>(phase.partial_relations));
    w.key("clusters");
    w.number(static_cast<std::uint64_t>(phase.clusters));
    w.key("largest_cluster");
    w.number(static_cast<std::uint64_t>(phase.largest_cluster));
  }
  if (phase.shared_gc_runs != 0) {  // Only reclaiming shared runs carry them.
    w.key("shared_gc_runs");
    w.number(static_cast<std::uint64_t>(phase.shared_gc_runs));
    w.key("retired_nodes");
    w.number(static_cast<std::uint64_t>(phase.retired_nodes));
    w.key("reclaimed_nodes");
    w.number(static_cast<std::uint64_t>(phase.reclaimed_nodes));
  }
  w.end_object();
}

}  // namespace

std::string to_json(const SuiteResult& r, const JsonOptions& options) {
  JsonWriter w(options.pretty);
  w.begin_object();

  w.key("model");
  w.begin_object();
  w.key("name");
  w.string(r.model_name);
  w.key("state_bits");
  w.number(static_cast<std::uint64_t>(r.state_bits));
  w.key("reachable_states");
  w.number(r.reachable_states);
  w.key("coverage_space_states");
  w.number(r.space_count);
  w.end_object();

  w.key("summary");
  w.begin_object();
  w.key("properties");
  w.number(static_cast<std::uint64_t>(r.properties.size()));
  w.key("failures");
  w.number(static_cast<std::uint64_t>(r.failures));
  w.key("signals");
  w.number(static_cast<std::uint64_t>(r.signals.size()));
  w.key("all_passed");
  w.boolean(r.all_passed());
  w.key("cancelled");
  w.boolean(r.cancelled);
  if (r.status != ResultStatus::kOk) {  // Successful runs stay byte-stable.
    w.key("status");
    w.string(to_string(r.status));
    if (!r.status_detail.empty()) {
      w.key("status_detail");
      w.string(r.status_detail);
    }
  }
  if (!r.error.empty()) {  // Only batch/executor failures carry one.
    w.key("error");
    w.string(r.error);
  }
  w.end_object();

  w.key("properties");
  w.begin_array();
  for (const PropertyResult& p : r.properties) {
    w.begin_object();
    w.key("ctl");
    w.string(p.ctl_text);
    if (!p.comment.empty()) {
      w.key("comment");
      w.string(p.comment);
    }
    w.key("observe");
    w.begin_array();
    for (const std::string& s : p.observe) w.string(s);
    w.end_array();
    w.key("holds");
    w.boolean(p.holds);
    w.key("skipped");
    w.boolean(p.skipped);
    if (p.counterexample) {
      w.key("counterexample");
      write_trace(w, *p.counterexample);
    }
    if (options.include_stats) {
      w.key("check_ms");
      w.number(p.check_ms);
    }
    w.end_object();
  }
  w.end_array();

  w.key("signals");
  w.begin_array();
  for (const SignalRow& s : r.signals) {
    w.begin_object();
    w.key("name");
    w.string(s.name);
    w.key("properties");
    w.number(static_cast<std::uint64_t>(s.num_properties));
    w.key("covered_states");
    w.number(s.covered_count);
    w.key("percent");
    w.number(s.percent);
    w.key("uncovered");
    w.begin_array();
    for (const std::string& u : s.uncovered) w.string(u);
    w.end_array();
    if (s.trace) {
      w.key("trace");
      write_trace(w, *s.trace);
    }
    if (options.include_stats) {
      w.key("estimate_ms");
      w.number(s.estimate_ms);
    }
    w.end_object();
  }
  w.end_array();

  if (options.include_stats) {
    w.key("stats");
    w.begin_object();
    w.key("elaborate");
    write_phase(w, r.elaborate);
    w.key("verify");
    write_phase(w, r.verify);
    w.key("estimate");
    write_phase(w, r.estimate);
    w.key("total_ms");
    w.number(r.total_ms);
    w.end_object();
  }

  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Validation (the shared RFC 8259 parser in engine/json.h, value
// discarded)
// ---------------------------------------------------------------------------

bool validate_json(const std::string& text, std::string* error) {
  try {
    (void)json::parse(text);
    return true;
  } catch (const std::runtime_error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace covest::engine
