// Internal JSON plumbing shared by the engine serializers: the one
// string-escaping routine every writer uses, and the one RFC 8259
// parser behind both `validate_json` (result_json.h) and the request
// parser (request_json.h). Grammar and escaping fixes land here once.
//
// This is an implementation-detail header for src/engine; the public
// contracts live in request_json.h / result_json.h.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace covest::engine::json {

/// Writes `s` as a quoted JSON string: `"`, `\`, \n, \r, \t escaped by
/// name, other control characters as \u00xx, everything else verbatim.
void write_escaped(std::ostream& os, const std::string& s);

/// A parsed JSON value (document-order object members, no coercions).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
};

/// Parses exactly one JSON document (RFC 8259 grammar, no extensions;
/// \u escapes decode to UTF-8, including surrogate pairs — lone
/// surrogates are rejected; unrepresentable number magnitudes saturate
/// to ±infinity). Throws std::runtime_error with the byte offset on
/// malformed input.
Value parse(const std::string& text);

}  // namespace covest::engine::json
