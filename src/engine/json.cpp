#include "engine/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace covest::engine::json {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at byte " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Value parse_value() {
    // The parser recurses per nesting level and is fed untrusted input
    // (covest_batch stdin/manifest lines): bound the depth or one
    // hostile line of brackets overflows the stack.
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    Value v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"':
        v.type = Value::Type::kString;
        v.string = parse_string();
        break;
      case 't': parse_literal("true"); v = make_bool(true); break;
      case 'f': parse_literal("false"); v = make_bool(false); break;
      case 'n': parse_literal("null"); break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
      skip_ws();
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x80) {
          out.push_back(c);
        } else {
          append_utf8_sequence(out, c);
        }
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = read_hex4();
          if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // RFC 8259 encodes non-BMP characters as a surrogate pair
            // of \u escapes; a high surrogate must be followed by one.
            if (next() != '\\' || next() != 'u') {
              fail("high surrogate \\u escape without a low surrogate");
            }
            const unsigned low = read_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("high surrogate \\u escape without a low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  /// RFC 3629 validation of a raw (non-escaped) multi-byte sequence
  /// starting with `first`: rejects truncated sequences, bare
  /// continuation bytes, overlong encodings (0xc0/0xc1 leads and
  /// under-length codes), UTF-8-encoded surrogates and code points past
  /// U+10FFFF. RFC 8259 §8.1 requires UTF-8; a batch driver fed a
  /// mangled NDJSON line must answer with an error line, not propagate
  /// invalid bytes into its output stream.
  void append_utf8_sequence(std::string& out, char first) {
    const unsigned char b0 = static_cast<unsigned char>(first);
    unsigned tail = 0;
    unsigned code = 0;
    unsigned min_code = 0;
    if (b0 < 0xc2) {
      // 0x80-0xbf: continuation byte with no lead; 0xc0/0xc1: overlong.
      fail("invalid UTF-8 lead byte in string");
    } else if (b0 < 0xe0) {
      tail = 1;
      code = b0 & 0x1fu;
      min_code = 0x80;
    } else if (b0 < 0xf0) {
      tail = 2;
      code = b0 & 0x0fu;
      min_code = 0x800;
    } else if (b0 < 0xf5) {
      tail = 3;
      code = b0 & 0x07u;
      min_code = 0x10000;
    } else {
      fail("invalid UTF-8 lead byte in string");
    }
    out.push_back(first);
    for (unsigned i = 0; i < tail; ++i) {
      if (pos_ >= text_.size() ||
          (static_cast<unsigned char>(text_[pos_]) & 0xc0u) != 0x80u) {
        fail("truncated UTF-8 sequence in string");
      }
      code = (code << 6) | (static_cast<unsigned char>(text_[pos_]) & 0x3fu);
      out.push_back(next());
    }
    if (code < min_code) fail("overlong UTF-8 encoding in string");
    if (code >= 0xd800 && code <= 0xdfff) {
      fail("UTF-8-encoded surrogate in string");
    }
    if (code > 0x10ffff) fail("UTF-8 code point out of range");
  }

  unsigned read_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = next();
      if (!std::isxdigit(static_cast<unsigned char>(h))) {
        fail("bad \\u escape");
      }
      code = code * 16 +
             static_cast<unsigned>(std::isdigit(static_cast<unsigned char>(h))
                                       ? h - '0'
                                       : std::tolower(h) - 'a' + 10);
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  void parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (next() != *p) fail(std::string("bad literal, expected ") + word);
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) fail("expected digit");
    if (text_[pos_ - 1] != '0') {
      while (digit()) {}
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) fail("expected digit after '.'");
      while (digit()) {}
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) fail("expected exponent digit");
      while (digit()) {}
    }
    Value v;
    v.type = Value::Type::kNumber;
    // from_chars, not strtod/stod: locale-independent (an embedding app
    // with LC_NUMERIC=de_DE must not truncate "1.5" at the dot) and
    // non-throwing. Grammar-valid but unrepresentable magnitudes
    // ("1e999") are legal RFC 8259: saturate to ±inf, underflow toward
    // signed zero — schema layers that need an integer reject the
    // infinity downstream.
    const auto res = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, v.number);
    if (res.ec == std::errc::result_out_of_range) {
      const bool negative = text_[start] == '-';
      const std::size_t e = text_.find_first_of("eE", start);
      const bool underflow =
          e != std::string::npos && e < pos_ && text_[e + 1] == '-';
      v.number = underflow ? (negative ? -0.0 : 0.0)
                           : (negative ? -HUGE_VAL : HUGE_VAL);
    }
    return v;
  }

  bool digit() {
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      return true;
    }
    return false;
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace covest::engine::json
