// Benchmark circuits and property suites.
//
// Synthetic equivalents of the paper's three evaluation circuits
// (Section 5, Table 2) plus the illustrative models of Figures 1-3 and
// the modulo-k counter of the introduction. The proprietary Intel designs
// are unavailable; these models recreate the *mechanisms* behind each
// reported coverage hole:
//
//  * Priority buffer (Circuit 1): a `lo_cred` fast-acknowledge flag is set
//    exactly when low-priority entries arrive into an empty buffer — the
//    case the paper's initial property suite missed. States with
//    `lo_cred=1` are reachable only through that event, so they are
//    uncovered until the missing property is added; with `with_bug` the
//    added property fails, reproducing the escaped-bug discovery.
//  * Circular queue (Circuit 2): the wrap bit's toggle is deferred while
//    `stall` is asserted (a `pend` flag records the pending toggle).
//    States with `pend=1` arise only from a stalled pointer wrap, so
//    event+hold property suites that only condition on `!stall` leave
//    them uncovered — "the value of wrap was not checked if stall was
//    asserted when the write pointer wraps around".
//  * Decode pipeline (Circuit 3): a 1-bit datapath with valid bits and an
//    end-of-pipe state machine that holds the output for `hold` cycles.
//    Eventuality properties cover only the *first* state where the output
//    appears (`firstreached`), leaving the hold states uncovered — "the
//    pipeline output retains its value for 3 cycles".
#pragma once

#include <cstdint>
#include <vector>

#include "ctl/ctl.h"
#include "model/model.h"

namespace covest::circuits {

// --------------------------------------------------------------------------
// Introduction example: modulo-k counter with stall and reset
// --------------------------------------------------------------------------

struct CounterSpec {
  unsigned width = 3;       ///< Bits in `count`.
  std::uint64_t limit = 5;  ///< Counts 0 .. limit-1, then wraps to 0.
};

model::Model make_mod_counter(const CounterSpec& spec = {});

/// The paper's Section-1 property family: one formula per counter value C,
/// AG((!stall & !reset & count==C) -> AX(count==C+1)), C < limit-1.
std::vector<ctl::Formula> counter_increment_properties(const CounterSpec&);

/// Increment + wrap + stall-hold + reset properties: full coverage suite.
std::vector<ctl::Formula> counter_full_suite(const CounterSpec&);

// --------------------------------------------------------------------------
// Circuit 1: priority buffer
// --------------------------------------------------------------------------

struct PriorityBufferSpec {
  std::uint64_t capacity = 8;  ///< Entries per priority class (fits 4 bits).
  bool with_bug = true;        ///< Seeded bug: lo entries dropped when the
                               ///< buffer is empty and no hi entry arrives.
};

model::Model make_priority_buffer(const PriorityBufferSpec& spec = {});

/// The 5 hi-priority properties (Table 2 row "hi-pri"): complete case
/// analysis of the hi counter. Achieves 100% coverage for `hi`.
std::vector<ctl::Formula> buffer_hi_properties(const PriorityBufferSpec&);

/// The 5 initial lo-priority properties (Table 2 row "lo-pri"): the case
/// "buffer empty and low-priority entries incoming" is missing, leaving
/// the `lo_cred` states uncovered.
std::vector<ctl::Formula> buffer_lo_properties_initial(
    const PriorityBufferSpec&);

/// The missing-case property whose verification *fails* on the buggy
/// design (the paper's escaped bug) and closes the hole on the fixed one.
ctl::Formula buffer_lo_missing_case(const PriorityBufferSpec&);

// --------------------------------------------------------------------------
// Circuit 2: circular queue
// --------------------------------------------------------------------------

struct CircularQueueSpec {
  unsigned ptr_bits = 3;  ///< Queue depth = 2^ptr_bits.
};

model::Model make_circular_queue(const CircularQueueSpec& spec = {});

/// Initial 5 wrap-bit properties (toggle events + clear): Table 2's 60%.
std::vector<ctl::Formula> queue_wrap_properties_initial(
    const CircularQueueSpec&);

/// The 3 additional hold properties written after inspecting uncovered
/// states (still conditioned on !stall, so the pend states stay uncovered).
std::vector<ctl::Formula> queue_wrap_properties_additional(
    const CircularQueueSpec&);

/// The final property: the wrap bit remains unchanged while stalled.
/// Closes the hole to 100%.
ctl::Formula queue_wrap_stall_property(const CircularQueueSpec&);

/// The 2 `full` properties and 2 `empty` properties (100% rows).
std::vector<ctl::Formula> queue_full_properties(const CircularQueueSpec&);
std::vector<ctl::Formula> queue_empty_properties(const CircularQueueSpec&);

// --------------------------------------------------------------------------
// Circuit 3: decode pipeline
// --------------------------------------------------------------------------

struct PipelineSpec {
  unsigned stages = 3;        ///< Data stages before the output register.
  unsigned hold_cycles = 3;   ///< End-of-pipe processing time.
};

model::Model make_pipeline(const PipelineSpec& spec = {});

/// Initial 8 properties on the 1-bit datapath output (AF eventualities,
/// nested Untils, last-stage transfers): Table 2's 74.36%.
std::vector<ctl::Formula> pipeline_properties_initial(const PipelineSpec&);

/// Output-hold stability properties that close the 3-cycle hold hole.
std::vector<ctl::Formula> pipeline_hold_properties(const PipelineSpec&);

// --------------------------------------------------------------------------
// Token ring: the scalable image-strategy stressor
// --------------------------------------------------------------------------

struct TokenRingSpec {
  unsigned cells = 8;  ///< Ring stations; 2*cells state bits (>= 2).
  unsigned taps = 2;   ///< Stations whose data update also reads the
                       ///< station halfway across the ring (<= cells).
};

/// A one-hot token circulating through `cells` stations, each guarding a
/// data bit that toggles only while the station holds the token. The
/// transition relation is a conjunction of 2*cells small partials with
/// mostly-local support — the shape partitioned image computation with
/// early quantification is built for — while the `taps` cross-ring reads
/// deny any variable order that keeps *every* partial local, so the
/// conjoined monolithic relation pays for the long-range dependencies on
/// every image. Scaling `cells` separates the image strategies without
/// changing the model's character.
model::Model make_token_ring(const TokenRingSpec& spec = {});

/// Safety suite, all holding: token uniqueness on adjacent station pairs
/// plus single-step token progression under `adv`.
std::vector<ctl::Formula> ring_safety_properties(const TokenRingSpec&);

// --------------------------------------------------------------------------
// Figure graphs
// --------------------------------------------------------------------------

/// Figure 1: the graph for AG(p1 -> AX AX q). The single covered state is
/// the one two steps after the p1 state.
model::Model make_fig1_graph();
ctl::Formula fig1_formula();

/// Figure 2: the chain for A[p1 U q] where p1 also holds at the first
/// q state. Naive Definition-3 coverage is zero; the transformed coverage
/// marks the first q state.
model::Model make_fig2_graph();
ctl::Formula fig2_formula();

/// Figure 3: branching graph for A[f1 U f2]; illustrates traverse and
/// firstreached.
model::Model make_fig3_graph();
ctl::Formula fig3_formula();

}  // namespace covest::circuits
