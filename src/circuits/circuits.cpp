#include "circuits/circuits.h"

#include <cassert>
#include <string>

namespace covest::circuits {

using ctl::Formula;
using expr::Expr;
using model::ModelBuilder;

namespace {

Expr word(std::uint64_t value, unsigned width) {
  return Expr::word_const(value, width);
}

Formula prop(const Expr& e) { return Formula::prop(e); }

/// AG(ante -> AX(cons)) — the workhorse shape of the paper's suites.
Formula ag_next(const Expr& ante, const Expr& cons) {
  return Formula::AG(prop(ante).implies(Formula::AX(prop(cons))));
}

/// Conjunction of a non-empty list of formulas (right fold).
Formula conj(const std::vector<Formula>& fs) {
  assert(!fs.empty());
  Formula acc = fs.back();
  for (std::size_t i = fs.size() - 1; i-- > 0;) {
    acc = fs[i] & acc;
  }
  return acc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Modulo-k counter (Section 1)
// ---------------------------------------------------------------------------

model::Model make_mod_counter(const CounterSpec& spec) {
  ModelBuilder b("mod_counter");
  const unsigned w = spec.width;
  const Expr count = b.state_word("count", w, 0);
  const Expr stall = b.input_bool("stall");
  const Expr reset = b.input_bool("reset");
  const Expr wrapped = ite(count == word(spec.limit - 1, w), word(0, w),
                           count + word(1, w));
  b.next("count", ite(reset, word(0, w), ite(stall, count, wrapped)));
  return b.build();
}

std::vector<Formula> counter_increment_properties(const CounterSpec& spec) {
  const unsigned w = spec.width;
  const Expr count = Expr::var("count");
  const Expr stall = Expr::var("stall");
  const Expr reset = Expr::var("reset");
  std::vector<Formula> props;
  for (std::uint64_t c = 0; c + 1 < spec.limit; ++c) {
    props.push_back(ag_next((!stall) & (!reset) & (count == word(c, w)),
                            count == word(c + 1, w)));
  }
  return props;
}

std::vector<Formula> counter_full_suite(const CounterSpec& spec) {
  const unsigned w = spec.width;
  const Expr count = Expr::var("count");
  const Expr stall = Expr::var("stall");
  const Expr reset = Expr::var("reset");

  std::vector<Formula> props = counter_increment_properties(spec);
  // Wrap-around.
  props.push_back(ag_next((!stall) & (!reset) & (count == word(spec.limit - 1, w)),
                          count == word(0, w)));
  // Stall holds the counter (one property, all values conjoined).
  std::vector<Formula> holds;
  for (std::uint64_t c = 0; c < spec.limit; ++c) {
    holds.push_back(ag_next(stall & (!reset) & (count == word(c, w)),
                            count == word(c, w)));
  }
  props.push_back(conj(holds));
  // Reset dominates.
  props.push_back(ag_next(reset, count == word(0, w)));
  return props;
}

// ---------------------------------------------------------------------------
// Circuit 1: priority buffer
// ---------------------------------------------------------------------------

model::Model make_priority_buffer(const PriorityBufferSpec& spec) {
  assert(spec.capacity <= 8);
  ModelBuilder b("priority_buffer");
  const Expr hi = b.state_word("hi", 4, 0);
  const Expr lo = b.state_word("lo", 4, 0);
  b.state_bool("lo_cred", false);
  const Expr in_hi = b.input_word("in_hi", 2);
  const Expr in_lo = b.input_word("in_lo", 2);
  const Expr drain = b.input_bool("drain");
  const Expr clear = b.input_bool("clear");

  const auto n4 = [](std::uint64_t v) { return word(v, 4); };
  const Expr cap = n4(spec.capacity);

  // Dispatch one entry per drain cycle, high priority first.
  const Expr hi_pop = b.define("hi_pop", drain & (hi > n4(0)));
  const Expr lo_pop = b.define("lo_pop", drain & (hi == n4(0)) & (lo > n4(0)));
  const Expr hi_after = b.define("hi_after", ite(hi_pop, hi - n4(1), hi));
  const Expr lo_after = b.define("lo_after", ite(lo_pop, lo - n4(1), lo));

  // Accept incoming entries, saturating at capacity. All arithmetic fits
  // in 4 bits on reachable states (counts stay <= capacity <= 8).
  const Expr hi_sum = b.define("hi_sum", hi_after + in_hi);
  const Expr hi_stored = b.define("hi_stored", ite(hi_sum <= cap, hi_sum, cap));
  const Expr lo_sum = b.define("lo_sum", lo_after + in_lo);
  const Expr lo_stored =
      b.define("lo_stored", ite(lo_sum <= cap, lo_sum, cap));

  const Expr buffer_empty = (hi == n4(0)) & (lo == n4(0));

  // Seeded bug: the low-priority store-enable is derived from a grant
  // term that is inactive when the whole buffer is empty and no
  // high-priority entry arrives — incoming lo entries are silently
  // dropped in exactly that corner.
  const Expr lo_next =
      spec.with_bug
          ? ite(buffer_empty & (in_hi == word(0, 2)), n4(0), lo_stored)
          : lo_stored;

  b.next("hi", ite(clear, n4(0), hi_stored));
  b.next("lo", ite(clear, n4(0), lo_next));
  // Fast-acknowledge credit pulse: asserted after lo entries arrive alone
  // into an idle, empty buffer. These states are reachable only through
  // the missing property case, so they form the (small) coverage hole —
  // the paper reports 99.98% for lo-pri, i.e. a near-miss hole.
  b.next("lo_cred", (!clear) & (!drain) & buffer_empty &
                        (in_lo > word(0, 2)) & (in_hi == word(0, 2)));
  return b.build();
}

namespace {

struct BufferRefs {
  Expr hi = Expr::var("hi");
  Expr lo = Expr::var("lo");
  Expr in_hi = Expr::var("in_hi");
  Expr in_lo = Expr::var("in_lo");
  Expr drain = Expr::var("drain");
  Expr clear = Expr::var("clear");
};

std::uint64_t clamp(std::uint64_t v, std::uint64_t cap) {
  return v > cap ? cap : v;
}

}  // namespace

std::vector<Formula> buffer_hi_properties(const PriorityBufferSpec& spec) {
  const BufferRefs r;
  const std::uint64_t cap = spec.capacity;
  std::vector<Formula> props;

  // H1: store when it fits (no drain).
  std::vector<Formula> store;
  for (std::uint64_t h = 0; h <= cap; ++h) {
    for (std::uint64_t ih = 0; ih <= 3; ++ih) {
      if (h + ih > cap) continue;
      store.push_back(ag_next((!r.clear) & (!r.drain) & (r.hi == word(h, 4)) &
                                  (r.in_hi == word(ih, 2)),
                              r.hi == word(h + ih, 4)));
    }
  }
  props.push_back(conj(store));

  // H2: saturate at capacity (no drain).
  std::vector<Formula> sat;
  for (std::uint64_t h = 0; h <= cap; ++h) {
    for (std::uint64_t ih = 0; ih <= 3; ++ih) {
      if (h + ih <= cap) continue;
      sat.push_back(ag_next((!r.clear) & (!r.drain) & (r.hi == word(h, 4)) &
                                (r.in_hi == word(ih, 2)),
                            r.hi == word(cap, 4)));
    }
  }
  props.push_back(conj(sat));

  // H3: drain a non-empty hi class (store still accepted).
  std::vector<Formula> drained;
  for (std::uint64_t h = 1; h <= cap; ++h) {
    for (std::uint64_t ih = 0; ih <= 3; ++ih) {
      drained.push_back(ag_next((!r.clear) & r.drain & (r.hi == word(h, 4)) &
                                    (r.in_hi == word(ih, 2)),
                                r.hi == word(clamp(h - 1 + ih, cap), 4)));
    }
  }
  props.push_back(conj(drained));

  // H4: drain with empty hi class leaves stores untouched.
  std::vector<Formula> drain_empty;
  for (std::uint64_t ih = 0; ih <= 3; ++ih) {
    drain_empty.push_back(ag_next((!r.clear) & r.drain & (r.hi == word(0, 4)) &
                                      (r.in_hi == word(ih, 2)),
                                  r.hi == word(ih, 4)));
  }
  props.push_back(conj(drain_empty));

  // H5: clear resets.
  props.push_back(ag_next(r.clear, r.hi == word(0, 4)));
  return props;
}

std::vector<Formula> buffer_lo_properties_initial(
    const PriorityBufferSpec& spec) {
  const BufferRefs r;
  const std::uint64_t cap = spec.capacity;
  std::vector<Formula> props;

  // L1: store when it fits (no drain) — MISSING the "buffer completely
  // empty and lo entries incoming" case, exactly as in the paper.
  std::vector<Formula> store;
  for (std::uint64_t h = 0; h <= cap; ++h) {
    for (std::uint64_t l = 0; l <= cap; ++l) {
      for (std::uint64_t il = 0; il <= 3; ++il) {
        if (l + il > cap) continue;
        if (h == 0 && l == 0 && il > 0) continue;  // The coverage hole.
        store.push_back(ag_next(
            (!r.clear) & (!r.drain) & (r.hi == word(h, 4)) &
                (r.lo == word(l, 4)) & (r.in_lo == word(il, 2)),
            r.lo == word(l + il, 4)));
      }
    }
  }
  props.push_back(conj(store));

  // L2: saturate at capacity (never overlaps the empty case).
  std::vector<Formula> sat;
  for (std::uint64_t l = 0; l <= cap; ++l) {
    for (std::uint64_t il = 0; il <= 3; ++il) {
      if (l + il <= cap) continue;
      sat.push_back(ag_next((!r.clear) & (!r.drain) & (r.lo == word(l, 4)) &
                                (r.in_lo == word(il, 2)),
                            r.lo == word(cap, 4)));
    }
  }
  props.push_back(conj(sat));

  // L3: drain with hi entries present — lo is not popped.
  std::vector<Formula> hi_first;
  for (std::uint64_t h = 1; h <= cap; ++h) {
    for (std::uint64_t l = 0; l <= cap; ++l) {
      for (std::uint64_t il = 0; il <= 3; ++il) {
        hi_first.push_back(ag_next(
            (!r.clear) & r.drain & (r.hi == word(h, 4)) &
                (r.lo == word(l, 4)) & (r.in_lo == word(il, 2)),
            r.lo == word(clamp(l + il, cap), 4)));
      }
    }
  }
  props.push_back(conj(hi_first));

  // L4: drain pops lo when hi is empty and lo is not.
  std::vector<Formula> lo_drain;
  for (std::uint64_t l = 1; l <= cap; ++l) {
    for (std::uint64_t il = 0; il <= 3; ++il) {
      lo_drain.push_back(ag_next(
          (!r.clear) & r.drain & (r.hi == word(0, 4)) & (r.lo == word(l, 4)) &
              (r.in_lo == word(il, 2)),
          r.lo == word(clamp(l - 1 + il, cap), 4)));
    }
  }
  props.push_back(conj(lo_drain));

  // L5: clear resets.
  props.push_back(ag_next(r.clear, r.lo == word(0, 4)));
  return props;
}

Formula buffer_lo_missing_case(const PriorityBufferSpec& spec) {
  const BufferRefs r;
  (void)spec;
  std::vector<Formula> cases;
  for (std::uint64_t il = 1; il <= 3; ++il) {
    for (std::uint64_t ih = 0; ih <= 3; ++ih) {
      cases.push_back(ag_next((!r.clear) & (r.hi == word(0, 4)) &
                                  (r.lo == word(0, 4)) &
                                  (r.in_lo == word(il, 2)) &
                                  (r.in_hi == word(ih, 2)),
                              r.lo == word(il, 4)));
    }
  }
  return conj(cases);
}

// ---------------------------------------------------------------------------
// Circuit 2: circular queue
// ---------------------------------------------------------------------------

model::Model make_circular_queue(const CircularQueueSpec& spec) {
  ModelBuilder b("circular_queue");
  const unsigned w = spec.ptr_bits;
  const std::uint64_t top = (1ull << w) - 1;

  const Expr wptr = b.state_word("wptr", w, 0);
  const Expr rptr = b.state_word("rptr", w, 0);
  const Expr wrap = b.state_bool("wrap", false);
  const Expr pend = b.state_bool("pend", false);
  const Expr push = b.input_bool("push");
  const Expr pop = b.input_bool("pop");
  const Expr stall = b.input_bool("stall");
  const Expr clear = b.input_bool("clear");

  const Expr eq = b.define("ptr_eq", wptr == rptr);
  const Expr full = b.define("full", eq & wrap);
  const Expr empty = b.define("empty", eq & (!wrap));
  const Expr do_push = b.define("do_push", push & (!full));
  const Expr do_pop = b.define("do_pop", pop & (!empty));
  const Expr wwrap = b.define("wwrap_ev", do_push & (wptr == word(top, w)));
  const Expr rwrap = b.define("rwrap_ev", do_pop & (rptr == word(top, w)));
  // Parity of wrap events this cycle (simultaneous wraps cancel).
  const Expr toggle = b.define("toggle_req", wwrap ^ rwrap);

  b.next("wptr", ite(clear, word(0, w), ite(do_push, wptr + word(1, w), wptr)));
  b.next("rptr", ite(clear, word(0, w), ite(do_pop, rptr + word(1, w), rptr)));
  // The wrap-status unit is stalled by `stall`: pointer wraps that happen
  // while stalled are remembered in `pend` (parity) and absorbed into
  // `wrap` on the first un-stalled cycle. States with pend=1 are
  // reachable only through a stalled pointer wrap — the paper's corner.
  b.next("pend", (!clear) & stall & (pend ^ toggle));
  b.next("wrap", (!clear) & ite(stall, wrap, wrap ^ pend ^ toggle));
  return b.build();
}

namespace {

struct QueueRefs {
  Expr wrap = Expr::var("wrap");
  Expr pend = Expr::var("pend");
  Expr wwrap = Expr::var("wwrap_ev");
  Expr rwrap = Expr::var("rwrap_ev");
  Expr stall = Expr::var("stall");
  Expr clear = Expr::var("clear");
  Expr full = Expr::var("full");
  Expr empty = Expr::var("empty");
  Expr eq = Expr::var("ptr_eq");
};

}  // namespace

std::vector<Formula> queue_wrap_properties_initial(
    const CircularQueueSpec& spec) {
  (void)spec;
  const QueueRefs r;
  const Expr quiet = (!r.stall) & (!r.clear) & (!r.pend);
  return {
      ag_next(quiet & r.wwrap & (!r.rwrap) & (!r.wrap), r.wrap),
      ag_next(quiet & r.wwrap & (!r.rwrap) & r.wrap, (!r.wrap)),
      ag_next(quiet & r.rwrap & (!r.wwrap) & (!r.wrap), r.wrap),
      ag_next(quiet & r.rwrap & (!r.wwrap) & r.wrap, (!r.wrap)),
      ag_next(r.clear, !r.wrap),
  };
}

std::vector<Formula> queue_wrap_properties_additional(
    const CircularQueueSpec& spec) {
  (void)spec;
  const QueueRefs r;
  const Expr quiet = (!r.stall) & (!r.clear) & (!r.pend);
  return {
      ag_next(quiet & (!r.wwrap) & (!r.rwrap) & (!r.wrap), (!r.wrap)),
      ag_next(quiet & (!r.wwrap) & (!r.rwrap) & r.wrap, r.wrap),
      // Simultaneous read and write wraps cancel.
      ag_next(quiet & r.wwrap & r.rwrap & r.wrap, r.wrap) &
          ag_next(quiet & r.wwrap & r.rwrap & (!r.wrap), (!r.wrap)),
  };
}

std::vector<Formula> queue_full_properties(const CircularQueueSpec& spec) {
  (void)spec;
  const QueueRefs r;
  return {
      Formula::AG(prop(r.full.iff(r.eq & r.wrap))),
      Formula::AG(prop(!(r.full & r.empty))),
  };
}

std::vector<Formula> queue_empty_properties(const CircularQueueSpec& spec) {
  (void)spec;
  const QueueRefs r;
  return {
      Formula::AG(prop(r.empty.iff(r.eq & (!r.wrap)))),
      ag_next(r.clear, Expr::var("empty")),
  };
}

Formula queue_wrap_stall_property(const CircularQueueSpec& spec) {
  (void)spec;
  const QueueRefs r;
  // "The wrap bit remains unchanged while the status unit is stalled."
  return (ag_next(r.stall & (!r.clear) & r.wrap, r.wrap) &
          ag_next(r.stall & (!r.clear) & (!r.wrap), (!r.wrap)));
}

// ---------------------------------------------------------------------------
// Circuit 3: decode pipeline
// ---------------------------------------------------------------------------

model::Model make_pipeline(const PipelineSpec& spec) {
  assert(spec.stages >= 1 && spec.hold_cycles >= 1 && spec.hold_cycles <= 3);
  ModelBuilder b("pipeline");
  const unsigned n = spec.stages;

  std::vector<Expr> d, v;
  for (unsigned i = 1; i <= n; ++i) {
    d.push_back(b.state_bool("d" + std::to_string(i)));
    v.push_back(b.state_bool("v" + std::to_string(i), false));
  }
  const Expr out = b.state_bool("out");
  const Expr outv = b.state_bool("outv", false);
  const Expr hold = b.state_word("hold", 2, 0);
  const Expr in_d = b.input_bool("in_d");
  const Expr in_v = b.input_bool("in_v");
  const Expr stall = b.input_bool("stall");

  b.fairness(!stall);
  // The output register is consumed by an end-of-pipe state machine that
  // takes `hold_cycles` cycles per instruction; the pipe advances only
  // when it is idle.
  const Expr adv = b.define("adv", (!stall) & (hold == word(0, 2)));

  b.next("d1", ite(adv, in_d, d[0]));
  b.next("v1", ite(adv, in_v, v[0]));
  for (unsigned i = 1; i < n; ++i) {
    b.next("d" + std::to_string(i + 1), ite(adv, d[i - 1], d[i]));
    b.next("v" + std::to_string(i + 1), ite(adv, v[i - 1], v[i]));
  }
  b.next("out", ite(adv, d[n - 1], out));
  b.next("outv", ite(adv, v[n - 1], outv));
  b.next("hold", ite(adv & v[n - 1], word(spec.hold_cycles, 2),
                     ite(hold > word(0, 2), hold - word(1, 2), word(0, 2))));

  // The observed datapath output is irrelevant while no valid instruction
  // has reached it (Section 4.2 of the paper).
  b.dontcare(!outv);
  return b.build();
}

namespace {

struct PipeRefs {
  explicit PipeRefs(const PipelineSpec& spec) : last(spec.stages) {}
  unsigned last;
  Expr out = Expr::var("out");
  Expr outv = Expr::var("outv");
  Expr hold = Expr::var("hold");
  Expr adv = Expr::var("adv");
  Expr in_d = Expr::var("in_d");
  Expr in_v = Expr::var("in_v");
  Expr stall = Expr::var("stall");

  Expr dstage(unsigned i) const { return Expr::var("d" + std::to_string(i)); }
  Expr vstage(unsigned i) const { return Expr::var("v" + std::to_string(i)); }
  Expr data_is(const Expr& e, bool value) const { return value ? e : (!e); }
};

}  // namespace

std::vector<Formula> pipeline_properties_initial(const PipelineSpec& spec) {
  const PipeRefs r(spec);
  std::vector<Formula> props;

  for (bool bit : {false, true}) {
    const Expr capture = r.adv & r.in_v & r.data_is(r.in_d, bit);
    const Expr at_output = r.outv & r.data_is(r.out, bit);

    // Eventuality: a captured instruction appears at the output (needs
    // fairness on stall).
    props.push_back(
        Formula::AG(prop(capture).implies(Formula::AF(prop(at_output)))));

    // Nested-until staging property (the paper's
    // AG(p1 -> A[p2 U A[p3 U p4]]) shape).
    Formula stage_chain = prop(at_output);
    for (unsigned i = spec.stages; i >= 1; --i) {
      stage_chain = Formula::AU(
          prop(r.vstage(i) & r.data_is(r.dstage(i), bit)), stage_chain);
    }
    props.push_back(
        Formula::AG(prop(capture).implies(Formula::AX(stage_chain))));
  }

  for (bool bit : {false, true}) {
    // Last-stage transfer into the output register.
    props.push_back(ag_next(
        r.adv & r.vstage(r.last) & r.data_is(r.dstage(r.last), bit),
        r.outv & r.data_is(r.out, bit)));
    // Output stability under stall (the team thought of stalls — but not
    // of the end-of-pipe hold machine).
    props.push_back(ag_next(
        r.stall & (r.hold == word(0, 2)) & r.outv & r.data_is(r.out, bit),
        r.data_is(r.out, bit)));
  }
  return props;
}

std::vector<Formula> pipeline_hold_properties(const PipelineSpec& spec) {
  const PipeRefs r(spec);
  std::vector<Formula> props;
  for (bool bit : {false, true}) {
    // The output retains its value until the end-of-pipe machine is done.
    props.push_back(Formula::AG(
        prop(r.adv & r.vstage(r.last) & r.data_is(r.dstage(r.last), bit))
            .implies(Formula::AX(
                Formula::AU(prop(r.data_is(r.out, bit)),
                            prop(r.hold == word(0, 2)))))));
    // Stability during each hold cycle.
    props.push_back(ag_next((r.hold > word(0, 2)) & r.data_is(r.out, bit),
                            r.data_is(r.out, bit)));
  }
  return props;
}

// ---------------------------------------------------------------------------
// Token ring
// ---------------------------------------------------------------------------

namespace {

std::string cell_name(const char* prefix, unsigned k) {
  return std::string(prefix) + std::to_string(k);
}

}  // namespace

model::Model make_token_ring(const TokenRingSpec& spec) {
  assert(spec.cells >= 2);
  assert(spec.taps <= spec.cells);
  ModelBuilder b("token_ring");
  const unsigned n = spec.cells;
  std::vector<Expr> tok, v;
  tok.reserve(n);
  v.reserve(n);
  for (unsigned k = 0; k < n; ++k) {
    tok.push_back(b.state_bool(cell_name("tok", k), k == 0));
  }
  for (unsigned k = 0; k < n; ++k) {
    v.push_back(b.state_bool(cell_name("v", k), false));
  }
  const Expr adv = b.input_bool("adv");
  const Expr flip = b.input_bool("flip");
  for (unsigned k = 0; k < n; ++k) {
    b.next(cell_name("tok", k), ite(adv, tok[(k + n - 1) % n], tok[k]));
  }
  for (unsigned k = 0; k < n; ++k) {
    // Tapped stations fold in the bit halfway across the ring (XNOR so
    // the all-false initial state still toggles), giving the relation
    // its order-hostile long-range reads.
    const Expr toggled =
        k < spec.taps ? !(v[k] ^ v[(k + n / 2) % n]) : !v[k];
    b.next(cell_name("v", k), ite(tok[k] & flip, toggled, v[k]));
  }
  return b.build();
}

std::vector<Formula> ring_safety_properties(const TokenRingSpec& spec) {
  const unsigned n = spec.cells;
  std::vector<Formula> props;
  // Token uniqueness on adjacent pairs; capped so the suite size stays
  // constant while `cells` scales the state space.
  for (unsigned k = 0; k < n && k < 4; ++k) {
    const Expr a = Expr::var(cell_name("tok", k));
    const Expr c = Expr::var(cell_name("tok", (k + 1) % n));
    props.push_back(Formula::AG(prop(!(a & c))));
  }
  props.push_back(ag_next(Expr::var("adv") & Expr::var("tok0"),
                          Expr::var("tok1")));
  return props;
}

// ---------------------------------------------------------------------------
// Figure graphs
// ---------------------------------------------------------------------------

model::Model make_fig1_graph() {
  ModelBuilder b("fig1");
  const Expr st = b.state_word("st", 3, 0);
  const Expr choice = b.input_bool("choice");
  b.define("p1", st == word(1, 3));
  b.define("q", (st == word(3, 3)) | (st == word(4, 3)));
  // 0 -> {1, 4}; 1 -> 2 -> 3 (q, covered); 3 -> 3; 4 (q, not covered) -> 4.
  b.next("st",
         ite(st == word(0, 3), ite(choice, word(1, 3), word(4, 3)),
             ite(st == word(1, 3), word(2, 3),
                 ite(st == word(2, 3), word(3, 3),
                     ite(st == word(3, 3), word(3, 3), word(4, 3))))));
  return b.build();
}

Formula fig1_formula() {
  return Formula::AG(prop(Expr::var("p1"))
                         .implies(Formula::AX(
                             Formula::AX(prop(Expr::var("q"))))));
}

model::Model make_fig2_graph() {
  ModelBuilder b("fig2");
  const Expr st = b.state_word("st", 2, 0);
  b.define("p1", st <= word(2, 2));
  b.define("q", (st == word(2, 2)) | (st == word(3, 2)));
  // A chain 0 -> 1 -> 2 -> 3 -> 3; p1 holds through the first q state, so
  // flipping q there cannot falsify A[p1 U q] — the Figure-2 anomaly.
  b.next("st",
         ite(st == word(3, 2), word(3, 2), st + word(1, 2)));
  return b.build();
}

Formula fig2_formula() {
  return Formula::AU(prop(Expr::var("p1")), prop(Expr::var("q")));
}

model::Model make_fig3_graph() {
  ModelBuilder b("fig3");
  const Expr st = b.state_word("st", 3, 0);
  const Expr choice = b.input_bool("choice");
  b.define("f1", (st == word(0, 3)) | (st == word(1, 3)) |
                     (st == word(2, 3)) | (st == word(4, 3)));
  b.define("f2", (st == word(3, 3)) | (st == word(5, 3)) |
                     (st == word(6, 3)));
  // 0 -> {1, 2}; 1 -> 3(f2); 2 -> {4, 5(f2)}; 4 -> 6(f2); terminals loop.
  b.next("st",
         ite(st == word(0, 3), ite(choice, word(1, 3), word(2, 3)),
             ite(st == word(1, 3), word(3, 3),
                 ite(st == word(2, 3), ite(choice, word(4, 3), word(5, 3)),
                     ite(st == word(4, 3), word(6, 3), st)))));
  return b.build();
}

Formula fig3_formula() {
  return Formula::AU(prop(Expr::var("f1")), prop(Expr::var("f2")));
}

}  // namespace covest::circuits
