// Expression construction, typing, evaluation, substitution, printing.
#include "expr/expr.h"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace covest::expr {

std::string to_string(const Type& t) {
  if (t.is_bool) return "bool";
  return "uint<" + std::to_string(t.width) + ">";
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Expr Expr::bool_const(bool value) {
  auto node = std::make_shared<ExprNode>();
  node->op = Op::kConst;
  node->value = value ? 1 : 0;
  node->const_is_bool = true;
  node->const_width = 1;
  return Expr(std::move(node));
}

Expr Expr::word_const(std::uint64_t value, unsigned width) {
  if (width == 0 || width > 32) {
    throw std::runtime_error("word constant width must be in 1..32");
  }
  auto node = std::make_shared<ExprNode>();
  node->op = Op::kConst;
  node->value = value & ((width == 64 ? ~0ull : (1ull << width) - 1));
  node->const_is_bool = false;
  node->const_width = width;
  return Expr(std::move(node));
}

Expr Expr::var(std::string name) {
  auto node = std::make_shared<ExprNode>();
  node->op = Op::kVarRef;
  node->name = std::move(name);
  return Expr(std::move(node));
}

Expr Expr::make(Op op, std::vector<Expr> args) {
  auto node = std::make_shared<ExprNode>();
  node->op = op;
  node->args = std::move(args);
  for (const Expr& a : node->args) {
    if (!a.valid()) throw std::runtime_error("invalid operand expression");
  }
  return Expr(std::move(node));
}

Expr Expr::extract(Expr word, unsigned bit) {
  auto node = std::make_shared<ExprNode>();
  node->op = Op::kExtract;
  node->value = bit;
  node->args = {std::move(word)};
  return Expr(std::move(node));
}

Expr ite(const Expr& cond, const Expr& then_e, const Expr& else_e) {
  return Expr::make(Op::kIte, {cond, then_e, else_e});
}

// ---------------------------------------------------------------------------
// Type inference
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void type_error(const std::string& message, const Expr& e) {
  throw std::runtime_error("type error: " + message + " in '" + to_string(e) +
                           "'");
}

}  // namespace

Type infer_type(const Expr& e, const TypeResolver& resolver) {
  const ExprNode& n = e.node();
  switch (n.op) {
    case Op::kConst:
      return n.const_is_bool ? Type::boolean() : Type::word(n.const_width);
    case Op::kVarRef: {
      const auto t = resolver(n.name);
      if (!t) type_error("unknown signal '" + n.name + "'", e);
      return *t;
    }
    case Op::kNot: {
      const Type t = infer_type(n.args[0], resolver);
      if (!t.is_bool) type_error("'!' needs a boolean operand", e);
      return Type::boolean();
    }
    case Op::kBitNot: {
      const Type t = infer_type(n.args[0], resolver);
      if (t.is_bool) type_error("'~' needs a word operand", e);
      return t;
    }
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      const Type a = infer_type(n.args[0], resolver);
      const Type b = infer_type(n.args[1], resolver);
      if (a.is_bool != b.is_bool) {
        type_error("mixed bool/word operands", e);
      }
      if (a.is_bool) return Type::boolean();
      return Type::word(std::max(a.width, b.width));
    }
    case Op::kImplies:
    case Op::kIff: {
      const Type a = infer_type(n.args[0], resolver);
      const Type b = infer_type(n.args[1], resolver);
      if (!a.is_bool || !b.is_bool) type_error("needs boolean operands", e);
      return Type::boolean();
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul: {
      const Type a = infer_type(n.args[0], resolver);
      const Type b = infer_type(n.args[1], resolver);
      if (a.is_bool || b.is_bool) type_error("arithmetic needs words", e);
      return Type::word(std::max(a.width, b.width));
    }
    case Op::kEq:
    case Op::kNe: {
      const Type a = infer_type(n.args[0], resolver);
      const Type b = infer_type(n.args[1], resolver);
      if (a.is_bool != b.is_bool) type_error("mixed bool/word comparison", e);
      return Type::boolean();
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      const Type a = infer_type(n.args[0], resolver);
      const Type b = infer_type(n.args[1], resolver);
      if (a.is_bool || b.is_bool) {
        type_error("ordered comparison needs words", e);
      }
      return Type::boolean();
    }
    case Op::kIte: {
      const Type c = infer_type(n.args[0], resolver);
      if (!c.is_bool) type_error("ite condition must be boolean", e);
      const Type a = infer_type(n.args[1], resolver);
      const Type b = infer_type(n.args[2], resolver);
      if (a.is_bool != b.is_bool) type_error("ite branch type mismatch", e);
      if (a.is_bool) return Type::boolean();
      return Type::word(std::max(a.width, b.width));
    }
    case Op::kExtract: {
      const Type t = infer_type(n.args[0], resolver);
      if (t.is_bool) type_error("bit-extract needs a word", e);
      if (n.value >= t.width) type_error("bit index out of range", e);
      return Type::boolean();
    }
  }
  throw std::logic_error("unhandled expression op");
}

// ---------------------------------------------------------------------------
// Concrete evaluation
// ---------------------------------------------------------------------------

namespace {

std::uint64_t mask_width(std::uint64_t v, const Type& t) {
  if (t.is_bool) return v & 1;
  if (t.width >= 64) return v;
  return v & ((1ull << t.width) - 1);
}

}  // namespace

std::uint64_t eval(const Expr& e, const ValueResolver& values,
                   const TypeResolver& types) {
  const ExprNode& n = e.node();
  switch (n.op) {
    case Op::kConst:
      return n.value;
    case Op::kVarRef:
      return mask_width(values(n.name), infer_type(e, types));
    case Op::kNot:
      return eval(n.args[0], values, types) == 0 ? 1 : 0;
    case Op::kBitNot:
      return mask_width(~eval(n.args[0], values, types),
                        infer_type(e, types));
    case Op::kAnd: {
      const auto a = eval(n.args[0], values, types);
      const auto b = eval(n.args[1], values, types);
      return infer_type(e, types).is_bool ? ((a != 0 && b != 0) ? 1 : 0)
                                          : (a & b);
    }
    case Op::kOr: {
      const auto a = eval(n.args[0], values, types);
      const auto b = eval(n.args[1], values, types);
      return infer_type(e, types).is_bool ? ((a != 0 || b != 0) ? 1 : 0)
                                          : (a | b);
    }
    case Op::kXor: {
      const auto a = eval(n.args[0], values, types);
      const auto b = eval(n.args[1], values, types);
      return infer_type(e, types).is_bool ? (((a != 0) != (b != 0)) ? 1 : 0)
                                          : (a ^ b);
    }
    case Op::kImplies:
      return (eval(n.args[0], values, types) == 0 ||
              eval(n.args[1], values, types) != 0)
                 ? 1
                 : 0;
    case Op::kIff:
      return ((eval(n.args[0], values, types) != 0) ==
              (eval(n.args[1], values, types) != 0))
                 ? 1
                 : 0;
    case Op::kAdd:
      return mask_width(eval(n.args[0], values, types) +
                            eval(n.args[1], values, types),
                        infer_type(e, types));
    case Op::kSub:
      return mask_width(eval(n.args[0], values, types) -
                            eval(n.args[1], values, types),
                        infer_type(e, types));
    case Op::kMul:
      return mask_width(eval(n.args[0], values, types) *
                            eval(n.args[1], values, types),
                        infer_type(e, types));
    case Op::kEq:
      return eval(n.args[0], values, types) == eval(n.args[1], values, types);
    case Op::kNe:
      return eval(n.args[0], values, types) != eval(n.args[1], values, types);
    case Op::kLt:
      return eval(n.args[0], values, types) < eval(n.args[1], values, types);
    case Op::kLe:
      return eval(n.args[0], values, types) <= eval(n.args[1], values, types);
    case Op::kGt:
      return eval(n.args[0], values, types) > eval(n.args[1], values, types);
    case Op::kGe:
      return eval(n.args[0], values, types) >= eval(n.args[1], values, types);
    case Op::kIte:
      return eval(n.args[0], values, types) != 0
                 ? eval(n.args[1], values, types)
                 : eval(n.args[2], values, types);
    case Op::kExtract:
      return (eval(n.args[0], values, types) >> n.value) & 1;
  }
  throw std::logic_error("unhandled expression op");
}

// ---------------------------------------------------------------------------
// Signal analysis and substitution
// ---------------------------------------------------------------------------

namespace {

void collect_signals(const Expr& e, std::vector<std::string>& out,
                     std::unordered_set<std::string>& seen) {
  const ExprNode& n = e.node();
  if (n.op == Op::kVarRef) {
    if (seen.insert(n.name).second) out.push_back(n.name);
    return;
  }
  for (const Expr& a : n.args) collect_signals(a, out, seen);
}

}  // namespace

std::vector<std::string> referenced_signals(const Expr& e) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  collect_signals(e, out, seen);
  return out;
}

std::size_t structural_hash(const Expr& e) {
  if (!e.valid()) return 0;
  const ExprNode& n = e.node();
  // splitmix64-style mixing keeps sibling order and op significant.
  std::uint64_t h = static_cast<std::uint64_t>(n.op) + 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  switch (n.op) {
    case Op::kConst:
      mix(n.value);
      mix(n.const_width);
      mix(n.const_is_bool ? 1 : 0);
      break;
    case Op::kVarRef:
      mix(std::hash<std::string>{}(n.name));
      break;
    case Op::kExtract:
      mix(n.value);
      break;
    default:
      break;
  }
  for (const Expr& a : n.args) mix(structural_hash(a));
  return static_cast<std::size_t>(h);
}

bool structural_equal(const Expr& a, const Expr& b) {
  if (a.same_node(b)) return true;
  if (!a.valid() || !b.valid()) return false;
  const ExprNode& na = a.node();
  const ExprNode& nb = b.node();
  if (na.op != nb.op || na.args.size() != nb.args.size()) return false;
  switch (na.op) {
    case Op::kConst:
      if (na.value != nb.value || na.const_width != nb.const_width ||
          na.const_is_bool != nb.const_is_bool) {
        return false;
      }
      break;
    case Op::kVarRef:
      if (na.name != nb.name) return false;
      break;
    case Op::kExtract:
      if (na.value != nb.value) return false;
      break;
    default:
      break;
  }
  for (std::size_t i = 0; i < na.args.size(); ++i) {
    if (!structural_equal(na.args[i], nb.args[i])) return false;
  }
  return true;
}

Expr substitute_signal(const Expr& e, const std::string& signal,
                       const Expr& replacement) {
  const ExprNode& n = e.node();
  if (n.op == Op::kVarRef) {
    return n.name == signal ? replacement : e;
  }
  if (n.args.empty()) return e;

  bool changed = false;
  std::vector<Expr> new_args;
  new_args.reserve(n.args.size());
  for (const Expr& a : n.args) {
    Expr repl = substitute_signal(a, signal, replacement);
    if (!repl.same_node(a)) changed = true;
    new_args.push_back(std::move(repl));
  }
  if (!changed) return e;
  if (n.op == Op::kExtract) {
    return Expr::extract(new_args[0], static_cast<unsigned>(n.value));
  }
  if (n.op == Op::kConst) return e;
  return Expr::make(n.op, std::move(new_args));
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

namespace {

int precedence(Op op) {
  switch (op) {
    case Op::kIte: return 0;
    case Op::kIff: return 1;
    case Op::kImplies: return 2;
    case Op::kOr: return 3;
    case Op::kXor: return 4;
    case Op::kAnd: return 5;
    case Op::kEq: case Op::kNe: case Op::kLt:
    case Op::kLe: case Op::kGt: case Op::kGe: return 6;
    case Op::kAdd: case Op::kSub: return 7;
    case Op::kMul: return 8;
    case Op::kNot: case Op::kBitNot: return 9;
    case Op::kConst: case Op::kVarRef: case Op::kExtract: return 10;
  }
  return 10;
}

const char* op_token(Op op) {
  switch (op) {
    case Op::kAnd: return " & ";
    case Op::kOr: return " | ";
    case Op::kXor: return " ^ ";
    case Op::kImplies: return " -> ";
    case Op::kIff: return " <-> ";
    case Op::kAdd: return " + ";
    case Op::kSub: return " - ";
    case Op::kMul: return " * ";
    case Op::kEq: return " == ";
    case Op::kNe: return " != ";
    case Op::kLt: return " < ";
    case Op::kLe: return " <= ";
    case Op::kGt: return " > ";
    case Op::kGe: return " >= ";
    default: return "?";
  }
}

void print(std::ostream& os, const Expr& e, int parent_prec) {
  const ExprNode& n = e.node();
  const int prec = precedence(n.op);
  const bool need_parens = prec < parent_prec;
  if (need_parens) os << "(";
  switch (n.op) {
    case Op::kConst:
      if (n.const_is_bool) {
        os << (n.value ? "true" : "false");
      } else {
        os << n.value;
      }
      break;
    case Op::kVarRef:
      os << n.name;
      break;
    case Op::kNot:
      os << "!";
      print(os, n.args[0], prec + 1);
      break;
    case Op::kBitNot:
      os << "~";
      print(os, n.args[0], prec + 1);
      break;
    case Op::kIte:
      print(os, n.args[0], prec + 1);
      os << " ? ";
      print(os, n.args[1], prec + 1);
      os << " : ";
      print(os, n.args[2], prec);
      break;
    case Op::kExtract:
      print(os, n.args[0], prec);
      os << "[" << n.value << "]";
      break;
    default:
      print(os, n.args[0], prec + 1);
      os << op_token(n.op);
      print(os, n.args[1], prec + 1);
      break;
  }
  if (need_parens) os << ")";
}

}  // namespace

std::string to_string(const Expr& e) {
  if (!e.valid()) return "<null>";
  std::ostringstream os;
  print(os, e, 0);
  return os.str();
}

}  // namespace covest::expr
