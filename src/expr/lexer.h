// Tokenizer shared by the model-file parser and the CTL property parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace covest::expr {

enum class TokenKind {
  kIdent,   ///< Identifiers and keywords (keywords are contextual).
  kNumber,  ///< Unsigned decimal integer literal.
  kPunct,   ///< Operator or punctuation, in `text`.
  kEnd,     ///< End of input.
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::uint64_t value = 0;  ///< For kNumber.
  int line = 0;
  int column = 0;

  bool is_punct(const std::string& p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool is_ident(const std::string& id) const {
    return kind == TokenKind::kIdent && text == id;
  }
};

/// Splits `source` into tokens. Comments run from `--` or `//` to the end
/// of the line. Throws `std::runtime_error` with line/column context on
/// illegal characters.
std::vector<Token> tokenize(const std::string& source);

/// A token cursor shared between cooperating recursive-descent parsers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}
  explicit TokenStream(const std::string& source)
      : tokens_(tokenize(source)) {}

  const Token& peek(std::size_t ahead = 0) const;
  Token next();
  bool accept_punct(const std::string& p);
  bool accept_ident(const std::string& id);
  /// Consumes a token or throws a located syntax error.
  Token expect_punct(const std::string& p);
  Token expect_ident();

  bool at_end() const { return peek().kind == TokenKind::kEnd; }
  [[noreturn]] void fail(const std::string& message) const;

  /// Snapshot/rewind for the CTL parser's backtracking over '(' — a paren
  /// can open either a temporal subformula or an arithmetic atom.
  std::size_t position() const { return pos_; }
  void rewind(std::size_t pos) { pos_ = pos; }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace covest::expr
