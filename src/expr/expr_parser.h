// Recursive-descent parser for word-level expressions.
//
// The grammar (loosest binding first):
//   expr   := iff [ '?' expr ':' expr ]          -- ternary
//   iff    := imp ( '<->' imp )*
//   imp    := or  [ '->' imp ]                   -- right associative
//   or     := xor ( ('|'|'||') xor )*
//   xor    := and ( '^' and )*
//   and    := cmp ( ('&'|'&&') cmp )*
//   cmp    := add [ ('=='|'!='|'<'|'<='|'>'|'>=') add ]
//   add    := mul ( ('+'|'-') mul )*
//   mul    := unary ( '*' unary )*
//   unary  := ('!'|'~') unary | primary
//   primary:= number | 'true' | 'false' | ident [ '[' number ']' ]
//           | '(' expr ')' | 'ite' '(' expr ',' expr ',' expr ')'
//
// Number literals become word constants of minimal width; binary operators
// zero-extend the narrower operand, so `count + 1` keeps `count`'s width.
//
// The CTL parser reuses this parser for atomic propositions; `stop_idents`
// makes temporal keywords (AX, AG, A, ...) terminate expression parsing.
#pragma once

#include <set>
#include <string>

#include "expr/expr.h"
#include "expr/lexer.h"

namespace covest::expr {

class ExprParser {
 public:
  /// Parses from `stream`; identifiers listed in `stop_idents` are never
  /// consumed as variable references (used for temporal keywords).
  explicit ExprParser(TokenStream& stream,
                      std::set<std::string> stop_idents = {})
      : ts_(stream), stop_idents_(std::move(stop_idents)) {}

  Expr parse();

  /// Parses a comparison-level expression — no top-level boolean
  /// connectives. The CTL parser uses this for atomic propositions, so
  /// that `p -> AX q` keeps `->` at the formula level while `count + 1`
  /// still parses greedily.
  Expr parse_atom();

 private:
  Expr parse_ternary();
  Expr parse_iff();
  Expr parse_implies();
  Expr parse_or();
  Expr parse_xor();
  Expr parse_and();
  Expr parse_cmp();
  Expr parse_add();
  Expr parse_mul();
  Expr parse_unary();
  Expr parse_primary();

  TokenStream& ts_;
  std::set<std::string> stop_idents_;
};

/// Parses a complete standalone expression; throws if trailing tokens remain.
Expr parse_expression(const std::string& text);

}  // namespace covest::expr
