#include "expr/expr_parser.h"

#include <stdexcept>

namespace covest::expr {

namespace {

unsigned min_width(std::uint64_t value) {
  unsigned w = 1;
  while ((value >> w) != 0) ++w;
  return w;
}

}  // namespace

Expr ExprParser::parse() { return parse_ternary(); }

Expr ExprParser::parse_atom() { return parse_cmp(); }

Expr ExprParser::parse_ternary() {
  Expr cond = parse_iff();
  if (ts_.accept_punct("?")) {
    Expr then_e = parse_ternary();
    ts_.expect_punct(":");
    Expr else_e = parse_ternary();
    return ite(cond, then_e, else_e);
  }
  return cond;
}

Expr ExprParser::parse_iff() {
  Expr lhs = parse_implies();
  while (ts_.accept_punct("<->")) {
    lhs = lhs.iff(parse_implies());
  }
  return lhs;
}

Expr ExprParser::parse_implies() {
  Expr lhs = parse_or();
  if (ts_.accept_punct("->")) {
    return lhs.implies(parse_implies());  // Right associative.
  }
  return lhs;
}

Expr ExprParser::parse_or() {
  Expr lhs = parse_xor();
  while (ts_.peek().is_punct("|") || ts_.peek().is_punct("||")) {
    ts_.next();
    lhs = lhs | parse_xor();
  }
  return lhs;
}

Expr ExprParser::parse_xor() {
  Expr lhs = parse_and();
  while (ts_.accept_punct("^")) {
    lhs = lhs ^ parse_and();
  }
  return lhs;
}

Expr ExprParser::parse_and() {
  Expr lhs = parse_cmp();
  while (ts_.peek().is_punct("&") || ts_.peek().is_punct("&&")) {
    ts_.next();
    lhs = lhs & parse_cmp();
  }
  return lhs;
}

Expr ExprParser::parse_cmp() {
  Expr lhs = parse_add();
  for (const char* op : {"==", "!=", "<", "<=", ">", ">="}) {
    if (ts_.peek().is_punct(op)) {
      ts_.next();
      Expr rhs = parse_add();
      if (std::string(op) == "==") return lhs == rhs;
      if (std::string(op) == "!=") return lhs != rhs;
      if (std::string(op) == "<") return lhs < rhs;
      if (std::string(op) == "<=") return lhs <= rhs;
      if (std::string(op) == ">") return lhs > rhs;
      return lhs >= rhs;
    }
  }
  return lhs;
}

Expr ExprParser::parse_add() {
  Expr lhs = parse_mul();
  while (ts_.peek().is_punct("+") || ts_.peek().is_punct("-")) {
    const bool is_add = ts_.next().text == "+";
    Expr rhs = parse_mul();
    lhs = is_add ? lhs + rhs : lhs - rhs;
  }
  return lhs;
}

Expr ExprParser::parse_mul() {
  Expr lhs = parse_unary();
  while (ts_.accept_punct("*")) {
    lhs = lhs * parse_unary();
  }
  return lhs;
}

Expr ExprParser::parse_unary() {
  if (ts_.accept_punct("!")) return !parse_unary();
  if (ts_.accept_punct("~")) return ~parse_unary();
  return parse_primary();
}

Expr ExprParser::parse_primary() {
  const Token& t = ts_.peek();
  if (t.kind == TokenKind::kNumber) {
    ts_.next();
    return Expr::word_const(t.value, min_width(t.value));
  }
  if (t.is_ident("true")) {
    ts_.next();
    return Expr::bool_const(true);
  }
  if (t.is_ident("false")) {
    ts_.next();
    return Expr::bool_const(false);
  }
  if (t.is_ident("ite")) {
    ts_.next();
    ts_.expect_punct("(");
    Expr cond = parse_ternary();
    ts_.expect_punct(",");
    Expr then_e = parse_ternary();
    ts_.expect_punct(",");
    Expr else_e = parse_ternary();
    ts_.expect_punct(")");
    return ite(cond, then_e, else_e);
  }
  if (t.kind == TokenKind::kIdent) {
    if (stop_idents_.count(t.text) != 0) {
      ts_.fail("temporal operator '" + t.text +
               "' cannot appear inside an atomic proposition");
    }
    ts_.next();
    Expr ref = Expr::var(t.text);
    if (ts_.accept_punct("[")) {
      const Token& idx = ts_.peek();
      if (idx.kind != TokenKind::kNumber) ts_.fail("expected bit index");
      ts_.next();
      ts_.expect_punct("]");
      return Expr::extract(ref, static_cast<unsigned>(idx.value));
    }
    return ref;
  }
  if (ts_.accept_punct("(")) {
    Expr inner = parse_ternary();
    ts_.expect_punct(")");
    return inner;
  }
  ts_.fail("expected an expression");
}

Expr parse_expression(const std::string& text) {
  TokenStream ts(text);
  ExprParser parser(ts);
  Expr e = parser.parse();
  if (!ts.at_end()) ts.fail("unexpected trailing input");
  return e;
}

}  // namespace covest::expr
