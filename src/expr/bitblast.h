// Bit-blasting word-level expressions into vectors of BDDs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "expr/expr.h"

namespace covest::expr {

/// Result of blasting: one BDD per bit, LSB first; booleans have one bit.
struct BitVec {
  bool is_bool = true;
  std::vector<bdd::Bdd> bits;

  unsigned width() const { return static_cast<unsigned>(bits.size()); }
};

/// Resolves a signal name to its bit functions (LSB first). Must agree in
/// width with the TypeResolver used for inference.
using BitsResolver = std::function<BitVec(const std::string&)>;

/// Blasts `e` to BDD bits. Throws on type errors (same rules as
/// `infer_type`). Arithmetic wraps modulo 2^W; operands of differing width
/// are zero-extended to the wider width.
BitVec bit_blast(const Expr& e, bdd::BddManager& mgr,
                 const BitsResolver& signals, const TypeResolver& types);

/// Blasts a boolean expression to a single BDD (throws if not boolean).
bdd::Bdd bit_blast_bool(const Expr& e, bdd::BddManager& mgr,
                        const BitsResolver& signals,
                        const TypeResolver& types);

}  // namespace covest::expr
