#include "expr/lexer.h"

#include <cctype>
#include <stdexcept>

namespace covest::expr {

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1, column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  // Multi-character operators, longest first.
  static const char* kMultiOps[] = {"<->", "&&", "||", "->", "==", "!=",
                                    "<=", ">=", ":=", ".."};

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: "--" or "//" to end of line.
    if (i + 1 < source.size() &&
        ((c == '-' && source[i + 1] == '-') ||
         (c == '/' && source[i + 1] == '/'))) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = TokenKind::kIdent;
      t.line = line;
      t.column = column;
      std::size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) ||
              source[j] == '_' || source[j] == '\'')) {
        ++j;
      }
      t.text = source.substr(i, j - i);
      advance(j - i);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t;
      t.kind = TokenKind::kNumber;
      t.line = line;
      t.column = column;
      std::size_t j = i;
      std::uint64_t value = 0;
      while (j < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[j]))) {
        value = value * 10 + static_cast<std::uint64_t>(source[j] - '0');
        ++j;
      }
      t.text = source.substr(i, j - i);
      t.value = value;
      advance(j - i);
      tokens.push_back(std::move(t));
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiOps) {
      const std::size_t len = std::string(op).size();
      if (source.compare(i, len, op) == 0) {
        Token t;
        t.kind = TokenKind::kPunct;
        t.text = op;
        t.line = line;
        t.column = column;
        advance(len);
        tokens.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingleOps = "()[]{};:,?!~&|^+-*<>=.";
    if (kSingleOps.find(c) != std::string::npos) {
      Token t;
      t.kind = TokenKind::kPunct;
      t.text = std::string(1, c);
      t.line = line;
      t.column = column;
      advance(1);
      tokens.push_back(std::move(t));
      continue;
    }
    throw std::runtime_error("lex error at line " + std::to_string(line) +
                             ", column " + std::to_string(column) +
                             ": unexpected character '" + std::string(1, c) +
                             "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

const Token& TokenStream::peek(std::size_t ahead) const {
  const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[idx];
}

Token TokenStream::next() {
  const Token t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::accept_punct(const std::string& p) {
  if (peek().is_punct(p)) {
    next();
    return true;
  }
  return false;
}

bool TokenStream::accept_ident(const std::string& id) {
  if (peek().is_ident(id)) {
    next();
    return true;
  }
  return false;
}

Token TokenStream::expect_punct(const std::string& p) {
  if (!peek().is_punct(p)) fail("expected '" + p + "'");
  return next();
}

Token TokenStream::expect_ident() {
  if (peek().kind != TokenKind::kIdent) fail("expected identifier");
  return next();
}

void TokenStream::fail(const std::string& message) const {
  const Token& t = peek();
  throw std::runtime_error(
      "syntax error at line " + std::to_string(t.line) + ", column " +
      std::to_string(t.column) + ": " + message + " (found '" +
      (t.kind == TokenKind::kEnd ? "<end>" : t.text) + "')");
}

}  // namespace covest::expr
