// Word-level expression AST.
//
// Circuit models (next-state functions, initial constraints, DEFINEs) and
// the atomic propositions of CTL formulas are expressions over named
// signals. Two signal types exist: `bool` and `uint<W>` (an unsigned
// bit-vector with wrap-around arithmetic, W <= 32).
//
// Expressions are immutable and cheaply shareable. They are evaluated in
// three ways:
//   * type inference / checking against a symbol resolver,
//   * concrete evaluation (used by the explicit-state reference engine),
//   * bit-blasting to BDDs (see bitblast.h).
//
// The coverage estimator's "flip the observed signal" substitution
// (Definition 2 of the paper) is `substitute_signal`, which rewrites every
// reference to a signal with an arbitrary replacement expression.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace covest::expr {

/// Type of an expression or signal: boolean or uint<width>.
struct Type {
  bool is_bool = true;
  unsigned width = 1;  ///< Bit width; 1 for booleans.

  static Type boolean() { return Type{true, 1}; }
  static Type word(unsigned width) { return Type{false, width}; }
  bool operator==(const Type&) const = default;
};

std::string to_string(const Type& t);

enum class Op {
  kConst,    // value/width literal
  kVarRef,   // named signal
  kNot,      // boolean negation
  kBitNot,   // bitwise complement (word)
  kAnd,      // boolean or bitwise conjunction
  kOr,       // boolean or bitwise disjunction
  kXor,      // boolean or bitwise exclusive-or
  kImplies,  // boolean implication
  kIff,      // boolean equivalence
  kAdd,      // word addition mod 2^W
  kSub,      // word subtraction mod 2^W
  kMul,      // word multiplication mod 2^W
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons -> bool
  kIte,      // cond ? then : else
  kExtract,  // single-bit extract: word[i] -> bool
};

class Expr;
struct ExprNode {
  Op op;
  std::uint64_t value = 0;     ///< kConst: literal value. kExtract: bit index.
  unsigned const_width = 0;    ///< kConst: declared width (0 = boolean).
  bool const_is_bool = false;  ///< kConst: boolean literal?
  std::string name;            ///< kVarRef: signal name.
  std::vector<Expr> args;
};

/// Immutable shared-AST expression handle.
class Expr {
 public:
  Expr() = default;

  bool valid() const { return node_ != nullptr; }
  const ExprNode& node() const { return *node_; }
  Op op() const { return node_->op; }

  // -- Factories ------------------------------------------------------------

  static Expr bool_const(bool value);
  static Expr word_const(std::uint64_t value, unsigned width);
  static Expr var(std::string name);
  static Expr make(Op op, std::vector<Expr> args);
  static Expr extract(Expr word, unsigned bit);

  // Named combinators (boolean).
  Expr implies(const Expr& rhs) const { return make(Op::kImplies, {*this, rhs}); }
  Expr iff(const Expr& rhs) const { return make(Op::kIff, {*this, rhs}); }

  /// Structural identity of the shared AST node (not semantic equality;
  /// `operator==` below builds an equality *expression* instead).
  bool same_node(const Expr& rhs) const { return node_ == rhs.node_; }

 private:
  explicit Expr(std::shared_ptr<const ExprNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<const ExprNode> node_;
};

/// cond ? then_e : else_e (types of the branches must agree).
Expr ite(const Expr& cond, const Expr& then_e, const Expr& else_e);

// Operator sugar for the builder API used by examples and bench circuits.
inline Expr operator!(const Expr& e) { return Expr::make(Op::kNot, {e}); }
inline Expr operator~(const Expr& e) { return Expr::make(Op::kBitNot, {e}); }
inline Expr operator&(const Expr& a, const Expr& b) { return Expr::make(Op::kAnd, {a, b}); }
inline Expr operator|(const Expr& a, const Expr& b) { return Expr::make(Op::kOr, {a, b}); }
inline Expr operator^(const Expr& a, const Expr& b) { return Expr::make(Op::kXor, {a, b}); }
inline Expr operator+(const Expr& a, const Expr& b) { return Expr::make(Op::kAdd, {a, b}); }
inline Expr operator-(const Expr& a, const Expr& b) { return Expr::make(Op::kSub, {a, b}); }
inline Expr operator*(const Expr& a, const Expr& b) { return Expr::make(Op::kMul, {a, b}); }
inline Expr operator==(const Expr& a, const Expr& b) { return Expr::make(Op::kEq, {a, b}); }
inline Expr operator!=(const Expr& a, const Expr& b) { return Expr::make(Op::kNe, {a, b}); }
inline Expr operator<(const Expr& a, const Expr& b) { return Expr::make(Op::kLt, {a, b}); }
inline Expr operator<=(const Expr& a, const Expr& b) { return Expr::make(Op::kLe, {a, b}); }
inline Expr operator>(const Expr& a, const Expr& b) { return Expr::make(Op::kGt, {a, b}); }
inline Expr operator>=(const Expr& a, const Expr& b) { return Expr::make(Op::kGe, {a, b}); }

// -- Analysis ---------------------------------------------------------------

/// Resolves a signal name to its type; returns nullopt for unknown names.
using TypeResolver = std::function<std::optional<Type>(const std::string&)>;

/// Infers the expression type, throwing `std::runtime_error` with a
/// human-readable message on any type error or unknown signal.
Type infer_type(const Expr& e, const TypeResolver& resolver);

/// Resolves a signal name to a concrete value (booleans as 0/1).
using ValueResolver = std::function<std::uint64_t(const std::string&)>;

/// Evaluates under a concrete assignment. The expression must be
/// well-typed; word results are truncated to their inferred width.
std::uint64_t eval(const Expr& e, const ValueResolver& values,
                   const TypeResolver& types);

/// All distinct signal names referenced by `e`, in first-use order.
std::vector<std::string> referenced_signals(const Expr& e);

/// Structural hash: equal for structurally identical expressions even when
/// the shared AST nodes differ (e.g. the same atom parsed twice).
std::size_t structural_hash(const Expr& e);

/// Structural equality over op/name/constant/bit-index/operands. Invalid
/// handles compare equal to each other only.
bool structural_equal(const Expr& a, const Expr& b);

/// Rewrites every reference to `signal` with `replacement`.
/// This implements the paper's observability flip: for a boolean observed
/// signal q the replacement is `!q`; for bit j of a word signal w it is
/// `w ^ (1 << j)`.
Expr substitute_signal(const Expr& e, const std::string& signal,
                       const Expr& replacement);

/// Pretty-prints with minimal parentheses.
std::string to_string(const Expr& e);

}  // namespace covest::expr
