#include "expr/bitblast.h"

#include <cassert>
#include <stdexcept>

namespace covest::expr {

namespace {

using bdd::Bdd;
using bdd::BddManager;

void zero_extend(BitVec& v, unsigned width, BddManager& mgr) {
  while (v.bits.size() < width) v.bits.push_back(mgr.bdd_false());
}

/// (a < b) as a ripple comparison, LSB to MSB: a higher differing bit
/// overrides the verdict of the bits below it.
Bdd less_than(const BitVec& a, const BitVec& b, BddManager& mgr) {
  Bdd lt = mgr.bdd_false();
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    lt = ite(a.bits[i] ^ b.bits[i], b.bits[i], lt);
  }
  return lt;
}

Bdd equals(const BitVec& a, const BitVec& b, BddManager& mgr) {
  Bdd eq = mgr.bdd_true();
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    eq &= a.bits[i].iff(b.bits[i]);
  }
  return eq;
}

BitVec add(const BitVec& a, const BitVec& b, BddManager& mgr, bool subtract) {
  BitVec result;
  result.is_bool = false;
  Bdd carry = subtract ? mgr.bdd_true() : mgr.bdd_false();
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    const Bdd bi = subtract ? !b.bits[i] : b.bits[i];
    result.bits.push_back(a.bits[i] ^ bi ^ carry);
    carry = (a.bits[i] & bi) | (carry & (a.bits[i] ^ bi));
  }
  return result;
}

BitVec multiply(const BitVec& a, const BitVec& b, BddManager& mgr) {
  // Shift-and-add of partial products, truncated to the operand width.
  const unsigned width = a.width();
  BitVec acc;
  acc.is_bool = false;
  acc.bits.assign(width, mgr.bdd_false());
  for (unsigned shift = 0; shift < width; ++shift) {
    BitVec partial;
    partial.is_bool = false;
    for (unsigned i = 0; i < width; ++i) {
      partial.bits.push_back(i >= shift ? (a.bits[i - shift] & b.bits[shift])
                                        : mgr.bdd_false());
    }
    acc = add(acc, partial, mgr, /*subtract=*/false);
  }
  return acc;
}

}  // namespace

BitVec bit_blast(const Expr& e, bdd::BddManager& mgr,
                 const BitsResolver& signals, const TypeResolver& types) {
  const ExprNode& n = e.node();
  const auto blast = [&](const Expr& sub) {
    return bit_blast(sub, mgr, signals, types);
  };
  const auto blast_pair = [&](BitVec& a, BitVec& b) {
    a = blast(n.args[0]);
    b = blast(n.args[1]);
    const unsigned w = std::max(a.width(), b.width());
    zero_extend(a, w, mgr);
    zero_extend(b, w, mgr);
  };

  switch (n.op) {
    case Op::kConst: {
      BitVec v;
      v.is_bool = n.const_is_bool;
      const unsigned width = n.const_is_bool ? 1 : n.const_width;
      for (unsigned i = 0; i < width; ++i) {
        v.bits.push_back((n.value >> i) & 1 ? mgr.bdd_true()
                                            : mgr.bdd_false());
      }
      return v;
    }
    case Op::kVarRef: {
      BitVec v = signals(n.name);
      if (v.bits.empty()) {
        throw std::runtime_error("bit_blast: unknown signal '" + n.name + "'");
      }
      return v;
    }
    case Op::kNot: {
      BitVec v = blast(n.args[0]);
      return BitVec{true, {!v.bits[0]}};
    }
    case Op::kBitNot: {
      BitVec v = blast(n.args[0]);
      for (Bdd& bit : v.bits) bit = !bit;
      return v;
    }
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      BitVec a, b;
      blast_pair(a, b);
      BitVec result;
      result.is_bool = a.is_bool && b.is_bool;
      for (unsigned i = 0; i < a.width(); ++i) {
        switch (n.op) {
          case Op::kAnd: result.bits.push_back(a.bits[i] & b.bits[i]); break;
          case Op::kOr: result.bits.push_back(a.bits[i] | b.bits[i]); break;
          default: result.bits.push_back(a.bits[i] ^ b.bits[i]); break;
        }
      }
      return result;
    }
    case Op::kImplies: {
      BitVec a = blast(n.args[0]), b = blast(n.args[1]);
      return BitVec{true, {a.bits[0].implies(b.bits[0])}};
    }
    case Op::kIff: {
      BitVec a = blast(n.args[0]), b = blast(n.args[1]);
      return BitVec{true, {a.bits[0].iff(b.bits[0])}};
    }
    case Op::kAdd:
    case Op::kSub: {
      BitVec a, b;
      blast_pair(a, b);
      return add(a, b, mgr, n.op == Op::kSub);
    }
    case Op::kMul: {
      BitVec a, b;
      blast_pair(a, b);
      return multiply(a, b, mgr);
    }
    case Op::kEq:
    case Op::kNe: {
      BitVec a, b;
      blast_pair(a, b);
      const Bdd eq = equals(a, b, mgr);
      return BitVec{true, {n.op == Op::kEq ? eq : !eq}};
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      BitVec a, b;
      blast_pair(a, b);
      switch (n.op) {
        case Op::kLt: return BitVec{true, {less_than(a, b, mgr)}};
        case Op::kGt: return BitVec{true, {less_than(b, a, mgr)}};
        case Op::kLe: return BitVec{true, {!less_than(b, a, mgr)}};
        default: return BitVec{true, {!less_than(a, b, mgr)}};
      }
    }
    case Op::kIte: {
      const Bdd cond = blast(n.args[0]).bits[0];
      BitVec a = blast(n.args[1]);
      BitVec b = blast(n.args[2]);
      const unsigned w = std::max(a.width(), b.width());
      zero_extend(a, w, mgr);
      zero_extend(b, w, mgr);
      BitVec result;
      result.is_bool = a.is_bool && b.is_bool;
      for (unsigned i = 0; i < w; ++i) {
        result.bits.push_back(ite(cond, a.bits[i], b.bits[i]));
      }
      return result;
    }
    case Op::kExtract: {
      BitVec v = blast(n.args[0]);
      if (n.value >= v.bits.size()) {
        throw std::runtime_error("bit_blast: extract index out of range");
      }
      return BitVec{true, {v.bits[static_cast<std::size_t>(n.value)]}};
    }
  }
  throw std::logic_error("bit_blast: unhandled op");
}

bdd::Bdd bit_blast_bool(const Expr& e, bdd::BddManager& mgr,
                        const BitsResolver& signals,
                        const TypeResolver& types) {
  const Type t = infer_type(e, types);
  if (!t.is_bool) {
    throw std::runtime_error("expected a boolean expression: " + to_string(e));
  }
  return bit_blast(e, mgr, signals, types).bits[0];
}

}  // namespace covest::expr
