// Brute-force Definition-3 coverage: the reference implementation.
//
// Definition 3 of the paper: given M |= f, state s is covered iff the dual
// FSM M̂_s — identical to M except the observed signal's labelling is
// flipped at s (Definition 2) — violates f. This module computes that set
// literally, one model-check per reachable state, on the explicit-state
// engine.
//
// Two modes:
//   * transformed (default): checks φ(f), the observability-transformed
//     formula, flipping the primed twin q'. By the paper's Correctness
//     Theorem this equals the symbolic Table-1 algorithm — the property
//     the oracle tests enforce.
//   * naive: checks the original f, flipping q itself. This is the
//     "faithful but unintuitive" semantics of Section 2.1 under which
//     eventuality properties like Figure 2's A[p1 U q] get zero coverage;
//     the ablation benchmark contrasts the two modes.
#pragma once

#include <vector>

#include "core/observed.h"
#include "core/transform.h"
#include "ctl/ctl.h"
#include "xstate/explicit_model.h"

namespace covest::core {

struct Def3Result {
  /// Explicit state indices of covered states (ascending).
  std::vector<std::size_t> covered;
  /// The formula the dual machines were checked against (φ(f) or f).
  ctl::Formula evaluated;
};

/// Computes the Definition-3 covered set by brute force. Throws if the
/// (unflipped) model does not satisfy the formula.
Def3Result definition3_covered(const xstate::ExplicitModel& xm,
                               const ctl::Formula& f, const ObservedSignal& q,
                               bool use_transform = true);

}  // namespace covest::core
