#include "core/transform.h"

#include <stdexcept>

namespace covest::core {

using ctl::CtlOp;
using ctl::Formula;
using expr::Expr;

namespace {

/// Expands DEFINEs (preserving the observed define, if any) and swaps
/// observed occurrences for the primed routing expression.
Expr prime_atom(const Expr& atom, const ObservedSignal& q,
                const model::Model& model) {
  const Expr expanded = model.expand_defines(atom, &q.name);
  return expr::substitute_signal(expanded, q.name,
                                 primed_replacement(model, q));
}

/// `!g` as a propositional negation of a collapsed formula. The Until
/// rule needs `f & !g` where both sides are formulas; since acceptable
/// Until operands can be temporal, we express the conjunct structurally.
Formula not_formula(const Formula& g) {
  if (g.op() == CtlOp::kProp) return Formula::prop(!g.prop());
  return !g;
}

Formula transform(const Formula& f, const ObservedSignal& q,
                  const model::Model& model) {
  switch (f.op()) {
    case CtlOp::kProp:
      return Formula::prop(prime_atom(f.prop(), q, model));
    case CtlOp::kImplies:
      // Antecedent keeps the plain q: it selects *where* to check, and
      // does not itself contribute coverage.
      return f.arg(0).implies(transform(f.arg(1), q, model));
    case CtlOp::kAX:
      return Formula::AX(transform(f.arg(0), q, model));
    case CtlOp::kAG:
      return Formula::AG(transform(f.arg(0), q, model));
    case CtlOp::kAF: {
      // AF f == A[true U f]: the traverse part degenerates, leaving
      // AF f & A[!f U φ(f)].
      const Formula& body = f.arg(0);
      return Formula::AF(body) &
             Formula::AU(not_formula(body), transform(body, q, model));
    }
    case CtlOp::kAU: {
      const Formula& lhs = f.arg(0);
      const Formula& rhs = f.arg(1);
      const Formula first =
          Formula::AU(transform(lhs, q, model), rhs);
      const Formula second = Formula::AU(lhs & not_formula(rhs),
                                         transform(rhs, q, model));
      return first & second;
    }
    case CtlOp::kAnd:
      return transform(f.arg(0), q, model) & transform(f.arg(1), q, model);
    default:
      throw std::logic_error("transform: operator outside acceptable ACTL");
  }
}

}  // namespace

Formula observability_transform(const Formula& f, const ObservedSignal& q,
                                const model::Model& model) {
  const Formula collapsed = ctl::collapse_propositional(f);
  const std::string violation = ctl::acceptable_actl_violation(collapsed);
  if (!violation.empty()) {
    throw std::runtime_error(
        "observability transform requires the acceptable ACTL subset: " +
        violation + " in '" + ctl::to_string(f) + "'");
  }
  return transform(collapsed, q, model);
}

}  // namespace covest::core
