#include "core/coverage.h"

#include <stdexcept>

#include "util/governance.h"

namespace covest::core {

using bdd::Bdd;
using ctl::CtlOp;
using ctl::Formula;
using expr::Expr;

CoverageEstimator::CoverageEstimator(ctl::ModelChecker& checker,
                                     CoverageOptions options)
    : checker_(checker), fsm_(checker.fsm()), options_(options) {}

// ---------------------------------------------------------------------------
// Coverage space and fair restriction
// ---------------------------------------------------------------------------

const Bdd& CoverageEstimator::coverage_space() {
  // The optional is engaged at most once, so the returned reference
  // stays valid after the lock is released. Session::run computes it
  // before fanning estimation out, so shared-mode threads always hit.
  std::lock_guard<std::recursive_mutex> lock(cache_mu_);
  if (!space_) {
    // States reachable along fair paths: the same fair-restricted BFS the
    // covered-set recursion uses (and caches), so suites pay for
    // reachability exactly once.
    Bdd start = fsm_.initial_states();
    if (options_.restrict_to_fair) start &= checker_.fair_states();
    Bdd space = reachable_fair(start);
    if (options_.exclude_dontcares) space -= fsm_.dontcare();
    space_ = space;
  }
  return *space_;
}

Bdd CoverageEstimator::forward_fair(const Bdd& s) {
  Bdd next = fsm_.forward(s);
  if (options_.restrict_to_fair) next &= checker_.fair_states();
  return next;
}

Bdd CoverageEstimator::reachable_fair(const Bdd& s) {
  {
    std::lock_guard<std::recursive_mutex> lock(cache_mu_);
    const auto it = reach_cache_.find(s.index());
    if (it != reach_cache_.end() && it->second.from == s) {
      return it->second.result;
    }
  }
  // Computed outside the lock: a racing thread may redo this fix-point,
  // but both arrive at the same canonical BDD. Under kChaining the loop
  // uses the accumulated-set discipline (same least fixpoint, chained
  // intermediates); otherwise frontier BFS.
  Bdd reached = s;
  if (options_.image_strategy == image::ImageStrategy::kChaining) {
    while (true) {
      covest::governor_tick();
      const Bdd next = reached | forward_fair(reached);
      if (next == reached) break;
      reached = next;
    }
  } else {
    Bdd frontier = s;
    while (!frontier.is_false()) {
      covest::governor_tick();
      frontier = forward_fair(frontier) - reached;
      reached |= frontier;
    }
  }
  std::lock_guard<std::recursive_mutex> lock(cache_mu_);
  reach_cache_[s.index()] = ReachEntry{s, reached};
  return reached;
}

// ---------------------------------------------------------------------------
// Table-1 primitives
// ---------------------------------------------------------------------------

Bdd CoverageEstimator::depend(const Expr& atom, const ObservedSignal& q) {
  // depend(b) = T(b) ∩ ¬T(b[q -> !q]): states where b holds but flipping
  // the observed signal's label falsifies it. The flip substitution runs
  // on the define-expanded atom (preserving an observed DEFINE) so every
  // occurrence of q is rewritten.
  const model::Model& m = fsm_.model();
  const Expr expanded = m.expand_defines(atom, &q.name);
  const Expr flipped =
      expr::substitute_signal(expanded, q.name, flip_replacement(m, q));
  const Bdd t = fsm_.blast_bool(expanded);
  const Bdd t_flipped = fsm_.blast_bool(flipped);
  return t - t_flipped;
}

namespace {

std::uint64_t triple_key(bdd::NodeIndex a, bdd::NodeIndex b,
                         bdd::NodeIndex c) {
  std::uint64_t h = a;
  h = h * 0x9e3779b97f4a7c15ull + b;
  h = h * 0x9e3779b97f4a7c15ull + c;
  return h;
}

}  // namespace

Bdd CoverageEstimator::traverse(const Bdd& s0, const Bdd& t1, const Bdd& t2) {
  // lfp X. (S0 ∧ T(f1) ∧ ¬T(f2)) ∪ (forward(X) ∧ T(f1) ∧ ¬T(f2)):
  // states on the f1-and-not-yet-f2 prefixes of paths from S0.
  const std::uint64_t key = triple_key(s0.index(), t1.index(), t2.index());
  {
    std::lock_guard<std::recursive_mutex> lock(cache_mu_);
    for (const TraverseEntry& e : traverse_cache_[key]) {
      if (e.s0 == s0 && e.t1 == t1 && e.t2 == t2) return e.result;
    }
  }
  const Bdd band = t1 - t2;
  Bdd acc = s0 & band;
  if (options_.image_strategy == image::ImageStrategy::kChaining) {
    // Accumulated-set discipline of lfp X. (S0∧band) ∪ (forward(X)∧band).
    while (true) {
      covest::governor_tick();
      const Bdd next = acc | (forward_fair(acc) & band);
      if (next == acc) break;
      acc = next;
    }
  } else {
    Bdd frontier = acc;
    while (!frontier.is_false()) {
      covest::governor_tick();
      frontier = (forward_fair(frontier) & band) - acc;
      acc |= frontier;
    }
  }
  std::lock_guard<std::recursive_mutex> lock(cache_mu_);
  auto& bucket = traverse_cache_[key];  // Re-resolved: the map may have
                                        // rehashed while we computed.
  for (const TraverseEntry& e : bucket) {
    if (e.s0 == s0 && e.t1 == t1 && e.t2 == t2) return e.result;
  }
  bucket.push_back(TraverseEntry{s0, t1, t2, acc});
  return acc;
}

Bdd CoverageEstimator::firstreached(const Bdd& s0, const Bdd& t2) {
  // States satisfying f2 that some path from S0 reaches without passing
  // through an earlier f2 state.
  const std::uint64_t key = triple_key(s0.index(), t2.index(), 0);
  {
    std::lock_guard<std::recursive_mutex> lock(cache_mu_);
    for (const FirstEntry& e : first_cache_[key]) {
      if (e.s0 == s0 && e.t2 == t2) return e.result;
    }
  }
  // Always layered BFS, whatever the image strategy: the recurrence
  // prunes paths *through* t2 states via the frontier, so the visit
  // discipline is part of the definition (unlike the plain fixpoints
  // above). Strategies still differ inside each forward_fair step.
  Bdd first = s0 & t2;
  Bdd visited = s0;
  Bdd frontier = s0 - t2;
  while (!frontier.is_false()) {
    covest::governor_tick();
    const Bdd next = forward_fair(frontier) - visited;
    visited |= next;
    first |= next & t2;
    frontier = next - t2;
  }
  std::lock_guard<std::recursive_mutex> lock(cache_mu_);
  auto& bucket = first_cache_[key];
  for (const FirstEntry& e : bucket) {
    if (e.s0 == s0 && e.t2 == t2) return e.result;
  }
  bucket.push_back(FirstEntry{s0, t2, first});
  return first;
}

// ---------------------------------------------------------------------------
// The recursive covered-set computation (Table 1)
// ---------------------------------------------------------------------------

Bdd CoverageEstimator::covered_rec(const Bdd& s0, const Formula& f,
                                   const ObservedSignal& q) {
  if (s0.is_false()) return fsm_.mgr().bdd_false();
  switch (f.op()) {
    case CtlOp::kProp:
      return s0 & depend(f.prop(), q);
    case CtlOp::kImplies: {
      if (f.arg(0).op() != CtlOp::kProp) {
        throw std::logic_error("implication antecedent must be an atom");
      }
      return covered_rec(s0 & checker_.sat(f.arg(0)), f.arg(1), q);
    }
    case CtlOp::kAX:
      return covered_rec(forward_fair(s0), f.arg(0), q);
    case CtlOp::kAG:
      return covered_rec(reachable_fair(s0), f.arg(0), q);
    case CtlOp::kAF: {
      // AF f == A[true U f]; the traverse term contributes nothing
      // (its operand `true` never depends on q).
      return covered_rec(firstreached(s0, checker_.sat(f.arg(0))), f.arg(0),
                         q);
    }
    case CtlOp::kAU: {
      const Bdd t1 = checker_.sat(f.arg(0));
      const Bdd t2 = checker_.sat(f.arg(1));
      const Bdd from_lhs = covered_rec(traverse(s0, t1, t2), f.arg(0), q);
      const Bdd from_rhs = covered_rec(firstreached(s0, t2), f.arg(1), q);
      return from_lhs | from_rhs;
    }
    case CtlOp::kAnd:
      return covered_rec(s0, f.arg(0), q) | covered_rec(s0, f.arg(1), q);
    default:
      throw std::logic_error(
          "covered_rec: operator outside the acceptable ACTL subset");
  }
}

Bdd CoverageEstimator::covered_set(const Formula& f, const ObservedSignal& q) {
  const Formula collapsed = ctl::collapse_propositional(f);
  const std::string violation = ctl::acceptable_actl_violation(collapsed);
  if (!violation.empty()) {
    throw std::runtime_error("coverage needs the acceptable ACTL subset: " +
                             violation + " in '" + ctl::to_string(f) + "'");
  }
  if (!checker_.holds(collapsed)) {
    if (options_.require_holds) {
      throw std::runtime_error(
          "coverage is defined for verified properties, but the model "
          "does not satisfy '" +
          ctl::to_string(f) + "'");
    }
    return fsm_.mgr().bdd_false();
  }

  Bdd start = fsm_.initial_states();
  if (options_.restrict_to_fair) start &= checker_.fair_states();
  return covered_rec(start, collapsed, q);
}

// ---------------------------------------------------------------------------
// Aggregation and reporting
// ---------------------------------------------------------------------------

namespace {

/// A property can only cover states for signals its atoms mention; skip
/// the rest so `num_properties` matches the paper's per-signal counts.
bool mentions_signal(const Formula& f, const std::string& name,
                     const model::Model& m) {
  if (f.op() == CtlOp::kProp) {
    const Expr expanded = m.expand_defines(f.prop(), &name);
    for (const std::string& ref : expr::referenced_signals(expanded)) {
      if (ref == name) return true;
    }
    return false;
  }
  for (std::size_t i = 0; i < f.arity(); ++i) {
    if (mentions_signal(f.arg(i), name, m)) return true;
  }
  return false;
}

}  // namespace

SignalCoverage CoverageEstimator::coverage(
    const std::vector<Formula>& properties, const ObservedSignal& q) {
  SignalCoverage result;
  result.signal = q;
  result.covered = fsm_.mgr().bdd_false();
  for (const Formula& f : properties) {
    const Formula collapsed = ctl::collapse_propositional(f);
    if (!mentions_signal(collapsed, q.name, fsm_.model())) continue;
    ++result.num_properties;
    result.covered |= covered_set(collapsed, q);
  }
  const Bdd in_space = result.covered & coverage_space();
  result.covered_count = fsm_.count_states(in_space);
  const double space = fsm_.count_states(coverage_space());
  result.percent = space == 0.0 ? 100.0 : 100.0 * result.covered_count / space;
  return result;
}

SignalCoverage CoverageEstimator::coverage(
    const std::vector<Formula>& properties,
    const std::vector<ObservedSignal>& group) {
  SignalCoverage merged;
  merged.covered = fsm_.mgr().bdd_false();
  if (group.empty()) return merged;
  merged.signal = group.front();
  for (const ObservedSignal& q : group) {
    const SignalCoverage sc = coverage(properties, q);
    merged.covered |= sc.covered;
    merged.num_properties = std::max(merged.num_properties,
                                     sc.num_properties);
  }
  if (group.size() > 1) {
    merged.signal.bit.reset();  // Whole-word entry.
  }
  const double space = fsm_.count_states(coverage_space());
  const Bdd in_space = merged.covered & coverage_space();
  merged.covered_count = fsm_.count_states(in_space);
  merged.percent =
      space == 0.0 ? 100.0 : 100.0 * merged.covered_count / space;
  return merged;
}

CoverageReport CoverageEstimator::report(
    const std::vector<Formula>& properties,
    const std::vector<std::vector<ObservedSignal>>& groups) {
  CoverageReport rep;
  rep.coverage_space = coverage_space();
  rep.space_count = fsm_.count_states(rep.coverage_space);
  for (const auto& group : groups) {
    if (group.empty()) continue;
    rep.signals.push_back(coverage(properties, group));
  }
  return rep;
}

Bdd CoverageEstimator::uncovered(const Bdd& covered) {
  return coverage_space() - covered;
}

std::vector<std::string> CoverageEstimator::uncovered_examples(
    const Bdd& covered, std::size_t limit) {
  return fsm_.format_states(uncovered(covered), limit);
}

std::optional<fsm::Trace> CoverageEstimator::trace_to_uncovered(
    const Bdd& covered) {
  const Bdd holes = uncovered(covered);
  if (holes.is_false()) return std::nullopt;
  return fsm::shortest_trace(fsm_, fsm_.initial_states(), holes);
}

}  // namespace covest::core
