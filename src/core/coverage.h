// Symbolic coverage estimation for model checking — the contribution of
// the paper (Section 3, Table 1).
//
// Given properties verified on an FSM and an observed signal q, the
// estimator computes the set of *covered states*: reachable states where
// the value of q is essential to the verified properties (flipping q's
// label there falsifies the observability-transformed property,
// Definitions 2-5). Coverage (Definition 4) is
//
//     |covered ∩ coverage space| / |coverage space| * 100,
//
// where the coverage space is the set of reachable states, restricted to
// fair paths when the model declares FAIRNESS constraints (Section 4.3)
// and excluding user DONTCARE states (Section 4.2).
//
// The algorithm recurses over the *original* formula (Table 1):
//
//   C(S0, b)          = S0 ∩ depend(b)
//   C(S0, b -> f)     = C(S0 ∩ T(b), f)
//   C(S0, AX f)       = C(forward(S0), f)
//   C(S0, AG f)       = C(reachable(S0), f)
//   C(S0, A[f U g])   = C(traverse(S0,f,g), f) ∪ C(firstreached(S0,g), g)
//   C(S0, f & g)      = C(S0, f) ∪ C(S0, g)
//
// with depend(b) = T(b) ∩ ¬T(b[q -> !q]); T(·) is the model checker's
// satisfaction set, memoized across verification and coverage (the reuse
// suggested in Section 3). All traversals are confined to fair states.
//
// Everything here has the same asymptotic cost as symbolic model
// checking: fix-point computations over BDDs.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "core/observed.h"
#include "ctl/checker.h"
#include "ctl/ctl.h"
#include "fsm/trace.h"
#include "image/image.h"

namespace covest::core {

struct CoverageOptions {
  /// Intersect the coverage space with fair-path states (Section 4.3).
  bool restrict_to_fair = true;
  /// Exclude DONTCARE states from the coverage space (Section 4.2).
  bool exclude_dontcares = true;
  /// Throw if asked to cover a property the model does not satisfy
  /// (Definition 3 presupposes M |= f). When false, failing properties
  /// contribute an empty covered set instead.
  bool require_holds = true;
  /// How images/preimages traverse the partitioned transition relation
  /// (image/image.h). Results are byte-identical across strategies;
  /// only the intermediates — and so the wall time — differ.
  image::ImageStrategy image_strategy = image::ImageStrategy::kPartitioned;
  /// Work-stealing parallelism *inside* each BDD operation
  /// (bdd/parallel.h): total worker threads for apply/exists/
  /// and_exists fork/join recursion; 0 = serial. Byte-identical to the
  /// serial path by canonicity at every worker count.
  std::size_t parallel_apply = 0;
};

/// Coverage of one observed signal for a property suite.
struct SignalCoverage {
  ObservedSignal signal;
  std::size_t num_properties = 0;  ///< Properties that involved the signal.
  bdd::Bdd covered;                ///< Union of per-property covered sets.
  double covered_count = 0.0;      ///< |covered ∩ space|.
  double percent = 0.0;            ///< Definition 4.
};

/// Suite-level report: one row per observed signal (the shape of the
/// paper's Table 2).
struct CoverageReport {
  double space_count = 0.0;  ///< |coverage space|.
  bdd::Bdd coverage_space;
  std::vector<SignalCoverage> signals;
};

class CoverageEstimator {
 public:
  /// Shares the checker's FSM and memoized satisfaction sets.
  explicit CoverageEstimator(ctl::ModelChecker& checker,
                             CoverageOptions options = {});

  const CoverageOptions& options() const { return options_; }

  /// Covered set of a single verified property for observed signal `q`
  /// (Table 1, from the initial states). The result equals the
  /// Definition-3 covered set of the observability-transformed formula
  /// (Correctness Theorem), and is contained in the coverage space.
  bdd::Bdd covered_set(const ctl::Formula& f, const ObservedSignal& q);

  /// Union of covered sets over a property suite, with the Definition-4
  /// percentage for the coverage space.
  SignalCoverage coverage(const std::vector<ctl::Formula>& properties,
                          const ObservedSignal& q);

  /// One Table-2 row for a group of observed bits: the union of the
  /// per-bit covered sets (a word signal's row unions its bits,
  /// Section 2). This is the single per-signal aggregation — `report()`
  /// and the engine facade both delegate here.
  SignalCoverage coverage(const std::vector<ctl::Formula>& properties,
                          const std::vector<ObservedSignal>& group);

  /// Multi-signal report (one Table-2 row per observed signal). A word
  /// signal's entry is the union over its bits.
  CoverageReport report(const std::vector<ctl::Formula>& properties,
                        const std::vector<std::vector<ObservedSignal>>& groups);

  /// Reachable (∩ fair ∩ ¬dontcare per options) states. Cached.
  const bdd::Bdd& coverage_space();

  /// Uncovered states for a covered set: space − covered.
  bdd::Bdd uncovered(const bdd::Bdd& covered);

  /// Human-readable sample of uncovered states ("sig=val ..."), at most
  /// `limit` entries — the paper's uncovered-state listing.
  std::vector<std::string> uncovered_examples(const bdd::Bdd& covered,
                                              std::size_t limit);

  /// Shortest input trace from an initial state to some uncovered state
  /// (Section 3's breadth-first trace generation); nullopt when fully
  /// covered.
  std::optional<fsm::Trace> trace_to_uncovered(const bdd::Bdd& covered);

 private:
  // Table-1 primitives (all confined to fair states).
  bdd::Bdd depend(const expr::Expr& atom, const ObservedSignal& q);
  bdd::Bdd forward_fair(const bdd::Bdd& s);
  bdd::Bdd reachable_fair(const bdd::Bdd& s);
  bdd::Bdd traverse(const bdd::Bdd& s0, const bdd::Bdd& t1,
                    const bdd::Bdd& t2);
  bdd::Bdd firstreached(const bdd::Bdd& s0, const bdd::Bdd& t2);
  bdd::Bdd covered_rec(const bdd::Bdd& s0, const ctl::Formula& f,
                       const ObservedSignal& q);

  ctl::ModelChecker& checker_;
  const fsm::SymbolicFsm& fsm_;
  CoverageOptions options_;
  /// Guards `space_` and the fix-point caches below: concurrent
  /// estimator threads (shared-mode BddManager) look up and insert
  /// memoized fix-points; the fix-points themselves are computed
  /// *outside* the lock so threads don't serialize on the expensive
  /// traversals — two threads may race to compute the same entry, in
  /// which case both produce the identical canonical BDD and the
  /// insertions are idempotent. Recursive because `coverage_space`
  /// computes through `reachable_fair` while holding it.
  mutable std::recursive_mutex cache_mu_;
  std::optional<bdd::Bdd> space_;

  // Fix-point caches: property suites share start sets (every AG property
  // traverses reachable(init)), so memoizing the traversal primitives
  // keeps suite-level estimation linear in the number of properties.
  // Keys hold the operand handles alive so node indices cannot be reused
  // while an entry exists.
  struct ReachEntry {
    bdd::Bdd from;
    bdd::Bdd result;
  };
  std::unordered_map<bdd::NodeIndex, ReachEntry> reach_cache_;
  struct TraverseEntry {
    bdd::Bdd s0, t1, t2;
    bdd::Bdd result;
  };
  std::unordered_map<std::uint64_t, std::vector<TraverseEntry>>
      traverse_cache_;
  struct FirstEntry {
    bdd::Bdd s0, t2;
    bdd::Bdd result;
  };
  std::unordered_map<std::uint64_t, std::vector<FirstEntry>> first_cache_;
};

}  // namespace covest::core
