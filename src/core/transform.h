// The observability transformation φ (Definition 5 of the paper).
//
// Given an acceptable-ACTL formula f and an observed signal q, φ
// introduces a twin signal q' (same labelling function as q) and replaces
// the occurrences of q that should *contribute coverage* with q':
//
//   φ(b)          = b[q -> q']
//   φ(b -> f)     = b -> φ(f)                (antecedent keeps plain q)
//   φ(AX f)       = AX φ(f)
//   φ(AG f)       = AG φ(f)
//   φ(A[f U g])   = A[φ(f) U g]  &  A[(f & !g) U φ(g)]
//   φ(f & g)      = φ(f) & φ(g)
//   φ(AF f)       = φ(A[true U f]) = AF f  &  A[!f U φ(f)]
//
// The transformed formula is semantically equivalent to the original
// (q' == q in the real machine), but the dual FSM of Definition 2 flips
// only q', which isolates the coverage contribution of each part of an
// Until — fixing the zero-coverage anomaly of Figure 2.
//
// The symbolic algorithm (coverage.h) never needs this transform: per the
// paper's Correctness Theorem it computes the covered set of φ(f) while
// recursing over f itself. The transform exists as a first-class, testable
// artifact: the brute-force Definition-3 oracle evaluates it directly, and
// the equivalence of the two paths *is* the Correctness Theorem.
#pragma once

#include "core/observed.h"
#include "ctl/ctl.h"
#include "model/model.h"

namespace covest::core {

/// Applies φ. The formula must be in the acceptable ACTL subset (throws
/// otherwise, with the violation message). DEFINEs other than an observed
/// DEFINE are expanded inside atoms first, so every occurrence of `q` is
/// visible to the substitution.
ctl::Formula observability_transform(const ctl::Formula& f,
                                     const ObservedSignal& q,
                                     const model::Model& model);

}  // namespace covest::core
