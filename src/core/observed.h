// Observed signals (the `q` of the paper's Definitions 1-3).
//
// An observed signal is a boolean-valued labelling of states: either a
// boolean signal (latch, input or DEFINE proposition) or one bit of a
// word signal. Coverage of a word signal like the paper's `count` is the
// union of the per-bit covered sets ("the covered states are then simply
// the union of the covered states for each individual signal", Section 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "model/model.h"

namespace covest::core {

struct ObservedSignal {
  std::string name;             ///< Signal name in the model.
  std::optional<unsigned> bit;  ///< Bit index for word signals.

  /// Name of the primed twin q' introduced by the observability
  /// transformation (Definition 5).
  std::string primed_name() const { return name + "'"; }

  /// Display form: `full` or `count[1]`.
  std::string to_string() const {
    return bit ? name + "[" + std::to_string(*bit) + "]" : name;
  }

  bool operator==(const ObservedSignal&) const = default;
};

/// Replacement expression for references to `q.name` that *flips* the
/// observed bit in place: `!q` for booleans, `q ^ (1 << bit)` for words.
/// This is the `q -> !q` substitution of `depend(b)` (Section 3).
expr::Expr flip_replacement(const model::Model& model,
                            const ObservedSignal& q);

/// Replacement expression that routes the observed bit through the primed
/// twin signal q': `q'` for booleans, and for bit j of a word,
/// `q' ? (q | (1<<j)) : (q & ~(1<<j))`. Used by the observability
/// transformation so the dual FSM can flip q' independently of q.
expr::Expr primed_replacement(const model::Model& model,
                              const ObservedSignal& q);

/// All observable bits of a signal: one entry for a boolean, `width`
/// entries for a word. Throws for unknown signals.
std::vector<ObservedSignal> observe_all_bits(const model::Model& model,
                                             const std::string& name);

/// A single observed signal for a boolean; throws if `name` is a word
/// signal (use `observe_all_bits` or name the bit explicitly).
ObservedSignal observe_bool(const model::Model& model,
                            const std::string& name);

/// Parses "name" or "name[bit]" against the model's signal table.
ObservedSignal parse_observed(const model::Model& model,
                              const std::string& text);

}  // namespace covest::core
