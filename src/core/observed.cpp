#include "core/observed.h"

#include <stdexcept>

namespace covest::core {

using expr::Expr;

namespace {

const model::Signal& checked_signal(const model::Model& model,
                                    const std::string& name) {
  const model::Signal* s = model.find_signal(name);
  if (s == nullptr) {
    throw std::runtime_error("observed signal '" + name +
                             "' does not exist in model '" + model.name() +
                             "'");
  }
  return *s;
}

}  // namespace

std::vector<ObservedSignal> observe_all_bits(const model::Model& model,
                                             const std::string& name) {
  const model::Signal& s = checked_signal(model, name);
  if (s.type.is_bool) return {ObservedSignal{name, std::nullopt}};
  std::vector<ObservedSignal> out;
  for (unsigned i = 0; i < s.type.width; ++i) {
    out.push_back(ObservedSignal{name, i});
  }
  return out;
}

ObservedSignal observe_bool(const model::Model& model,
                            const std::string& name) {
  const model::Signal& s = checked_signal(model, name);
  if (!s.type.is_bool) {
    throw std::runtime_error(
        "observed signal '" + name +
        "' is a word; observe a bit (name[i]) or all bits");
  }
  return ObservedSignal{name, std::nullopt};
}

ObservedSignal parse_observed(const model::Model& model,
                              const std::string& text) {
  const auto bracket = text.find('[');
  if (bracket == std::string::npos) {
    const model::Signal& s = checked_signal(model, text);
    if (!s.type.is_bool) {
      throw std::runtime_error("observed word signal '" + text +
                               "' needs a bit index, e.g. " + text + "[0]");
    }
    return ObservedSignal{text, std::nullopt};
  }
  const std::string name = text.substr(0, bracket);
  const auto close = text.find(']', bracket);
  if (close == std::string::npos) {
    throw std::runtime_error("malformed observed signal '" + text + "'");
  }
  const unsigned bit = static_cast<unsigned>(
      std::stoul(text.substr(bracket + 1, close - bracket - 1)));
  const model::Signal& s = checked_signal(model, name);
  if (s.type.is_bool || bit >= s.type.width) {
    throw std::runtime_error("bit index out of range in '" + text + "'");
  }
  return ObservedSignal{name, bit};
}

Expr flip_replacement(const model::Model& model, const ObservedSignal& q) {
  const model::Signal& s = checked_signal(model, q.name);
  const Expr ref = Expr::var(q.name);
  if (s.type.is_bool) {
    if (q.bit) {
      throw std::runtime_error("boolean observed signal '" + q.name +
                               "' cannot have a bit index");
    }
    return !ref;
  }
  if (!q.bit || *q.bit >= s.type.width) {
    throw std::runtime_error("observed word signal '" + q.name +
                             "' needs a valid bit index");
  }
  return ref ^ Expr::word_const(1ull << *q.bit, s.type.width);
}

Expr primed_replacement(const model::Model& model, const ObservedSignal& q) {
  const model::Signal& s = checked_signal(model, q.name);
  const Expr ref = Expr::var(q.name);
  const Expr primed = Expr::var(q.primed_name());
  if (s.type.is_bool) {
    return primed;
  }
  const std::uint64_t mask = 1ull << q.bit.value();
  const Expr with_bit = ref | Expr::word_const(mask, s.type.width);
  const Expr without_bit =
      ref & Expr::word_const(~mask & ((1ull << s.type.width) - 1),
                             s.type.width);
  return ite(primed, with_bit, without_bit);
}

}  // namespace covest::core
