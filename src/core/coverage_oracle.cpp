#include "core/coverage_oracle.h"

#include <limits>
#include <stdexcept>

namespace covest::core {

using ctl::Formula;
using xstate::AtomOverride;
using xstate::ExplicitModel;

namespace {

constexpr std::size_t kNoFlip = std::numeric_limits<std::size_t>::max();

/// Builds the dual-machine atom override: flipping either the primed twin
/// q' (transformed mode) or q itself (naive mode) at `flip_state`.
AtomOverride make_override(const ExplicitModel& xm, const ObservedSignal& q,
                           bool use_transform, const std::size_t* flip_state) {
  AtomOverride hook;
  const std::string primed = q.primed_name();
  const model::Signal& sig = xm.model().signal(q.name);
  const bool is_define = sig.kind == model::SignalKind::kDefine;

  if (use_transform) {
    hook.type = [primed](const std::string& n) -> std::optional<expr::Type> {
      if (n == primed) return expr::Type::boolean();
      return std::nullopt;
    };
    hook.value = [&xm, q, primed, flip_state](
                     std::size_t state,
                     const std::string& n) -> std::optional<std::uint64_t> {
      if (n != primed) return std::nullopt;
      const std::uint64_t word = xm.value(state, q.name);
      bool bit = q.bit ? ((word >> *q.bit) & 1) != 0 : word != 0;
      if (state == *flip_state) bit = !bit;
      return bit ? 1 : 0;
    };
    // An observed DEFINE must stay visible in atoms so q' can reference
    // its base value... (the transform references q.name inside the
    // primed routing expression for word signals).
    if (is_define) hook.preserve_define = q.name;
    return hook;
  }

  // Naive mode: flip q's own label at the flip state.
  if (is_define) hook.preserve_define = q.name;
  hook.value = [&xm, q, flip_state](
                   std::size_t state,
                   const std::string& n) -> std::optional<std::uint64_t> {
    if (n != q.name || state != *flip_state) return std::nullopt;
    const std::uint64_t word = xm.value(state, q.name);
    if (!q.bit) return word != 0 ? 0 : 1;
    return word ^ (1ull << *q.bit);
  };
  return hook;
}

}  // namespace

Def3Result definition3_covered(const ExplicitModel& xm, const Formula& f,
                               const ObservedSignal& q, bool use_transform) {
  Def3Result result;
  result.evaluated =
      use_transform ? observability_transform(f, q, xm.model())
                    : ctl::collapse_propositional(f);

  std::size_t flip_state = kNoFlip;
  const AtomOverride hook =
      make_override(xm, q, use_transform, &flip_state);

  if (!xm.holds(result.evaluated, &hook)) {
    throw std::runtime_error(
        "Definition-3 coverage requires a verified property, but '" +
        ctl::to_string(f) + "' fails (or its transform diverges)");
  }

  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    if (!xm.reachable()[s]) continue;  // Unreachable flips cannot matter.
    flip_state = s;
    if (!xm.holds(result.evaluated, &hook)) {
      result.covered.push_back(s);
    }
  }
  return result;
}

}  // namespace covest::core
