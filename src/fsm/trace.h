// Shortest-path witness traces through a symbolic FSM.
//
// The paper's coverage estimator "prints out traces to uncovered states by
// performing a breadth first reachability analysis from the initial states
// to an uncovered state via the shortest path and generating an input
// sequence corresponding to this path" (Section 3, citing [8]). Because
// primary inputs are part of the state valuation, each step of the trace
// shows both latch values and the inputs that drive the next transition.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "fsm/symbolic_fsm.h"

namespace covest::fsm {

struct TraceStep {
  /// Values for every signal (latches and inputs) at this step.
  std::unordered_map<std::string, std::uint64_t> values;
};

struct Trace {
  std::vector<TraceStep> steps;

  /// Multi-line rendering: one "step k: sig=val ..." line per step, with
  /// signals in declaration order.
  std::string to_string(const SymbolicFsm& fsm) const;
};

/// Finds a shortest path from a state in `from` to a state in `target`
/// (breadth-first over the symbolic onion rings), or nullopt when `target`
/// is unreachable from `from`. A path of length 0 (a `from` state already
/// in `target`) yields a single-step trace.
std::optional<Trace> shortest_trace(const SymbolicFsm& fsm,
                                    const bdd::Bdd& from,
                                    const bdd::Bdd& target);

}  // namespace covest::fsm
