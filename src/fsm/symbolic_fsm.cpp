#include "fsm/symbolic_fsm.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "util/governance.h"

namespace covest::fsm {

using bdd::Bdd;
using bdd::Var;

SymbolicFsm::SymbolicFsm(const model::Model& model,
                         std::size_t max_live_nodes,
                         image::ImageStrategy strategy)
    : model_(model),
      mgr_(std::make_unique<bdd::BddManager>()),
      strategy_(strategy) {
  mgr_->set_max_live_nodes(max_live_nodes);
  model_.validate();
  allocate_variables();
  build_transition();
  build_image_engine();
  build_initial_states();

  for (const expr::Expr& f : model_.fairness()) {
    fairness_.push_back(blast_bool(f));
  }
  dontcare_ = mgr_->bdd_false();
  for (const expr::Expr& d : model_.dontcares()) {
    dontcare_ |= blast_bool(d);
  }
}

void SymbolicFsm::allocate_variables() {
  for (const model::Signal& s : model_.signals()) {
    if (s.kind == model::SignalKind::kDefine) continue;
    SignalLayout layout;
    layout.name = s.name;
    layout.kind = s.kind;
    layout.is_bool = s.type.is_bool;
    const unsigned width = s.type.is_bool ? 1 : s.type.width;
    for (unsigned i = 0; i < width; ++i) {
      const std::string bit_name =
          width == 1 ? s.name : s.name + "[" + std::to_string(i) + "]";
      // Interleave current and next: good static order for transition
      // relations, and adjacent-pair renaming stays cheap.
      const Var cur = mgr_->new_var(bit_name);
      const Var nxt = mgr_->new_var(bit_name + "'");
      layout.current.push_back(cur);
      layout.next.push_back(nxt);
      current_vars_.push_back(cur);
      next_vars_.push_back(nxt);
    }
    layout_index_.emplace(layout.name, layouts_.size());
    layouts_.push_back(std::move(layout));
  }

  perm_to_next_.resize(mgr_->num_vars());
  perm_to_current_.resize(mgr_->num_vars());
  for (Var v = 0; v < mgr_->num_vars(); ++v) {
    perm_to_next_[v] = v;
    perm_to_current_[v] = v;
  }
  for (std::size_t i = 0; i < current_vars_.size(); ++i) {
    perm_to_next_[current_vars_[i]] = next_vars_[i];
    perm_to_current_[next_vars_[i]] = current_vars_[i];
  }
}

const SignalLayout& SymbolicFsm::layout(const std::string& name) const {
  auto it = layout_index_.find(name);
  if (it == layout_index_.end()) {
    throw std::runtime_error("no such signal in FSM: '" + name + "'");
  }
  return layouts_[it->second];
}

expr::BitVec SymbolicFsm::blast(const expr::Expr& e) const {
  const expr::Expr expanded = model_.expand_defines(e);
  return expr::bit_blast(
      expanded, *mgr_,
      [this](const std::string& name) -> expr::BitVec {
        auto it = layout_index_.find(name);
        if (it == layout_index_.end()) return {};
        const SignalLayout& l = layouts_[it->second];
        expr::BitVec bits;
        bits.is_bool = l.is_bool;
        for (Var v : l.current) bits.bits.push_back(mgr_->var(v));
        return bits;
      },
      model_.type_resolver());
}

bdd::Bdd SymbolicFsm::blast_bool(const expr::Expr& e) const {
  const expr::BitVec v = blast(e);
  if (!v.is_bool || v.bits.size() != 1) {
    throw std::runtime_error("expected a boolean expression: " +
                             expr::to_string(e));
  }
  return v.bits[0];
}

void SymbolicFsm::build_transition() {
  for (const model::Signal& s : model_.signals()) {
    if (s.kind != model::SignalKind::kState || !s.next.valid()) continue;
    const SignalLayout& l = layout(s.name);
    expr::BitVec bits = blast(s.next);
    while (bits.bits.size() < l.next.size()) {
      bits.bits.push_back(mgr_->bdd_false());  // Zero-extend narrow results.
    }
    for (std::size_t i = 0; i < l.next.size(); ++i) {
      parts_.push_back(mgr_->var(l.next[i]).iff(bits.bits[i]));
      part_writes_.push_back(l.next[i]);
    }
  }
}

void SymbolicFsm::build_image_engine() {
  // Dependency matrix from the parts' actual BDD supports (not the
  // declaration order): which current/input variables each next-state
  // bit reads.
  std::vector<bool> is_next(mgr_->num_vars(), false);
  for (const Var v : next_vars_) is_next[v] = true;
  dep_ = image::DependencyMatrix::build(*mgr_, parts_, part_writes_, is_next);

  // Static variable order: FORCE-style placement of the current/next
  // pairs. Installing it now — before the initial states, fairness and
  // property sets are built — keeps the one reordering pass cheap. The
  // order is a function of the model alone (never of the strategy), so
  // cross-strategy byte-identity is unaffected.
  const image::VariableOrdering ordering =
      dep_.derive_order(current_vars_, next_vars_);
  if (!ordering.order.empty()) mgr_->set_order(ordering.order);

  rel_.build(*mgr_, parts_, dep_.part_order(ordering), current_vars_,
             next_vars_);
}

void SymbolicFsm::build_initial_states() {
  init_ = mgr_->bdd_true();
  for (const model::Signal& s : model_.signals()) {
    if (s.kind != model::SignalKind::kState || !s.init.valid()) continue;
    const SignalLayout& l = layout(s.name);
    expr::BitVec bits = blast(s.init);
    while (bits.bits.size() < l.current.size()) {
      bits.bits.push_back(mgr_->bdd_false());
    }
    for (std::size_t i = 0; i < l.current.size(); ++i) {
      init_ &= mgr_->var(l.current[i]).iff(bits.bits[i]);
    }
  }
  for (const expr::Expr& c : model_.init_constraints()) {
    init_ &= blast_bool(c);
  }
  if (init_.is_false()) {
    throw std::runtime_error("model '" + model_.name() +
                             "' has no initial states");
  }
}

const Bdd& SymbolicFsm::transition_relation() const {
  return rel_.monolithic();
}

Bdd SymbolicFsm::to_next(const Bdd& current_set) const {
  return mgr_->permute(current_set, perm_to_next_);
}

Bdd SymbolicFsm::to_current(const Bdd& next_set) const {
  return mgr_->permute(next_set, perm_to_current_);
}

Bdd SymbolicFsm::forward(const Bdd& states) const {
  return to_current(rel_.image(states, strategy_));
}

Bdd SymbolicFsm::backward(const Bdd& states) const {
  return rel_.preimage(to_next(states), strategy_);
}

Bdd SymbolicFsm::reachable(const Bdd& from) const {
  if (strategy_ == image::ImageStrategy::kChaining) {
    // Accumulated-set (Gauss-Seidel) discipline: feed the whole reached
    // set back through the chained clusters until nothing is new. Same
    // least fixpoint as the BFS below, different intermediates.
    Bdd reached = from;
    while (true) {
      covest::governor_tick();
      const Bdd next = reached | forward(reached);
      if (next == reached) return reached;
      reached = next;
    }
  }
  Bdd reached = from;
  Bdd frontier = from;
  while (!frontier.is_false()) {
    covest::governor_tick();
    const Bdd image = forward(frontier);
    frontier = image - reached;
    reached |= frontier;
  }
  return reached;
}

std::vector<Bdd> SymbolicFsm::forward_rings(const Bdd& from,
                                            const Bdd* target) const {
  std::vector<Bdd> rings{from};
  Bdd reached = from;
  if (target != nullptr && from.intersects(*target)) return rings;
  while (true) {
    covest::governor_tick();
    const Bdd frontier = forward(rings.back()) - reached;
    if (frontier.is_false()) break;
    rings.push_back(frontier);
    reached |= frontier;
    if (target != nullptr && frontier.intersects(*target)) break;
  }
  return rings;
}

double SymbolicFsm::count_states(const Bdd& set) const {
  return mgr_->sat_count(set, current_vars_);
}

std::unordered_map<std::string, std::uint64_t> SymbolicFsm::decode_state(
    const std::vector<std::pair<Var, bool>>& assignment) const {
  std::unordered_map<Var, bool> value;
  for (const auto& [v, b] : assignment) value[v] = b;
  std::unordered_map<std::string, std::uint64_t> result;
  for (const SignalLayout& l : layouts_) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < l.current.size(); ++i) {
      auto it = value.find(l.current[i]);
      if (it != value.end() && it->second) word |= (1ull << i);
    }
    result.emplace(l.name, word);
  }
  return result;
}

std::vector<std::string> SymbolicFsm::format_states(const Bdd& set,
                                                    std::size_t limit) const {
  std::vector<std::string> out;
  for (const auto& minterm :
       mgr_->enumerate_minterms(set, current_vars_, limit)) {
    const auto values = decode_state(minterm);
    std::ostringstream os;
    bool first = true;
    for (const SignalLayout& l : layouts_) {
      if (!first) os << " ";
      os << l.name << "=" << values.at(l.name);
      first = false;
    }
    out.push_back(os.str());
  }
  return out;
}

Bdd SymbolicFsm::state_cube(
    const std::vector<std::pair<Var, bool>>& assignment) const {
  Bdd cube = mgr_->bdd_true();
  for (const auto& [v, b] : assignment) cube &= mgr_->literal(v, b);
  return cube;
}

}  // namespace covest::fsm
