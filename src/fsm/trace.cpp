#include "fsm/trace.h"

#include <sstream>

namespace covest::fsm {

using bdd::Bdd;

std::string Trace::to_string(const SymbolicFsm& fsm) const {
  std::ostringstream os;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    os << "step " << k << ":";
    for (const SignalLayout& l : fsm.layouts()) {
      auto it = steps[k].values.find(l.name);
      if (it != steps[k].values.end()) {
        os << " " << l.name << "=" << it->second;
      }
    }
    os << "\n";
  }
  return os.str();
}

std::optional<Trace> shortest_trace(const SymbolicFsm& fsm, const Bdd& from,
                                    const Bdd& target) {
  if (from.is_false() || target.is_false()) return std::nullopt;
  const std::vector<Bdd> rings = fsm.forward_rings(from, &target);
  if (!rings.back().intersects(target)) return std::nullopt;

  bdd::BddManager& mgr = fsm.mgr();
  const auto& vars = fsm.current_vars();

  // Walk backwards from the target through the rings, materialising one
  // concrete state per ring.
  std::vector<std::vector<std::pair<bdd::Var, bool>>> states(rings.size());
  states.back() = mgr.pick_minterm(rings.back() & target, vars);
  for (std::size_t k = rings.size() - 1; k > 0; --k) {
    const Bdd next_cube = fsm.state_cube(states[k]);
    const Bdd predecessors = fsm.backward(next_cube) & rings[k - 1];
    states[k - 1] = mgr.pick_minterm(predecessors, vars);
  }

  Trace trace;
  for (const auto& assignment : states) {
    trace.steps.push_back(TraceStep{fsm.decode_state(assignment)});
  }
  return trace;
}

}  // namespace covest::fsm
