// Symbolic finite state machine over BDDs.
//
// A `Model` is *elaborated* into a `SymbolicFsm`: every signal bit gets a
// pair of BDD variables (current, next), interleaved so that related bits
// sit close together. Following SMV, primary inputs are part of the state
// space: a state is a valuation of all latch and input bits, and the
// transition relation
//
//   T((l, i), (l', i'))  =  /\_b  l'_b <-> f_b(l, i)
//
// leaves next-state inputs i' (and latches without a NEXT assignment)
// unconstrained. This makes the relation total, which the CTL layer's
// duality arguments rely on, and lets properties refer to input signals
// (as the paper's modulo-5 counter property does with `stall`/`reset`).
//
// Image computation goes through the partitioned image engine
// (image/image.h): elaboration derives a dependency matrix from each
// signal's next-state support, installs the static variable order that
// matrix suggests (current/next pairs move as blocks, so renaming stays
// a valid permutation), clusters the partial relations in dependency
// order, and precomputes early-quantification schedules. The
// `ImageStrategy` selects how `forward`/`backward` and the fix-point
// loops traverse those clusters; every strategy yields the identical
// canonical BDDs. The monolithic relation is kept lazily for the
// kMonolithic baseline and for input labelling of traces.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "expr/bitblast.h"
#include "expr/expr.h"
#include "image/image.h"
#include "model/model.h"

namespace covest::fsm {

/// Bit-level layout of one model signal inside the FSM.
struct SignalLayout {
  std::string name;
  model::SignalKind kind = model::SignalKind::kState;
  bool is_bool = true;
  std::vector<bdd::Var> current;  ///< Current-state variables, LSB first.
  std::vector<bdd::Var> next;     ///< Next-state twins, parallel to current.
};

class SymbolicFsm {
 public:
  /// Elaborates a validated model. The FSM owns its BDD manager.
  /// `max_live_nodes` (0 = unlimited) becomes the manager's node budget
  /// before elaboration starts, so a pathological model cannot OOM even
  /// while building its transition relation — exhaustion throws
  /// covest::ResourceExhausted out of the constructor. `strategy`
  /// selects the image-computation path for this FSM's whole life;
  /// results are byte-identical across strategies.
  explicit SymbolicFsm(
      const model::Model& model, std::size_t max_live_nodes = 0,
      image::ImageStrategy strategy = image::ImageStrategy::kPartitioned);

  SymbolicFsm(const SymbolicFsm&) = delete;
  SymbolicFsm& operator=(const SymbolicFsm&) = delete;

  bdd::BddManager& mgr() const { return *mgr_; }
  const model::Model& model() const { return model_; }

  // -- Structure ---------------------------------------------------------------

  /// All current-state variables (latches then-interleaved with inputs,
  /// in declaration order). This is the CTL state space.
  const std::vector<bdd::Var>& current_vars() const { return current_vars_; }
  const std::vector<bdd::Var>& next_vars() const { return next_vars_; }

  const std::vector<SignalLayout>& layouts() const { return layouts_; }
  const SignalLayout& layout(const std::string& name) const;

  /// Initial states: INIT assignments/constraints on latches; inputs free.
  const bdd::Bdd& initial_states() const { return init_; }

  /// One conjunct per assigned latch bit: `next_bit <-> f(l, i)`, in
  /// declaration order (the partitioned engine re-orders internally).
  const std::vector<bdd::Bdd>& transition_parts() const { return parts_; }

  /// The full conjunction of the parts (built lazily, cached).
  const bdd::Bdd& transition_relation() const;

  /// The image strategy this FSM was elaborated with.
  image::ImageStrategy image_strategy() const { return strategy_; }

  /// The clustered conjunctive relation behind forward/backward.
  const image::PartitionedRelation& relation() const { return rel_; }

  /// The dependency matrix (one row per partial relation, declaration
  /// order) elaboration derived the variable order and clustering from.
  const image::DependencyMatrix& dependency_matrix() const { return dep_; }

  /// Fairness constraint sets (over current vars), from the model.
  const std::vector<bdd::Bdd>& fairness() const { return fairness_; }

  /// Union of the model's DONTCARE propositions (false if none).
  const bdd::Bdd& dontcare() const { return dontcare_; }

  // -- Expression bridge ---------------------------------------------------------

  /// Bit-blasts an expression over the *current* state variables, with
  /// DEFINEs expanded. Throws on type errors.
  expr::BitVec blast(const expr::Expr& e) const;
  /// As `blast` but requires a boolean expression.
  bdd::Bdd blast_bool(const expr::Expr& e) const;

  // -- Set algebra ------------------------------------------------------------------

  /// States reachable in exactly one step from `states`
  /// (the paper's `forward(S0)`).
  bdd::Bdd forward(const bdd::Bdd& states) const;

  /// States with at least one successor inside `states` (EX states).
  bdd::Bdd backward(const bdd::Bdd& states) const;

  /// Least fixpoint of `forward` containing `from` (the paper's
  /// `reachable(S0)`). Frontier BFS under kMonolithic/kPartitioned;
  /// the accumulated-set discipline under kChaining — both converge to
  /// the identical set.
  bdd::Bdd reachable(const bdd::Bdd& from) const;

  /// Breadth-first "onion rings": rings[0] = from, rings[k+1] = states
  /// first reached in k+1 steps. Stops early once `target` (if given) is
  /// intersected; used for shortest-path trace generation. Always
  /// strict BFS — the ring structure is part of the trace contract —
  /// whatever the image strategy inside each step.
  std::vector<bdd::Bdd> forward_rings(
      const bdd::Bdd& from, const bdd::Bdd* target = nullptr) const;

  // -- Counting and naming --------------------------------------------------------------

  /// Number of states in `set`, counted over all current variables.
  double count_states(const bdd::Bdd& set) const;

  /// Decodes a full assignment of current vars into per-signal values.
  std::unordered_map<std::string, std::uint64_t> decode_state(
      const std::vector<std::pair<bdd::Var, bool>>& assignment) const;

  /// Renders a state set's first `limit` states like "count=3 stall=0".
  std::vector<std::string> format_states(const bdd::Bdd& set,
                                         std::size_t limit) const;

  /// Rename a set over current vars to next vars, and back.
  bdd::Bdd to_next(const bdd::Bdd& current_set) const;
  bdd::Bdd to_current(const bdd::Bdd& next_set) const;

  /// An input/latch assignment cube for one concrete state.
  bdd::Bdd state_cube(
      const std::vector<std::pair<bdd::Var, bool>>& assignment) const;

 private:
  void allocate_variables();
  void build_transition();
  void build_initial_states();
  void build_image_engine();

  model::Model model_;
  std::unique_ptr<bdd::BddManager> mgr_;
  image::ImageStrategy strategy_;
  std::vector<SignalLayout> layouts_;
  std::unordered_map<std::string, std::size_t> layout_index_;

  std::vector<bdd::Var> current_vars_;
  std::vector<bdd::Var> next_vars_;
  std::vector<bdd::Var> perm_to_next_;     // var -> renamed var
  std::vector<bdd::Var> perm_to_current_;

  std::vector<bdd::Bdd> parts_;      ///< Declaration order.
  std::vector<bdd::Var> part_writes_;  ///< Next var per part, parallel.
  image::DependencyMatrix dep_;
  image::PartitionedRelation rel_;

  bdd::Bdd init_;
  std::vector<bdd::Bdd> fairness_;
  bdd::Bdd dontcare_;
};

}  // namespace covest::fsm
