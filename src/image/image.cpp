#include "image/image.h"

#include <algorithm>
#include <stdexcept>

#include "util/governance.h"

namespace covest::image {

using bdd::Bdd;
using bdd::Var;

// ---------------------------------------------------------------------------
// Strategy spellings
// ---------------------------------------------------------------------------

const char* to_string(ImageStrategy strategy) noexcept {
  switch (strategy) {
    case ImageStrategy::kMonolithic:
      return "monolithic";
    case ImageStrategy::kPartitioned:
      return "partitioned";
    case ImageStrategy::kChaining:
      return "chaining";
  }
  return "partitioned";  // Unreachable for in-range enums.
}

bool image_strategy_from_string(const std::string& text, ImageStrategy* out) {
  for (const ImageStrategy s :
       {ImageStrategy::kMonolithic, ImageStrategy::kPartitioned,
        ImageStrategy::kChaining}) {
    if (text == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// DependencyMatrix
// ---------------------------------------------------------------------------

DependencyMatrix DependencyMatrix::build(bdd::BddManager& mgr,
                                         const std::vector<Bdd>& parts,
                                         const std::vector<Var>& writes,
                                         const std::vector<bool>& is_next) {
  if (parts.size() != writes.size()) {
    throw std::invalid_argument(
        "DependencyMatrix: one written variable per partial relation");
  }
  DependencyMatrix dm;
  dm.rows_.reserve(parts.size());
  for (std::size_t k = 0; k < parts.size(); ++k) {
    DependencyRow row;
    row.writes = writes[k];
    for (const Var v : mgr.support(parts[k])) {  // Sorted by id.
      if (v < is_next.size() && is_next[v]) continue;
      row.reads.push_back(v);
    }
    dm.rows_.push_back(std::move(row));
  }
  return dm;
}

bool DependencyMatrix::reads(std::size_t k, Var v) const {
  const std::vector<Var>& r = rows_.at(k).reads;
  return std::binary_search(r.begin(), r.end(), v);
}

VariableOrdering DependencyMatrix::derive_order(
    const std::vector<Var>& current_vars, const std::vector<Var>& next_vars,
    unsigned passes) const {
  if (current_vars.size() != next_vars.size()) {
    throw std::invalid_argument(
        "derive_order: current/next variable lists must be parallel");
  }
  const std::size_t pairs = current_vars.size();

  // Map a variable id to its pair index.
  std::size_t max_var = 0;
  for (const Var v : current_vars) max_var = std::max<std::size_t>(max_var, v);
  for (const Var v : next_vars) max_var = std::max<std::size_t>(max_var, v);
  constexpr std::size_t kNoPair = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pair_of(max_var + 1, kNoPair);
  for (std::size_t i = 0; i < pairs; ++i) {
    pair_of[current_vars[i]] = i;
    pair_of[next_vars[i]] = i;
  }

  // The pairs each row touches: its written pair plus every read pair.
  std::vector<std::vector<std::size_t>> row_pairs(rows_.size());
  std::vector<std::vector<std::size_t>> pair_rows(pairs);
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    const auto touch = [&](Var v) {
      if (v >= pair_of.size() || pair_of[v] == kNoPair) return;
      const std::size_t p = pair_of[v];
      if (!row_pairs[k].empty() && row_pairs[k].back() == p) return;
      row_pairs[k].push_back(p);
    };
    touch(rows_[k].writes);
    for (const Var v : rows_[k].reads) touch(v);
    std::sort(row_pairs[k].begin(), row_pairs[k].end());
    row_pairs[k].erase(
        std::unique(row_pairs[k].begin(), row_pairs[k].end()),
        row_pairs[k].end());
    for (const std::size_t p : row_pairs[k]) pair_rows[p].push_back(k);
  }

  // FORCE: iterate center-of-gravity, re-ranking to integer positions
  // after every pass so the derivation is exactly reproducible (no
  // accumulated floating-point drift across passes).
  VariableOrdering out;
  out.pair_rank.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) out.pair_rank[i] = i;
  for (unsigned pass = 0; pass < passes; ++pass) {
    std::vector<double> row_center(rows_.size(), 0.0);
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      if (row_pairs[k].empty()) continue;
      double sum = 0.0;
      for (const std::size_t p : row_pairs[k]) {
        sum += static_cast<double>(out.pair_rank[p]);
      }
      row_center[k] = sum / static_cast<double>(row_pairs[k].size());
    }
    std::vector<std::pair<double, std::size_t>> keyed(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      double key;
      if (pair_rows[p].empty()) {
        key = static_cast<double>(out.pair_rank[p]);  // Untouched: stay put.
      } else {
        double sum = 0.0;
        for (const std::size_t k : pair_rows[p]) sum += row_center[k];
        key = sum / static_cast<double>(pair_rows[p].size());
      }
      keyed[p] = {key, p};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first < b.first;
                       return a.second < b.second;
                     });
    for (std::size_t rank = 0; rank < pairs; ++rank) {
      out.pair_rank[keyed[rank].second] = rank;
    }
  }

  out.order.resize(2 * pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    out.order[2 * out.pair_rank[i]] = current_vars[i];
    out.order[2 * out.pair_rank[i] + 1] = next_vars[i];
  }
  return out;
}

std::vector<std::size_t> DependencyMatrix::part_order(
    const VariableOrdering& ordering) const {
  std::size_t max_var = 0;
  for (const Var v : ordering.order) max_var = std::max<std::size_t>(max_var, v);
  constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rank_of(max_var + 1, kNoRank);
  for (std::size_t pos = 0; pos < ordering.order.size(); ++pos) {
    rank_of[ordering.order[pos]] = pos / 2;  // Pair rank.
  }
  struct Key {
    std::size_t deepest;
    std::size_t shallowest;
    std::size_t index;
  };
  std::vector<Key> keys(rows_.size());
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    std::size_t lo = kNoRank, hi = 0;
    const auto visit = [&](Var v) {
      if (v >= rank_of.size() || rank_of[v] == kNoRank) return;
      lo = std::min(lo, rank_of[v]);
      hi = std::max(hi, rank_of[v]);
    };
    visit(rows_[k].writes);
    for (const Var v : rows_[k].reads) visit(v);
    if (lo == kNoRank) lo = hi = 0;  // Constant part: front of the order.
    keys[k] = {hi, lo, k};
  }
  std::vector<std::size_t> order(rows_.size());
  for (std::size_t k = 0; k < rows_.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(),
                   [&keys](std::size_t a, std::size_t b) {
                     if (keys[a].deepest != keys[b].deepest) {
                       return keys[a].deepest < keys[b].deepest;
                     }
                     if (keys[a].shallowest != keys[b].shallowest) {
                       return keys[a].shallowest < keys[b].shallowest;
                     }
                     return keys[a].index < keys[b].index;
                   });
  return order;
}

// ---------------------------------------------------------------------------
// PartitionedRelation
// ---------------------------------------------------------------------------

void PartitionedRelation::build(bdd::BddManager& mgr,
                                const std::vector<Bdd>& parts,
                                const std::vector<std::size_t>& order,
                                const std::vector<Var>& img_quantify,
                                const std::vector<Var>& pre_quantify,
                                std::size_t cluster_node_limit) {
  if (order.size() != parts.size()) {
    throw std::invalid_argument(
        "PartitionedRelation: `order` must permute the parts");
  }
  mgr_ = &mgr;
  partial_count_ = parts.size();
  clusters_.clear();
  parts_per_cluster_.clear();
  monolithic_.reset();

  // Greedy clustering in the given order: grow a cluster until its
  // conjunction would exceed the node limit, then seal it. A single
  // oversized part still gets its own cluster.
  std::optional<Bdd> acc;
  std::size_t acc_parts = 0;
  const auto seal = [&] {
    if (!acc) return;
    clusters_.push_back(*acc);
    parts_per_cluster_.push_back(acc_parts);
    acc.reset();
    acc_parts = 0;
  };
  for (const std::size_t k : order) {
    covest::governor_tick();
    const Bdd& p = parts.at(k);
    if (!acc) {
      acc = p;
      acc_parts = 1;
      continue;
    }
    const Bdd grown = *acc & p;
    if (mgr.node_count(grown) > cluster_node_limit) {
      seal();
      acc = p;
      acc_parts = 1;
    } else {
      acc = grown;
      ++acc_parts;
    }
  }
  seal();

  // Natural (dependency) visit order, and the chaining order: clusters
  // sorted by the topmost level their support reaches (saturation-style
  // "fire the shallowest relation first"), ties by dependency position.
  std::vector<std::size_t> natural(clusters_.size());
  for (std::size_t i = 0; i < natural.size(); ++i) natural[i] = i;
  std::vector<std::size_t> chain = natural;
  {
    std::vector<unsigned> top(clusters_.size(), 0);
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      unsigned best = static_cast<unsigned>(-1);
      for (const Var v : mgr.support(clusters_[i])) {
        best = std::min(best, mgr.level_of(v));
      }
      top[i] = best;
    }
    std::stable_sort(chain.begin(), chain.end(),
                     [&top](std::size_t a, std::size_t b) {
                       if (top[a] != top[b]) return top[a] < top[b];
                       return a < b;
                     });
  }

  sched_img_ = make_schedule(natural, img_quantify);
  sched_pre_ = make_schedule(natural, pre_quantify);
  chain_sched_img_ = make_schedule(chain, img_quantify);
  chain_sched_pre_ = make_schedule(chain, pre_quantify);
  img_full_cube_ = mgr.cube(img_quantify);
  pre_full_cube_ = mgr.cube(pre_quantify);
}

PartitionedRelation::Schedule PartitionedRelation::make_schedule(
    const std::vector<std::size_t>& visit,
    const std::vector<Var>& quantify) const {
  // For each variable to quantify, find the last visited cluster whose
  // support contains it; it can be quantified out right after that
  // cluster is conjoined (early quantification). Variables in no
  // cluster are quantified directly from the argument set.
  std::vector<int> last(mgr_->num_vars(), -1);
  for (std::size_t pos = 0; pos < visit.size(); ++pos) {
    for (const Var v : mgr_->support(clusters_[visit[pos]])) {
      last[v] = static_cast<int>(pos);
    }
  }
  std::vector<std::vector<Var>> per_pos(visit.size());
  std::vector<Var> rest;
  for (const Var v : quantify) {
    if (last[v] >= 0) {
      per_pos[static_cast<std::size_t>(last[v])].push_back(v);
    } else {
      rest.push_back(v);
    }
  }
  Schedule sched;
  sched.visit = visit;
  for (const auto& vars : per_pos) sched.cubes.push_back(mgr_->cube(vars));
  sched.rest = mgr_->cube(rest);
  return sched;
}

bdd::Bdd PartitionedRelation::apply(const Bdd& set,
                                    const Schedule& sched) const {
  Bdd x = mgr_->exists(set, sched.rest);
  for (std::size_t pos = 0; pos < sched.visit.size(); ++pos) {
    x = mgr_->and_exists(x, clusters_[sched.visit[pos]], sched.cubes[pos]);
  }
  return x;
}

bdd::Bdd PartitionedRelation::image(const Bdd& states,
                                    ImageStrategy strategy) const {
  switch (strategy) {
    case ImageStrategy::kMonolithic:
      return mgr_->and_exists(states, monolithic(), img_full_cube_);
    case ImageStrategy::kPartitioned:
      return apply(states, sched_img_);
    case ImageStrategy::kChaining:
      return apply(states, chain_sched_img_);
  }
  return apply(states, sched_img_);  // Unreachable for in-range enums.
}

bdd::Bdd PartitionedRelation::preimage(const Bdd& states_next,
                                       ImageStrategy strategy) const {
  switch (strategy) {
    case ImageStrategy::kMonolithic:
      return mgr_->and_exists(states_next, monolithic(), pre_full_cube_);
    case ImageStrategy::kPartitioned:
      return apply(states_next, sched_pre_);
    case ImageStrategy::kChaining:
      return apply(states_next, chain_sched_pre_);
  }
  return apply(states_next, sched_pre_);
}

const bdd::Bdd& PartitionedRelation::monolithic() const {
  // Engaged at most once; the lock makes the lazy build safe if a
  // shared-mode thread asks for the monolithic relation first.
  std::lock_guard<std::mutex> lock(monolithic_mu_);
  if (!monolithic_) {
    Bdd t = mgr_->bdd_true();
    for (const Bdd& c : clusters_) {
      covest::governor_tick();  // The build itself can be the blow-up.
      t &= c;
    }
    monolithic_ = t;
  }
  return *monolithic_;
}

std::size_t PartitionedRelation::largest_cluster() const {
  std::size_t best = 0;
  for (const std::size_t n : parts_per_cluster_) best = std::max(best, n);
  return best;
}

}  // namespace covest::image
