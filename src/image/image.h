// Partitioned image computation: conjunctive transition relations,
// early quantification, and strategy-selectable image/preimage.
//
// The transition relation of a synchronous model is a conjunction of
// per-signal-bit partial relations
//
//   T((l, i), (l', i'))  =  /\_b  l'_b <-> f_b(l, i).
//
// Building the full conjunction (the *monolithic* relation) is the wall
// between toy models and circuit-scale inputs: the intermediate BDD
// routinely dwarfs every set it will ever be applied to. This subsystem
// keeps the relation partitioned instead:
//
//  * `DependencyMatrix` records, per partial relation, which
//    current-state/input variables its next-state function reads — the
//    classic rows-by-columns view (LTSmin's dm machinery). From it we
//    derive a static variable order (FORCE-style center-of-gravity over
//    current/next variable *pairs*, keeping each pair adjacent so the
//    cur<->next renaming stays a level-preserving permutation) and a
//    linear order of the partial relations for conjunction scheduling.
//  * `PartitionedRelation` clusters the ordered partials (greedy, up to
//    a node-count limit per cluster) and computes image/preimage with
//    IWLS95-style early quantification: each quantifiable variable is
//    existentially quantified at the *last* cluster whose support
//    mentions it, so the relational product never carries a variable
//    longer than it must.
//
// Three strategies select how an image is computed; all three produce
// the *identical canonical BDD* (the set is the set), they only differ
// in the shape and cost of the intermediates:
//
//  * kMonolithic — conjoin everything once (lazily), one `and_exists`
//    per image. The oracle baseline the other two are measured against.
//  * kPartitioned — clustered conjunction in dependency order with
//    early quantification. The default.
//  * kChaining — the same clusters visited in a saturation-style order
//    (topmost-variable cluster first), with the early-quantification
//    schedule recomputed for that order. Callers additionally switch
//    their fix-point loops to the accumulated-set (Gauss-Seidel)
//    discipline under this strategy; both disciplines converge to the
//    same least/greatest fix-point, so results stay byte-identical.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace covest::image {

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

enum class ImageStrategy {
  kMonolithic,   ///< One lazily-built conjunction, one and_exists per image.
  kPartitioned,  ///< Clustered conjunction + early quantification (default).
  kChaining,     ///< Saturation-style cluster order + accumulated fix-points.
};

/// JSON/CLI spelling: "monolithic", "partitioned", "chaining".
const char* to_string(ImageStrategy strategy) noexcept;

/// Strict inverse of `to_string`: false (and `*out` untouched) for
/// anything but the three canonical spellings.
bool image_strategy_from_string(const std::string& text, ImageStrategy* out);

// ---------------------------------------------------------------------------
// Dependency matrix
// ---------------------------------------------------------------------------

/// One row per partial relation: the next-state variable it constrains
/// and the current-state/input variables its function reads.
struct DependencyRow {
  bdd::Var writes = 0;           ///< The next-state variable of the part.
  std::vector<bdd::Var> reads;   ///< Current-space support, sorted by id.
};

/// The variable order derived from a dependency matrix, plus the pair
/// ranks it was derived from (reused to order the partial relations).
struct VariableOrdering {
  /// Full order over all manager variables, top first: the current/next
  /// pair of rank 0, then the pair of rank 1, ... Pairs stay adjacent,
  /// so the cur<->next renaming remains a valid `permute`.
  std::vector<bdd::Var> order;
  /// pair_rank[p] = final position of declaration-order pair p.
  std::vector<std::size_t> pair_rank;
};

class DependencyMatrix {
 public:
  /// Builds the matrix from the partial relations' BDD supports.
  /// `writes[k]` names the next-state variable part k constrains;
  /// `is_next[v]` marks next-state variables (excluded from reads).
  static DependencyMatrix build(bdd::BddManager& mgr,
                                const std::vector<bdd::Bdd>& parts,
                                const std::vector<bdd::Var>& writes,
                                const std::vector<bool>& is_next);

  std::size_t rows() const { return rows_.size(); }
  const DependencyRow& row(std::size_t k) const { return rows_.at(k); }

  /// True when part `k` reads variable `v`.
  bool reads(std::size_t k, bdd::Var v) const;

  /// FORCE-style static order: pairs (current_vars[i], next_vars[i])
  /// are placed by iterated center-of-gravity over the rows touching
  /// them, re-ranked to integers every pass so the result is exactly
  /// reproducible. `passes` bounds the iteration.
  VariableOrdering derive_order(const std::vector<bdd::Var>& current_vars,
                                const std::vector<bdd::Var>& next_vars,
                                unsigned passes = 3) const;

  /// Dependency order of the parts for conjunction scheduling: sort by
  /// (deepest read/write pair rank, shallowest, declaration index), so
  /// a variable's last reader comes as early as the order allows and
  /// early quantification fires sooner.
  std::vector<std::size_t> part_order(const VariableOrdering& ordering) const;

 private:
  std::vector<DependencyRow> rows_;
};

// ---------------------------------------------------------------------------
// Partitioned relation
// ---------------------------------------------------------------------------

class PartitionedRelation {
 public:
  /// Default cap on the node count of one cluster: small enough that
  /// clusters stay local, large enough that tiny parts coalesce.
  static constexpr std::size_t kDefaultClusterNodeLimit = 1024;

  PartitionedRelation() = default;

  /// Clusters `parts` (visited in `order`) and precomputes the early
  /// quantification schedules. `img_quantify` are the variables an
  /// image quantifies out (current + input), `pre_quantify` those a
  /// preimage does (next). Must be called before shared mode.
  void build(bdd::BddManager& mgr, const std::vector<bdd::Bdd>& parts,
             const std::vector<std::size_t>& order,
             const std::vector<bdd::Var>& img_quantify,
             const std::vector<bdd::Var>& pre_quantify,
             std::size_t cluster_node_limit = kDefaultClusterNodeLimit);

  /// Image of `states` (over current/input vars): the successor set,
  /// still over *next* vars — the caller renames. All strategies return
  /// the identical canonical BDD.
  bdd::Bdd image(const bdd::Bdd& states, ImageStrategy strategy) const;

  /// Preimage of `states_next` (over next vars): the predecessor set
  /// over current/input vars.
  bdd::Bdd preimage(const bdd::Bdd& states_next,
                    ImageStrategy strategy) const;

  /// The full conjunction, built lazily under a lock (safe to first
  /// request from a shared-mode thread). Also used for input labelling
  /// of traces.
  const bdd::Bdd& monolithic() const;

  // -- Introspection (PhaseStats, tests) -----------------------------------
  std::size_t partial_count() const { return partial_count_; }
  std::size_t cluster_count() const { return clusters_.size(); }
  /// Partial relations conjoined into the largest cluster.
  std::size_t largest_cluster() const;
  const std::vector<std::size_t>& parts_per_cluster() const {
    return parts_per_cluster_;
  }
  /// Chaining visit order over the clusters (topmost support first).
  const std::vector<std::size_t>& chain_order() const {
    return chain_sched_img_.visit;
  }
  /// Early-quantification cubes of the partitioned image schedule,
  /// parallel to the clusters; exposed for the schedule unit tests.
  const std::vector<bdd::Bdd>& image_cubes() const {
    return sched_img_.cubes;
  }
  const bdd::Bdd& image_rest_cube() const { return sched_img_.rest; }

 private:
  /// One visit order's early-quantification plan: after conjoining
  /// cluster visit[k], quantify cubes[k] (the variables whose last
  /// mention is in that cluster). `rest` holds the variables no cluster
  /// mentions — quantified straight out of the argument set.
  struct Schedule {
    std::vector<std::size_t> visit;  ///< Cluster indices, visit order.
    std::vector<bdd::Bdd> cubes;     ///< Parallel to `visit`.
    bdd::Bdd rest;
  };

  Schedule make_schedule(const std::vector<std::size_t>& visit,
                         const std::vector<bdd::Var>& quantify) const;
  bdd::Bdd apply(const bdd::Bdd& set, const Schedule& sched) const;

  bdd::BddManager* mgr_ = nullptr;
  std::vector<bdd::Bdd> clusters_;
  std::vector<std::size_t> parts_per_cluster_;
  std::size_t partial_count_ = 0;

  Schedule sched_img_;        ///< Partitioned order, image.
  Schedule sched_pre_;        ///< Partitioned order, preimage.
  Schedule chain_sched_img_;  ///< Chaining order, image.
  Schedule chain_sched_pre_;  ///< Chaining order, preimage.

  bdd::Bdd img_full_cube_;  ///< All image-quantified vars (monolithic).
  bdd::Bdd pre_full_cube_;

  mutable std::mutex monolithic_mu_;
  mutable std::optional<bdd::Bdd> monolithic_;
};

}  // namespace covest::image
