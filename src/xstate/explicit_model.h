// Explicit-state reference engine.
//
// Enumerates the full state space of a (small) model — every valuation of
// latch and input bits, exactly the state space the symbolic engine works
// on — and evaluates CTL by naive set fix-points. It exists to serve as an
// independent oracle:
//
//   * the symbolic model checker is validated against `sat`/`holds`,
//   * the coverage estimator is validated against the brute-force
//     dual-FSM Definition-3 computation (see core/coverage_oracle.h),
//     which re-checks a property once per state with the observed
//     signal's label flipped there.
//
// Atom evaluation supports an override hook so the dual FSM M̂_s of the
// paper (Definition 2) — identical to M except the observed signal's
// labelling is flipped at one state — can be expressed without copying
// the model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctl/ctl.h"
#include "expr/expr.h"
#include "model/model.h"

namespace covest::xstate {

/// Hook consulted before normal signal lookup when evaluating atoms.
/// Returning a value overrides the signal's value in `state`; returning
/// nullopt falls back to the model. The hook also resolves signals that
/// do not exist in the model (the primed observed signal q' of the
/// observability transformation), in which case it must supply a type
/// via `override_type`.
struct AtomOverride {
  std::function<std::optional<std::uint64_t>(std::size_t state,
                                             const std::string& name)>
      value;
  std::function<std::optional<expr::Type>(const std::string& name)> type;
  /// A DEFINE name to keep un-expanded in atoms, so `value` can override
  /// it (the naive Definition-3 mode flips an observed DEFINE directly).
  std::optional<std::string> preserve_define;
};

class ExplicitModel {
 public:
  /// Enumerates the model's state space; throws if it exceeds
  /// `max_states` (explicit enumeration is for small reference models).
  explicit ExplicitModel(const model::Model& model,
                         std::size_t max_states = std::size_t{1} << 22);

  const model::Model& model() const { return model_; }
  std::size_t num_states() const { return num_states_; }
  unsigned num_bits() const { return static_cast<unsigned>(bits_.size()); }

  /// Value of a VAR/IVAR signal in `state` (defines evaluated on demand).
  std::uint64_t value(std::size_t state, const std::string& name) const;

  const std::vector<std::uint32_t>& successors(std::size_t state) const {
    return successors_[state];
  }
  const std::vector<std::uint32_t>& predecessors(std::size_t state) const {
    return predecessors_[state];
  }

  /// Initial states (INIT assignments and constraints; inputs free).
  const std::vector<bool>& initial() const { return initial_; }
  /// States reachable from the initial states.
  const std::vector<bool>& reachable() const { return reachable_; }
  /// States from which some fair path leaves (all states without
  /// fairness constraints). Fair-CTL semantics match the symbolic checker.
  const std::vector<bool>& fair() const { return fair_; }

  /// Satisfaction set of `f`, fair semantics, optional atom override.
  std::vector<bool> sat(const ctl::Formula& f,
                        const AtomOverride* override_hook = nullptr) const;

  /// All initial states satisfy `f`.
  bool holds(const ctl::Formula& f,
             const AtomOverride* override_hook = nullptr) const;

  /// Packs per-signal values into a state index (inverse of `value`).
  std::size_t index_of(
      const std::unordered_map<std::string, std::uint64_t>& values) const;

 private:
  struct BitRef {
    std::string signal;
    unsigned bit = 0;
    bool is_input = false;
    bool has_next = false;
  };

  std::uint64_t raw_value(std::size_t state, const std::string& name) const;
  void build_graph();
  void compute_fair();
  std::vector<bool> eval_atom(const expr::Expr& e,
                              const AtomOverride* hook) const;

  // CTL set operations.
  std::vector<bool> ex_set_plain_helper(const std::vector<bool>& p) const;
  std::vector<bool> ex(const std::vector<bool>& p) const;
  std::vector<bool> eu(const std::vector<bool>& p,
                       const std::vector<bool>& q) const;
  std::vector<bool> eg(const std::vector<bool>& p) const;
  std::vector<bool> eu_plain(const std::vector<bool>& p,
                             const std::vector<bool>& q) const;
  std::vector<bool> eg_plain(const std::vector<bool>& p) const;

  model::Model model_;
  std::vector<BitRef> bits_;  ///< Bit i of the state index, LSB first.
  std::unordered_map<std::string, std::pair<unsigned, unsigned>>
      signal_bits_;  ///< name -> (offset, width) in the state index.
  std::size_t num_states_ = 0;
  std::vector<std::vector<std::uint32_t>> successors_;
  std::vector<std::vector<std::uint32_t>> predecessors_;
  std::vector<bool> initial_;
  std::vector<bool> reachable_;
  std::vector<bool> fair_;
  std::unordered_map<std::string, expr::Expr> define_expansion_;
};

}  // namespace covest::xstate
