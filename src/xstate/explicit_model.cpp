#include "xstate/explicit_model.h"

#include <stdexcept>

namespace covest::xstate {

using expr::Expr;
using expr::Type;

ExplicitModel::ExplicitModel(const model::Model& model,
                             std::size_t max_states)
    : model_(model) {
  model_.validate();

  for (const model::Signal& s : model_.signals()) {
    if (s.kind == model::SignalKind::kDefine) {
      define_expansion_.emplace(s.name, model_.expand_defines(s.define));
      continue;
    }
    const unsigned width = s.type.is_bool ? 1 : s.type.width;
    signal_bits_.emplace(s.name,
                         std::make_pair(static_cast<unsigned>(bits_.size()),
                                        width));
    for (unsigned i = 0; i < width; ++i) {
      BitRef ref;
      ref.signal = s.name;
      ref.bit = i;
      ref.is_input = s.kind == model::SignalKind::kInput;
      ref.has_next = s.kind == model::SignalKind::kState && s.next.valid();
      bits_.push_back(std::move(ref));
    }
  }
  if (bits_.size() >= 63 || (std::size_t{1} << bits_.size()) > max_states) {
    throw std::runtime_error(
        "explicit enumeration limit exceeded: model has " +
        std::to_string(bits_.size()) + " bits");
  }
  num_states_ = std::size_t{1} << bits_.size();
  build_graph();
  compute_fair();
}

std::uint64_t ExplicitModel::raw_value(std::size_t state,
                                       const std::string& name) const {
  const auto it = signal_bits_.find(name);
  if (it == signal_bits_.end()) {
    throw std::runtime_error("explicit model: unknown signal '" + name + "'");
  }
  const auto [offset, width] = it->second;
  return (state >> offset) & ((1ull << width) - 1);
}

std::uint64_t ExplicitModel::value(std::size_t state,
                                   const std::string& name) const {
  const auto def = define_expansion_.find(name);
  if (def != define_expansion_.end()) {
    return expr::eval(
        def->second,
        [&](const std::string& n) { return raw_value(state, n); },
        model_.type_resolver());
  }
  return raw_value(state, name);
}

void ExplicitModel::build_graph() {
  successors_.resize(num_states_);
  predecessors_.resize(num_states_);
  initial_.assign(num_states_, false);
  reachable_.assign(num_states_, false);

  const expr::TypeResolver types = model_.type_resolver();

  // Positions of "free" bits: inputs and latches without a NEXT function.
  std::vector<unsigned> free_bits;
  for (unsigned i = 0; i < bits_.size(); ++i) {
    if (bits_[i].is_input || !bits_[i].has_next) free_bits.push_back(i);
  }

  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto values = [&](const std::string& n) { return raw_value(s, n); };
    // Base successor: assigned latch bits take their next value, free
    // bits zero (filled in below).
    std::size_t base = 0;
    for (const model::Signal& sig : model_.signals()) {
      if (sig.kind != model::SignalKind::kState || !sig.next.valid()) {
        continue;
      }
      const Expr next = model_.expand_defines(sig.next);
      const std::uint64_t v = expr::eval(next, values, types);
      const auto [offset, width] = signal_bits_.at(sig.name);
      base |= (v & ((1ull << width) - 1)) << offset;
    }
    // Enumerate every combination of the free bits.
    const std::size_t combos = std::size_t{1} << free_bits.size();
    successors_[s].reserve(combos);
    for (std::size_t c = 0; c < combos; ++c) {
      std::size_t t = base;
      for (std::size_t k = 0; k < free_bits.size(); ++k) {
        if ((c >> k) & 1) t |= (std::size_t{1} << free_bits[k]);
      }
      successors_[s].push_back(static_cast<std::uint32_t>(t));
    }
  }
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (std::uint32_t t : successors_[s]) predecessors_[t].push_back(s);
  }

  // Initial states: INIT assignments and constraints on latches; inputs
  // and unconstrained latches free.
  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto values = [&](const std::string& n) { return raw_value(s, n); };
    bool ok = true;
    for (const model::Signal& sig : model_.signals()) {
      if (sig.kind != model::SignalKind::kState || !sig.init.valid()) {
        continue;
      }
      const std::uint64_t want =
          expr::eval(model_.expand_defines(sig.init), values, types);
      if (raw_value(s, sig.name) != want) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const Expr& c : model_.init_constraints()) {
        if (expr::eval(model_.expand_defines(c), values, types) == 0) {
          ok = false;
          break;
        }
      }
    }
    initial_[s] = ok;
  }

  // Reachability by BFS.
  std::vector<std::size_t> queue;
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (initial_[s]) {
      reachable_[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::size_t s = queue.back();
    queue.pop_back();
    for (std::uint32_t t : successors_[s]) {
      if (!reachable_[t]) {
        reachable_[t] = true;
        queue.push_back(t);
      }
    }
  }
}

void ExplicitModel::compute_fair() {
  if (model_.fairness().empty()) {
    fair_.assign(num_states_, true);
    return;
  }
  // Emerson-Lei for EG_fair true over the explicit graph.
  std::vector<std::vector<bool>> constraints;
  for (const Expr& c : model_.fairness()) {
    constraints.push_back(eval_atom(c, nullptr));
  }
  std::vector<bool> z(num_states_, true);
  while (true) {
    std::vector<bool> next(num_states_, true);
    for (const auto& c : constraints) {
      std::vector<bool> target(num_states_);
      for (std::size_t s = 0; s < num_states_; ++s) target[s] = z[s] && c[s];
      const std::vector<bool> reach_c =
          eu_plain(std::vector<bool>(num_states_, true), target);
      const std::vector<bool> pre = ex_set_plain_helper(reach_c);
      for (std::size_t s = 0; s < num_states_; ++s) {
        next[s] = next[s] && pre[s];
      }
    }
    if (next == z) break;
    z = next;
  }
  fair_ = z;
}

std::vector<bool> ExplicitModel::eval_atom(const expr::Expr& raw,
                                           const AtomOverride* hook) const {
  const std::string* preserve =
      hook != nullptr && hook->preserve_define ? &*hook->preserve_define
                                               : nullptr;
  const expr::Expr e = model_.expand_defines(raw, preserve);
  const expr::TypeResolver base_types = model_.type_resolver();
  const expr::TypeResolver types =
      [&](const std::string& n) -> std::optional<Type> {
    if (hook != nullptr && hook->type) {
      if (auto t = hook->type(n)) return t;
    }
    return base_types(n);
  };
  std::vector<bool> result(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    const auto values = [&](const std::string& n) -> std::uint64_t {
      if (hook != nullptr && hook->value) {
        if (auto v = hook->value(s, n)) return *v;
      }
      return value(s, n);
    };
    result[s] = expr::eval(e, values, types) != 0;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Explicit CTL evaluation
// ---------------------------------------------------------------------------

std::vector<bool> ExplicitModel::ex_set_plain_helper(
    const std::vector<bool>& p) const {
  std::vector<bool> result(num_states_, false);
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (std::uint32_t t : successors_[s]) {
      if (p[t]) {
        result[s] = true;
        break;
      }
    }
  }
  return result;
}

std::vector<bool> ExplicitModel::ex(const std::vector<bool>& p) const {
  std::vector<bool> pf(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) pf[s] = p[s] && fair_[s];
  return ex_set_plain_helper(pf);
}

std::vector<bool> ExplicitModel::eu_plain(const std::vector<bool>& p,
                                          const std::vector<bool>& q) const {
  std::vector<bool> z = q;
  std::vector<std::size_t> queue;
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (z[s]) queue.push_back(s);
  }
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    for (std::uint32_t s : predecessors_[t]) {
      if (!z[s] && p[s]) {
        z[s] = true;
        queue.push_back(s);
      }
    }
  }
  return z;
}

std::vector<bool> ExplicitModel::eu(const std::vector<bool>& p,
                                    const std::vector<bool>& q) const {
  std::vector<bool> qf(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) qf[s] = q[s] && fair_[s];
  return eu_plain(p, qf);
}

std::vector<bool> ExplicitModel::eg_plain(const std::vector<bool>& p) const {
  std::vector<bool> z = p;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<bool> pre = ex_set_plain_helper(z);
    for (std::size_t s = 0; s < num_states_; ++s) {
      if (z[s] && !pre[s]) {
        z[s] = false;
        changed = true;
      }
    }
  }
  return z;
}

std::vector<bool> ExplicitModel::eg(const std::vector<bool>& p) const {
  if (model_.fairness().empty()) return eg_plain(p);
  // Emerson-Lei with the precomputed constraint sets.
  std::vector<std::vector<bool>> constraints;
  for (const Expr& c : model_.fairness()) {
    constraints.push_back(eval_atom(c, nullptr));
  }
  std::vector<bool> z = p;
  while (true) {
    std::vector<bool> next = p;
    for (const auto& c : constraints) {
      std::vector<bool> target(num_states_);
      for (std::size_t s = 0; s < num_states_; ++s) target[s] = z[s] && c[s];
      const std::vector<bool> pre = ex_set_plain_helper(eu_plain(p, target));
      for (std::size_t s = 0; s < num_states_; ++s) {
        next[s] = next[s] && pre[s];
      }
    }
    if (next == z) return z;
    z = next;
  }
}

std::vector<bool> ExplicitModel::sat(const ctl::Formula& f,
                                     const AtomOverride* hook) const {
  using ctl::CtlOp;
  const auto combine = [&](const std::vector<bool>& a,
                           const std::vector<bool>& b, CtlOp op) {
    std::vector<bool> r(num_states_);
    for (std::size_t s = 0; s < num_states_; ++s) {
      switch (op) {
        case CtlOp::kAnd: r[s] = a[s] && b[s]; break;
        case CtlOp::kOr: r[s] = a[s] || b[s]; break;
        case CtlOp::kImplies: r[s] = !a[s] || b[s]; break;
        default: r[s] = a[s] == b[s]; break;  // kIff
      }
    }
    return r;
  };
  const auto negate = [&](std::vector<bool> a) {
    for (std::size_t s = 0; s < num_states_; ++s) a[s] = !a[s];
    return a;
  };

  switch (f.op()) {
    case CtlOp::kProp:
      return eval_atom(f.prop(), hook);
    case CtlOp::kNot:
      return negate(sat(f.arg(0), hook));
    case CtlOp::kAnd:
    case CtlOp::kOr:
    case CtlOp::kImplies:
    case CtlOp::kIff:
      return combine(sat(f.arg(0), hook), sat(f.arg(1), hook), f.op());
    case CtlOp::kEX:
      return ex(sat(f.arg(0), hook));
    case CtlOp::kAX:
      return negate(ex(negate(sat(f.arg(0), hook))));
    case CtlOp::kEU:
      return eu(sat(f.arg(0), hook), sat(f.arg(1), hook));
    case CtlOp::kEF:
      return eu(std::vector<bool>(num_states_, true), sat(f.arg(0), hook));
    case CtlOp::kEG:
      return eg(sat(f.arg(0), hook));
    case CtlOp::kAG:
      return negate(
          eu(std::vector<bool>(num_states_, true), negate(sat(f.arg(0), hook))));
    case CtlOp::kAF:
      return negate(eg(negate(sat(f.arg(0), hook))));
    case CtlOp::kAU: {
      const std::vector<bool> np = negate(sat(f.arg(0), hook));
      const std::vector<bool> nq = negate(sat(f.arg(1), hook));
      std::vector<bool> both(num_states_);
      for (std::size_t s = 0; s < num_states_; ++s) both[s] = np[s] && nq[s];
      std::vector<bool> bad = eu(nq, both);
      const std::vector<bool> egnq = eg(nq);
      for (std::size_t s = 0; s < num_states_; ++s) {
        bad[s] = bad[s] || egnq[s];
      }
      return negate(bad);
    }
  }
  throw std::logic_error("unhandled CTL operator");
}

bool ExplicitModel::holds(const ctl::Formula& f,
                          const AtomOverride* hook) const {
  const std::vector<bool> s = sat(f, hook);
  for (std::size_t i = 0; i < num_states_; ++i) {
    if (initial_[i] && !s[i]) return false;
  }
  return true;
}

std::size_t ExplicitModel::index_of(
    const std::unordered_map<std::string, std::uint64_t>& values) const {
  std::size_t state = 0;
  for (const auto& [name, v] : values) {
    const auto it = signal_bits_.find(name);
    if (it == signal_bits_.end()) continue;  // Defines are derived.
    const auto [offset, width] = it->second;
    state |= (v & ((1ull << width) - 1)) << offset;
  }
  return state;
}

}  // namespace covest::xstate
