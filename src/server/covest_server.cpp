#include "server/covest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/json.h"
#include "engine/result_json.h"
#include "engine/session_cache.h"
#include "util/time.h"

namespace covest::server {

namespace {

using engine::NdjsonDispatcher;
using engine::ParsedLine;
using engine::SuiteResult;
using util::Clock;
using util::ms_since;

/// Robust full-buffer send. MSG_NOSIGNAL: a vanished client must come
/// back as an error return, not a process-wide SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// The `{"op": ...}` sniff: cheap substring prefilter, then a real
/// parse. Returns true when `line` is a well-formed JSON object with a
/// string `op` member (`*op` receives it) — anything else is a regular
/// request line.
bool parse_op_line(const std::string& line, std::string* op) {
  if (line.find("\"op\"") == std::string::npos) return false;
  try {
    const engine::json::Value v = engine::json::parse(line);
    if (v.type != engine::json::Value::Type::kObject) return false;
    for (const auto& [key, value] : v.object) {
      if (key == "op" && value.type == engine::json::Value::Type::kString) {
        *op = value.string;
        return true;
      }
    }
  } catch (const std::exception&) {
    // Malformed JSON takes the regular request path, whose parse error
    // message is the documented one.
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct CovestServer::Impl {
  ServerOptions options;

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  /// Self-pipe: `request_shutdown` writes one byte (async-signal-safe);
  /// the accept loop and every connection reader poll the read end.
  int wake_rd = -1;
  int wake_wr = -1;
  std::atomic<bool> shutting_down{false};

  std::shared_ptr<engine::SessionCache> cache;
  std::unique_ptr<engine::Executor> executor;
  std::size_t window = 2;

  // -- Connection registry --------------------------------------------------
  std::mutex conn_mu;
  std::uint64_t next_conn_id = 1;
  std::unordered_map<std::uint64_t, std::thread> conns;
  std::vector<std::uint64_t> finished;  ///< Ready to join (reaped lazily).

  // -- Metrics + exit aggregation -------------------------------------------
  Clock::time_point started_at{};
  std::atomic<std::uint64_t> n_ok{0}, n_cancelled{0}, n_deadline{0},
      n_exhausted{0}, n_admission{0}, n_error{0};
  std::atomic<std::uint64_t> conn_total{0}, conn_rejected{0};
  std::atomic<std::size_t> conn_active{0};
  std::atomic<bool> any_error{false}, any_failure{false}, any_limited{false};

  // -- Maintenance window (gc_interval > 0) ---------------------------------
  /// Background thread: every `gc_interval` completed suites it takes
  /// the executor's stop-the-world window and GCs the parked sessions.
  /// Started by `start`, woken by `record`, joined by the destructor
  /// (request_shutdown stays async-signal-safe — it never notifies).
  std::thread gc_thread;
  std::mutex gc_mu;
  std::condition_variable gc_cv;
  std::uint64_t last_maintained = 0;  ///< Suite total at the last pass.
  std::atomic<std::uint64_t> maintenance_runs{0};
  std::atomic<std::size_t> maintenance_sessions{0};
  std::atomic<std::size_t> maintenance_live_before{0};
  std::atomic<std::size_t> maintenance_live_after{0};

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  /// Folds one emitted result line into the per-status counters and the
  /// exit-code flags — every line that reaches a client goes through
  /// here, connection-level rejections included.
  void record(const SuiteResult& r) {
    switch (r.status) {
      case engine::ResultStatus::kOk:
        ++n_ok;
        break;
      case engine::ResultStatus::kCancelled:
        ++n_cancelled;
        break;
      case engine::ResultStatus::kDeadlineExceeded:
        ++n_deadline;
        break;
      case engine::ResultStatus::kResourceExhausted:
        ++n_exhausted;
        break;
      case engine::ResultStatus::kAdmissionRejected:
        ++n_admission;
        break;
      case engine::ResultStatus::kError:
        ++n_error;
        break;
    }
    if (!r.error.empty()) any_error = true;
    if (r.failures > 0) any_failure = true;
    if (r.status == engine::ResultStatus::kDeadlineExceeded ||
        r.status == engine::ResultStatus::kResourceExhausted ||
        r.status == engine::ResultStatus::kAdmissionRejected) {
      any_limited = true;
    }
    if (options.gc_interval > 0) gc_cv.notify_one();
  }

  std::uint64_t suites_total() const {
    return n_ok + n_cancelled + n_deadline + n_exhausted + n_admission +
           n_error;
  }

  void maintenance_loop() {
    std::unique_lock<std::mutex> lock(gc_mu);
    for (;;) {
      // The timed backstop covers the signal-handler shutdown path:
      // request_shutdown only stores + writes the pipe (it must stay
      // async-signal-safe), so this thread re-checks on a coarse tick.
      gc_cv.wait_for(lock, std::chrono::milliseconds(200), [this] {
        return shutting_down.load(std::memory_order_relaxed) ||
               suites_total() - last_maintained >= options.gc_interval;
      });
      if (shutting_down.load(std::memory_order_relaxed)) return;
      if (suites_total() - last_maintained < options.gc_interval) continue;
      last_maintained = suites_total();
      lock.unlock();
      const engine::MaintenanceStats ms =
          executor->maintenance(options.gc_sift);
      ++maintenance_runs;
      maintenance_sessions.store(ms.sessions, std::memory_order_relaxed);
      maintenance_live_before.store(ms.live_nodes_before,
                                    std::memory_order_relaxed);
      maintenance_live_after.store(ms.live_nodes_after,
                                   std::memory_order_relaxed);
      lock.lock();
    }
  }

  std::string metrics_line() const {
    // uptime_ms is an integer and per_sec fixed-precision: the default
    // 6-significant-digit ostringstream formatting flips a double
    // uptime into scientific notation after ~16.7 minutes (1e+06 ms),
    // corrupting the metrics line for any numeric consumer.
    const std::uint64_t uptime =
        static_cast<std::uint64_t>(ms_since(started_at));
    const std::uint64_t total = n_ok + n_cancelled + n_deadline + n_exhausted +
                                n_admission + n_error;
    const double per_sec =
        uptime > 0 ? 1000.0 * static_cast<double>(total) /
                         static_cast<double>(uptime)
                   : 0.0;
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << "{\"metrics\":{";
    os << "\"uptime_ms\":" << uptime;
    os << ",\"queue_depth\":" << executor->queue_depth();
    os << ",\"suites\":{\"total\":" << total << ",\"per_sec\":" << per_sec
       << ",\"ok\":" << n_ok << ",\"cancelled\":" << n_cancelled
       << ",\"deadline_exceeded\":" << n_deadline
       << ",\"resource_exhausted\":" << n_exhausted
       << ",\"admission_rejected\":" << n_admission
       << ",\"error\":" << n_error << "}";
    os << ",\"connections\":{\"active\":" << conn_active
       << ",\"total\":" << conn_total << ",\"rejected\":" << conn_rejected
       << "}";
    if (cache) {
      const engine::SessionCacheStats cs = cache->stats();
      os << ",\"cache\":{\"capacity\":" << cache->capacity()
         << ",\"entries\":" << cs.entries << ",\"hits\":" << cs.hits
         << ",\"misses\":" << cs.misses << ",\"insertions\":" << cs.insertions
         << ",\"evictions\":" << cs.evictions << ",\"discards\":" << cs.discards
         << ",\"live_nodes\":" << cs.live_nodes << "}";
    }
    if (options.gc_interval > 0) {
      os << ",\"maintenance\":{\"interval\":" << options.gc_interval
         << ",\"runs\":" << maintenance_runs
         << ",\"sessions\":" << maintenance_sessions
         << ",\"live_nodes_before\":" << maintenance_live_before
         << ",\"live_nodes_after\":" << maintenance_live_after << "}";
    }
    os << "}}\n";
    return os.str();
  }

  /// One status-only line outside the dispatcher: connection-level
  /// admission rejections and oversize request lines.
  SuiteResult status_line(engine::ResultStatus status, std::string detail) {
    SuiteResult r;
    r.status = status;
    r.status_detail = std::move(detail);
    record(r);
    return r;
  }

  void handle_connection(std::uint64_t id, int fd);
  void reap_finished();
};

// ---------------------------------------------------------------------------
// Connection loop
// ---------------------------------------------------------------------------

void CovestServer::Impl::handle_connection(std::uint64_t id, int fd) {
  engine::JsonOptions json;
  json.pretty = false;
  json.include_stats = options.stats;

  bool client_alive = true;
  NdjsonDispatcher dispatch(
      *executor, window, [this, fd, &json, &client_alive](const SuiteResult& r) {
        record(r);
        if (client_alive && !send_all(fd, engine::to_json(r, json))) {
          client_alive = false;
        }
      });

  const auto handle_line = [&](const std::string& raw) {
    const std::string line = engine::ndjson_trimmed(raw);
    if (line.empty()) return;
    std::string op;
    if (parse_op_line(line, &op)) {
      if (op == "metrics") {
        if (client_alive && !send_all(fd, metrics_line())) {
          client_alive = false;
        }
      } else {
        ParsedLine bad;
        bad.input_error = "unknown op '" + op + "'";
        dispatch.push(std::move(bad));
      }
      return;
    }
    dispatch.push(
        engine::parse_request_line(line, options.defaults, "", false));
  };

  std::string buffer;
  bool discarding = false;  ///< Oversize line: drop bytes to next '\n'.
  char chunk[4096];
  pollfd fds[2];
  fds[0] = {fd, POLLIN, 0};
  fds[1] = {wake_rd, POLLIN, 0};
  // With jobs in flight, poll on a short tick so finished results
  // stream out while the client holds the connection open — a socket
  // has no EOF-then-drain moment the way batch stdin does. Idle
  // connections block indefinitely (the wake pipe ends them).
  constexpr int kFlushTickMs = 20;
  while (client_alive) {
    const int timeout = dispatch.in_flight() == 0 ? -1 : kFlushTickMs;
    const int rc = ::poll(fds, 2, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    dispatch.flush_ready();
    if (rc == 0) continue;  // Tick: results flushed, nothing to read.
    // Shutdown wake: stop reading — buffered-but-unread requests are
    // not accepted during a drain — and fall through to the drain.
    if ((fds[1].revents & POLLIN) != 0 ||
        shutting_down.load(std::memory_order_relaxed)) {
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: drain what was submitted, then hang up.
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (discarding) {
        discarding = false;  // The runt tail of an oversize line.
        continue;
      }
      handle_line(line);
    }
    if (!discarding && buffer.size() > options.max_line_bytes) {
      // Emitted immediately (nothing of this line was ever submitted);
      // the stream resynchronizes at the next newline.
      const SuiteResult r = status_line(
          engine::ResultStatus::kAdmissionRejected,
          "request line exceeds max_line_bytes (" +
              std::to_string(options.max_line_bytes) + ")");
      if (client_alive && !send_all(fd, engine::to_json(r, json))) {
        client_alive = false;
      }
      buffer.clear();
      discarding = true;
    }
  }

  // Drain: every submitted job still gets its result line (shutdown
  // grants `drain_ms` per job, then cancels; the dispatcher destructor
  // reaps whatever remains without emitting).
  if (shutting_down.load(std::memory_order_relaxed)) {
    if (!dispatch.drain_for(std::chrono::milliseconds(options.drain_ms))) {
      // Grace expired: results computed so far were flushed; cancel the
      // rest (cooperative, so the executor drains promptly).
    }
  } else if (client_alive) {
    dispatch.drain();
  }
  // A dead client (or an expired drain) leaves jobs in flight; the
  // dispatcher destructor cancels and absorbs them here.

  ::close(fd);
  conn_active.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn_mu);
  finished.push_back(id);
}

void CovestServer::Impl::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (const std::uint64_t id : finished) {
      const auto it = conns.find(id);
      if (it != conns.end()) {
        done.push_back(std::move(it->second));
        conns.erase(it);
      }
    }
    finished.clear();
  }
  for (std::thread& t : done) t.join();
}

// ---------------------------------------------------------------------------
// CovestServer
// ---------------------------------------------------------------------------

CovestServer::CovestServer(ServerOptions options) : impl_(new Impl) {
  options.defaults.flags_override = false;  // Server flags are defaults.
  impl_->options = std::move(options);
}

CovestServer::~CovestServer() {
  if (impl_->gc_thread.joinable()) {
    impl_->shutting_down.store(true, std::memory_order_relaxed);
    impl_->gc_cv.notify_all();  // Normal context here: notify is safe.
    impl_->gc_thread.join();
  }
}

bool CovestServer::start(std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail("pipe");
  impl_->wake_rd = pipe_fds[0];
  impl_->wake_wr = pipe_fds[1];

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->options.port);
  if (::inet_pton(AF_INET, impl_->options.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid host '" + impl_->options.host + "'";
    }
    return false;
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind " + impl_->options.host + ":" +
                std::to_string(impl_->options.port));
  }
  if (::listen(impl_->listen_fd, 64) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
  impl_->bound_port = ntohs(bound.sin_port);

  if (impl_->options.cache_sessions > 0) {
    impl_->cache =
        std::make_shared<engine::SessionCache>(impl_->options.cache_sessions);
  }
  engine::ExecutorOptions executor_options;
  executor_options.workers = impl_->options.jobs;
  executor_options.max_queue_depth = impl_->options.max_queue;
  // Rejecting admission (not blocking): a reader thread stuck in
  // `submit` could not poll its client or the shutdown pipe.
  executor_options.admission = engine::AdmissionPolicy::kReject;
  executor_options.session_cache = impl_->cache;
  impl_->executor =
      std::make_unique<engine::Executor>(std::move(executor_options));
  impl_->window = 2 * impl_->executor->worker_count();
  impl_->started_at = Clock::now();
  if (impl_->options.gc_interval > 0) {
    impl_->gc_thread = std::thread([this] { impl_->maintenance_loop(); });
  }
  return true;
}

std::uint16_t CovestServer::port() const { return impl_->bound_port; }

void CovestServer::serve() {
  pollfd fds[2];
  fds[0] = {impl_->listen_fd, POLLIN, 0};
  fds[1] = {impl_->wake_rd, POLLIN, 0};
  while (!impl_->shutting_down.load(std::memory_order_relaxed)) {
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // Shutdown wake.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    impl_->reap_finished();
    const std::size_t cap = impl_->options.max_connections;
    // Tentative active-count claim: the cap must hold even against
    // concurrent hangups (the decrement is the reader's last act).
    if (cap != 0 &&
        impl_->conn_active.fetch_add(1, std::memory_order_relaxed) >= cap) {
      impl_->conn_active.fetch_sub(1, std::memory_order_relaxed);
      ++impl_->conn_rejected;
      engine::JsonOptions json;
      json.pretty = false;
      json.include_stats = impl_->options.stats;
      const SuiteResult r = impl_->status_line(
          engine::ResultStatus::kAdmissionRejected,
          "connection limit (max_connections=" + std::to_string(cap) + ")");
      send_all(fd, engine::to_json(r, json));
      ::close(fd);
      continue;
    }
    if (cap == 0) impl_->conn_active.fetch_add(1, std::memory_order_relaxed);
    ++impl_->conn_total;
    std::lock_guard<std::mutex> lock(impl_->conn_mu);
    const std::uint64_t id = impl_->next_conn_id++;
    impl_->conns.emplace(
        id, std::thread([this, id, fd] { impl_->handle_connection(id, fd); }));
  }
  // Reject new connections at the socket level, then let every reader
  // finish its drain and join it.
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  for (;;) {
    impl_->reap_finished();
    std::unique_lock<std::mutex> lock(impl_->conn_mu);
    if (impl_->conns.empty()) break;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void CovestServer::request_shutdown() noexcept {
  impl_->shutting_down.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // The self-pipe stays open (and readable) for the server's lifetime,
  // so every poller wakes; EAGAIN on a full pipe is fine — it already
  // has a wake byte in it.
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_wr, &byte, 1);
}

int CovestServer::exit_code() const {
  if (impl_->any_limited.load()) return 3;
  return (impl_->any_error.load() || impl_->any_failure.load()) ? 1 : 0;
}

}  // namespace covest::server
