// covest_serve's engine room — a long-lived TCP front-end for the
// NDJSON coverage contract (engine/ndjson_driver.h).
//
// One `CovestServer` owns one `engine::Executor` (with an optional warm
// `engine::SessionCache`) and serves any number of concurrent client
// connections. Each accepted connection gets a reader thread running
// the same bounded-window `NdjsonDispatcher` loop as `covest_batch`:
// newline-delimited JSON `CoverageRequest`s in, one compact JSON
// `SuiteResult` line per request out, in per-connection submit order —
// byte-identical to what `covest_batch` prints for the same stream.
//
// Beyond suite requests, a line of the form
//
//   {"op": "metrics"}
//
// returns one JSON metrics line *immediately* (it bypasses the result
// queue — the point is to observe a busy server): uptime, suites/sec,
// per-status result counts, executor queue depth, connection counts and
// warm-cache occupancy (hits/misses/insertions/evictions/discards and
// parked live nodes).
//
// Robustness contract: an input defect never drops the connection. A
// malformed JSON line produces a single `summary.error` result line in
// order; a line exceeding `max_line_bytes` produces a single
// `admission_rejected` status line and the stream resynchronizes at the
// next newline; a connection over `max_connections` is answered with
// one `admission_rejected` line and closed. Client disconnects mid-suite
// cancel that connection's in-flight jobs; workers never throw.
//
// Lifecycle: `start` binds and listens; `serve` runs the accept loop on
// the calling thread until `request_shutdown` (async-signal-safe — the
// SIGINT/SIGTERM handlers call it). Shutdown rejects new connections,
// stops reading from live ones, drains in-flight jobs
// (`JobHandle::wait_for` with a per-job grace; expired drains cancel),
// flushes their result lines, and `serve` returns. `exit_code` then
// reports the batch-compatible verdict over everything served:
// 0 = every suite ran and passed, 1 = some error or property failure,
// 3 = some job was stopped by a resource limit (wins over 1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engine/ndjson_driver.h"

namespace covest::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read the bound one via `port()`.
  std::uint16_t port = 0;
  /// Executor workers (0 = one per hardware thread).
  std::size_t jobs = 1;
  /// Bounded executor admission: a full queue finishes the job
  /// immediately with `admission_rejected` (never blocks a reader
  /// thread). 0 = unbounded.
  std::size_t max_queue = 0;
  /// Per-request defaults (`--deadline-ms`, `--max-nodes`, ...). Server
  /// flags are *defaults*: a request's own nonzero field wins
  /// (`flags_override` is forced to false).
  engine::RequestDefaults defaults;
  /// Warm model cache capacity in parked sessions; 0 disables the cache
  /// (every request re-parses and re-elaborates).
  std::size_t cache_sessions = 8;
  /// Concurrent-connection cap; 0 = unbounded (satellite: bounded
  /// admission at the connection level).
  std::size_t max_connections = 0;
  /// Per-connection request-line length cap in bytes.
  std::size_t max_line_bytes = 1 << 20;
  /// Shutdown drain: per-job grace before in-flight work is cancelled.
  std::uint64_t drain_ms = 30'000;
  /// Include timing/BDD stats in result lines (off keeps the wire
  /// deterministic — the covest_batch diff contract).
  bool stats = false;
  /// Maintenance window cadence: after every `gc_interval` completed
  /// suite results, a background thread takes the executor's
  /// stop-the-world window (drain in-flight jobs, full GC on every
  /// parked session, resume) so the warm cache's managers stop
  /// accumulating garbage forever. 0 disables maintenance.
  std::uint64_t gc_interval = 0;
  /// Also sift-reorder parked sessions during maintenance. Off by
  /// default: sifting changes the variable order and with it
  /// witness/trace bytes, breaking the byte-identical warm-replay
  /// contract.
  bool gc_sift = false;
};

class CovestServer {
 public:
  explicit CovestServer(ServerOptions options);
  ~CovestServer();

  CovestServer(const CovestServer&) = delete;
  CovestServer& operator=(const CovestServer&) = delete;

  /// Binds and listens. False (with `*error` filled) on socket errors;
  /// the executor and cache are only spun up on success.
  bool start(std::string* error);

  /// The bound port (valid after `start`).
  std::uint16_t port() const;

  /// Accept loop; returns after `request_shutdown` once every
  /// connection has drained. Call from one thread only.
  void serve();

  /// Async-signal-safe shutdown trigger (atomic store + self-pipe
  /// write); safe to call from any thread or signal handler, more than
  /// once.
  void request_shutdown() noexcept;

  /// Batch-compatible verdict over everything served (see file
  /// comment). Stable once `serve` returned.
  int exit_code() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace covest::server
