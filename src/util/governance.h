// Resource governance: the typed limit exceptions every layer converts
// into structured statuses, the per-run deadline governor threaded
// through the engine's tick points and the BDD fixpoint loops, and a
// deterministic fault injector for the chaos battery. Lives in util/
// because both src/bdd/ and src/engine/ depend on it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace covest {

/// Thrown by BddManager when a configured `max_live_nodes` budget would
/// be exceeded (or by fault injection). Carries the occupancy observed
/// at the throw site and the configured budget so the engine can record
/// them in PhaseStats. Never leaves the pool inconsistent: it fires
/// before any slot is handed out.
class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(const std::string& what, std::size_t live_nodes,
                    std::size_t budget)
      : std::runtime_error(what), live_nodes_(live_nodes), budget_(budget) {}

  /// Pool occupancy (live + uncollected garbage) when the limit fired.
  std::size_t live_nodes() const noexcept { return live_nodes_; }
  /// The configured `max_live_nodes` budget (0 for injected failures on
  /// an unbudgeted manager).
  std::size_t budget() const noexcept { return budget_; }

 private:
  std::size_t live_nodes_;
  std::size_t budget_;
};

/// Thrown by RunGovernor::tick once a run's wall-clock deadline has
/// passed (or fault injection fired the deadline site).
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(std::uint64_t budget_ms)
      : std::runtime_error(budget_ms == 0
                               ? std::string("deadline expired (injected)")
                               : "deadline of " + std::to_string(budget_ms) +
                                     " ms expired"),
        budget_ms_(budget_ms) {}

  /// The deadline budget in milliseconds (0 for injected expiries on a
  /// run with no real deadline).
  std::uint64_t budget_ms() const noexcept { return budget_ms_; }

 private:
  std::uint64_t budget_ms_;
};

/// Process-wide deterministic fault injection. Always compiled in;
/// `should_fail` is a single relaxed atomic load plus a predicted-taken
/// branch when disarmed, so production paths pay essentially nothing.
///
/// Arm one site at a time: the Nth call to `should_fail(site)` after
/// `arm(site, n)` returns true exactly once; every other call (any
/// site, any count) returns false. `trigger_count()` reads how many
/// times the armed site has been reached, so tests can calibrate sweep
/// ranges by arming with a huge `fire_at` and counting a clean run.
class FaultInjector {
 public:
  enum class Site : int {
    kAllocation = 0,  ///< BddManager node allocation (both epochs).
    kDeadline = 1,    ///< RunGovernor::tick.
    kAdmission = 2,   ///< Executor::submit admission check.
  };

  /// Fire at the `fire_at`-th trigger of `site` (1-based). Resets the
  /// trigger counter. Not meant to race with in-flight runs.
  static void arm(Site site, std::uint64_t fire_at) noexcept;
  /// Return to the zero-cost disarmed state.
  static void disarm() noexcept;
  /// Triggers of the armed site observed since `arm`.
  static std::uint64_t trigger_count() noexcept;

  /// Hot-path check, called at every trigger point of `site`.
  static bool should_fail(Site site) noexcept {
    return armed_site_.load(std::memory_order_relaxed) ==
               static_cast<int>(site) &&
           fire();
  }

 private:
  static bool fire() noexcept;

  static std::atomic<int> armed_site_;  // -1 = disarmed.
  static std::atomic<std::uint64_t> count_;
  static std::atomic<std::uint64_t> fire_at_;
};

/// Wall-clock governor for one suite run. The deadline is fixed at
/// construction (steady clock, so unaffected by wall-time jumps);
/// `tick()` throws DeadlineExceeded once it has passed and keeps
/// throwing via a latched flag, so sharded estimator threads sharing
/// one governor all stop at their next tick. Thread-safe: ticking
/// reads an immutable time point and one atomic.
class RunGovernor {
 public:
  /// `budget_ms` = 0 means no real deadline; ticks still honour fault
  /// injection so expiry can be driven deterministically in tests.
  explicit RunGovernor(std::uint64_t budget_ms)
      : budget_ms_(budget_ms),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms)) {}

  std::uint64_t budget_ms() const noexcept { return budget_ms_; }

  /// Non-throwing poll of the latched state.
  bool expired() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Throws DeadlineExceeded when the deadline has passed (latched) or
  /// the kDeadline fault-injection site fires.
  void tick() {
    if (expired_.load(std::memory_order_relaxed)) {
      throw DeadlineExceeded(budget_ms_);
    }
    if (FaultInjector::should_fail(FaultInjector::Site::kDeadline) ||
        (budget_ms_ != 0 &&
         std::chrono::steady_clock::now() >= deadline_)) {
      expired_.store(true, std::memory_order_relaxed);
      throw DeadlineExceeded(budget_ms_);
    }
  }

  /// The governor installed on this thread, or nullptr.
  static RunGovernor* current() noexcept;

  /// RAII installation as the thread's current governor. Nestable (the
  /// previous governor is restored) so a library caller's governor is
  /// shadowed, not clobbered, by an inner run.
  class Scope {
   public:
    explicit Scope(RunGovernor* governor) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunGovernor* prev_;
  };

 private:
  std::uint64_t budget_ms_;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> expired_{false};
};

/// The coarse-grained tick dropped into BDD fixpoint loops: no-op when
/// no governor is installed on this thread.
void governor_tick();

}  // namespace covest
