#include "util/governance.h"

namespace covest {

std::atomic<int> FaultInjector::armed_site_{-1};
std::atomic<std::uint64_t> FaultInjector::count_{0};
std::atomic<std::uint64_t> FaultInjector::fire_at_{0};

void FaultInjector::arm(Site site, std::uint64_t fire_at) noexcept {
  armed_site_.store(-1, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  fire_at_.store(fire_at, std::memory_order_relaxed);
  armed_site_.store(static_cast<int>(site), std::memory_order_release);
}

void FaultInjector::disarm() noexcept {
  armed_site_.store(-1, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::trigger_count() noexcept {
  return count_.load(std::memory_order_relaxed);
}

bool FaultInjector::fire() noexcept {
  const std::uint64_t n =
      count_.fetch_add(1, std::memory_order_relaxed) + 1;
  return n == fire_at_.load(std::memory_order_relaxed);
}

namespace {
thread_local RunGovernor* tl_governor = nullptr;
}  // namespace

RunGovernor* RunGovernor::current() noexcept { return tl_governor; }

RunGovernor::Scope::Scope(RunGovernor* governor) noexcept
    : prev_(tl_governor) {
  tl_governor = governor;
}

RunGovernor::Scope::~Scope() { tl_governor = prev_; }

void governor_tick() {
  if (RunGovernor* governor = tl_governor) {
    governor->tick();
  }
}

}  // namespace covest
