// Shared wall-clock helpers: the one timing basis every layer's
// reported milliseconds come from (engine phase stats, executor shard
// totals). Header-only on purpose.
#pragma once

#include <chrono>

namespace covest::util {

using Clock = std::chrono::steady_clock;

/// Milliseconds elapsed since `start`.
inline double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace covest::util
