// Small shared helpers for the command-line front-ends (coverage_tool,
// covest_batch, the bench drivers). Header-only on purpose: the
// binaries stay thin adapters and the one parsing rule lives here.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace covest::util {

/// Strict non-negative integer parse for CLI arguments: rejects null,
/// empty strings, signs, trailing garbage and out-of-range values
/// instead of best-effort truncation.
inline bool parse_count(const char* text, std::size_t* out) {
  if (text == nullptr || *text == '\0' ||
      !std::isdigit(static_cast<unsigned char>(*text))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace covest::util
