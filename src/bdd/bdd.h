// Shared reduced-ordered binary decision diagrams (ROBDDs) with
// complement edges.
//
// This is the symbolic substrate for the whole library: the transition
// relations, state sets and coverage sets of the paper are all BDDs
// managed by the `BddManager` defined here.
//
// The design follows the classic shared-BDD packages (Bryant '86,
// Brace-Rudell-Bryant '90, CUDD, BuDDy): a single node pool with
// hash-consed nodes, one unique subtable per variable (which makes
// adjacent-level swaps local, enabling sifting reordering), a lossy
// computed-table cache for the recursive operations, and mark-and-sweep
// garbage collection rooted at RAII `Bdd` handles.
//
// Complement-edge encoding
// ------------------------
// A `NodeIndex` is an *edge*: the low 31 bits are a slot in the node
// pool, and the MSB (`kComplementBit`) marks the edge as complemented.
// An edge with the complement bit set denotes the negation of the
// function rooted at its slot. Consequences:
//
//  * Negation is an O(1) bit flip (`edge_not`); `f` and `!f` share all
//    of their nodes, roughly halving live node counts on negation-heavy
//    workloads, and the computed cache needs no NOT entries at all.
//  * There is a single terminal node (slot 0). The constant TRUE is the
//    plain edge to it (`kTrueIndex == 0`) and FALSE is the complemented
//    edge (`kFalseIndex == kComplementBit`).
//  * Canonical form: a stored node's *high* edge is never complemented.
//    `make_node` restores the invariant by complementing both children
//    and returning a complemented edge when needed. The low edge and any
//    external edge may carry the complement bit.
//  * The recursive operations canonicalize complement bits before the
//    cache lookup (e.g. XOR strips both operands' bits, ITE forces a
//    plain `f` and `g`), so `f ^ g`, `!(f ^ g)`, `ite(f,g,h)` and their
//    negated variants all share one cache line.
//
// Generation-stamp protocol
// -------------------------
// Every node has a 32-bit generation stamp plus a 32-bit scratch word,
// held in a per-thread context parallel to the node pool. A traversal
// (mark, support, node_count, sat_count, permute, DOT export, GC)
// begins by bumping its thread's generation counter; a node is
// "visited" when its stamp equals the current generation, and per-node
// traversal state lives in the scratch word (or in a flat per-thread
// side array for values wider than 32 bits, e.g. the sat-count memo).
// Traversals therefore run with zero per-call heap allocation once
// warmed up — nothing is cleared, stale state is simply outdated. The
// counter bumps are not reentrant within one thread: at most one
// stamped traversal runs at a time per thread (operations that build
// nodes, like permute, are fine — fresh nodes start at generation 0);
// different shared-mode threads traverse independently in their own
// contexts. On a thread's ~2^32nd traversal its counter wraps; its
// stamps are reset to 0 once and the counter restarts at 1.
//
// Thread safety and shared (sharded) mode
// ----------------------------------------
// A `BddManager` has two modes:
//
//  * Exclusive mode (the default): the manager and all `Bdd` handles
//    attached to it are used from a single thread. The manager records
//    the owning thread and, in debug builds, asserts that every node
//    construction happens on that thread — an executor bug that leaks a
//    manager across workers fails loudly instead of corrupting the
//    pool. A consumer that legitimately takes over a finished worker's
//    manager (e.g. `engine::JobHandle::take`) calls
//    `rebind_to_current_thread` first.
//
//  * Shared mode (`begin_shared` ... `end_shared`): K registered
//    threads build nodes and run traversals concurrently under ONE
//    manager — the substrate for "verify once, estimate in parallel".
//    The structures that make this safe:
//      - The node pool lives in geometrically-sized *segments* that are
//        never reallocated, so concurrent readers keep valid references
//        while other threads grow the pool. Threads allocate fresh
//        slots from per-thread arenas refilled in blocks under one
//        allocation mutex.
//      - The per-variable unique subtables and the computed cache are
//        synchronized according to the epoch's `TableMode`:
//          `kLockFree` (the default) — insert-if-absent via a
//          `compare_exchange` on the bucket head, publication by
//          release/acquire edges instead of mutex fences, and a
//          wait-free lossy computed cache of seqlock-stamped entries
//          (racing writers may overwrite; readers revalidate the full
//          key and treat any tear as a miss — nothing ever blocks).
//          Subtables are pre-sized at `begin_shared` and never resized
//          during the epoch, so lookups are tombstone-free and safe
//          against concurrent growth; an overfull table degrades to
//          longer chains, never to a data race.
//          `kStriped` — the PR-4 baseline: a striped lock array per
//          structure (`var % kUniqueStripes`, cache slot %
//          kCacheStripes); the mutexes double as the publication
//          fence. Kept selectable for benchmarking the trade-off.
//      - All traversal scratch (generation stamps, work stack,
//        sat-count memo, support marks) moves into per-thread contexts
//        created at registration, so the generation-stamp protocol
//        below needs no cross-thread coordination.
//      - External reference counts are atomics, so handles may be
//        copied/destroyed on any registered thread.
//    Memory reclamation inside a shared epoch is epoch-based deferred
//    reclamation with cooperative pauses: every public node-touching
//    entry point passes an `OpGate` that counts the thread into its
//    operation (`op_depth`) and announces the reclamation epoch it has
//    observed (`seen_epoch`). A collection (`gc()` from any registered
//    thread, or a volunteer when pool occupancy crosses the GC
//    threshold) raises `pause_requested_`, waits until every
//    registered thread is between operations (raw unreferenced
//    intermediates only exist *inside* an operation; pool helper
//    threads are covered too, because every stolen task is joined
//    before its forking operation returns), then marks from the
//    refcounted roots and sweeps dead nodes onto a *retire batch*
//    stamped with the global reclamation epoch. Retired slots rejoin
//    the free list only after a full grace period — every
//    non-passive registered thread has entered an operation after the
//    collection — so a reader can never observe a recycled slot.
//    `clear_cache` is an O(1) atomic epoch bump. `new_var`, reordering
//    and `live_node_count` still throw `std::logic_error` while shared
//    mode is on. Each registered thread sees the exact same canonical
//    BDDs, so results are bit-identical to an exclusive-mode
//    computation under either table mode — collections only remove
//    unreachable nodes, which canonicity makes unobservable.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace covest::bdd {

/// Identifies a BDD variable. Variables are created by `BddManager::new_var`
/// and are dense, starting at 0.
using Var = std::uint32_t;

/// An edge to a node in the manager's pool: a 31-bit slot index plus the
/// complement bit in the MSB. Slot 0 is the unique terminal.
using NodeIndex = std::uint32_t;

/// MSB of an edge: set when the edge denotes the negated function.
inline constexpr NodeIndex kComplementBit = 0x80000000u;

/// The constant TRUE: plain edge to the terminal slot.
inline constexpr NodeIndex kTrueIndex = 0;
/// The constant FALSE: complemented edge to the terminal slot.
inline constexpr NodeIndex kFalseIndex = kComplementBit;
inline constexpr NodeIndex kInvalidIndex = 0xffffffffu;
inline constexpr Var kInvalidVar = 0xffffffffu;

/// Slot part of an edge (drops the complement bit).
constexpr NodeIndex edge_node(NodeIndex e) { return e & ~kComplementBit; }
/// True when the edge carries the complement bit.
constexpr bool edge_is_complemented(NodeIndex e) {
  return (e & kComplementBit) != 0;
}
/// Negation: an O(1) flip of the complement bit.
constexpr NodeIndex edge_not(NodeIndex e) { return e ^ kComplementBit; }
/// True for the two constant edges (both point at terminal slot 0).
constexpr bool edge_is_terminal(NodeIndex e) { return edge_node(e) == 0; }

class BddManager;
class ParallelPool;

/// How a shared-mode epoch synchronizes the unique tables and the
/// computed cache (see the header comment). Exclusive mode ignores it:
/// the unsynchronized fast paths always apply there.
enum class TableMode {
  /// Striped mutexes (the PR-4 baseline, kept for comparison).
  kStriped,
  /// CAS-chained lock-free unique table + wait-free lossy computed
  /// cache. The default: same-variable `make_node` bursts no longer
  /// serialize on a stripe.
  kLockFree,
};

/// Work-stealing parallel-apply configuration for a shared epoch (see
/// bdd/parallel.h). When `workers >= 1` the epoch routes apply
/// (AND/OR/XOR/ITE), exists/forall and and_exists through fork/join
/// recursion over a Chase–Lev task-deque pool; results are
/// byte-identical to the serial cores by canonicity. `workers - 1`
/// helper threads are spawned (so `workers == 1` exercises the forking
/// machinery single-threaded) and counted against the epoch's
/// registration capacity automatically.
struct ParallelConfig {
  /// 8 keeps subproblems spanning fewer than 8 levels sequential — fine
  /// enough to feed thieves on every model in the corpus, coarse enough
  /// that leaf recursion dominates task bookkeeping.
  static constexpr std::uint32_t kDefaultForkThreshold = 8;

  /// Total worker threads for in-operation parallelism; 0 = serial
  /// recursion (today's behavior).
  std::size_t workers = 0;
  /// Fork a cofactor split only when at least this many variable levels
  /// remain below the split point: 0 = always fork, huge = never fork.
  std::uint32_t fork_threshold = kDefaultForkThreshold;
};

/// RAII handle to a BDD edge. While at least one `Bdd` references a node,
/// that node and all its descendants survive garbage collection.
///
/// Handles are value types: cheap to copy (a pointer and an edge plus a
/// reference-count update) and comparable in O(1) thanks to canonicity —
/// two handles are semantically equal iff they hold the same edge.
class Bdd {
 public:
  /// Detached handle; usable only as an assignment target.
  Bdd() noexcept : mgr_(nullptr), index_(kInvalidIndex) {}
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True when the handle is attached to a manager.
  bool valid() const noexcept { return mgr_ != nullptr; }

  bool is_false() const noexcept { return index_ == kFalseIndex; }
  bool is_true() const noexcept { return index_ == kTrueIndex; }
  bool is_terminal() const noexcept { return edge_is_terminal(index_); }

  /// Variable labelling the root node. Precondition: not a terminal.
  Var top_var() const;
  /// Negative cofactor w.r.t. the root variable. Precondition: not terminal.
  Bdd low() const;
  /// Positive cofactor w.r.t. the root variable. Precondition: not terminal.
  Bdd high() const;

  NodeIndex index() const noexcept { return index_; }
  BddManager* manager() const noexcept { return mgr_; }

  // Boolean connectives. All operands must belong to the same manager.
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator!() const;
  /// Set difference / inhibition: `this & !rhs`.
  Bdd operator-(const Bdd& rhs) const;
  Bdd implies(const Bdd& rhs) const;
  Bdd iff(const Bdd& rhs) const;

  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }
  Bdd& operator-=(const Bdd& rhs) { return *this = *this - rhs; }

  /// Canonical equality: same function iff same edge.
  bool operator==(const Bdd& rhs) const noexcept {
    return mgr_ == rhs.mgr_ && index_ == rhs.index_;
  }
  bool operator!=(const Bdd& rhs) const noexcept { return !(*this == rhs); }

  /// True when `this -> other` is a tautology (subset test on state sets).
  bool subset_of(const Bdd& other) const;
  /// True when `this & other` is satisfiable (set intersection non-empty).
  bool intersects(const Bdd& other) const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeIndex index) noexcept;

  BddManager* mgr_;
  NodeIndex index_;
};

/// If-then-else on BDDs: `ite(f, g, h) = (f & g) | (!f & h)`.
Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

/// Statistics snapshot for reporting (the paper reports BDD node counts
/// alongside run times in Table 2).
struct BddStats {
  std::size_t live_nodes = 0;       ///< Nodes reachable from live handles.
  std::size_t allocated_nodes = 0;  ///< Pool size including free-list nodes.
  std::size_t peak_live_nodes = 0;  ///< High-water mark of `live_nodes`.
  std::size_t gc_runs = 0;
  std::size_t cache_hits = 0;       ///< Since the last `clear_cache`.
  std::size_t cache_lookups = 0;    ///< Since the last `clear_cache`.
  std::size_t unique_hits = 0;      ///< make_node found an existing node.
  std::size_t unique_misses = 0;    ///< make_node created a new node.
  std::size_t reorderings = 0;
  /// Negations served as O(1) complement-bit flips. Each of these was a
  /// full cache-polluting traversal before complement edges.
  std::size_t o1_negations = 0;
  /// make_node calls that restored canonicity by complementing — i.e.
  /// node shapes that a complement-free package would have duplicated.
  std::size_t complement_canonicalizations = 0;
  /// Cooperative shared-mode collections (pause + mark + sweep).
  std::size_t shared_gc_runs = 0;
  /// Dead nodes moved onto retire batches by shared-mode collections.
  std::size_t retired_nodes = 0;
  /// Retired nodes whose grace period expired and that rejoined the
  /// free list (<= retired_nodes; the rest drain at `end_shared`).
  std::size_t reclaimed_nodes = 0;

  /// Computed-cache hit rate over the current cache epoch, in [0, 1].
  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Owns the node pool, unique tables, computed cache and variable order.
class BddManager {
 public:
  /// Creates a manager with `initial_vars` anonymous variables.
  explicit BddManager(unsigned initial_vars = 0,
                      std::size_t cache_size_log2 = 18);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // -- Variables ------------------------------------------------------------

  /// Creates a fresh variable at the bottom of the current order.
  Var new_var(std::string name = {});
  std::size_t num_vars() const noexcept { return var_to_level_.size(); }
  const std::string& var_name(Var v) const { return var_names_.at(v); }
  void set_var_name(Var v, std::string name) {
    var_names_.at(v) = std::move(name);
  }

  /// Current level (position in the order, 0 = top) of a variable.
  unsigned level_of(Var v) const { return var_to_level_.at(v); }
  /// Variable currently sitting at `level`.
  Var var_at_level(unsigned level) const { return level_to_var_.at(level); }

  // -- Leaf / literal constructors -------------------------------------------

  Bdd bdd_true() { return Bdd(this, kTrueIndex); }
  Bdd bdd_false() { return Bdd(this, kFalseIndex); }
  /// Positive literal for variable `v`.
  Bdd var(Var v);
  /// Negative literal for variable `v` (the complement edge of `var(v)`).
  Bdd nvar(Var v);
  /// Literal with the given polarity.
  Bdd literal(Var v, bool positive) { return positive ? var(v) : nvar(v); }

  /// Conjunction of positive literals; the canonical representation of a
  /// set of variables used by the quantification operations.
  Bdd cube(const std::vector<Var>& vars);

  // -- Core operations --------------------------------------------------------

  Bdd apply_and(const Bdd& f, const Bdd& g);
  Bdd apply_or(const Bdd& f, const Bdd& g);
  Bdd apply_xor(const Bdd& f, const Bdd& g);
  /// O(1): flips the complement bit. Never allocates, never touches the
  /// computed cache.
  Bdd apply_not(const Bdd& f);
  Bdd apply_ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Existential quantification over the variables of `cube`.
  Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification over the variables of `cube`.
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product `exists(cube, f & g)` computed in one pass — the
  /// workhorse of symbolic image computation.
  Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Functional composition: `f` with variable `v` replaced by function `g`.
  Bdd compose(const Bdd& f, Var v, const Bdd& g);

  /// Simultaneous variable renaming. `perm[v]` is the replacement for `v`;
  /// identity entries may be omitted by passing `perm.size() < num_vars()`.
  /// The mapping must be injective on the support of `f` and must not
  /// reorder levels in a way that mixes mapped and unmapped support.
  /// (Renaming between interleaved current/next state variables — the only
  /// use in this library — always satisfies this.)
  Bdd permute(const Bdd& f, const std::vector<Var>& perm);

  /// Positive (`value = true`) or negative cofactor w.r.t. one variable.
  Bdd cofactor(const Bdd& f, Var v, bool value);

  /// Coudert-Madre generalized cofactor ("restrict"): a function that
  /// agrees with `f` on the care set `care` and is usually smaller:
  /// `simplify(f, care) & care == f & care`. Used to shrink state-set
  /// BDDs against the reachable/coverage space. `care` must not be false.
  Bdd simplify(const Bdd& f, const Bdd& care);

  // -- Inspection --------------------------------------------------------------

  /// Number of satisfying assignments of `f` over exactly the variables in
  /// `over` (which must be a superset of `f`'s support). Exact for counts
  /// up to 2^53; the coverage metric divides two such counts.
  double sat_count(const Bdd& f, const std::vector<Var>& over);

  /// Some satisfying cube of `f` (ordered literals), empty iff `f` is false.
  std::vector<std::pair<Var, bool>> sat_one(const Bdd& f);

  /// A full deterministic assignment to `over` satisfying `f`
  /// (unconstrained variables default to false). Precondition: `f` is
  /// satisfiable and its support is contained in `over`.
  std::vector<std::pair<Var, bool>> pick_minterm(const Bdd& f,
                                                 const std::vector<Var>& over);

  /// Enumerates up to `limit` minterms of `f` over `over`, in lexicographic
  /// order of the variable levels. Intended for the uncovered-state report.
  std::vector<std::vector<std::pair<Var, bool>>> enumerate_minterms(
      const Bdd& f, const std::vector<Var>& over, std::size_t limit);

  /// Evaluates `f` under a complete assignment indexed by variable id.
  bool eval(const Bdd& f, const std::vector<bool>& assignment);

  /// Variables occurring in `f`, sorted by id.
  std::vector<Var> support(const Bdd& f);

  /// Number of distinct nodes in `f` (terminal excluded). `f` and `!f`
  /// share all nodes, so their counts are equal.
  std::size_t node_count(const Bdd& f);
  /// Number of distinct nodes in the union of the given functions.
  std::size_t node_count(const std::vector<Bdd>& fs);

  // -- Memory management ---------------------------------------------------------

  /// Mark-and-sweep collection rooted at live handles. Invalidates nothing
  /// that is still referenced. Returns the number of nodes freed (in
  /// shared mode: moved onto an epoch-stamped retire batch; they rejoin
  /// the free list after a grace period). Legal in both modes; in
  /// shared mode the caller must be a registered thread between
  /// operations, and the collection runs under a cooperative pause.
  std::size_t gc();

  /// Clears the computed cache; exposed mainly for benchmarking
  /// cold-cache behaviour. Exclusive mode also resets the per-epoch
  /// cache statistics (`cache_hits`, `cache_lookups`). In shared mode
  /// this is a single atomic epoch bump, safe concurrent with lookups
  /// (a racing reader may still use a pre-bump memo, which is
  /// semantically valid — nothing has been freed).
  void clear_cache();

  /// Pool-occupancy level (allocated - free) at which automatic
  /// collection triggers. Exclusive mode adapts it upward when a
  /// collection fails to free much; shared mode treats it as the
  /// request threshold for volunteer collections. Settable only in
  /// exclusive mode; also seeded from the COVEST_GC_THRESHOLD
  /// environment variable at construction (tests/soaks force small
  /// pools into collection that way).
  void set_gc_threshold(std::size_t threshold);
  std::size_t gc_threshold() const noexcept { return gc_threshold_; }

  /// Announces that the calling registered thread is between operations
  /// and has observed the current reclamation epoch — the shared-mode
  /// quiescent state. Call it at natural scheduling boundaries (the
  /// engine calls it next to `governor_tick()` in its fix-point row
  /// loops): it parks the thread for the duration of any in-progress
  /// collection and volunteers to run a requested one. No-op in
  /// exclusive mode or inside an operation.
  void quiescent_point();

  /// Marks the calling registered thread passive: it promises not to
  /// touch the manager again until its next operation (which clears
  /// the flag). Passive threads are skipped by the grace-period scan,
  /// so a thread that finished its chunk early — or a pool helper that
  /// only ever executes stolen tasks inside other threads' operations —
  /// cannot stall reclamation forever. No-op in exclusive mode.
  void mark_thread_passive();

  /// Node budget: when nonzero, growing the pool past `budget` occupied
  /// slots throws covest::ResourceExhausted instead of allocating.
  /// Occupancy is `allocated() - 1 - free_count` (terminal excluded) —
  /// live nodes plus garbage the next GC would reclaim — so the budget
  /// bounds resident pool memory, not the reachable-node count. Applies
  /// to both epochs; in shared mode enforcement is per arena refill, so
  /// up to `kArenaBlock` slots per shard thread of slack. Settable only
  /// in exclusive mode; exhaustion fires before any slot is handed out,
  /// so the pool is never left inconsistent.
  void set_max_live_nodes(std::size_t budget);
  std::size_t max_live_nodes() const noexcept { return max_live_nodes_; }

  // -- Dynamic variable reordering ------------------------------------------------

  /// Swaps the variables at `level` and `level + 1`. The functions of all
  /// externally held handles are preserved. Exposed for testing; normal
  /// clients call `reorder_sift`.
  void swap_adjacent_levels(unsigned level);

  /// Rudin-style sifting: each variable (most populous subtable first) is
  /// moved through the whole order and parked at the position minimising
  /// the live node count. `max_vars` bounds how many variables are sifted
  /// (0 = all). Returns the live node count after reordering.
  std::size_t reorder_sift(std::size_t max_vars = 0);

  /// Installs `order` (a permutation of all variable ids, top first) by
  /// repeated adjacent swaps. Intended for tests and deterministic layouts.
  void set_order(const std::vector<Var>& order);

  // -- Diagnostics -------------------------------------------------------------------

  const BddStats& stats() const noexcept { return stats_; }
  /// Live node count right now (runs no GC; counts reachable nodes).
  std::size_t live_node_count();

  /// Thread that owns this manager (exclusive-mode contract above).
  std::thread::id owner_thread() const noexcept { return owner_thread_; }
  /// Transfers exclusive ownership to the calling thread. Only legal
  /// once the previous owner has stopped using the manager — the
  /// hand-off a multi-worker executor performs when a finished job's
  /// results (and their live `Bdd` handles) are consumed on another
  /// thread. Meaningless (and asserted against) in shared mode; a
  /// shared manager is handed off by `end_shared`, which rebinds to the
  /// caller.
  void rebind_to_current_thread() noexcept {
    assert(!shared_mode_ && "rebind_to_current_thread during shared mode");
    owner_thread_ = std::this_thread::get_id();
  }

  // -- Shared (sharded) mode ---------------------------------------------------

  /// Enters shared mode: up to `max_threads` registered threads may
  /// build nodes and traverse concurrently, synchronized per
  /// `table_mode` (lock-free by default; striped locks selectable for
  /// comparison). Must be called from the owning thread, outside any
  /// operation. Until `end_shared`, `new_var`, reordering and
  /// `live_node_count` throw `std::logic_error`; `gc` and
  /// `clear_cache` are legal from registered threads (cooperative
  /// pause + deferred reclamation, see the header comment). Under
  /// `TableMode::kLockFree` the subtables are pre-sized here and the
  /// epoch never resizes them.
  ///
  /// `parallel.workers >= 1` additionally starts a work-stealing pool
  /// for in-operation parallelism (bdd/parallel.h): `workers - 1`
  /// helper threads register as shard threads (on top of
  /// `max_threads`), steal forked cofactor subproblems, and are joined
  /// by `end_shared`. The run's ambient RunGovernor (if any) is adopted
  /// by the helpers, so deadlines and node budgets fire inside a
  /// parallel operation with the usual structured exceptions.
  void begin_shared(std::size_t max_threads,
                    TableMode table_mode = TableMode::kLockFree,
                    const ParallelConfig& parallel = {});

  /// Leaves shared mode: merges the per-thread statistics, returns
  /// unused arena slots to the free list, drains every outstanding
  /// retire batch (grace is trivially satisfied once the threads are
  /// joined), and rebinds exclusive ownership to the calling thread.
  /// All registered threads must have finished (the caller joins them
  /// first).
  void end_shared();

  /// Registers the calling thread as one of the shared-mode workers.
  /// Every thread that touches the manager between `begin_shared` and
  /// `end_shared` — including the thread that called `begin_shared`, if
  /// it participates — must register exactly once per shared epoch.
  void register_shard_thread();

  bool in_shared_mode() const noexcept { return shared_mode_; }
  /// Table mode of the current (or most recent) shared epoch.
  TableMode shared_table_mode() const noexcept { return table_mode_; }

  // -- Test instrumentation ----------------------------------------------------

  /// Raw computed-cache probe/publish, bypassing the recursive
  /// operations. `op` is opaque to the cache, so tests can drive
  /// synthetic keys at racing threads and assert that a lookup never
  /// returns a value whose full key does not match (the wait-free
  /// cache's key-revalidation contract). Not for production use.
  bool debug_cache_find(std::uint32_t op, NodeIndex a, NodeIndex b,
                        NodeIndex c, NodeIndex* out) {
    return cache_find(op, a, b, c, out);
  }
  void debug_cache_store(std::uint32_t op, NodeIndex a, NodeIndex b,
                         NodeIndex c, NodeIndex result) {
    cache_store(op, a, b, c, result);
  }

  /// Writes `f` in Graphviz DOT format (solid = high edge, dashed = low,
  /// odot arrowhead = complemented edge).
  void write_dot(std::ostream& os, const Bdd& f, const std::string& label);

  // Internal accessors used by the free algorithms in this library. They
  // take *edges* and return semantic cofactors (complement folded in).
  Var node_var(NodeIndex e) const { return node_at(edge_node(e)).var; }
  // Folding the edge's complement into a child is a branchless XOR with
  // the edge's own complement bit.
  NodeIndex node_low(NodeIndex e) const {
    return node_at(edge_node(e)).low ^ (e & kComplementBit);
  }
  NodeIndex node_high(NodeIndex e) const {
    return node_at(edge_node(e)).high ^ (e & kComplementBit);
  }

  /// Structural invariant check (tests): true iff no allocated node stores
  /// a complemented high edge and every low differs from its high.
  bool check_canonical() const;

 private:
  friend class Bdd;
  friend class ParallelPool;  ///< Dispatches stolen tasks into par_*_rec.

  // 16 bytes; the traversal stamps live in the per-thread contexts so
  // the hot recursion paths keep four nodes per cache line.
  struct Node {
    NodeIndex low = kInvalidIndex;   ///< May carry the complement bit.
    NodeIndex high = kInvalidIndex;  ///< Invariant: never complemented.
    Var var = kInvalidVar;
    NodeIndex next = kInvalidIndex;  ///< Unique-subtable chain link (slot).
  };

  /// Per-node traversal state (see the generation-stamp protocol in the
  /// header comment); indexed by slot, parallel to the node pool, one
  /// copy per thread context.
  struct NodeStamp {
    std::uint32_t gen = 0;      ///< Stamp: visited iff == ctx generation.
    std::uint32_t scratch = 0;  ///< Per-traversal scratch word.
  };

  /// All mutable traversal scratch of one thread. Exclusive mode uses
  /// `main_ctx_`; each shared-mode thread gets a fresh context at
  /// registration (fresh contexts also mean no stale generation stamps
  /// can survive an epoch change). The `stats` block accumulates the
  /// thread's counter deltas, merged into `stats_` by `end_shared`.
  struct ThreadCtx {
    std::thread::id thread;
    std::uint32_t generation = 0;  ///< Current traversal generation.
    bool in_operation = false;     ///< Guards against GC during recursion.
    std::vector<NodeStamp> stamps;       ///< Indexed by slot (grown lazily).
    std::vector<NodeIndex> work_stack;   ///< Reusable DFS stack.
    std::vector<double> count_memo;      ///< sat_count memo, by slot.
    std::vector<std::uint32_t> var_gen;  ///< Per-variable stamps (support).
    std::vector<std::uint32_t> level_rank;   ///< sat_count: level -> rank.
    std::vector<unsigned> level_scratch;     ///< sat_count: sorted levels.
    NodeIndex arena_next = 0;  ///< Next free slot in this thread's arena.
    NodeIndex arena_end = 0;   ///< One past the arena's last slot.
    std::vector<NodeIndex> recycled;  ///< Free-list slots claimed in bulk.
    BddStats stats;            ///< Shared-mode counter deltas.

    // Reclamation protocol state (all seq_cst at the sites that matter:
    // the gate/collector handshake is a Dekker-style store-load pattern,
    // spelled with operations rather than fences so TSan models it —
    // same rationale as the TaskDeque in parallel.h).
    std::atomic<std::uint32_t> op_depth{0};  ///< Public-op nesting depth.
    std::atomic<std::uint64_t> seen_epoch{0};  ///< Last epoch announced.
    std::atomic<bool> passive{false};  ///< Skipped by the grace scan.
  };

  struct Subtable {
    std::vector<NodeIndex> buckets;
    std::size_t count = 0;  ///< Nodes currently labelled with this variable.
  };

  struct CacheEntry {
    std::uint32_t op = 0;  ///< 0 = empty slot.
    NodeIndex a = 0, b = 0, c = 0;
    NodeIndex result = 0;
    /// Entry is live iff this matches the manager's `cache_epoch_`;
    /// `clear_cache` invalidates everything by bumping the epoch in O(1)
    /// instead of sweeping megabytes of entries.
    std::uint32_t epoch = 0;
  };

  /// One wait-free computed-cache entry (TableMode::kLockFree). The
  /// seqlock stamp makes racing overwrites lossy instead of blocking:
  /// a writer claims the entry with one CAS to an odd stamp (and simply
  /// skips the store if it loses — the cache is allowed to drop
  /// entries), stores the payload, and releases with stamp+2; a reader
  /// takes one stamped snapshot and treats any tear (odd stamp, or the
  /// stamp moving under the payload reads) as a miss, never retrying.
  /// The key packs injectively into two words and is compared in full
  /// after the snapshot validates, so a colliding overwrite can cost a
  /// recomputation but can never return the wrong node.
  struct alignas(32) LfCacheEntry {
    std::atomic<std::uint32_t> seq{0};  ///< Odd while a writer owns it.
    std::atomic<std::uint64_t> key_ab{0};        ///< (a << 32) | b.
    std::atomic<std::uint64_t> key_cop{0};       ///< (c << 32) | op.
    std::atomic<std::uint64_t> epoch_result{0};  ///< (epoch << 32) | result.
  };

  enum Op : std::uint32_t {
    kOpAnd = 1,
    kOpXor,
    kOpIte,
    kOpExists,
    kOpAndExists,
    kOpCompose,
    kOpSimplify,
  };

  // -- Segmented node pool ---------------------------------------------------
  // Slots live in geometrically-sized segments (segment 0 holds 2^kSeg0Bits
  // slots, segment k>0 holds 2^(kSeg0Bits+k-1)), so growing the pool never
  // moves existing nodes — the property shared mode relies on. The segment
  // of a slot is one bit-scan away.
  static constexpr unsigned kSeg0Bits = 9;
  static constexpr unsigned kMaxSegments = 23;  // Covers all 2^31 slots.

  static unsigned seg_of(NodeIndex slot) noexcept {
    return static_cast<unsigned>(
               std::bit_width(slot | ((NodeIndex{1} << kSeg0Bits) - 1))) -
           kSeg0Bits;
  }
  static NodeIndex seg_base(unsigned seg) noexcept {
    // Branchless: for seg 0 the shift lands on 2^(kSeg0Bits-1), which
    // the mask (0 - false == 0) then clears.
    return (NodeIndex{1} << (kSeg0Bits - 1 + seg)) &
           (NodeIndex{0} - static_cast<NodeIndex>(seg != 0));
  }
  static std::size_t seg_capacity(unsigned seg) noexcept {
    return std::size_t{1} << (seg == 0 ? kSeg0Bits : kSeg0Bits + seg - 1);
  }

  // The hot-path accessors read base-adjusted raw pointers (one
  // bit-scan, one table load, one element load — no branch, no
  // subtraction): `node_base_[s]` pre-subtracts the segment's first
  // slot, so indexing by the *global* slot lands inside the segment.
  // The arithmetic forming the adjusted pointer is done once at segment
  // creation; every dereference is in bounds.
  Node& node_at(NodeIndex slot) noexcept {
    return node_base_[seg_of(slot)][slot];
  }
  const Node& node_at(NodeIndex slot) const noexcept {
    return node_base_[seg_of(slot)][slot];
  }
  std::atomic<std::uint32_t>& ref_at(NodeIndex slot) const noexcept {
    return ref_base_[seg_of(slot)][slot];
  }

  /// Number of allocated slots (terminal included; relaxed reads are
  /// safe anywhere a published edge is in hand — see bdd.cpp).
  NodeIndex allocated() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Grows segment storage until at least `n` slots are addressable.
  void ensure_pool(std::size_t n);

  // Node pool plumbing.
  NodeIndex make_node(Var v, NodeIndex low, NodeIndex high);
  NodeIndex make_node_lockfree(ThreadCtx& tc, Var v, NodeIndex low,
                               NodeIndex high);
  NodeIndex allocate_node();
  NodeIndex allocate_node_shared(ThreadCtx& tc);
  void subtable_insert(Var v, NodeIndex n);
  void subtable_remove(Var v, NodeIndex n);
  std::size_t subtable_bucket(Var v, NodeIndex low, NodeIndex high) const;
  void rehash_subtable(Var v, std::size_t new_buckets);
  void maybe_resize_subtable(Var v);
  void maybe_gc();

  /// Hard form of the exclusive-only contract: the structural-mutation
  /// entry points call this and fail with `std::logic_error` (release
  /// builds included) instead of corrupting a shared pool.
  void require_exclusive(const char* what) const;

  // -- Shared-mode reclamation -----------------------------------------------

  /// Dead slots from one collection, freeable once every non-passive
  /// registered thread has announced `seen_epoch >= epoch + 1`.
  struct RetireBatch {
    std::uint64_t epoch = 0;
    std::vector<NodeIndex> slots;
  };

  /// RAII gate every public node-touching entry point passes through.
  /// Exclusive mode: the old `maybe_gc(); OperationGuard` pair (the
  /// `allow_gc` flag preserves the historical set of auto-GC points —
  /// inspection entries never triggered collection and still don't).
  /// Shared mode: counts the thread into the operation, announcing the
  /// observed reclamation epoch and parking across collection pauses on
  /// the outermost entry (`shared_op_enter`).
  class OpGate {
   public:
    OpGate(BddManager& mgr, ThreadCtx& tc, bool allow_gc = true)
        : mgr_(mgr),
          tc_(tc),
          shared_(mgr.shared_mode_),
          was_in_operation_(tc.in_operation) {
      if (shared_) {
        mgr.shared_op_enter(tc);
      } else if (allow_gc) {
        mgr.maybe_gc();
      }
      tc.in_operation = true;
    }
    ~OpGate() {
      tc_.in_operation = was_in_operation_;
      if (shared_) tc_.op_depth.fetch_sub(1, std::memory_order_seq_cst);
    }
    OpGate(const OpGate&) = delete;
    OpGate& operator=(const OpGate&) = delete;

   private:
    BddManager& mgr_;
    ThreadCtx& tc_;
    bool shared_;
    bool was_in_operation_;
  };

  /// Outermost-entry protocol: announce the observed epoch, park if a
  /// collection is pausing the epoch, volunteer for a requested one.
  void shared_op_enter(ThreadCtx& tc);
  /// Cooperative collection: pause (wait for every registered thread to
  /// reach an operation boundary), mark from refcounted roots, sweep
  /// dead nodes onto a retire batch, invalidate the computed cache,
  /// advance the reclamation epoch, resume. `force` waits for the
  /// collector election (explicit `gc()`); volunteers use try-lock and
  /// simply return when another thread is already collecting. Returns
  /// the number of nodes retired.
  std::size_t shared_collect(ThreadCtx& tc, bool force);
  /// Returns retire-batch slots to the free list. `only_expired`
  /// restricts to batches whose grace period has passed (the arena
  /// refill path); the collector and `end_shared` drain everything
  /// (their callers guarantee global quiescence). Caller holds
  /// `alloc_mu_`.
  void drain_retire_batches_locked(bool only_expired);

  // -- Thread contexts -------------------------------------------------------

  /// The calling thread's context: `main_ctx_` in exclusive mode, the
  /// registered shard context in shared mode (throws std::logic_error for
  /// an unregistered thread — the shared-mode affinity guard).
  ThreadCtx& ctx() {
    if (!shared_mode_) return main_ctx_;
    return shard_ctx();
  }
  ThreadCtx& shard_ctx();
  /// The thread's counter sink: `stats_` in exclusive mode, the shard
  /// context's delta block in shared mode.
  BddStats& hot_stats() {
    if (!shared_mode_) return stats_;
    return shard_ctx().stats;
  }

  unsigned level(NodeIndex e) const {
    const Var v = node_at(edge_node(e)).var;
    return v == kInvalidVar ? kTerminalLevel : var_to_level_[v];
  }
  static constexpr unsigned kTerminalLevel = 0xffffffffu;

  // Reference counting for handles (per slot). Inline: every Bdd copy,
  // assignment and destruction lands here. Exclusive mode is
  // single-threaded by contract, so it sidesteps the lock-prefixed RMW
  // (~20 cycles per handle copy) with a plain load+store on the same
  // atomic; the mode transitions happen-before any cross-thread handle
  // traffic, so mixing the access styles on one counter is race-free.
  void ref(NodeIndex e) noexcept {
    std::atomic<std::uint32_t>& r = ref_at(edge_node(e));
    if (shared_mode_) {
      r.fetch_add(1, std::memory_order_relaxed);
    } else {
      r.store(r.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    }
  }
  void deref(NodeIndex e) noexcept {
    std::atomic<std::uint32_t>& r = ref_at(edge_node(e));
    if (shared_mode_) {
      [[maybe_unused]] const std::uint32_t old =
          r.fetch_sub(1, std::memory_order_relaxed);
      assert(old > 0);
    } else {
      const std::uint32_t old = r.load(std::memory_order_relaxed);
      assert(old > 0);
      r.store(old - 1, std::memory_order_relaxed);
    }
  }

  // Computed cache. The table starts small and quadruples (dropping its
  // lossy contents) whenever the stores since the last growth exceed a
  // quarter of the current size, up to the configured maximum — so short
  // sessions never pay for megabytes of cold cache.
  bool cache_find(std::uint32_t op, NodeIndex a, NodeIndex b, NodeIndex c,
                  NodeIndex* out);
  void cache_store(std::uint32_t op, NodeIndex a, NodeIndex b, NodeIndex c,
                   NodeIndex result);
  void maybe_grow_cache();

  // Generation-stamp traversal protocol (all state in the thread ctx).
  std::uint32_t next_generation(ThreadCtx& tc);
  /// Marks every node reachable from `e` with the ctx's current
  /// generation using its reusable work stack; returns how many
  /// unvisited non-terminal slots it stamped.
  std::size_t mark_reachable(ThreadCtx& tc, NodeIndex e);

  // Recursive cores (operate on edges; callers hold handle roots).
  NodeIndex ite_rec(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex and_rec(NodeIndex f, NodeIndex g);
  /// De Morgan: `!and(!f, !g)`; shares the AND cache.
  NodeIndex or_rec(NodeIndex f, NodeIndex g) {
    return edge_not(and_rec(edge_not(f), edge_not(g)));
  }
  NodeIndex xor_rec(NodeIndex f, NodeIndex g);
  NodeIndex exists_rec(NodeIndex f, NodeIndex cube);
  NodeIndex and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube);

  // Work-stealing variants of the cores above (bdd/parallel.cpp): same
  // terminal rules, canonicalizations and cache keys, but cofactor
  // splits above the granularity threshold fork one side as a stealable
  // task. Entered only when `par_enabled()`.
  NodeIndex par_ite_rec(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex par_and_rec(NodeIndex f, NodeIndex g);
  NodeIndex par_or_rec(NodeIndex f, NodeIndex g) {
    return edge_not(par_and_rec(edge_not(f), edge_not(g)));
  }
  NodeIndex par_xor_rec(NodeIndex f, NodeIndex g);
  NodeIndex par_exists_rec(NodeIndex f, NodeIndex cube);
  NodeIndex par_and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube);
  /// True when a shared epoch with a parallel pool is active.
  bool par_enabled() const noexcept {
    return shared_mode_ && par_pool_ != nullptr;
  }
  /// Fork when at least `fork_threshold` levels remain below the split.
  bool par_should_fork(unsigned top_level) const noexcept;
  NodeIndex compose_rec(NodeIndex f, Var v, NodeIndex g, unsigned v_level);
  NodeIndex simplify_rec(NodeIndex f, NodeIndex care);
  NodeIndex permute_rec(ThreadCtx& tc, NodeIndex f,
                        const std::vector<Var>& perm);

  double sat_count_rec(ThreadCtx& tc, NodeIndex slot);

  std::size_t sift_var_to(Var v, unsigned target_level);

  // Data members.
  std::array<std::unique_ptr<Node[]>, kMaxSegments> node_segs_;
  /// External reference counts, parallel to the node segments. Atomic so
  /// handles may be copied/destroyed on any shared-mode thread (and
  /// exclusive mode sidesteps the RMW cost with plain load/store).
  mutable std::array<std::unique_ptr<std::atomic<std::uint32_t>[]>,
                     kMaxSegments>
      ref_segs_;
  /// Base-adjusted segment pointers for the hot accessors above
  /// (`node_base_[s] == node_segs_[s].get() - seg_base(s)`).
  std::array<Node*, kMaxSegments> node_base_{};
  mutable std::array<std::atomic<std::uint32_t>*, kMaxSegments> ref_base_{};
  unsigned num_segments_ = 0;
  std::size_t pool_capacity_ = 0;
  std::atomic<std::uint32_t> allocated_{0};  ///< Slots handed out so far.
  std::vector<Subtable> subtables_;
  std::vector<unsigned> var_to_level_;
  std::vector<Var> level_to_var_;
  std::vector<std::string> var_names_;
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_;
  std::size_t cache_max_size_;
  std::size_t cache_stores_since_grow_ = 0;
  /// 0 is reserved for "never valid". Atomic because shared-mode
  /// `clear_cache`/collections bump it concurrently with lookups; all
  /// accesses are relaxed — a validation against a stale epoch value
  /// only re-admits a memo that was correct when stored (nothing is
  /// freed until the grace period, which orders after the bump).
  std::atomic<std::uint32_t> cache_epoch_{1};
  NodeIndex free_head_ = kInvalidIndex;
  std::size_t free_count_ = 0;
  std::size_t gc_threshold_;
  std::size_t max_live_nodes_ = 0;  ///< 0 = unbudgeted (see setter).
  /// Exclusive-mode thread-affinity guard: `make_node` asserts (debug
  /// builds) that node construction happens on this thread. See
  /// `rebind_to_current_thread`. In shared mode the guard is
  /// registration instead (see `shard_ctx`).
  std::thread::id owner_thread_ = std::this_thread::get_id();
  BddStats stats_;

  // -- Shared-mode state -----------------------------------------------------
  ThreadCtx main_ctx_;          ///< Exclusive-mode traversal scratch.
  bool shared_mode_ = false;    ///< Set/cleared only from the owner thread.
  std::uint64_t shared_epoch_ = 0;  ///< Fresh process-global token on every
                                    ///< mode transition, so thread-local ctx
                                    ///< caches can't leak across epochs — or
                                    ///< across managers reusing an address.
  std::size_t shard_max_threads_ = 0;
  TableMode table_mode_ = TableMode::kLockFree;
  /// Work-stealing pool for the current shared epoch (nullptr when the
  /// epoch is serial-only). Created by `begin_shared`, stopped and
  /// destroyed by `end_shared`.
  std::unique_ptr<ParallelPool> par_pool_;
  std::vector<std::unique_ptr<ThreadCtx>> shard_ctxs_;
  std::mutex shard_reg_mu_;  ///< Guards `shard_ctxs_` (registration/lookup).
  std::mutex alloc_mu_;      ///< Guards pool growth + arena refills.
  static constexpr std::size_t kUniqueStripes = 64;
  static constexpr std::size_t kCacheStripes = 64;
  static constexpr NodeIndex kArenaBlock = 256;  ///< Slots per arena refill.
  /// Striped locks: unique subtables by `var % kUniqueStripes`, computed
  /// cache by `slot % kCacheStripes`. Only taken in shared striped mode.
  std::array<std::mutex, kUniqueStripes> unique_mu_;
  std::array<std::mutex, kCacheStripes> cache_mu_;
  /// Wait-free computed cache (TableMode::kLockFree), sized to match
  /// `cache_` at `begin_shared` so the lock-free epoch inherits the
  /// exclusive cache's adaptive footprint. Entries outlive epochs; the
  /// per-entry epoch word keeps `clear_cache`/`gc` invalidation O(1).
  std::unique_ptr<LfCacheEntry[]> lf_cache_;
  std::size_t lf_cache_mask_ = 0;
  std::size_t lf_cache_size_ = 0;

  // -- Shared-mode reclamation state -----------------------------------------
  /// Collector election: exactly one thread runs a collection at a
  /// time. Volunteers try-lock; explicit `gc()` blocks.
  std::mutex gc_mu_;
  /// Raised by the elected collector; every gate/quiescent point parks
  /// on `pause_cv_` while it is up. Cleared under `pause_mu_` before
  /// the notify so parked threads cannot miss the wakeup.
  std::atomic<bool> pause_requested_{false};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  /// Set by the arena-refill path when occupancy crosses the GC
  /// threshold; the next thread through a gate or quiescent point
  /// volunteers to collect.
  std::atomic<bool> gc_requested_{false};
  /// Global reclamation epoch: bumped once per collection. A retire
  /// batch stamped E is freeable once every non-passive registered
  /// thread announces seen_epoch >= E + 1.
  std::atomic<std::uint64_t> reclaim_epoch_{1};
  /// Outstanding retire batches, oldest first. Guarded by `alloc_mu_`.
  std::vector<RetireBatch> retire_batches_;
  /// Set when a shared-mode `clear_cache` wraps `cache_epoch_` past zero
  /// without a paused physical sweep; the next collection's stop window
  /// clears both caches and resets this.
  std::atomic<bool> cache_wrap_dirty_{false};
};

}  // namespace covest::bdd
