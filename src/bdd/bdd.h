// Shared reduced-ordered binary decision diagrams (ROBDDs).
//
// This is the symbolic substrate for the whole library: the transition
// relations, state sets and coverage sets of the paper are all BDDs
// managed by the `BddManager` defined here.
//
// The design follows the classic shared-BDD packages (Bryant '86, CUDD,
// BuDDy): a single node pool with hash-consed nodes, one unique subtable
// per variable (which makes adjacent-level swaps local, enabling sifting
// reordering), a lossy computed-table cache for the recursive operations,
// and mark-and-sweep garbage collection rooted at RAII `Bdd` handles.
//
// Thread safety: a `BddManager` and all `Bdd` handles attached to it must
// be used from a single thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace covest::bdd {

/// Identifies a BDD variable. Variables are created by `BddManager::new_var`
/// and are dense, starting at 0.
using Var = std::uint32_t;

/// Index of a node in the manager's node pool. 0 and 1 are the terminals.
using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kFalseIndex = 0;
inline constexpr NodeIndex kTrueIndex = 1;
inline constexpr NodeIndex kInvalidIndex = 0xffffffffu;
inline constexpr Var kInvalidVar = 0xffffffffu;

class BddManager;

/// RAII handle to a BDD node. While at least one `Bdd` references a node,
/// that node and all its descendants survive garbage collection.
///
/// Handles are value types: cheap to copy (a pointer and an index plus a
/// reference-count update) and comparable in O(1) thanks to canonicity —
/// two handles are semantically equal iff they hold the same index.
class Bdd {
 public:
  /// Detached handle; usable only as an assignment target.
  Bdd() noexcept : mgr_(nullptr), index_(kInvalidIndex) {}
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True when the handle is attached to a manager.
  bool valid() const noexcept { return mgr_ != nullptr; }

  bool is_false() const noexcept { return index_ == kFalseIndex; }
  bool is_true() const noexcept { return index_ == kTrueIndex; }
  bool is_terminal() const noexcept { return index_ <= kTrueIndex; }

  /// Variable labelling the root node. Precondition: not a terminal.
  Var top_var() const;
  /// Negative cofactor w.r.t. the root variable. Precondition: not terminal.
  Bdd low() const;
  /// Positive cofactor w.r.t. the root variable. Precondition: not terminal.
  Bdd high() const;

  NodeIndex index() const noexcept { return index_; }
  BddManager* manager() const noexcept { return mgr_; }

  // Boolean connectives. All operands must belong to the same manager.
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator!() const;
  /// Set difference / inhibition: `this & !rhs`.
  Bdd operator-(const Bdd& rhs) const;
  Bdd implies(const Bdd& rhs) const;
  Bdd iff(const Bdd& rhs) const;

  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }
  Bdd& operator-=(const Bdd& rhs) { return *this = *this - rhs; }

  /// Canonical equality: same function iff same node.
  bool operator==(const Bdd& rhs) const noexcept {
    return mgr_ == rhs.mgr_ && index_ == rhs.index_;
  }
  bool operator!=(const Bdd& rhs) const noexcept { return !(*this == rhs); }

  /// True when `this -> other` is a tautology (subset test on state sets).
  bool subset_of(const Bdd& other) const;
  /// True when `this & other` is satisfiable (set intersection non-empty).
  bool intersects(const Bdd& other) const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeIndex index) noexcept;

  BddManager* mgr_;
  NodeIndex index_;
};

/// If-then-else on BDDs: `ite(f, g, h) = (f & g) | (!f & h)`.
Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

/// Statistics snapshot for reporting (the paper reports BDD node counts
/// alongside run times in Table 2).
struct BddStats {
  std::size_t live_nodes = 0;       ///< Nodes reachable from live handles.
  std::size_t allocated_nodes = 0;  ///< Pool size including free-list nodes.
  std::size_t peak_live_nodes = 0;  ///< High-water mark of `live_nodes`.
  std::size_t gc_runs = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t unique_hits = 0;      ///< make_node found an existing node.
  std::size_t unique_misses = 0;    ///< make_node created a new node.
  std::size_t reorderings = 0;
};

/// Owns the node pool, unique tables, computed cache and variable order.
class BddManager {
 public:
  /// Creates a manager with `initial_vars` anonymous variables.
  explicit BddManager(unsigned initial_vars = 0,
                      std::size_t cache_size_log2 = 18);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // -- Variables ------------------------------------------------------------

  /// Creates a fresh variable at the bottom of the current order.
  Var new_var(std::string name = {});
  std::size_t num_vars() const noexcept { return var_to_level_.size(); }
  const std::string& var_name(Var v) const { return var_names_.at(v); }
  void set_var_name(Var v, std::string name) {
    var_names_.at(v) = std::move(name);
  }

  /// Current level (position in the order, 0 = top) of a variable.
  unsigned level_of(Var v) const { return var_to_level_.at(v); }
  /// Variable currently sitting at `level`.
  Var var_at_level(unsigned level) const { return level_to_var_.at(level); }

  // -- Leaf / literal constructors -------------------------------------------

  Bdd bdd_true() { return Bdd(this, kTrueIndex); }
  Bdd bdd_false() { return Bdd(this, kFalseIndex); }
  /// Positive literal for variable `v`.
  Bdd var(Var v);
  /// Negative literal for variable `v`.
  Bdd nvar(Var v);
  /// Literal with the given polarity.
  Bdd literal(Var v, bool positive) { return positive ? var(v) : nvar(v); }

  /// Conjunction of positive literals; the canonical representation of a
  /// set of variables used by the quantification operations.
  Bdd cube(const std::vector<Var>& vars);

  // -- Core operations --------------------------------------------------------

  Bdd apply_and(const Bdd& f, const Bdd& g);
  Bdd apply_or(const Bdd& f, const Bdd& g);
  Bdd apply_xor(const Bdd& f, const Bdd& g);
  Bdd apply_not(const Bdd& f);
  Bdd apply_ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Existential quantification over the variables of `cube`.
  Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification over the variables of `cube`.
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product `exists(cube, f & g)` computed in one pass — the
  /// workhorse of symbolic image computation.
  Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Functional composition: `f` with variable `v` replaced by function `g`.
  Bdd compose(const Bdd& f, Var v, const Bdd& g);

  /// Simultaneous variable renaming. `perm[v]` is the replacement for `v`;
  /// identity entries may be omitted by passing `perm.size() < num_vars()`.
  /// The mapping must be injective on the support of `f` and must not
  /// reorder levels in a way that mixes mapped and unmapped support.
  /// (Renaming between interleaved current/next state variables — the only
  /// use in this library — always satisfies this.)
  Bdd permute(const Bdd& f, const std::vector<Var>& perm);

  /// Positive (`value = true`) or negative cofactor w.r.t. one variable.
  Bdd cofactor(const Bdd& f, Var v, bool value);

  /// Coudert-Madre generalized cofactor ("restrict"): a function that
  /// agrees with `f` on the care set `care` and is usually smaller:
  /// `simplify(f, care) & care == f & care`. Used to shrink state-set
  /// BDDs against the reachable/coverage space. `care` must not be false.
  Bdd simplify(const Bdd& f, const Bdd& care);

  // -- Inspection --------------------------------------------------------------

  /// Number of satisfying assignments of `f` over exactly the variables in
  /// `over` (which must be a superset of `f`'s support). Exact for counts
  /// up to 2^53; the coverage metric divides two such counts.
  double sat_count(const Bdd& f, const std::vector<Var>& over);

  /// Some satisfying cube of `f` (ordered literals), empty iff `f` is false.
  std::vector<std::pair<Var, bool>> sat_one(const Bdd& f);

  /// A full deterministic assignment to `over` satisfying `f`
  /// (unconstrained variables default to false). Precondition: `f` is
  /// satisfiable and its support is contained in `over`.
  std::vector<std::pair<Var, bool>> pick_minterm(const Bdd& f,
                                                 const std::vector<Var>& over);

  /// Enumerates up to `limit` minterms of `f` over `over`, in lexicographic
  /// order of the variable levels. Intended for the uncovered-state report.
  std::vector<std::vector<std::pair<Var, bool>>> enumerate_minterms(
      const Bdd& f, const std::vector<Var>& over, std::size_t limit);

  /// Evaluates `f` under a complete assignment indexed by variable id.
  bool eval(const Bdd& f, const std::vector<bool>& assignment);

  /// Variables occurring in `f`, sorted by id.
  std::vector<Var> support(const Bdd& f);

  /// Number of distinct nodes in `f` (terminals excluded).
  std::size_t node_count(const Bdd& f);
  /// Number of distinct nodes in the union of the given functions.
  std::size_t node_count(const std::vector<Bdd>& fs);

  // -- Memory management ---------------------------------------------------------

  /// Mark-and-sweep collection rooted at live handles. Invalidates nothing
  /// that is still referenced. Returns the number of nodes freed.
  std::size_t gc();

  /// Grows/shrinks nothing but clears the computed cache; exposed mainly
  /// for benchmarking cold-cache behaviour.
  void clear_cache();

  // -- Dynamic variable reordering ------------------------------------------------

  /// Swaps the variables at `level` and `level + 1`. The functions of all
  /// externally held handles are preserved. Exposed for testing; normal
  /// clients call `reorder_sift`.
  void swap_adjacent_levels(unsigned level);

  /// Rudin-style sifting: each variable (most populous subtable first) is
  /// moved through the whole order and parked at the position minimising
  /// the live node count. `max_vars` bounds how many variables are sifted
  /// (0 = all). Returns the live node count after reordering.
  std::size_t reorder_sift(std::size_t max_vars = 0);

  /// Installs `order` (a permutation of all variable ids, top first) by
  /// repeated adjacent swaps. Intended for tests and deterministic layouts.
  void set_order(const std::vector<Var>& order);

  // -- Diagnostics -------------------------------------------------------------------

  const BddStats& stats() const noexcept { return stats_; }
  /// Live node count right now (runs no GC; counts reachable nodes).
  std::size_t live_node_count();

  /// Writes `f` in Graphviz DOT format (solid = high edge, dashed = low).
  void write_dot(std::ostream& os, const Bdd& f, const std::string& label);

  // Internal node accessors used by the free algorithms in this library.
  Var node_var(NodeIndex n) const { return nodes_[n].var; }
  NodeIndex node_low(NodeIndex n) const { return nodes_[n].low; }
  NodeIndex node_high(NodeIndex n) const { return nodes_[n].high; }

 private:
  friend class Bdd;

  struct Node {
    NodeIndex low = kInvalidIndex;
    NodeIndex high = kInvalidIndex;
    Var var = kInvalidVar;
    NodeIndex next = kInvalidIndex;  ///< Unique-subtable chain link.
  };

  struct Subtable {
    std::vector<NodeIndex> buckets;
    std::size_t count = 0;  ///< Nodes currently labelled with this variable.
  };

  struct CacheEntry {
    std::uint32_t op = 0;  ///< 0 = empty slot.
    NodeIndex a = 0, b = 0, c = 0;
    NodeIndex result = 0;
  };

  enum Op : std::uint32_t {
    kOpAnd = 1,
    kOpOr,
    kOpXor,
    kOpNot,
    kOpIte,
    kOpExists,
    kOpForall,
    kOpAndExists,
    kOpCompose,
    kOpSimplify,
  };

  // Node pool plumbing.
  NodeIndex make_node(Var v, NodeIndex low, NodeIndex high);
  NodeIndex allocate_node();
  void subtable_insert(Var v, NodeIndex n);
  void subtable_remove(Var v, NodeIndex n);
  std::size_t subtable_bucket(Var v, NodeIndex low, NodeIndex high) const;
  void maybe_resize_subtable(Var v);
  void maybe_gc();

  unsigned level(NodeIndex n) const {
    return nodes_[n].var == kInvalidVar ? kTerminalLevel
                                        : var_to_level_[nodes_[n].var];
  }
  static constexpr unsigned kTerminalLevel = 0xffffffffu;

  // Reference counting for handles.
  void ref(NodeIndex n) noexcept;
  void deref(NodeIndex n) noexcept;

  // Computed cache.
  CacheEntry& cache_slot(std::uint32_t op, NodeIndex a, NodeIndex b,
                         NodeIndex c);
  bool cache_find(std::uint32_t op, NodeIndex a, NodeIndex b, NodeIndex c,
                  NodeIndex* out);
  void cache_store(std::uint32_t op, NodeIndex a, NodeIndex b, NodeIndex c,
                   NodeIndex result);

  // Recursive cores (operate on indices; callers hold handle roots).
  NodeIndex ite_rec(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex apply_rec(std::uint32_t op, NodeIndex f, NodeIndex g);
  NodeIndex not_rec(NodeIndex f);
  NodeIndex quant_rec(std::uint32_t op, NodeIndex f, NodeIndex cube);
  NodeIndex and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube);
  NodeIndex compose_rec(NodeIndex f, Var v, NodeIndex g, unsigned v_level);
  NodeIndex simplify_rec(NodeIndex f, NodeIndex care);
  NodeIndex permute_rec(NodeIndex f, const std::vector<Var>& perm,
                        std::unordered_map<NodeIndex, NodeIndex>& memo);

  double sat_count_rec(NodeIndex n, const std::vector<unsigned>& level_pos,
                       std::unordered_map<NodeIndex, double>& memo);

  void mark(NodeIndex n, std::vector<bool>& marked) const;
  std::size_t sift_var_to(Var v, unsigned target_level);

  // Data members.
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ext_refs_;
  std::vector<Subtable> subtables_;
  std::vector<unsigned> var_to_level_;
  std::vector<Var> level_to_var_;
  std::vector<std::string> var_names_;
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_;
  NodeIndex free_head_ = kInvalidIndex;
  std::size_t free_count_ = 0;
  std::size_t gc_threshold_;
  bool in_operation_ = false;  ///< Guards against GC during recursion.
  BddStats stats_;
};

}  // namespace covest::bdd
