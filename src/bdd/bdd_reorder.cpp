// Dynamic variable reordering: in-place adjacent level swap and sifting.
//
// The swap is the classic Rudell construction: only nodes labelled with the
// upper variable that reference the lower variable are rewritten, in place,
// so node slots (and therefore all live `Bdd` handles, including
// complemented ones) stay valid and every node keeps its function.
//
// Complement edges interact benignly with the swap: the y-cofactors taken
// through a node's *high* edge are stored edges of a plain node, and the
// ones taken through the *low* edge get the low edge's complement bit
// folded in. The high argument of the rebuilt *high* branch (f11) is a
// stored high edge, hence plain — so make_node never complements
// new_high and the rewritten node keeps its polarity; new_low may come
// back complemented (f10 is a stored low edge), which is legal.
#include <algorithm>
#include <cassert>

#include "bdd/bdd.h"

namespace covest::bdd {

void BddManager::swap_adjacent_levels(unsigned lvl) {
  // Reordering rewrites node fields in place — the one thing no shared
  // epoch (striped or lock-free) can tolerate. Hard error, not just a
  // debug assert: a release-build scheduler bug must fail loudly too.
  require_exclusive("swap_adjacent_levels");
  assert(lvl + 1 < level_to_var_.size());
  const Var x = level_to_var_[lvl];      // Upper variable, moving down.
  const Var y = level_to_var_[lvl + 1];  // Lower variable, moving up.

  // Collect the x-nodes that depend on y; all other x-nodes are untouched
  // (their level changes, but levels live in the manager's maps).
  std::vector<NodeIndex> affected;
  for (NodeIndex head : subtables_[x].buckets) {
    for (NodeIndex n = head; n != kInvalidIndex; n = node_at(n).next) {
      if (node_at(edge_node(node_at(n).low)).var == y ||
          node_at(edge_node(node_at(n).high)).var == y) {
        affected.push_back(n);
      }
    }
  }

  // Remove them from x's subtable first: their keys are about to change.
  for (NodeIndex n : affected) subtable_remove(x, n);

  for (NodeIndex n : affected) {
    const NodeIndex f0 = node_at(n).low;   // May be complemented.
    const NodeIndex f1 = node_at(n).high;  // Plain by canonicity.
    const bool low_is_y = node_at(edge_node(f0)).var == y;
    const bool high_is_y = node_at(f1).var == y;
    // Semantic y-cofactors of each branch (complement folded in).
    const NodeIndex f00 = low_is_y ? node_low(f0) : f0;
    const NodeIndex f01 = low_is_y ? node_high(f0) : f0;
    const NodeIndex f10 = high_is_y ? node_at(f1).low : f1;
    const NodeIndex f11 = high_is_y ? node_at(f1).high : f1;

    // n was (x ? f1 : f0); it becomes y ? (x ? f11 : f01) : (x ? f10 : f00),
    // the same function with y on top. f11 is a stored *high* edge,
    // hence plain — so the new_high make_node never complements its
    // result and n's polarity is preserved. f10 is a stored *low* edge
    // and may be complemented, so new_low can legally come back with
    // the complement bit set.
    const NodeIndex new_low = make_node(x, f00, f10);
    const NodeIndex new_high = make_node(x, f01, f11);
    assert(!edge_is_complemented(new_high) &&
           "swap must not flip the rewritten node's polarity");
    assert(new_low != new_high && "rewritten node must still depend on y");
    node_at(n).var = y;
    node_at(n).low = new_low;
    node_at(n).high = new_high;
    subtable_insert(y, n);
  }

  std::swap(level_to_var_[lvl], level_to_var_[lvl + 1]);
  var_to_level_[x] = lvl + 1;
  var_to_level_[y] = lvl;
  // Cached results remain semantically valid (functions are unchanged) but
  // may reference nodes that just became garbage; drop them for safety.
  clear_cache();
}

std::size_t BddManager::sift_var_to(Var v, unsigned target_level) {
  unsigned cur = var_to_level_[v];
  while (cur < target_level) {
    swap_adjacent_levels(cur);
    ++cur;
  }
  while (cur > target_level) {
    swap_adjacent_levels(cur - 1);
    --cur;
  }
  return live_node_count();
}

std::size_t BddManager::reorder_sift(std::size_t max_vars) {
  require_exclusive("reorder_sift");
  assert(!main_ctx_.in_operation);
  gc();
  ++stats_.reorderings;

  const unsigned num_levels = static_cast<unsigned>(level_to_var_.size());
  if (num_levels < 2) return live_node_count();

  // Sift the most populous variables first (Rudell's heuristic).
  std::vector<Var> order(num_levels);
  for (Var v = 0; v < num_levels; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [this](Var a, Var b) {
    return subtables_[a].count > subtables_[b].count;
  });
  if (max_vars != 0 && max_vars < order.size()) order.resize(max_vars);

  for (Var v : order) {
    // Swaps leave garbage behind, so position quality is judged on the
    // live (externally reachable) node count, not the subtable counts.
    std::size_t best_size = live_node_count();
    const std::size_t start_size = best_size;
    unsigned best_level = var_to_level_[v];

    // Walk to the bottom, then to the top, tracking the best position;
    // abort a direction when the live size has doubled (growth bound).
    // The up-walk is never aborted below the starting level: it must get
    // back through already-explored territory to reach fresh positions.
    const unsigned start_level = var_to_level_[v];
    unsigned cur = start_level;
    std::size_t size = best_size;
    while (cur + 1 < num_levels && size < 2 * start_size) {
      swap_adjacent_levels(cur);
      ++cur;
      size = live_node_count();
      if (size < best_size) {
        best_size = size;
        best_level = cur;
      }
    }
    while (cur > 0 && (cur > start_level || size < 2 * start_size)) {
      swap_adjacent_levels(cur - 1);
      --cur;
      size = live_node_count();
      if (size < best_size) {
        best_size = size;
        best_level = cur;
      }
    }
    sift_var_to(v, best_level);
    gc();  // Sweep the garbage before judging the next variable.
  }
  gc();
  return live_node_count();
}

void BddManager::set_order(const std::vector<Var>& order) {
  require_exclusive("set_order");
  assert(order.size() == level_to_var_.size());
  for (unsigned target = 0; target < order.size(); ++target) {
    sift_var_to(order[target], target);
  }
  gc();
}

}  // namespace covest::bdd
