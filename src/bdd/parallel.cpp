// Work-stealing parallel apply: the ParallelPool scheduler and the
// fork/join variants of the recursive cores (see parallel.h for the
// memory-model and determinism contracts).
//
// The parallel cores below are line-for-line mirrors of the serial
// recursions in bdd_ops.cpp — same terminal rules, same complement-bit
// canonicalizations, same cache keys — with exactly one difference: at
// a cofactor split above the granularity threshold, the low subproblem
// is pushed onto the forking thread's deque while the high subproblem
// runs inline, and the two meet at `join`. Everything funnels through
// the shared-mode `make_node` and the lossy computed cache, so the
// final edge of every subproblem is canonical and schedule-independent.
//
// Fully-strict discipline: a frame joins (or, on the unwind path,
// abandons-and-waits-out) every task it forked before returning. Tasks
// are therefore safely stack-allocated, the owner's deque behaves as a
// stack mirroring the recursion (a successful own-pop at join *must*
// return the frame's own task), and waits can only target tasks already
// claimed by another thread — whose dependency chain follows the fork
// tree and is acyclic, so spinning (with bounded-depth help-stealing)
// cannot deadlock.
#include "bdd/parallel.h"

#include <algorithm>
#include <stdexcept>

namespace covest::bdd {

namespace {

/// Polite spin: a pause/yield hint where the ISA has one.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spin counts double up to this cap, then the waiter yields to the OS.
constexpr unsigned kSpinCap = 1u << 10;
/// A waiter may execute stolen tasks at most this many frames deep
/// (each help level adds one full recursion tree to the stack).
constexpr unsigned kMaxHelpDepth = 8;

std::atomic<std::uint64_t> g_pool_ids{1};

}  // namespace

// ---------------------------------------------------------------------------
// ParallelPool
// ---------------------------------------------------------------------------

ParallelPool::ParallelPool(BddManager& mgr, std::size_t helpers,
                           std::uint32_t fork_threshold, std::size_t slots)
    : mgr_(mgr),
      helpers_(helpers),
      fork_threshold_(fork_threshold),
      pool_id_(g_pool_ids.fetch_add(1, std::memory_order_relaxed)) {
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

ParallelPool::~ParallelPool() { stop_and_join(); }

void ParallelPool::start() {
  // Captured on the epoch-opening thread: sharded estimator threads and
  // pool helpers then share one latched deadline.
  governor_ = covest::RunGovernor::current();
  threads_.reserve(helpers_);
  for (std::size_t i = 0; i < helpers_; ++i) {
    threads_.emplace_back([this] { helper_main(); });
  }
}

void ParallelPool::stop_and_join() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
}

std::size_t ParallelPool::slot_index() {
  // Lazily claimed, cached per (pool identity): an epoch's clients and
  // helpers each take one deque on first use. Keying the cache on the
  // process-unique pool id (not the pointer, which may be reused) keeps
  // stale thread-locals from aliasing across epochs.
  static thread_local const ParallelPool* cached_pool = nullptr;
  static thread_local std::uint64_t cached_id = 0;
  static thread_local std::size_t cached_slot = 0;
  if (cached_pool == this && cached_id == pool_id_) return cached_slot;
  const std::size_t s = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (s >= slots_.size()) {
    throw std::logic_error(
        "ParallelPool: more participating threads than registered slots");
  }
  cached_pool = this;
  cached_id = pool_id_;
  cached_slot = s;
  return s;
}

ParallelTask* ParallelPool::try_steal(std::size_t self) noexcept {
  const std::size_t n = slots_.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t victim = (self + i) % n;
    if (ParallelTask* t = slots_[victim]->deque.steal()) return t;
  }
  return nullptr;
}

NodeIndex ParallelPool::evaluate(const ParallelTask& task) {
  switch (task.kind) {
    case ParallelTask::kAnd:
      return mgr_.par_and_rec(task.a, task.b);
    case ParallelTask::kXor:
      return mgr_.par_xor_rec(task.a, task.b);
    case ParallelTask::kIte:
      return mgr_.par_ite_rec(task.a, task.b, task.c);
    case ParallelTask::kExists:
      return mgr_.par_exists_rec(task.a, task.b);
    case ParallelTask::kAndExists:
      return mgr_.par_and_exists_rec(task.a, task.b, task.c);
  }
  return kInvalidIndex;  // Unreachable for in-range kinds.
}

void ParallelPool::run_task(ParallelTask& task) noexcept {
  try {
    // The task boundary is the parallel recursion's governance point:
    // deadline expiry and injected faults surface here as structured
    // exceptions, published to the joiner like any other result.
    covest::governor_tick();
    task.result = evaluate(task);
  } catch (...) {
    task.error = std::current_exception();
  }
  task.state.store(ParallelTask::kDone, std::memory_order_release);
}

bool ParallelPool::try_fork(ParallelTask& task) {
  return slots_[slot_index()]->deque.push(&task);
}

NodeIndex ParallelPool::join(ParallelTask& task) {
  ParallelTask* popped = slots_[slot_index()]->deque.pop();
  if (popped != nullptr) {
    // Nobody stole it: the deque is a stack mirroring the recursion, so
    // the pop must return this frame's own task. Evaluate inline; a
    // thrown deadline/budget propagates directly (no other task of this
    // frame is outstanding).
    assert(popped == &task && "fork/join discipline violated");
    (void)popped;
    covest::governor_tick();
    return evaluate(task);
  }
  wait_for(task);
  if (task.error) std::rethrow_exception(task.error);
  return task.result;
}

void ParallelPool::join_abandoned(ParallelTask& task) noexcept {
  ParallelTask* popped = slots_[slot_index()]->deque.pop();
  if (popped != nullptr) {
    // Never claimed by a thief; discard so the frame can unwind.
    assert(popped == &task && "fork/join discipline violated");
    (void)popped;
    return;
  }
  // Stolen: the thief will still write into the frame-owned task, so
  // the frame must not unwind until it publishes. Result and error are
  // both discarded — the sibling's exception wins.
  wait_for(task);
}

void ParallelPool::wait_for(ParallelTask& task) noexcept {
  static thread_local unsigned help_depth = 0;
  const std::size_t self = slot_index();
  unsigned spins = 1;
  while (task.state.load(std::memory_order_acquire) != ParallelTask::kDone) {
    // Help-steal while waiting (bounded depth: each level stacks a full
    // recursion tree). Progress never depends on helping — the task we
    // wait for is claimed by a thread whose waits-for chain follows the
    // fork tree and terminates.
    if (help_depth < kMaxHelpDepth) {
      if (ParallelTask* other = try_steal(self)) {
        ++help_depth;
        run_task(*other);
        --help_depth;
        spins = 1;
        continue;
      }
    }
    for (unsigned i = 0; i < spins; ++i) cpu_relax();
    if (spins < kSpinCap) {
      spins <<= 1;
    } else {
      std::this_thread::yield();
    }
  }
}

void ParallelPool::helper_main() {
  try {
    mgr_.register_shard_thread();
  } catch (...) {
    return;  // Registration capacity raced away: fewer thieves, still correct.
  }
  // Helpers never pass through an operation gate (they execute internal
  // task frames, not public entries), so their seen_epoch would stall
  // reclamation grace periods forever. Passive marking excludes them:
  // their quiescence is already covered by the client's op_depth — the
  // fully-strict join discipline means a task's kDone release store is
  // the helper's last manager access, and the in-operation joiner waits
  // for it before the client ever reaches an operation boundary.
  mgr_.mark_thread_passive();
  covest::RunGovernor::Scope scope(governor_);
  const std::size_t self = slot_index();
  unsigned spins = 1;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ParallelTask* task = try_steal(self)) {
      run_task(*task);
      spins = 1;
      continue;
    }
    // Exponential-backoff idle spin: double the pause up to the cap,
    // then yield — idle helpers must not starve the client threads.
    for (unsigned i = 0; i < spins; ++i) cpu_relax();
    if (spins < kSpinCap) {
      spins <<= 1;
    } else {
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel recursive cores
// ---------------------------------------------------------------------------

bool BddManager::par_should_fork(unsigned top_level) const noexcept {
  // Levels remaining below the split, an O(1) proxy for subproblem
  // size: 0 always forks, anything > num_vars() never does.
  return static_cast<std::uint32_t>(num_vars()) - top_level >=
         par_pool_->fork_threshold();
}

NodeIndex BddManager::par_and_rec(NodeIndex f, NodeIndex g) {
  if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
  if (f == kTrueIndex) return g;
  if (g == kTrueIndex) return f;
  if (f == g) return f;
  if (f == edge_not(g)) return kFalseIndex;

  if (f > g) std::swap(f, g);

  NodeIndex cached;
  if (cache_find(kOpAnd, f, g, 0, &cached)) return cached;

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  NodeIndex low, high;
  if (par_should_fork(top)) {
    ParallelTask task(ParallelTask::kAnd, f0, g0, 0);
    if (par_pool_->try_fork(task)) {
      try {
        high = par_and_rec(f1, g1);
      } catch (...) {
        par_pool_->join_abandoned(task);
        throw;
      }
      low = par_pool_->join(task);
    } else {
      low = par_and_rec(f0, g0);
      high = par_and_rec(f1, g1);
    }
  } else {
    // Below the granularity threshold the serial core finishes the
    // whole subtree — no task bookkeeping on the fine-grained leaves.
    low = and_rec(f0, g0);
    high = and_rec(f1, g1);
  }
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpAnd, f, g, 0, result);
  return result;
}

NodeIndex BddManager::par_xor_rec(NodeIndex f, NodeIndex g) {
  NodeIndex parity = 0;
  parity ^= f & kComplementBit;
  parity ^= g & kComplementBit;
  f = edge_node(f);
  g = edge_node(g);

  if (f == g) return kFalseIndex ^ parity;
  if (f == kTrueIndex) return edge_not(g) ^ parity;
  if (g == kTrueIndex) return edge_not(f) ^ parity;

  if (f > g) std::swap(f, g);

  NodeIndex cached;
  if (cache_find(kOpXor, f, g, 0, &cached)) return cached ^ parity;

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  NodeIndex low, high;
  if (par_should_fork(top)) {
    ParallelTask task(ParallelTask::kXor, f0, g0, 0);
    if (par_pool_->try_fork(task)) {
      try {
        high = par_xor_rec(f1, g1);
      } catch (...) {
        par_pool_->join_abandoned(task);
        throw;
      }
      low = par_pool_->join(task);
    } else {
      low = par_xor_rec(f0, g0);
      high = par_xor_rec(f1, g1);
    }
  } else {
    low = xor_rec(f0, g0);
    high = xor_rec(f1, g1);
  }
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpXor, f, g, 0, result);
  return result ^ parity;
}

NodeIndex BddManager::par_ite_rec(NodeIndex f, NodeIndex g, NodeIndex h) {
  if (f == kTrueIndex) return g;
  if (f == kFalseIndex) return h;
  if (g == h) return g;
  if (g == kTrueIndex && h == kFalseIndex) return f;
  if (g == kFalseIndex && h == kTrueIndex) return edge_not(f);

  if (g == f) g = kTrueIndex;
  if (g == edge_not(f)) g = kFalseIndex;
  if (h == f) h = kFalseIndex;
  if (h == edge_not(f)) h = kTrueIndex;
  if (g == h) return g;
  if (g == kTrueIndex && h == kFalseIndex) return f;
  if (g == kFalseIndex && h == kTrueIndex) return edge_not(f);

  // Constant-branch triples route into the shared AND/XOR caches,
  // exactly like the serial core — via the parallel variants.
  if (g == kTrueIndex) return par_or_rec(f, h);
  if (g == kFalseIndex) return par_and_rec(edge_not(f), h);
  if (h == kFalseIndex) return par_and_rec(f, g);
  if (h == kTrueIndex) return edge_not(par_and_rec(f, edge_not(g)));
  if (g == edge_not(h)) return edge_not(par_xor_rec(f, g));

  if (edge_is_complemented(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  NodeIndex out_parity = 0;
  if (edge_is_complemented(g)) {
    g = edge_not(g);
    h = edge_not(h);
    out_parity = kComplementBit;
  }

  NodeIndex cached;
  if (cache_find(kOpIte, f, g, h, &cached)) return cached ^ out_parity;

  const unsigned lf = level(f), lg = level(g), lh = level(h);
  const unsigned top = std::min(lf, std::min(lg, lh));
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;
  const NodeIndex h0 = lh == top ? node_low(h) : h;
  const NodeIndex h1 = lh == top ? node_high(h) : h;

  NodeIndex low, high;
  if (par_should_fork(top)) {
    ParallelTask task(ParallelTask::kIte, f0, g0, h0);
    if (par_pool_->try_fork(task)) {
      try {
        high = par_ite_rec(f1, g1, h1);
      } catch (...) {
        par_pool_->join_abandoned(task);
        throw;
      }
      low = par_pool_->join(task);
    } else {
      low = par_ite_rec(f0, g0, h0);
      high = par_ite_rec(f1, g1, h1);
    }
  } else {
    low = ite_rec(f0, g0, h0);
    high = ite_rec(f1, g1, h1);
  }
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpIte, f, g, h, result);
  return result ^ out_parity;
}

NodeIndex BddManager::par_exists_rec(NodeIndex f, NodeIndex cube) {
  if (edge_is_terminal(f)) return f;
  const unsigned lf = level(f);
  while (!edge_is_terminal(cube) && level(cube) < lf) {
    cube = node_at(edge_node(cube)).high;  // Positive cube: high is plain.
  }
  if (edge_is_terminal(cube)) return f;

  NodeIndex cached;
  if (cache_find(kOpExists, f, cube, 0, &cached)) return cached;

  const NodeIndex f0 = node_low(f);
  const NodeIndex f1 = node_high(f);
  NodeIndex result;
  if (level(cube) == lf) {
    const NodeIndex rest = node_at(edge_node(cube)).high;
    NodeIndex low, high = kInvalidIndex;
    bool have_high = false;
    if (par_should_fork(lf)) {
      ParallelTask task(ParallelTask::kExists, f0, rest, 0);
      if (par_pool_->try_fork(task)) {
        // Forking trades the serial early-termination (low == true
        // skips the high branch) for parallelism; the disjunction is
        // canonical either way, so the result is still byte-identical.
        try {
          high = par_exists_rec(f1, rest);
        } catch (...) {
          par_pool_->join_abandoned(task);
          throw;
        }
        low = par_pool_->join(task);
        have_high = true;
      } else {
        low = par_exists_rec(f0, rest);
      }
    } else {
      low = exists_rec(f0, rest);
    }
    if (low == kTrueIndex) {
      result = kTrueIndex;  // OR with anything is true.
    } else {
      if (!have_high) {
        high = par_should_fork(lf) ? par_exists_rec(f1, rest)
                                   : exists_rec(f1, rest);
      }
      result = par_should_fork(lf) ? par_or_rec(low, high)
                                   : or_rec(low, high);
    }
  } else {
    NodeIndex low, high;
    if (par_should_fork(lf)) {
      ParallelTask task(ParallelTask::kExists, f0, cube, 0);
      if (par_pool_->try_fork(task)) {
        try {
          high = par_exists_rec(f1, cube);
        } catch (...) {
          par_pool_->join_abandoned(task);
          throw;
        }
        low = par_pool_->join(task);
      } else {
        low = par_exists_rec(f0, cube);
        high = par_exists_rec(f1, cube);
      }
    } else {
      low = exists_rec(f0, cube);
      high = exists_rec(f1, cube);
    }
    result = make_node(node_var(f), low, high);
  }
  cache_store(kOpExists, f, cube, 0, result);
  return result;
}

NodeIndex BddManager::par_and_exists_rec(NodeIndex f, NodeIndex g,
                                         NodeIndex cube) {
  if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
  if (f == edge_not(g)) return kFalseIndex;
  if (f == kTrueIndex || f == g) return par_exists_rec(g, cube);
  if (g == kTrueIndex) return par_exists_rec(f, cube);
  if (edge_is_terminal(cube)) return par_and_rec(f, g);

  if (f > g) std::swap(f, g);  // AND is commutative.

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  while (!edge_is_terminal(cube) && level(cube) < top) {
    cube = node_at(edge_node(cube)).high;
  }
  if (edge_is_terminal(cube)) return par_and_rec(f, g);

  NodeIndex cached;
  if (cache_find(kOpAndExists, f, g, cube, &cached)) return cached;

  const Var v = level_to_var_[top];
  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  const bool fork_here = par_should_fork(top);
  NodeIndex result;
  if (level(cube) == top) {
    const NodeIndex rest = node_at(edge_node(cube)).high;
    NodeIndex low, high = kInvalidIndex;
    bool have_high = false;
    if (fork_here) {
      ParallelTask task(ParallelTask::kAndExists, f0, g0, rest);
      if (par_pool_->try_fork(task)) {
        try {
          high = par_and_exists_rec(f1, g1, rest);
        } catch (...) {
          par_pool_->join_abandoned(task);
          throw;
        }
        low = par_pool_->join(task);
        have_high = true;
      } else {
        low = par_and_exists_rec(f0, g0, rest);
      }
    } else {
      low = and_exists_rec(f0, g0, rest);
    }
    if (low == kTrueIndex) {
      result = kTrueIndex;  // OR with anything is true.
    } else {
      if (!have_high) {
        high = fork_here ? par_and_exists_rec(f1, g1, rest)
                         : and_exists_rec(f1, g1, rest);
      }
      result = fork_here ? par_or_rec(low, high) : or_rec(low, high);
    }
  } else {
    NodeIndex low, high;
    if (fork_here) {
      ParallelTask task(ParallelTask::kAndExists, f0, g0, cube);
      if (par_pool_->try_fork(task)) {
        try {
          high = par_and_exists_rec(f1, g1, cube);
        } catch (...) {
          par_pool_->join_abandoned(task);
          throw;
        }
        low = par_pool_->join(task);
      } else {
        low = par_and_exists_rec(f0, g0, cube);
        high = par_and_exists_rec(f1, g1, cube);
      }
    } else {
      low = and_exists_rec(f0, g0, cube);
      high = and_exists_rec(f1, g1, cube);
    }
    result = make_node(v, low, high);
  }
  cache_store(kOpAndExists, f, g, cube, result);
  return result;
}

}  // namespace covest::bdd
