// Node pool, unique tables, reference counting and garbage collection.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace covest::bdd {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer; good avalanche for consing keys.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_pair(NodeIndex low, NodeIndex high) {
  return mix64((static_cast<std::uint64_t>(low) << 32) | high);
}

// Full-width mixing of a cache key. Each half of the 128-bit key packs
// injectively into its own 64-bit word; the second word is spread by a
// golden-ratio multiply (a bijection) before combining, then the sum is
// finalized with splitmix64. Distinct keys can only collide through the
// 128->64 compression itself — unlike a shifted XOR, which aliases
// operand bits structurally before any mixing happens.
std::uint64_t hash_cache_key(std::uint32_t op, NodeIndex a, NodeIndex b,
                             NodeIndex c) {
  const std::uint64_t k1 = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::uint64_t k2 = (static_cast<std::uint64_t>(c) << 32) | op;
  return mix64(k1 ^ (k2 * 0x9e3779b97f4a7c15ull));
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeIndex index) noexcept : mgr_(mgr), index_(index) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref(other.index_);
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->deref(index_);
}

Var Bdd::top_var() const {
  assert(valid() && !is_terminal());
  return mgr_->node_var(index_);
}

Bdd Bdd::low() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_low(index_));
}

Bdd Bdd::high() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_high(index_));
}

Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator-(const Bdd& rhs) const {
  return mgr_->apply_and(*this, mgr_->apply_not(rhs));
}
Bdd Bdd::implies(const Bdd& rhs) const {
  return mgr_->apply_or(mgr_->apply_not(*this), rhs);
}
Bdd Bdd::iff(const Bdd& rhs) const {
  return mgr_->apply_not(mgr_->apply_xor(*this, rhs));
}

bool Bdd::subset_of(const Bdd& other) const {
  return (*this - other).is_false();
}

bool Bdd::intersects(const Bdd& other) const {
  return !(*this & other).is_false();
}

Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  return f.manager()->apply_ite(f, g, h);
}

// ---------------------------------------------------------------------------
// Manager construction
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned initial_vars, std::size_t cache_size_log2) {
  // Slot 0 is the unique terminal; TRUE and FALSE are its two edges.
  nodes_.resize(1);
  stamps_.resize(1);
  ext_refs_.resize(1, 1);  // The terminal is permanently referenced.
  nodes_[0].var = kInvalidVar;
  cache_max_size_ = std::size_t{1} << cache_size_log2;
  cache_.resize(std::min(cache_max_size_, std::size_t{1} << 12));
  cache_mask_ = cache_.size() - 1;
  gc_threshold_ = 1u << 16;
  for (unsigned i = 0; i < initial_vars; ++i) new_var();
}

BddManager::~BddManager() = default;

Var BddManager::new_var(std::string name) {
  const Var v = static_cast<Var>(var_to_level_.size());
  var_to_level_.push_back(static_cast<unsigned>(level_to_var_.size()));
  level_to_var_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  var_names_.push_back(std::move(name));
  Subtable st;
  st.buckets.assign(64, kInvalidIndex);
  subtables_.push_back(std::move(st));
  var_gen_.push_back(0);
  return v;
}

Bdd BddManager::var(Var v) {
  return Bdd(this, make_node(v, kFalseIndex, kTrueIndex));
}

Bdd BddManager::nvar(Var v) {
  // Shares the positive literal's node through a complement edge.
  return Bdd(this, edge_not(make_node(v, kFalseIndex, kTrueIndex)));
}

Bdd BddManager::cube(const std::vector<Var>& vars) {
  Bdd result = bdd_true();
  // Build bottom-up (deepest level first) so each make_node is O(1).
  std::vector<Var> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [this](Var a, Var b) {
    return var_to_level_[a] > var_to_level_[b];
  });
  for (Var v : sorted) {
    result = Bdd(this, make_node(v, kFalseIndex, result.index()));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Unique tables and node allocation
// ---------------------------------------------------------------------------

std::size_t BddManager::subtable_bucket(Var v, NodeIndex low,
                                        NodeIndex high) const {
  const Subtable& st = subtables_[v];
  return hash_pair(low, high) & (st.buckets.size() - 1);
}

NodeIndex BddManager::make_node(Var v, NodeIndex low, NodeIndex high) {
  // Single-threaded contract: node construction from a thread other than
  // the owner means two threads are sharing one manager — the unique
  // tables and the node pool would corrupt silently in release builds.
  assert(owner_thread_ == std::this_thread::get_id() &&
         "BddManager used from a foreign thread (see "
         "rebind_to_current_thread)");
  if (low == high) return low;
  // Canonical form: the stored high edge is never complemented. Negating
  // both children and complementing the resulting edge preserves the
  // function: !(v ? h : l) == (v ? !h : !l).
  NodeIndex out_complement = 0;
  if (edge_is_complemented(high)) {
    low = edge_not(low);
    high = edge_not(high);
    out_complement = kComplementBit;
    ++stats_.complement_canonicalizations;
  }
  Subtable& st = subtables_[v];
  const std::size_t bucket = subtable_bucket(v, low, high);
  for (NodeIndex n = st.buckets[bucket]; n != kInvalidIndex;
       n = nodes_[n].next) {
    if (nodes_[n].low == low && nodes_[n].high == high) {
      ++stats_.unique_hits;
      return n | out_complement;
    }
  }
  ++stats_.unique_misses;
  const NodeIndex n = allocate_node();
  Node& node = nodes_[n];
  node.var = v;
  node.low = low;
  node.high = high;
  node.next = st.buckets[bucket];
  st.buckets[bucket] = n;
  ++st.count;
  maybe_resize_subtable(v);
  return n | out_complement;
}

NodeIndex BddManager::allocate_node() {
  if (free_head_ != kInvalidIndex) {
    const NodeIndex n = free_head_;
    free_head_ = nodes_[n].next;
    --free_count_;
    ext_refs_[n] = 0;
    stamps_[n].gen = 0;
    stamps_[n].scratch = 0;
    return n;
  }
  if (nodes_.size() >= edge_node(kInvalidIndex)) {
    throw std::length_error("BddManager: node pool exceeds 2^31 slots");
  }
  nodes_.emplace_back();
  stamps_.emplace_back();
  ext_refs_.push_back(0);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void BddManager::maybe_resize_subtable(Var v) {
  Subtable& st = subtables_[v];
  if (st.count < st.buckets.size()) return;
  std::vector<NodeIndex> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kInvalidIndex);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kInvalidIndex;) {
      const NodeIndex next = nodes_[n].next;
      const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
      nodes_[n].next = st.buckets[b];
      st.buckets[b] = n;
      n = next;
    }
  }
}

void BddManager::subtable_insert(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
  nodes_[n].next = st.buckets[b];
  st.buckets[b] = n;
  ++st.count;
}

void BddManager::subtable_remove(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
  NodeIndex* link = &st.buckets[b];
  while (*link != kInvalidIndex) {
    if (*link == n) {
      *link = nodes_[n].next;
      --st.count;
      return;
    }
    link = &nodes_[*link].next;
  }
  assert(false && "node missing from its subtable");
}

bool BddManager::check_canonical() const {
  for (NodeIndex n = 1; n < nodes_.size(); ++n) {
    if (nodes_[n].var == kInvalidVar) continue;  // Free-list slot.
    if (edge_is_complemented(nodes_[n].high)) return false;
    if (nodes_[n].low == nodes_[n].high) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void BddManager::ref(NodeIndex e) noexcept { ++ext_refs_[edge_node(e)]; }

void BddManager::deref(NodeIndex e) noexcept {
  assert(ext_refs_[edge_node(e)] > 0);
  --ext_refs_[edge_node(e)];
}

std::uint32_t BddManager::next_generation() {
  if (++generation_ == 0) {
    // Wrapped after ~2^32 traversals: clear every stamp once and restart.
    for (NodeStamp& s : stamps_) s.gen = 0;
    for (std::uint32_t& g : var_gen_) g = 0;
    generation_ = 1;
  }
  return generation_;
}

std::size_t BddManager::mark_reachable(NodeIndex e) {
  // Iterative DFS on the reusable stack; BDDs for deep fixpoints can
  // exceed the call stack. Visited state is the generation stamp, so no
  // per-call bitmap is allocated or cleared.
  std::size_t newly_marked = 0;
  work_stack_.clear();
  work_stack_.push_back(edge_node(e));
  while (!work_stack_.empty()) {
    const NodeIndex slot = work_stack_.back();
    work_stack_.pop_back();
    if (slot == 0 || stamps_[slot].gen == generation_) continue;
    stamps_[slot].gen = generation_;
    ++newly_marked;
    work_stack_.push_back(edge_node(nodes_[slot].low));
    work_stack_.push_back(edge_node(nodes_[slot].high));
  }
  return newly_marked;
}

std::size_t BddManager::gc() {
  assert(!in_operation_ && "GC must not run inside a BDD operation");
  next_generation();
  for (NodeIndex n = 1; n < nodes_.size(); ++n) {
    if (ext_refs_[n] > 0 && nodes_[n].var != kInvalidVar) mark_reachable(n);
  }

  std::size_t freed = 0;
  for (NodeIndex n = 1; n < nodes_.size(); ++n) {
    if (stamps_[n].gen == generation_ || nodes_[n].var == kInvalidVar) continue;
    subtable_remove(nodes_[n].var, n);
    nodes_[n].var = kInvalidVar;
    nodes_[n].low = kInvalidIndex;
    nodes_[n].high = kInvalidIndex;
    nodes_[n].next = free_head_;
    free_head_ = n;
    ++free_count_;
    ++freed;
  }
  clear_cache();
  ++stats_.gc_runs;
  return freed;
}

void BddManager::maybe_gc() {
  if (in_operation_) return;
  const std::size_t live_estimate = nodes_.size() - 1 - free_count_;
  if (live_estimate < gc_threshold_) return;
  gc();
  const std::size_t live = nodes_.size() - 1 - free_count_;
  if (live * 4 > gc_threshold_ * 3) gc_threshold_ *= 2;
}

void BddManager::clear_cache() {
  // O(1): entries from older epochs simply stop matching. Only the
  // (once per ~2^32 clears) epoch wrap pays for a physical sweep.
  if (++cache_epoch_ == 0) {
    for (CacheEntry& e : cache_) e.epoch = 0;
    cache_epoch_ = 1;
  }
  // The hit-rate counters describe one cache epoch; restart them with it.
  stats_.cache_hits = 0;
  stats_.cache_lookups = 0;
}

std::size_t BddManager::live_node_count() {
  next_generation();
  std::size_t live = 0;
  for (NodeIndex n = 1; n < nodes_.size(); ++n) {
    if (ext_refs_[n] > 0 && nodes_[n].var != kInvalidVar) {
      live += mark_reachable(n);
    }
  }
  stats_.live_nodes = live;
  stats_.allocated_nodes = nodes_.size() - 1;
  if (live > stats_.peak_live_nodes) stats_.peak_live_nodes = live;
  return live;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

bool BddManager::cache_find(std::uint32_t op, NodeIndex a, NodeIndex b,
                            NodeIndex c, NodeIndex* out) {
  ++stats_.cache_lookups;
  const CacheEntry& e = cache_[hash_cache_key(op, a, b, c) & cache_mask_];
  if (e.epoch == cache_epoch_ && e.op == op && e.a == a && e.b == b &&
      e.c == c) {
    ++stats_.cache_hits;
    *out = e.result;
    return true;
  }
  return false;
}

void BddManager::maybe_grow_cache() {
  if (++cache_stores_since_grow_ <= cache_.size() / 4 ||
      cache_.size() >= cache_max_size_) {
    return;
  }
  // Store pressure builds towards eviction thrashing: quadruple early
  // (eviction-induced recomputation costs far more than zeroing the
  // larger table). The cache is lossy, so dropping the old contents is
  // sound — most were about to be evicted anyway.
  cache_.assign(std::min(cache_.size() * 4, cache_max_size_), CacheEntry{});
  cache_mask_ = cache_.size() - 1;
  cache_stores_since_grow_ = 0;
}

void BddManager::cache_store(std::uint32_t op, NodeIndex a, NodeIndex b,
                             NodeIndex c, NodeIndex result) {
  maybe_grow_cache();
  CacheEntry& e = cache_[hash_cache_key(op, a, b, c) & cache_mask_];
  e.op = op;
  e.a = a;
  e.b = b;
  e.c = c;
  e.result = result;
  e.epoch = cache_epoch_;
}

}  // namespace covest::bdd
