// Node pool, unique tables, reference counting and garbage collection.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace covest::bdd {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer; good avalanche for consing keys.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_pair(NodeIndex low, NodeIndex high) {
  return mix64((static_cast<std::uint64_t>(low) << 32) | high);
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeIndex index) noexcept : mgr_(mgr), index_(index) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref(other.index_);
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->deref(index_);
}

Var Bdd::top_var() const {
  assert(valid() && !is_terminal());
  return mgr_->node_var(index_);
}

Bdd Bdd::low() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_low(index_));
}

Bdd Bdd::high() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_high(index_));
}

Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator-(const Bdd& rhs) const {
  return mgr_->apply_and(*this, mgr_->apply_not(rhs));
}
Bdd Bdd::implies(const Bdd& rhs) const {
  return mgr_->apply_or(mgr_->apply_not(*this), rhs);
}
Bdd Bdd::iff(const Bdd& rhs) const {
  return mgr_->apply_not(mgr_->apply_xor(*this, rhs));
}

bool Bdd::subset_of(const Bdd& other) const {
  return (*this - other).is_false();
}

bool Bdd::intersects(const Bdd& other) const {
  return !(*this & other).is_false();
}

Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  return f.manager()->apply_ite(f, g, h);
}

// ---------------------------------------------------------------------------
// Manager construction
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned initial_vars, std::size_t cache_size_log2) {
  nodes_.resize(2);
  ext_refs_.resize(2, 1);  // Terminals are permanently referenced.
  nodes_[kFalseIndex].var = kInvalidVar;
  nodes_[kTrueIndex].var = kInvalidVar;
  cache_.resize(std::size_t{1} << cache_size_log2);
  cache_mask_ = cache_.size() - 1;
  gc_threshold_ = 1u << 16;
  for (unsigned i = 0; i < initial_vars; ++i) new_var();
}

BddManager::~BddManager() = default;

Var BddManager::new_var(std::string name) {
  const Var v = static_cast<Var>(var_to_level_.size());
  var_to_level_.push_back(static_cast<unsigned>(level_to_var_.size()));
  level_to_var_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  var_names_.push_back(std::move(name));
  Subtable st;
  st.buckets.assign(64, kInvalidIndex);
  subtables_.push_back(std::move(st));
  return v;
}

Bdd BddManager::var(Var v) {
  return Bdd(this, make_node(v, kFalseIndex, kTrueIndex));
}

Bdd BddManager::nvar(Var v) {
  return Bdd(this, make_node(v, kTrueIndex, kFalseIndex));
}

Bdd BddManager::cube(const std::vector<Var>& vars) {
  Bdd result = bdd_true();
  // Build bottom-up (deepest level first) so each make_node is O(1).
  std::vector<Var> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [this](Var a, Var b) {
    return var_to_level_[a] > var_to_level_[b];
  });
  for (Var v : sorted) {
    result = Bdd(this, make_node(v, kFalseIndex, result.index()));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Unique tables and node allocation
// ---------------------------------------------------------------------------

std::size_t BddManager::subtable_bucket(Var v, NodeIndex low,
                                        NodeIndex high) const {
  const Subtable& st = subtables_[v];
  return hash_pair(low, high) & (st.buckets.size() - 1);
}

NodeIndex BddManager::make_node(Var v, NodeIndex low, NodeIndex high) {
  if (low == high) return low;
  Subtable& st = subtables_[v];
  const std::size_t bucket = subtable_bucket(v, low, high);
  for (NodeIndex n = st.buckets[bucket]; n != kInvalidIndex;
       n = nodes_[n].next) {
    if (nodes_[n].low == low && nodes_[n].high == high) {
      ++stats_.unique_hits;
      return n;
    }
  }
  ++stats_.unique_misses;
  const NodeIndex n = allocate_node();
  Node& node = nodes_[n];
  node.var = v;
  node.low = low;
  node.high = high;
  node.next = st.buckets[bucket];
  st.buckets[bucket] = n;
  ++st.count;
  maybe_resize_subtable(v);
  return n;
}

NodeIndex BddManager::allocate_node() {
  if (free_head_ != kInvalidIndex) {
    const NodeIndex n = free_head_;
    free_head_ = nodes_[n].next;
    --free_count_;
    ext_refs_[n] = 0;
    return n;
  }
  nodes_.emplace_back();
  ext_refs_.push_back(0);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void BddManager::maybe_resize_subtable(Var v) {
  Subtable& st = subtables_[v];
  if (st.count < st.buckets.size()) return;
  std::vector<NodeIndex> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kInvalidIndex);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kInvalidIndex;) {
      const NodeIndex next = nodes_[n].next;
      const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
      nodes_[n].next = st.buckets[b];
      st.buckets[b] = n;
      n = next;
    }
  }
}

void BddManager::subtable_insert(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
  nodes_[n].next = st.buckets[b];
  st.buckets[b] = n;
  ++st.count;
}

void BddManager::subtable_remove(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, nodes_[n].low, nodes_[n].high);
  NodeIndex* link = &st.buckets[b];
  while (*link != kInvalidIndex) {
    if (*link == n) {
      *link = nodes_[n].next;
      --st.count;
      return;
    }
    link = &nodes_[*link].next;
  }
  assert(false && "node missing from its subtable");
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

void BddManager::ref(NodeIndex n) noexcept { ++ext_refs_[n]; }

void BddManager::deref(NodeIndex n) noexcept {
  assert(ext_refs_[n] > 0);
  --ext_refs_[n];
}

void BddManager::mark(NodeIndex n, std::vector<bool>& marked) const {
  // Iterative DFS; BDDs for deep fixpoints can exceed the call stack.
  std::vector<NodeIndex> stack{n};
  while (!stack.empty()) {
    const NodeIndex cur = stack.back();
    stack.pop_back();
    if (marked[cur]) continue;
    marked[cur] = true;
    if (cur > kTrueIndex) {
      stack.push_back(nodes_[cur].low);
      stack.push_back(nodes_[cur].high);
    }
  }
}

std::size_t BddManager::gc() {
  assert(!in_operation_ && "GC must not run inside a BDD operation");
  std::vector<bool> marked(nodes_.size(), false);
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    if (ext_refs_[n] > 0 && nodes_[n].var != kInvalidVar) mark(n, marked);
  }
  marked[kFalseIndex] = marked[kTrueIndex] = true;

  std::size_t freed = 0;
  for (NodeIndex n = 2; n < nodes_.size(); ++n) {
    if (marked[n] || nodes_[n].var == kInvalidVar) continue;
    subtable_remove(nodes_[n].var, n);
    nodes_[n].var = kInvalidVar;
    nodes_[n].low = kInvalidIndex;
    nodes_[n].high = kInvalidIndex;
    nodes_[n].next = free_head_;
    free_head_ = n;
    ++free_count_;
    ++freed;
  }
  clear_cache();
  ++stats_.gc_runs;
  return freed;
}

void BddManager::maybe_gc() {
  if (in_operation_) return;
  const std::size_t live_estimate = nodes_.size() - 2 - free_count_;
  if (live_estimate < gc_threshold_) return;
  gc();
  const std::size_t live = nodes_.size() - 2 - free_count_;
  if (live * 4 > gc_threshold_ * 3) gc_threshold_ *= 2;
}

void BddManager::clear_cache() {
  for (CacheEntry& e : cache_) e.op = 0;
}

std::size_t BddManager::live_node_count() {
  std::vector<bool> marked(nodes_.size(), false);
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    if (ext_refs_[n] > 0 && nodes_[n].var != kInvalidVar) mark(n, marked);
  }
  std::size_t live = 0;
  for (NodeIndex n = 2; n < nodes_.size(); ++n) {
    if (marked[n]) ++live;
  }
  stats_.live_nodes = live;
  if (live > stats_.peak_live_nodes) stats_.peak_live_nodes = live;
  return live;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

BddManager::CacheEntry& BddManager::cache_slot(std::uint32_t op, NodeIndex a,
                                               NodeIndex b, NodeIndex c) {
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(op) << 48) ^
            (static_cast<std::uint64_t>(a) << 32) ^
            (static_cast<std::uint64_t>(b) << 16) ^ c);
  return cache_[h & cache_mask_];
}

bool BddManager::cache_find(std::uint32_t op, NodeIndex a, NodeIndex b,
                            NodeIndex c, NodeIndex* out) {
  ++stats_.cache_lookups;
  const CacheEntry& e = cache_slot(op, a, b, c);
  if (e.op == op && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    *out = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_store(std::uint32_t op, NodeIndex a, NodeIndex b,
                             NodeIndex c, NodeIndex result) {
  CacheEntry& e = cache_slot(op, a, b, c);
  e.op = op;
  e.a = a;
  e.b = b;
  e.c = c;
  e.result = result;
}

}  // namespace covest::bdd
