// Node pool, unique tables, reference counting, garbage collection and
// the shared (sharded) mode machinery.
//
// Shared-mode memory model, in one place:
//
//  * A node's fields (var/low/high) are written exactly once, before the
//    node is *published*. Publication is a release edge matched by an
//    acquire on the consumer side, and its shape depends on the epoch's
//    TableMode:
//      - kLockFree: the node is linked into its unique-subtable chain
//        by a release `compare_exchange` on the bucket head; readers
//        acquire-load the head (and each chain link). A bucket head
//        only ever moves by prepending during an epoch — nothing is
//        removed or rehashed — so CAS retries cannot ABA, and a reader
//        that loses a race at worst walks a longer chain. The computed
//        cache publishes through the seqlock stamp of its LfCacheEntry
//        (release store of the even stamp, acquire load on the reader).
//      - kStriped: the stripe mutexes double as the publication fence
//        (the PR-4 scheme, kept selectable for benchmarking).
//    Either way a thread can only learn a node's index through one of
//    those release/acquire channels (or through a root handle created
//    before the threads were spawned), so every cross-thread read of
//    node fields is ordered after the initializing writes. Live node
//    fields are never mutated while shared mode is on (reordering stays
//    exclusive-mode); shared-mode collections mutate only *dead* nodes,
//    and only while every other thread is paused at an operation
//    boundary (see the reclamation section at the end of this file).
//  * Segment pointers are published the same way: a segment is
//    installed under `alloc_mu_` before any slot inside it is handed
//    out, and slot indices travel only through the synchronized
//    channels above.
//  * `allocated_` is an atomic bumped under `alloc_mu_`; traversals
//    size their per-thread stamp arrays from a relaxed load, which is
//    safe because every slot reachable from a published edge was
//    allocated (and counted) before that edge was published (the
//    release/acquire publication edge carries the counter write too).
//  * External reference counts are relaxed atomics: a shared-mode
//    collection reads them while every other thread is paused, and a
//    handle that was live at the pause has completed its increment
//    before its owner reached the boundary (program order within the
//    owning thread plus the seq_cst quiescence handshake).
//  * Everything in the lock-free paths is either an std::atomic_ref /
//    std::atomic operation or a plain access ordered by one of the
//    edges above, so a clean TSan run over the concurrency battery is
//    meaningful evidence, not luck.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "bdd/parallel.h"
#include "util/governance.h"

namespace covest::bdd {


namespace {

// Process-global epoch tokens: every mode transition of every manager
// draws a fresh value, so a (manager, epoch) pair can never recur — a
// per-manager counter would let a thread-local ctx cache false-hit on a
// new manager allocated at a dead manager's address once its counter
// climbed back to the cached value (use-after-free via the cached
// ThreadCtx*).
std::atomic<std::uint64_t> g_epoch_tokens{0};

std::uint64_t next_epoch_token() {
  return g_epoch_tokens.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer; good avalanche for consing keys.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_pair(NodeIndex low, NodeIndex high) {
  return mix64((static_cast<std::uint64_t>(low) << 32) | high);
}

// Full-width mixing of a cache key. Each half of the 128-bit key packs
// injectively into its own 64-bit word; the second word is spread by a
// golden-ratio multiply (a bijection) before combining, then the sum is
// finalized with splitmix64. Distinct keys can only collide through the
// 128->64 compression itself — unlike a shifted XOR, which aliases
// operand bits structurally before any mixing happens.
std::uint64_t hash_cache_key(std::uint32_t op, NodeIndex a, NodeIndex b,
                             NodeIndex c) {
  const std::uint64_t k1 = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::uint64_t k2 = (static_cast<std::uint64_t>(c) << 32) | op;
  return mix64(k1 ^ (k2 * 0x9e3779b97f4a7c15ull));
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeIndex index) noexcept : mgr_(mgr), index_(index) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  if (mgr_ != nullptr) mgr_->ref(index_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), index_(other.index_) {
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref(other.index_);
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->deref(index_);
  mgr_ = other.mgr_;
  index_ = other.index_;
  other.mgr_ = nullptr;
  other.index_ = kInvalidIndex;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->deref(index_);
}

Var Bdd::top_var() const {
  assert(valid() && !is_terminal());
  return mgr_->node_var(index_);
}

Bdd Bdd::low() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_low(index_));
}

Bdd Bdd::high() const {
  assert(valid() && !is_terminal());
  return Bdd(mgr_, mgr_->node_high(index_));
}

Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator-(const Bdd& rhs) const {
  return mgr_->apply_and(*this, mgr_->apply_not(rhs));
}
Bdd Bdd::implies(const Bdd& rhs) const {
  return mgr_->apply_or(mgr_->apply_not(*this), rhs);
}
Bdd Bdd::iff(const Bdd& rhs) const {
  return mgr_->apply_not(mgr_->apply_xor(*this, rhs));
}

bool Bdd::subset_of(const Bdd& other) const {
  return (*this - other).is_false();
}

bool Bdd::intersects(const Bdd& other) const {
  return !(*this & other).is_false();
}

Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  return f.manager()->apply_ite(f, g, h);
}

// ---------------------------------------------------------------------------
// Manager construction and segmented pool
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned initial_vars, std::size_t cache_size_log2) {
  // Slot 0 is the unique terminal; TRUE and FALSE are its two edges.
  ensure_pool(1);
  allocated_.store(1, std::memory_order_relaxed);
  node_at(0).var = kInvalidVar;
  ref_at(0).store(1, std::memory_order_relaxed);  // Permanently referenced.
  cache_max_size_ = std::size_t{1} << cache_size_log2;
  cache_.resize(std::min(cache_max_size_, std::size_t{1} << 12));
  cache_mask_ = cache_.size() - 1;
  gc_threshold_ = 1u << 16;
  // Tests and soak harnesses force small pools into collection without
  // plumbing a setter through every layer that owns a manager.
  if (const char* env = std::getenv("COVEST_GC_THRESHOLD")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) gc_threshold_ = static_cast<std::size_t>(v);
  }
  for (unsigned i = 0; i < initial_vars; ++i) new_var();
}

BddManager::~BddManager() = default;

void BddManager::ensure_pool(std::size_t n) {
  while (pool_capacity_ < n) {
    if (num_segments_ >= kMaxSegments) {
      throw std::length_error("BddManager: node pool exceeds 2^31 slots");
    }
    const unsigned seg = num_segments_;
    const std::size_t size = seg_capacity(seg);
    node_segs_[seg] = std::make_unique<Node[]>(size);
    ref_segs_[seg] = std::make_unique<std::atomic<std::uint32_t>[]>(size);
    node_base_[seg] = node_segs_[seg].get() - seg_base(seg);
    ref_base_[seg] = ref_segs_[seg].get() - seg_base(seg);
    // Publish the segment only after it exists (shared-mode readers
    // reach it through a lock that orders after this function).
    ++num_segments_;
    pool_capacity_ += size;
  }
}

Var BddManager::new_var(std::string name) {
  require_exclusive("new_var");
  const Var v = static_cast<Var>(var_to_level_.size());
  var_to_level_.push_back(static_cast<unsigned>(level_to_var_.size()));
  level_to_var_.push_back(v);
  if (name.empty()) name = "v" + std::to_string(v);
  var_names_.push_back(std::move(name));
  Subtable st;
  st.buckets.assign(64, kInvalidIndex);
  subtables_.push_back(std::move(st));
  return v;
}

Bdd BddManager::var(Var v) {
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  return Bdd(this, make_node(v, kFalseIndex, kTrueIndex));
}

Bdd BddManager::nvar(Var v) {
  // Shares the positive literal's node through a complement edge.
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  return Bdd(this, edge_not(make_node(v, kFalseIndex, kTrueIndex)));
}

Bdd BddManager::cube(const std::vector<Var>& vars) {
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  Bdd result = bdd_true();
  // Build bottom-up (deepest level first) so each make_node is O(1).
  std::vector<Var> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [this](Var a, Var b) {
    return var_to_level_[a] > var_to_level_[b];
  });
  for (Var v : sorted) {
    result = Bdd(this, make_node(v, kFalseIndex, result.index()));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Shared (sharded) mode
// ---------------------------------------------------------------------------

void BddManager::begin_shared(std::size_t max_threads, TableMode table_mode,
                              const ParallelConfig& parallel) {
  if (shared_mode_) {
    throw std::logic_error("BddManager::begin_shared: already in shared mode");
  }
  assert(owner_thread_ == std::this_thread::get_id() &&
         "begin_shared must be called by the owning thread");
  assert(!main_ctx_.in_operation && "begin_shared inside an operation");
  // Pool helpers register as shard threads too: budget their contexts
  // on top of the client threads the caller declared.
  const std::size_t pool_helpers =
      parallel.workers > 1 ? parallel.workers - 1 : 0;
  shard_max_threads_ = std::max<std::size_t>(1, max_threads) + pool_helpers;
  table_mode_ = table_mode;
  if (table_mode_ == TableMode::kLockFree) {
    // Pre-size every subtable while the manager is still exclusive: the
    // lock-free epoch never resizes (rehashing would move chain links
    // under concurrent readers), so give each table headroom now. An
    // epoch that outgrows the headroom degrades to longer chains.
    for (Var v = 0; v < subtables_.size(); ++v) {
      std::size_t target = subtables_[v].buckets.size();
      while (subtables_[v].count * 4 >= target) target *= 2;
      if (target != subtables_[v].buckets.size()) rehash_subtable(v, target);
    }
    // The wait-free cache mirrors the exclusive cache's current
    // (adaptively grown) size. Entries persist across epochs; their
    // stored epoch word keeps them exactly as valid as striped/
    // exclusive entries would be (clear_cache and gc bump the epoch).
    if (lf_cache_size_ != cache_.size()) {
      lf_cache_ = std::make_unique<LfCacheEntry[]>(cache_.size());
      lf_cache_size_ = cache_.size();
      lf_cache_mask_ = lf_cache_size_ - 1;
    }
  }
  shard_ctxs_.clear();
  shard_ctxs_.reserve(shard_max_threads_);
  shared_epoch_ = next_epoch_token();
  shared_mode_ = true;
  if (parallel.workers >= 1) {
    // Started after the epoch is open so the helper threads can
    // register; they adopt this thread's governor (start() captures it).
    par_pool_ = std::make_unique<ParallelPool>(
        *this, pool_helpers, parallel.fork_threshold, shard_max_threads_);
    par_pool_->start();
  }
}

void BddManager::end_shared() {
  if (!shared_mode_) {
    throw std::logic_error("BddManager::end_shared without begin_shared");
  }
  if (par_pool_) {
    // Helpers must quiesce while the epoch is still open (their exit
    // path touches no manager state, but an in-flight stolen task
    // does); their ThreadCtx deltas merge with everyone else's below.
    par_pool_->stop_and_join();
    par_pool_.reset();
  }
  shared_mode_ = false;
  for (const std::unique_ptr<ThreadCtx>& tc : shard_ctxs_) {
    // Merge the per-thread counter deltas into the manager's stats.
    stats_.cache_hits += tc->stats.cache_hits;
    stats_.cache_lookups += tc->stats.cache_lookups;
    stats_.unique_hits += tc->stats.unique_hits;
    stats_.unique_misses += tc->stats.unique_misses;
    stats_.o1_negations += tc->stats.o1_negations;
    stats_.complement_canonicalizations +=
        tc->stats.complement_canonicalizations;
    // Return the unused tail of the thread's arena — and any recycled
    // slots it claimed but never used — to the free list.
    for (NodeIndex n = tc->arena_next; n < tc->arena_end; ++n) {
      assert(node_at(n).var == kInvalidVar);
      node_at(n).next = free_head_;
      free_head_ = n;
      ++free_count_;
    }
    for (const NodeIndex n : tc->recycled) {
      assert(node_at(n).var == kInvalidVar);
      node_at(n).next = free_head_;
      free_head_ = n;
      ++free_count_;
    }
  }
  shard_ctxs_.clear();
  // Every registered thread is joined, so grace is trivially satisfied:
  // drain all outstanding retire batches. A leftover collection request
  // must not leak into the next epoch either (no collector can still be
  // running — a collector finishes inside some thread's lifetime).
  assert(!pause_requested_.load(std::memory_order_relaxed) &&
         "end_shared with a collection pause still up");
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    drain_retire_batches_locked(/*only_expired=*/false);
  }
  gc_requested_.store(false, std::memory_order_relaxed);
  shared_epoch_ = next_epoch_token();
  owner_thread_ = std::this_thread::get_id();
}

void BddManager::register_shard_thread() {
  assert(shared_mode_ && "register_shard_thread outside shared mode");
  std::lock_guard<std::mutex> lock(shard_reg_mu_);
  if (shard_ctxs_.size() >= shard_max_threads_) {
    throw std::logic_error(
        "BddManager::register_shard_thread: more threads than declared to "
        "begin_shared");
  }
  auto tc = std::make_unique<ThreadCtx>();
  tc->thread = std::this_thread::get_id();
  for (const std::unique_ptr<ThreadCtx>& existing : shard_ctxs_) {
    if (existing->thread == tc->thread) {
      throw std::logic_error(
          "BddManager::register_shard_thread: thread already registered");
    }
  }
  shard_ctxs_.push_back(std::move(tc));
}

BddManager::ThreadCtx& BddManager::shard_ctx() {
  // One-entry thread-local cache: the common case is a thread working a
  // long run of operations against one shared manager.
  thread_local const BddManager* cached_mgr = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  thread_local ThreadCtx* cached_ctx = nullptr;
  if (cached_mgr == this && cached_epoch == shared_epoch_) {
    return *cached_ctx;
  }
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(shard_reg_mu_);
  for (const std::unique_ptr<ThreadCtx>& tc : shard_ctxs_) {
    if (tc->thread == self) {
      cached_mgr = this;
      cached_epoch = shared_epoch_;
      cached_ctx = tc.get();
      return *cached_ctx;
    }
  }
  // The shared-mode analogue of the exclusive-mode affinity assert: an
  // unregistered thread touching a shared manager is a scheduling bug.
  throw std::logic_error(
      "BddManager: shared-mode use from an unregistered thread (call "
      "register_shard_thread)");
}

// ---------------------------------------------------------------------------
// Unique tables and node allocation
// ---------------------------------------------------------------------------

std::size_t BddManager::subtable_bucket(Var v, NodeIndex low,
                                        NodeIndex high) const {
  const Subtable& st = subtables_[v];
  return hash_pair(low, high) & (st.buckets.size() - 1);
}

NodeIndex BddManager::make_node(Var v, NodeIndex low, NodeIndex high) {
  if (low == high) return low;
  // Canonical form: the stored high edge is never complemented. Negating
  // both children and complementing the resulting edge preserves the
  // function: !(v ? h : l) == (v ? !h : !l).
  NodeIndex out_complement = 0;
  if (edge_is_complemented(high)) {
    low = edge_not(low);
    high = edge_not(high);
    out_complement = kComplementBit;
  }

  if (!shared_mode_) {
    // Exclusive-mode contract: node construction from a thread other
    // than the owner means two threads are sharing one manager — the
    // unique tables and the node pool would corrupt silently in release
    // builds.
    assert(owner_thread_ == std::this_thread::get_id() &&
           "BddManager used from a foreign thread (see "
           "rebind_to_current_thread)");
    if (out_complement != 0) ++stats_.complement_canonicalizations;
    Subtable& st = subtables_[v];
    const std::size_t bucket = subtable_bucket(v, low, high);
    for (NodeIndex n = st.buckets[bucket]; n != kInvalidIndex;
         n = node_at(n).next) {
      if (node_at(n).low == low && node_at(n).high == high) {
        ++stats_.unique_hits;
        return n | out_complement;
      }
    }
    ++stats_.unique_misses;
    const NodeIndex n = allocate_node();
    Node& node = node_at(n);
    node.var = v;
    node.low = low;
    node.high = high;
    node.next = st.buckets[bucket];
    st.buckets[bucket] = n;
    ++st.count;
    maybe_resize_subtable(v);
    return n | out_complement;
  }

  ThreadCtx& tc = shard_ctx();
  if (out_complement != 0) ++tc.stats.complement_canonicalizations;
  if (table_mode_ == TableMode::kLockFree) {
    return make_node_lockfree(tc, v, low, high) | out_complement;
  }

  // Striped mode: the variable's stripe lock covers lookup, insertion and
  // resize, and doubles as the fence publishing the new node's fields.
  std::lock_guard<std::mutex> lock(unique_mu_[v % kUniqueStripes]);
  Subtable& st = subtables_[v];
  const std::size_t bucket = subtable_bucket(v, low, high);
  for (NodeIndex n = st.buckets[bucket]; n != kInvalidIndex;
       n = node_at(n).next) {
    if (node_at(n).low == low && node_at(n).high == high) {
      ++tc.stats.unique_hits;
      return n | out_complement;
    }
  }
  ++tc.stats.unique_misses;
  const NodeIndex n = allocate_node_shared(tc);
  Node& node = node_at(n);
  node.var = v;
  node.low = low;
  node.high = high;
  node.next = st.buckets[bucket];
  st.buckets[bucket] = n;
  ++st.count;
  maybe_resize_subtable(v);
  return n | out_complement;
}

// Lock-free insert-if-absent. Chains only grow by prepending during an
// epoch (no removal, no rehash), which buys three properties at once:
//  * a failed CAS can re-check exactly the delta `[new head, old head)`
//    for a duplicate instead of the whole chain,
//  * bucket heads never revisit an old value, so the CAS cannot ABA,
//  * readers walking a chain can never step onto a freed slot.
// A thread that loses the publication race for an equal key resets its
// speculative slot and keeps it in the thread-local recycle list — the
// pool does not leak, and `end_shared` returns unused slots to the
// free list as usual.
NodeIndex BddManager::make_node_lockfree(ThreadCtx& tc, Var v, NodeIndex low,
                                         NodeIndex high) {
  Subtable& st = subtables_[v];
  const std::size_t bucket = subtable_bucket(v, low, high);
  std::atomic_ref<NodeIndex> head_ref(st.buckets[bucket]);
  // The acquire pairs with the release CAS of whichever thread
  // published the head node — and, through the release sequence of the
  // RMW chain, with every earlier publication on this bucket — so the
  // plain reads of node fields (and of the segment pointers behind
  // `node_at`) below are ordered after their initializing writes.
  const NodeIndex head = head_ref.load(std::memory_order_acquire);
  for (NodeIndex n = head; n != kInvalidIndex;
       n = std::atomic_ref<NodeIndex>(node_at(n).next)
               .load(std::memory_order_acquire)) {
    if (node_at(n).low == low && node_at(n).high == high) {
      ++tc.stats.unique_hits;
      return n;
    }
  }
  // Miss: build the node privately, then publish with a release CAS.
  const NodeIndex n = allocate_node_shared(tc);
  Node& node = node_at(n);
  node.var = v;
  node.low = low;
  node.high = high;
  node.next = head;  // Plain writes: the slot is invisible until the CAS.
  NodeIndex expected = head;
  while (!head_ref.compare_exchange_weak(expected, n,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
    // Other threads prepended; only the delta can hold a duplicate.
    for (NodeIndex m = expected; m != node.next;
         m = std::atomic_ref<NodeIndex>(node_at(m).next)
                 .load(std::memory_order_acquire)) {
      if (node_at(m).low == low && node_at(m).high == high) {
        // Lost the race to an equal node: recycle the speculative slot
        // (fields back to the free-slot shape end_shared asserts).
        node = Node{};
        tc.recycled.push_back(n);
        ++tc.stats.unique_hits;
        return m;
      }
    }
    node.next = expected;  // Still private; retry atop the new head.
  }
  ++tc.stats.unique_misses;
  std::atomic_ref<std::size_t>(st.count)
      .fetch_add(1, std::memory_order_relaxed);
  return n;
}

NodeIndex BddManager::allocate_node() {
  if (covest::FaultInjector::should_fail(
          covest::FaultInjector::Site::kAllocation)) {
    throw covest::ResourceExhausted(
        "BddManager: injected allocation failure",
        static_cast<std::size_t>(allocated()) - 1 - free_count_,
        max_live_nodes_);
  }
  if (free_head_ != kInvalidIndex) {
    const NodeIndex n = free_head_;
    free_head_ = node_at(n).next;
    --free_count_;
    ref_at(n).store(0, std::memory_order_relaxed);
    // A reused slot may carry a stale-but-valid stamp in the exclusive
    // context (shared contexts never survive an epoch, so only the main
    // one can go stale).
    if (n < main_ctx_.stamps.size()) main_ctx_.stamps[n] = NodeStamp{};
    return n;
  }
  const NodeIndex next = allocated();
  if (next >= edge_node(kInvalidIndex)) {
    throw std::length_error("BddManager: node pool exceeds 2^31 slots");
  }
  // The free list is empty here, so occupancy == next - 1 (terminal
  // excluded) and growing by one slot would exceed the budget.
  if (max_live_nodes_ != 0 &&
      static_cast<std::size_t>(next) - 1 >= max_live_nodes_) {
    throw covest::ResourceExhausted("BddManager: node budget exhausted",
                                    static_cast<std::size_t>(next) - 1,
                                    max_live_nodes_);
  }
  ensure_pool(static_cast<std::size_t>(next) + 1);
  allocated_.store(next + 1, std::memory_order_relaxed);
  return next;
}

NodeIndex BddManager::allocate_node_shared(ThreadCtx& tc) {
  if (covest::FaultInjector::should_fail(
          covest::FaultInjector::Site::kAllocation)) {
    // free_count_ needs alloc_mu_ in shared mode; report the pool bound
    // instead (occupancy <= allocated - 1) — close enough for an
    // injected failure's diagnostics.
    throw covest::ResourceExhausted(
        "BddManager: injected allocation failure",
        static_cast<std::size_t>(allocated()) - 1, max_live_nodes_);
  }
  if (!tc.recycled.empty()) {
    const NodeIndex n = tc.recycled.back();
    tc.recycled.pop_back();
    return n;
  }
  if (tc.arena_next != tc.arena_end) {
    // Arena slots are freshly-created segment entries: fields and
    // refcount are already value-initialized, and no other thread can
    // see the slot until it is published under the unique-table stripe
    // lock.
    return tc.arena_next++;
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  // Allocation pressure is the natural place to return quiesced retire
  // batches to the free list (and to ask for a collection when the pool
  // keeps growing anyway): every grower passes through here.
  drain_retire_batches_locked(/*only_expired=*/true);
  if (free_head_ == kInvalidIndex) {
    const std::size_t occupancy =
        static_cast<std::size_t>(allocated()) - 1 - free_count_;
    if (occupancy >= gc_threshold_) {
      gc_requested_.store(true, std::memory_order_seq_cst);
    }
  }
  // Prefer recycling a batch off the free list (slots GC'd before this
  // shared epoch or reclaimed after a grace period): repeated shared
  // epochs must not grow the pool while reusable capacity exists.
  // Free-list slots are unreachable from any live edge, so no thread's
  // stamps can refer to them — except the persistent exclusive context,
  // which is reset per slot here (under alloc_mu_; the owner thread is
  // parked while shards run).
  while (tc.recycled.size() < kArenaBlock && free_head_ != kInvalidIndex) {
    const NodeIndex n = free_head_;
    free_head_ = node_at(n).next;
    --free_count_;
    ref_at(n).store(0, std::memory_order_relaxed);
    if (n < main_ctx_.stamps.size()) main_ctx_.stamps[n] = NodeStamp{};
    tc.recycled.push_back(n);
  }
  if (!tc.recycled.empty()) {
    const NodeIndex n = tc.recycled.back();
    tc.recycled.pop_back();
    return n;
  }
  const NodeIndex base = allocated();
  if (base >= edge_node(kInvalidIndex) - kArenaBlock) {
    throw std::length_error("BddManager: node pool exceeds 2^31 slots");
  }
  // Budget check at arena-refill granularity (under alloc_mu_, so
  // free_count_ is stable): the free list was just drained, so a fresh
  // block only happens when occupancy is at the pool bound.
  if (max_live_nodes_ != 0 &&
      static_cast<std::size_t>(base) - 1 - free_count_ >= max_live_nodes_) {
    throw covest::ResourceExhausted(
        "BddManager: node budget exhausted",
        static_cast<std::size_t>(base) - 1 - free_count_, max_live_nodes_);
  }
  ensure_pool(static_cast<std::size_t>(base) + kArenaBlock);
  allocated_.store(base + kArenaBlock, std::memory_order_relaxed);
  tc.arena_next = base;
  tc.arena_end = base + kArenaBlock;
  return tc.arena_next++;
}

void BddManager::rehash_subtable(Var v, std::size_t new_buckets) {
  Subtable& st = subtables_[v];
  std::vector<NodeIndex> old = std::move(st.buckets);
  st.buckets.assign(new_buckets, kInvalidIndex);
  for (NodeIndex head : old) {
    for (NodeIndex n = head; n != kInvalidIndex;) {
      const NodeIndex next = node_at(n).next;
      const std::size_t b = subtable_bucket(v, node_at(n).low, node_at(n).high);
      node_at(n).next = st.buckets[b];
      st.buckets[b] = n;
      n = next;
    }
  }
}

void BddManager::maybe_resize_subtable(Var v) {
  // Exclusive mode and striped shared mode (under the stripe lock)
  // only; a lock-free epoch pre-sizes instead (see begin_shared).
  Subtable& st = subtables_[v];
  if (st.count < st.buckets.size()) return;
  rehash_subtable(v, st.buckets.size() * 2);
}

void BddManager::require_exclusive(const char* what) const {
  if (shared_mode_) {
    throw std::logic_error(std::string("BddManager::") + what +
                           ": forbidden while shared (sharded) mode is on — "
                           "call end_shared first");
  }
}

void BddManager::subtable_insert(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, node_at(n).low, node_at(n).high);
  node_at(n).next = st.buckets[b];
  st.buckets[b] = n;
  ++st.count;
}

void BddManager::subtable_remove(Var v, NodeIndex n) {
  Subtable& st = subtables_[v];
  const std::size_t b = subtable_bucket(v, node_at(n).low, node_at(n).high);
  NodeIndex* link = &st.buckets[b];
  while (*link != kInvalidIndex) {
    if (*link == n) {
      *link = node_at(n).next;
      --st.count;
      return;
    }
    link = &node_at(*link).next;
  }
  assert(false && "node missing from its subtable");
}

bool BddManager::check_canonical() const {
  const NodeIndex end = allocated();
  for (NodeIndex n = 1; n < end; ++n) {
    if (node_at(n).var == kInvalidVar) continue;  // Free-list/arena slot.
    if (edge_is_complemented(node_at(n).high)) return false;
    if (node_at(n).low == node_at(n).high) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Reference counting and garbage collection
// ---------------------------------------------------------------------------

std::uint32_t BddManager::next_generation(ThreadCtx& tc) {
  // Stamp arrays are sized lazily: any slot reachable from a published
  // edge was allocated before the edge became visible to this thread.
  tc.stamps.resize(allocated());
  if (++tc.generation == 0) {
    // Wrapped after ~2^32 traversals: clear every stamp once and restart.
    for (NodeStamp& s : tc.stamps) s.gen = 0;
    for (std::uint32_t& g : tc.var_gen) g = 0;
    tc.generation = 1;
  }
  return tc.generation;
}

std::size_t BddManager::mark_reachable(ThreadCtx& tc, NodeIndex e) {
  // Iterative DFS on the reusable stack; BDDs for deep fixpoints can
  // exceed the call stack. Visited state is the generation stamp, so no
  // per-call bitmap is allocated or cleared.
  std::size_t newly_marked = 0;
  tc.work_stack.clear();
  tc.work_stack.push_back(edge_node(e));
  while (!tc.work_stack.empty()) {
    const NodeIndex slot = tc.work_stack.back();
    tc.work_stack.pop_back();
    if (slot == 0 || tc.stamps[slot].gen == tc.generation) continue;
    tc.stamps[slot].gen = tc.generation;
    ++newly_marked;
    tc.work_stack.push_back(edge_node(node_at(slot).low));
    tc.work_stack.push_back(edge_node(node_at(slot).high));
  }
  return newly_marked;
}

std::size_t BddManager::gc() {
  if (shared_mode_) {
    ThreadCtx& tc = shard_ctx();
    if (tc.op_depth.load(std::memory_order_relaxed) != 0) {
      throw std::logic_error(
          "BddManager::gc: forbidden from inside a shared-mode operation");
    }
    return shared_collect(tc, /*force=*/true);
  }
  ThreadCtx& tc = ctx();
  assert(!tc.in_operation && "GC must not run inside a BDD operation");
  next_generation(tc);
  const NodeIndex end = allocated();
  for (NodeIndex n = 1; n < end; ++n) {
    if (ref_at(n).load(std::memory_order_relaxed) > 0 &&
        node_at(n).var != kInvalidVar) {
      mark_reachable(tc, n);
    }
  }

  std::size_t freed = 0;
  for (NodeIndex n = 1; n < end; ++n) {
    if (tc.stamps[n].gen == tc.generation || node_at(n).var == kInvalidVar) {
      continue;
    }
    subtable_remove(node_at(n).var, n);
    node_at(n).var = kInvalidVar;
    node_at(n).low = kInvalidIndex;
    node_at(n).high = kInvalidIndex;
    node_at(n).next = free_head_;
    free_head_ = n;
    ++free_count_;
    ++freed;
  }
  clear_cache();
  ++stats_.gc_runs;
  return freed;
}

void BddManager::maybe_gc() {
  // Shared-mode collections are driven by the allocation path
  // (gc_requested_) and serviced through the operation gates; this
  // threshold check is the exclusive-mode analogue only.
  if (shared_mode_) return;
  if (main_ctx_.in_operation) return;
  const std::size_t live_estimate = allocated() - 1 - free_count_;
  if (live_estimate < gc_threshold_) return;
  gc();
  const std::size_t live = allocated() - 1 - free_count_;
  if (live * 4 > gc_threshold_ * 3) gc_threshold_ *= 2;
}

void BddManager::set_max_live_nodes(std::size_t budget) {
  require_exclusive("set_max_live_nodes");
  max_live_nodes_ = budget;
}

void BddManager::clear_cache() {
  if (shared_mode_) {
    // O(1) and safe concurrently: in-flight lookups that read the old
    // epoch may still hit pre-bump entries, but every memoized edge
    // stays valid — nothing is freed until a grace period elapses. The
    // wrap-to-zero normalization needs the physical sweep, which is
    // only legal while everyone is paused; shared_collect owns that
    // case, so here we just skip the bump past zero.
    std::uint32_t e = cache_epoch_.load(std::memory_order_relaxed);
    while (!cache_epoch_.compare_exchange_weak(e, e + 1 == 0 ? 1 : e + 1,
                                               std::memory_order_relaxed)) {
    }
    if (e + 1 == 0) {
      // Wrapped without a paused sweep: pre-wrap stamps could alias once
      // the counter climbs back. Ask for a collection — its paused window
      // physically clears both caches (cache_wrap_dirty_ makes it sweep
      // even though the counter never rests at zero).
      cache_wrap_dirty_.store(true, std::memory_order_relaxed);
      gc_requested_.store(true, std::memory_order_seq_cst);
    }
    return;
  }
  // O(1): entries from older epochs simply stop matching. Only the
  // (once per ~2^32 clears) epoch wrap pays for a physical sweep — of
  // BOTH caches: a surviving lock-free entry stamped with a pre-wrap
  // epoch would otherwise false-hit when the counter climbs back to it.
  const std::uint32_t next =
      cache_epoch_.load(std::memory_order_relaxed) + 1;
  cache_epoch_.store(next, std::memory_order_relaxed);
  if (next == 0) {
    for (CacheEntry& e : cache_) e.epoch = 0;
    lf_cache_.reset();  // Reallocated (zeroed) at the next begin_shared.
    lf_cache_size_ = 0;
    lf_cache_mask_ = 0;
    cache_epoch_.store(1, std::memory_order_relaxed);
  }
  // The hit-rate counters describe one cache epoch; restart them with it.
  stats_.cache_hits = 0;
  stats_.cache_lookups = 0;
}

std::size_t BddManager::live_node_count() {
  require_exclusive("live_node_count");
  ThreadCtx& tc = ctx();
  next_generation(tc);
  std::size_t live = 0;
  const NodeIndex end = allocated();
  for (NodeIndex n = 1; n < end; ++n) {
    if (ref_at(n).load(std::memory_order_relaxed) > 0 &&
        node_at(n).var != kInvalidVar) {
      live += mark_reachable(tc, n);
    }
  }
  stats_.live_nodes = live;
  stats_.allocated_nodes = allocated() - 1;
  if (live > stats_.peak_live_nodes) stats_.peak_live_nodes = live;
  return live;
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

bool BddManager::cache_find(std::uint32_t op, NodeIndex a, NodeIndex b,
                            NodeIndex c, NodeIndex* out) {
  const std::uint64_t hash = hash_cache_key(op, a, b, c);
  if (!shared_mode_) {
    ++stats_.cache_lookups;
    const CacheEntry& e = cache_[hash & cache_mask_];
    if (e.epoch == cache_epoch_.load(std::memory_order_relaxed) &&
        e.op == op && e.a == a && e.b == b && e.c == c) {
      ++stats_.cache_hits;
      *out = e.result;
      return true;
    }
    return false;
  }
  ThreadCtx& tc = shard_ctx();
  ++tc.stats.cache_lookups;

  if (table_mode_ == TableMode::kLockFree) {
    // Wait-free read: one stamped snapshot, no retry. The acquire load
    // of an even stamp pairs with the storing thread's release of that
    // stamp, ordering the payload reads — and the node initializations
    // behind `result` — after their writes. A torn snapshot (odd
    // stamp, or the stamp moved under the payload) is simply a miss;
    // the caller recomputes and arrives at the same canonical edge.
    LfCacheEntry& e = lf_cache_[hash & lf_cache_mask_];
    const std::uint32_t s1 = e.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return false;
    const std::uint64_t ab = e.key_ab.load(std::memory_order_relaxed);
    const std::uint64_t cop = e.key_cop.load(std::memory_order_relaxed);
    const std::uint64_t er = e.epoch_result.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.seq.load(std::memory_order_relaxed) != s1) return false;
    // Snapshot is consistent: now (and only now) validate the full key,
    // so an overwrite race can cost a recomputation but never alias.
    if (ab != ((static_cast<std::uint64_t>(a) << 32) | b) ||
        cop != ((static_cast<std::uint64_t>(c) << 32) | op) ||
        (er >> 32) != cache_epoch_.load(std::memory_order_relaxed)) {
      return false;
    }
    *out = static_cast<NodeIndex>(er);
    ++tc.stats.cache_hits;
    return true;
  }

  // Striped mode: the stripe lock also publishes the nodes behind
  // `e.result` — whoever stored the entry held this mutex after
  // creating those nodes.
  const std::size_t slot = hash & cache_mask_;
  std::lock_guard<std::mutex> lock(cache_mu_[slot % kCacheStripes]);
  const CacheEntry& e = cache_[slot];
  if (e.epoch == cache_epoch_.load(std::memory_order_relaxed) &&
      e.op == op && e.a == a && e.b == b && e.c == c) {
    ++tc.stats.cache_hits;
    *out = e.result;
    return true;
  }
  return false;
}

void BddManager::maybe_grow_cache() {
  if (++cache_stores_since_grow_ <= cache_.size() / 4 ||
      cache_.size() >= cache_max_size_) {
    return;
  }
  // Store pressure builds towards eviction thrashing: quadruple early
  // (eviction-induced recomputation costs far more than zeroing the
  // larger table). The cache is lossy, so dropping the old contents is
  // sound — most were about to be evicted anyway.
  cache_.assign(std::min(cache_.size() * 4, cache_max_size_), CacheEntry{});
  cache_mask_ = cache_.size() - 1;
  cache_stores_since_grow_ = 0;
}

void BddManager::cache_store(std::uint32_t op, NodeIndex a, NodeIndex b,
                             NodeIndex c, NodeIndex result) {
  const std::uint64_t hash = hash_cache_key(op, a, b, c);
  if (!shared_mode_) {
    maybe_grow_cache();
    CacheEntry& e = cache_[hash & cache_mask_];
    e.op = op;
    e.a = a;
    e.b = b;
    e.c = c;
    e.result = result;
    e.epoch = cache_epoch_.load(std::memory_order_relaxed);
    return;
  }

  if (table_mode_ == TableMode::kLockFree) {
    // Wait-free write: claim the entry with one CAS to an odd stamp; a
    // writer that loses (or finds another writer mid-store) just skips
    // — the cache is lossy by contract, and the value being dropped is
    // a memo, not state. The acquire on the claiming CAS keeps the
    // payload stores after it; the release of the even stamp publishes
    // them (and the nodes behind `result`) to any reader that acquires
    // the stamp.
    LfCacheEntry& e = lf_cache_[hash & lf_cache_mask_];
    std::uint32_t s = e.seq.load(std::memory_order_relaxed);
    if ((s & 1u) != 0) return;
    if (!e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    // Release fence before the payload stores: a reader whose relaxed
    // payload loads observe any of these writes synchronizes (via its
    // own acquire fence) with this fence, and therefore sees the odd
    // stamp written above — so its stamp re-check fails and the torn
    // snapshot is discarded. Without this edge, weakly-ordered hardware
    // could make a payload store visible before the claim, letting a
    // reader pair an old key with a new result.
    std::atomic_thread_fence(std::memory_order_release);
    e.key_ab.store((static_cast<std::uint64_t>(a) << 32) | b,
                   std::memory_order_relaxed);
    e.key_cop.store((static_cast<std::uint64_t>(c) << 32) | op,
                    std::memory_order_relaxed);
    e.epoch_result.store(
        (static_cast<std::uint64_t>(
             cache_epoch_.load(std::memory_order_relaxed))
         << 32) |
            result,
        std::memory_order_relaxed);
    e.seq.store(s + 2, std::memory_order_release);
    return;
  }

  // Striped mode: the table never grows (growth would move entries under
  // concurrent readers); entries race only for their stripe lock.
  const std::size_t slot = hash & cache_mask_;
  std::lock_guard<std::mutex> lock(cache_mu_[slot % kCacheStripes]);
  CacheEntry& e = cache_[slot];
  e.op = op;
  e.a = a;
  e.b = b;
  e.c = c;
  e.result = result;
  e.epoch = cache_epoch_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shared-mode reclamation (epoch-based deferred free)
// ---------------------------------------------------------------------------
//
// Protocol summary (details on each member in bdd.h):
//   * Every public operation passes through an OpGate. On the 0 -> 1
//     op_depth transition the gate announces the thread's view of
//     reclaim_epoch_, parks while a collection pause is up, and
//     volunteers to collect when the allocation path asked for it.
//   * The elected collector raises pause_requested_, waits for every
//     other registered thread to reach op_depth == 0, and then has the
//     structure to itself: it marks from refcounted roots, unlinks dead
//     nodes from their subtables, and moves their slots onto a retire
//     batch stamped with the current reclamation epoch.
//   * Retired slots return to the free list only after a grace period:
//     batch E is freeable once every non-passive registered thread has
//     announced seen_epoch >= E + 1 (its announcement's seq_cst read of
//     reclaim_epoch_ synchronizes with the collector's bump, so the
//     sweep's writes are visible and the thread demonstrably started
//     its current window after the collection).
//   * All handshake accesses are seq_cst operations on atomics — no
//     fences over plain memory — for the same TSan-friendliness reasons
//     as the task deques (see parallel.h).

void BddManager::shared_op_enter(ThreadCtx& tc) {
  for (;;) {
    const std::uint32_t depth =
        tc.op_depth.fetch_add(1, std::memory_order_seq_cst);
    if (depth != 0) return;  // Nested call: the outer gate handled entry.
    if (!pause_requested_.load(std::memory_order_seq_cst)) {
      // Dekker handshake: in the seq_cst total order, either this
      // thread's fetch_add precedes the collector's quiescence scan
      // (the collector waits for our decrement) or the collector's
      // pause store precedes our load (we would have read true and
      // parked). Reading false here therefore proves any collection
      // that proceeds will have observed this whole gate — we never
      // run an operation concurrently with a sweep.
      tc.seen_epoch.store(reclaim_epoch_.load(std::memory_order_seq_cst),
                          std::memory_order_seq_cst);
      tc.passive.store(false, std::memory_order_relaxed);
      if (gc_requested_.load(std::memory_order_seq_cst)) {
        // Volunteer: step back to the boundary, collect, re-enter.
        tc.op_depth.fetch_sub(1, std::memory_order_seq_cst);
        shared_collect(tc, /*force=*/false);
        continue;
      }
      return;
    }
    tc.op_depth.fetch_sub(1, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [this] {
      return !pause_requested_.load(std::memory_order_seq_cst);
    });
  }
}

std::size_t BddManager::shared_collect(ThreadCtx& tc, bool force) {
  assert(tc.op_depth.load(std::memory_order_relaxed) == 0 &&
         "collections run at operation boundaries only");
  std::unique_lock<std::mutex> gc_lock(gc_mu_, std::defer_lock);
  if (force) {
    gc_lock.lock();
  } else {
    if (!gc_lock.try_lock()) return 0;  // Another collector is at it.
    // Re-check under the lock: the previous holder may have serviced
    // the request we volunteered for.
    if (!gc_requested_.load(std::memory_order_seq_cst)) return 0;
  }

  // Stop the world at operation boundaries. Threads registering while
  // the pause is up are caught by re-scanning under shard_reg_mu_ each
  // iteration; a fresh thread's first gate parks before any traversal.
  pause_requested_.store(true, std::memory_order_seq_cst);
  for (;;) {
    bool quiet = true;
    {
      std::lock_guard<std::mutex> reg(shard_reg_mu_);
      for (const std::unique_ptr<ThreadCtx>& other : shard_ctxs_) {
        if (other.get() == &tc) continue;
        if (other->op_depth.load(std::memory_order_seq_cst) != 0) {
          quiet = false;
          break;
        }
      }
    }
    if (quiet) break;
    std::this_thread::yield();
  }

  // Exclusive access from here to the pause release. Mark from
  // refcounted roots, exactly like exclusive gc(): any node a handle
  // can reach is live; parallel-apply helpers hold no roots between
  // tasks (fully-strict joins end inside the client's gate).
  next_generation(tc);
  std::size_t live = 0;
  const NodeIndex end = allocated();
  for (NodeIndex n = 1; n < end; ++n) {
    if (ref_at(n).load(std::memory_order_relaxed) > 0 &&
        node_at(n).var != kInvalidVar) {
      live += mark_reachable(tc, n);
    }
  }

  // Sweep: unlink dead nodes and retire their slots. subtable_remove
  // must run before the field reset — the bucket is recomputed from
  // low/high. Resetting `next` after removal is safe: the node is no
  // longer linked, and later removals walk the repaired chain.
  RetireBatch batch;
  for (NodeIndex n = 1; n < end; ++n) {
    if (tc.stamps[n].gen == tc.generation || node_at(n).var == kInvalidVar) {
      continue;
    }
    subtable_remove(node_at(n).var, n);
    node_at(n).var = kInvalidVar;
    node_at(n).low = kInvalidIndex;
    node_at(n).high = kInvalidIndex;
    node_at(n).next = kInvalidIndex;
    ref_at(n).store(0, std::memory_order_relaxed);
    batch.slots.push_back(n);
  }

  // Invalidate memoized results that may point at retired nodes: O(1)
  // epoch bump, with the (once per ~2^32) wrap paying for a physical
  // sweep of both caches — legal here precisely because everyone is
  // paused.
  std::uint32_t next_epoch = cache_epoch_.load(std::memory_order_relaxed) + 1;
  if (next_epoch == 0 || cache_wrap_dirty_.load(std::memory_order_relaxed)) {
    for (CacheEntry& e : cache_) e.epoch = 0;
    for (std::size_t i = 0; i < lf_cache_size_; ++i) {
      lf_cache_[i].seq.store(0, std::memory_order_relaxed);
      lf_cache_[i].key_ab.store(0, std::memory_order_relaxed);
      lf_cache_[i].key_cop.store(0, std::memory_order_relaxed);
      lf_cache_[i].epoch_result.store(0, std::memory_order_relaxed);
    }
    cache_wrap_dirty_.store(false, std::memory_order_relaxed);
    next_epoch = 1;
  }
  cache_epoch_.store(next_epoch, std::memory_order_relaxed);

  // Every thread is at a boundary, so batches from previous collections
  // have trivially satisfied their grace period — drain them all, then
  // enqueue the fresh batch (it still waits out a full grace period
  // through the allocation path's expired-only drains).
  const std::size_t retired = batch.slots.size();
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    drain_retire_batches_locked(/*only_expired=*/false);
    if (!batch.slots.empty()) {
      batch.epoch = reclaim_epoch_.load(std::memory_order_relaxed);
      retire_batches_.push_back(std::move(batch));
    }
  }

  reclaim_epoch_.fetch_add(1, std::memory_order_seq_cst);
  tc.seen_epoch.store(reclaim_epoch_.load(std::memory_order_seq_cst),
                      std::memory_order_seq_cst);
  gc_requested_.store(false, std::memory_order_seq_cst);

  stats_.retired_nodes += retired;
  ++stats_.shared_gc_runs;
  stats_.live_nodes = live;
  stats_.allocated_nodes = allocated() - 1;
  if (live > stats_.peak_live_nodes) stats_.peak_live_nodes = live;

  // Clear-then-notify under pause_mu_, so a thread that just checked
  // the predicate cannot fall asleep across the notification.
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    pause_requested_.store(false, std::memory_order_seq_cst);
  }
  pause_cv_.notify_all();
  return retired;
}

void BddManager::drain_retire_batches_locked(bool only_expired) {
  // Caller holds alloc_mu_. Lock order: alloc_mu_ before shard_reg_mu_
  // (matches the collector, which takes neither while holding the other
  // except through this function).
  if (retire_batches_.empty()) return;
  std::uint64_t safe_epoch = std::numeric_limits<std::uint64_t>::max();
  if (only_expired) {
    std::lock_guard<std::mutex> reg(shard_reg_mu_);
    for (const std::unique_ptr<ThreadCtx>& tcp : shard_ctxs_) {
      if (tcp->passive.load(std::memory_order_seq_cst)) continue;
      safe_epoch = std::min(
          safe_epoch, tcp->seen_epoch.load(std::memory_order_seq_cst));
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < retire_batches_.size(); ++i) {
    RetireBatch& b = retire_batches_[i];
    if (only_expired && b.epoch + 1 > safe_epoch) {
      // Compact in place; a kept leading batch must not be
      // move-assigned onto itself (self-move empties the vector and
      // silently leaks every slot in it).
      if (kept != i) retire_batches_[kept] = std::move(b);
      ++kept;
      continue;
    }
    stats_.reclaimed_nodes += b.slots.size();
    for (NodeIndex n : b.slots) {
      node_at(n).next = free_head_;
      free_head_ = n;
      ++free_count_;
    }
  }
  retire_batches_.resize(kept);
}

void BddManager::quiescent_point() {
  if (!shared_mode_) return;
  ThreadCtx& tc = shard_ctx();
  if (tc.op_depth.load(std::memory_order_relaxed) != 0) return;
  if (pause_requested_.load(std::memory_order_seq_cst)) {
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [this] {
      return !pause_requested_.load(std::memory_order_seq_cst);
    });
  }
  // Announce after any park so the freshest epoch is published; a
  // stale-but-current announcement only delays reclamation, never
  // unblocks it early.
  tc.seen_epoch.store(reclaim_epoch_.load(std::memory_order_seq_cst),
                      std::memory_order_seq_cst);
  if (gc_requested_.load(std::memory_order_seq_cst)) {
    shared_collect(tc, /*force=*/false);
  }
}

void BddManager::mark_thread_passive() {
  if (!shared_mode_) return;
  shard_ctx().passive.store(true, std::memory_order_seq_cst);
}

void BddManager::set_gc_threshold(std::size_t threshold) {
  require_exclusive("set_gc_threshold");
  gc_threshold_ = threshold == 0 ? 1 : threshold;
}

}  // namespace covest::bdd
