// Model counting, minterm extraction and structural inspection.
//
// The coverage metric of the paper (Definition 4) is a ratio of two model
// counts over the state variables: |covered| / |reachable|.
//
// All traversals here follow the generation-stamp protocol (see bdd.h):
// visited state and memos live in flat per-thread context arrays, so
// none of these paths allocates per call once warmed up — and in shared
// mode every registered thread traverses in its own context, with no
// cross-thread coordination regardless of the epoch's TableMode.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "bdd/bdd.h"

namespace covest::bdd {

// Satisfying-count recursion over a plain node slot. The memoized value
// counts assignments to the variables at the node's rank and below
// (rank = position of the node's level among the counted variables), so
// counts accumulate bottom-up starting at 1 — exact up to 2^53 like a
// classic count-based package, with no underflow for deep sparse
// functions (a pure fraction formulation would hit subnormals past
// ~1074 levels). Complement edges are resolved at each child: the
// negated count over k remaining variables is 2^k minus the plain one.
double BddManager::sat_count_rec(ThreadCtx& tc, NodeIndex slot) {
  if (tc.stamps[slot].gen == tc.generation) return tc.count_memo[slot];
  const std::uint32_t rank = tc.level_rank[var_to_level_[node_at(slot).var]];
  const std::uint32_t total = tc.level_rank[tc.level_rank.size() - 1];
  const auto child_count = [&](NodeIndex e) -> double {
    const NodeIndex child = edge_node(e);
    const std::uint32_t child_rank =
        child == 0 ? total : tc.level_rank[var_to_level_[node_at(child).var]];
    double n = child == 0 ? 1.0 : sat_count_rec(tc, child);
    if (edge_is_complemented(e)) {
      n = std::exp2(static_cast<double>(total - child_rank)) - n;
    }
    // Skip the scaling for an unsatisfiable branch: with >1024 counted
    // variables below, the gap factor overflows to inf and 0 * inf is
    // NaN, not the 0 the sum needs.
    if (n == 0.0) return 0.0;
    // Variables skipped between this node and the child branch freely.
    return n * std::exp2(static_cast<double>(child_rank - rank - 1));
  };
  const double result =
      child_count(node_at(slot).low) + child_count(node_at(slot).high);
  tc.stamps[slot].gen = tc.generation;
  tc.count_memo[slot] = result;
  return result;
}

double BddManager::sat_count(const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this);
  // Inspection entries never trigger exclusive GC (allow_gc=false keeps
  // historical collection timing), but in shared mode the gate is what
  // keeps a concurrent collection from sweeping under the traversal.
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
#ifndef NDEBUG
  for (Var v : support(f)) {
    assert(std::find(over.begin(), over.end(), v) != over.end() &&
           "sat_count: support must be contained in the counted variables");
  }
#endif
  const double total_vars = static_cast<double>(over.size());
  if (f.is_false()) return 0.0;
  if (f.is_true()) return std::exp2(total_vars);

  ThreadCtx& tc = ctx();
  // Rank the counted variables by level in the reusable per-thread
  // buffers (level_rank's last entry holds the total, for terminals).
  tc.level_scratch.clear();
  for (Var v : over) tc.level_scratch.push_back(var_to_level_[v]);
  std::sort(tc.level_scratch.begin(), tc.level_scratch.end());
  tc.level_rank.assign(level_to_var_.size() + 1, 0xffffffffu);
  for (std::size_t i = 0; i < tc.level_scratch.size(); ++i) {
    tc.level_rank[tc.level_scratch[i]] = static_cast<std::uint32_t>(i);
  }
  tc.level_rank[tc.level_rank.size() - 1] =
      static_cast<std::uint32_t>(tc.level_scratch.size());

  next_generation(tc);  // Also sizes tc.stamps to the allocated pool.
  if (tc.count_memo.size() < tc.stamps.size()) {
    tc.count_memo.resize(tc.stamps.size());
  }
  const NodeIndex root = edge_node(f.index());
  const std::uint32_t root_rank =
      tc.level_rank[var_to_level_[node_at(root).var]];
  double n = sat_count_rec(tc, root);
  if (edge_is_complemented(f.index())) {
    n = std::exp2(total_vars - static_cast<double>(root_rank)) - n;
  }
  // Variables ranked above the root branch freely.
  return n * std::exp2(static_cast<double>(root_rank));
}

std::vector<std::pair<Var, bool>> BddManager::sat_one(const Bdd& f) {
  assert(f.manager() == this);
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  std::vector<std::pair<Var, bool>> result;
  // Walk with the complement parity folded into the edge, so terminal
  // tests against the canonical constants stay exact.
  NodeIndex e = f.index();
  while (!edge_is_terminal(e)) {
    if (node_low(e) != kFalseIndex) {
      result.emplace_back(node_var(e), false);
      e = node_low(e);
    } else {
      result.emplace_back(node_var(e), true);
      e = node_high(e);
    }
  }
  if (e == kFalseIndex) return {};
  return result;
}

std::vector<std::pair<Var, bool>> BddManager::pick_minterm(
    const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this && !f.is_false());
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  // Walk one satisfying path, then default every unconstrained variable
  // to false so the result is a deterministic full assignment.
  std::vector<std::pair<Var, bool>> path = sat_one(f);
  std::vector<char> seen_value(num_vars(), -1);
  for (const auto& [v, val] : path) seen_value[v] = val ? 1 : 0;

  std::vector<std::pair<Var, bool>> result;
  result.reserve(over.size());
  for (Var v : over) {
    result.emplace_back(v, seen_value[v] == 1);
  }
  return result;
}

std::vector<std::vector<std::pair<Var, bool>>> BddManager::enumerate_minterms(
    const Bdd& f, const std::vector<Var>& over, std::size_t limit) {
  assert(f.manager() == this);
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  std::vector<Var> by_level = over;
  std::sort(by_level.begin(), by_level.end(), [this](Var a, Var b) {
    return var_to_level_[a] < var_to_level_[b];
  });

  std::vector<std::vector<std::pair<Var, bool>>> out;
  std::vector<std::pair<Var, bool>> current;

  // DFS over the variable list; gap variables (not in f's support on this
  // path) branch both ways, so enumeration is exhaustive over `over`.
  // `n` is a semantic edge: the complement parity of the path so far is
  // already folded in, so the constant tests are exact.
  auto rec = [&](auto&& self, NodeIndex n, std::size_t i) -> bool {
    if (n == kFalseIndex) return true;
    if (i == by_level.size()) {
      assert(n == kTrueIndex);
      out.push_back(current);
      return out.size() < limit;
    }
    const Var v = by_level[i];
    const bool at_var = !edge_is_terminal(n) && node_var(n) == v;
    for (bool value : {false, true}) {
      const NodeIndex child =
          at_var ? (value ? node_high(n) : node_low(n)) : n;
      current.emplace_back(v, value);
      const bool keep_going = self(self, child, i + 1);
      current.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  rec(rec, f.index(), 0);
  return out;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  assert(f.manager() == this);
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  // Accumulate the complement parity along the path; the terminal node
  // denotes TRUE, so the final answer is the parity's inverse.
  NodeIndex e = f.index();
  bool complemented = false;
  while (!edge_is_terminal(e)) {
    complemented ^= edge_is_complemented(e);
    const Node& n = node_at(edge_node(e));
    assert(n.var < assignment.size());
    e = assignment[n.var] ? n.high : n.low;
  }
  complemented ^= edge_is_complemented(e);
  return !complemented;
}

std::vector<Var> BddManager::support(const Bdd& f) {
  assert(f.manager() == this);
  ThreadCtx& tc = ctx();
  OpGate gate(*this, tc, /*allow_gc=*/false);
  // Stamp the support variables in the ctx's var_gen; no per-call
  // bitmaps.
  tc.var_gen.resize(num_vars(), 0);
  next_generation(tc);
  tc.work_stack.clear();
  tc.work_stack.push_back(edge_node(f.index()));
  while (!tc.work_stack.empty()) {
    const NodeIndex slot = tc.work_stack.back();
    tc.work_stack.pop_back();
    if (slot == 0 || tc.stamps[slot].gen == tc.generation) continue;
    tc.stamps[slot].gen = tc.generation;
    tc.var_gen[node_at(slot).var] = tc.generation;
    tc.work_stack.push_back(edge_node(node_at(slot).low));
    tc.work_stack.push_back(edge_node(node_at(slot).high));
  }
  std::vector<Var> result;
  for (Var v = 0; v < tc.var_gen.size(); ++v) {
    if (tc.var_gen[v] == tc.generation) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::node_count(const Bdd& f) {
  assert(f.manager() == this);
  ThreadCtx& tc = ctx();
  OpGate gate(*this, tc, /*allow_gc=*/false);
  next_generation(tc);
  return mark_reachable(tc, f.index());
}

std::size_t BddManager::node_count(const std::vector<Bdd>& fs) {
  ThreadCtx& tc = ctx();
  OpGate gate(*this, tc, /*allow_gc=*/false);
  next_generation(tc);
  std::size_t count = 0;
  for (const Bdd& f : fs) {
    assert(f.manager() == this);
    count += mark_reachable(tc, f.index());
  }
  return count;
}

}  // namespace covest::bdd
