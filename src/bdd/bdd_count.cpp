// Model counting, minterm extraction and structural inspection.
//
// The coverage metric of the paper (Definition 4) is a ratio of two model
// counts over the state variables: |covered| / |reachable|.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "bdd/bdd.h"

namespace covest::bdd {

double BddManager::sat_count_rec(NodeIndex n,
                                 const std::vector<unsigned>& level_pos,
                                 std::unordered_map<NodeIndex, double>& memo) {
  if (n == kFalseIndex) return 0.0;
  if (n == kTrueIndex) return 1.0;
  auto it = memo.find(n);
  if (it != memo.end()) return it->second;

  const unsigned pos = level_pos[level(n)];
  const auto child_pos = [&](NodeIndex c) -> unsigned {
    return c <= kTrueIndex ? static_cast<unsigned>(level_pos.back())
                           : level_pos[level(c)];
  };
  const double low = sat_count_rec(nodes_[n].low, level_pos, memo) *
                     std::exp2(child_pos(nodes_[n].low) - pos - 1);
  const double high = sat_count_rec(nodes_[n].high, level_pos, memo) *
                      std::exp2(child_pos(nodes_[n].high) - pos - 1);
  const double result = low + high;
  memo.emplace(n, result);
  return result;
}

double BddManager::sat_count(const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this);
  // level_pos[level] = rank of that level among the counted variables;
  // the last element holds the total rank used for terminals.
  std::vector<unsigned> levels;
  levels.reserve(over.size());
  for (Var v : over) levels.push_back(var_to_level_[v]);
  std::sort(levels.begin(), levels.end());

  std::vector<unsigned> level_pos(level_to_var_.size() + 1, 0xffffffffu);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    level_pos[levels[i]] = static_cast<unsigned>(i);
  }
  level_pos.back() = static_cast<unsigned>(levels.size());

#ifndef NDEBUG
  for (Var v : support(f)) {
    assert(level_pos[var_to_level_[v]] != 0xffffffffu &&
           "sat_count: support must be contained in the counted variables");
  }
#endif

  if (f.is_false()) return 0.0;
  if (f.is_true()) return std::exp2(static_cast<double>(levels.size()));

  std::unordered_map<NodeIndex, double> memo;
  const double below = sat_count_rec(f.index(), level_pos, memo);
  return below * std::exp2(level_pos[level(f.index())]);
}

std::vector<std::pair<Var, bool>> BddManager::sat_one(const Bdd& f) {
  assert(f.manager() == this);
  std::vector<std::pair<Var, bool>> result;
  NodeIndex n = f.index();
  while (n > kTrueIndex) {
    if (nodes_[n].low != kFalseIndex) {
      result.emplace_back(nodes_[n].var, false);
      n = nodes_[n].low;
    } else {
      result.emplace_back(nodes_[n].var, true);
      n = nodes_[n].high;
    }
  }
  if (n == kFalseIndex) return {};
  return result;
}

std::vector<std::pair<Var, bool>> BddManager::pick_minterm(
    const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this && !f.is_false());
  // Walk one satisfying path, then default every unconstrained variable
  // to false so the result is a deterministic full assignment.
  std::vector<std::pair<Var, bool>> path = sat_one(f);
  std::vector<char> seen_value(num_vars(), -1);
  for (const auto& [v, val] : path) seen_value[v] = val ? 1 : 0;

  std::vector<std::pair<Var, bool>> result;
  result.reserve(over.size());
  for (Var v : over) {
    result.emplace_back(v, seen_value[v] == 1);
  }
  return result;
}

std::vector<std::vector<std::pair<Var, bool>>> BddManager::enumerate_minterms(
    const Bdd& f, const std::vector<Var>& over, std::size_t limit) {
  assert(f.manager() == this);
  std::vector<Var> by_level = over;
  std::sort(by_level.begin(), by_level.end(), [this](Var a, Var b) {
    return var_to_level_[a] < var_to_level_[b];
  });

  std::vector<std::vector<std::pair<Var, bool>>> out;
  std::vector<std::pair<Var, bool>> current;

  // DFS over the variable list; gap variables (not in f's support on this
  // path) branch both ways, so enumeration is exhaustive over `over`.
  auto rec = [&](auto&& self, NodeIndex n, std::size_t i) -> bool {
    if (n == kFalseIndex) return true;
    if (i == by_level.size()) {
      assert(n == kTrueIndex);
      out.push_back(current);
      return out.size() < limit;
    }
    const Var v = by_level[i];
    const bool at_var = n > kTrueIndex && nodes_[n].var == v;
    for (bool value : {false, true}) {
      const NodeIndex child =
          at_var ? (value ? nodes_[n].high : nodes_[n].low) : n;
      current.emplace_back(v, value);
      const bool keep_going = self(self, child, i + 1);
      current.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  rec(rec, f.index(), 0);
  return out;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  assert(f.manager() == this);
  NodeIndex n = f.index();
  while (n > kTrueIndex) {
    const Var v = nodes_[n].var;
    assert(v < assignment.size());
    n = assignment[v] ? nodes_[n].high : nodes_[n].low;
  }
  return n == kTrueIndex;
}

std::vector<Var> BddManager::support(const Bdd& f) {
  assert(f.manager() == this);
  std::vector<bool> in_support(num_vars(), false);
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrueIndex || visited[n]) continue;
    visited[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<Var> result;
  for (Var v = 0; v < in_support.size(); ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::node_count(const Bdd& f) {
  return node_count(std::vector<Bdd>{f});
}

std::size_t BddManager::node_count(const std::vector<Bdd>& fs) {
  std::vector<bool> visited(nodes_.size(), false);
  std::size_t count = 0;
  std::vector<NodeIndex> stack;
  for (const Bdd& f : fs) {
    assert(f.manager() == this);
    stack.push_back(f.index());
  }
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrueIndex || visited[n]) continue;
    visited[n] = true;
    ++count;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return count;
}

}  // namespace covest::bdd
