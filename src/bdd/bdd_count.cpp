// Model counting, minterm extraction and structural inspection.
//
// The coverage metric of the paper (Definition 4) is a ratio of two model
// counts over the state variables: |covered| / |reachable|.
//
// All traversals here follow the generation-stamp protocol (see bdd.h):
// visited state and memos live in the nodes themselves or in flat
// manager-owned side arrays, so none of these paths allocates per call.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "bdd/bdd.h"

namespace covest::bdd {

// Satisfying-count recursion over a plain node slot. The memoized value
// counts assignments to the variables at the node's rank and below
// (rank = position of the node's level among the counted variables), so
// counts accumulate bottom-up starting at 1 — exact up to 2^53 like a
// classic count-based package, with no underflow for deep sparse
// functions (a pure fraction formulation would hit subnormals past
// ~1074 levels). Complement edges are resolved at each child: the
// negated count over k remaining variables is 2^k minus the plain one.
double BddManager::sat_count_rec(NodeIndex slot) {
  if (stamps_[slot].gen == generation_) return count_memo_[slot];
  const std::uint32_t rank = level_rank_[var_to_level_[nodes_[slot].var]];
  const std::uint32_t total = level_rank_[level_rank_.size() - 1];
  const auto child_count = [&](NodeIndex e) -> double {
    const NodeIndex child = edge_node(e);
    const std::uint32_t child_rank =
        child == 0 ? total : level_rank_[var_to_level_[nodes_[child].var]];
    double n = child == 0 ? 1.0 : sat_count_rec(child);
    if (edge_is_complemented(e)) {
      n = std::exp2(static_cast<double>(total - child_rank)) - n;
    }
    // Skip the scaling for an unsatisfiable branch: with >1024 counted
    // variables below, the gap factor overflows to inf and 0 * inf is
    // NaN, not the 0 the sum needs.
    if (n == 0.0) return 0.0;
    // Variables skipped between this node and the child branch freely.
    return n * std::exp2(static_cast<double>(child_rank - rank - 1));
  };
  const double result =
      child_count(nodes_[slot].low) + child_count(nodes_[slot].high);
  stamps_[slot].gen = generation_;
  count_memo_[slot] = result;
  return result;
}

double BddManager::sat_count(const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this);
#ifndef NDEBUG
  for (Var v : support(f)) {
    assert(std::find(over.begin(), over.end(), v) != over.end() &&
           "sat_count: support must be contained in the counted variables");
  }
#endif
  const double total_vars = static_cast<double>(over.size());
  if (f.is_false()) return 0.0;
  if (f.is_true()) return std::exp2(total_vars);

  // Rank the counted variables by level in the reusable manager buffers
  // (level_rank_'s last entry holds the total, used for terminals).
  level_scratch_.clear();
  for (Var v : over) level_scratch_.push_back(var_to_level_[v]);
  std::sort(level_scratch_.begin(), level_scratch_.end());
  level_rank_.assign(level_to_var_.size() + 1, 0xffffffffu);
  for (std::size_t i = 0; i < level_scratch_.size(); ++i) {
    level_rank_[level_scratch_[i]] = static_cast<std::uint32_t>(i);
  }
  level_rank_[level_rank_.size() - 1] =
      static_cast<std::uint32_t>(level_scratch_.size());

  if (count_memo_.size() < nodes_.size()) count_memo_.resize(nodes_.size());
  next_generation();
  const NodeIndex root = edge_node(f.index());
  const std::uint32_t root_rank = level_rank_[var_to_level_[nodes_[root].var]];
  double n = sat_count_rec(root);
  if (edge_is_complemented(f.index())) {
    n = std::exp2(total_vars - static_cast<double>(root_rank)) - n;
  }
  // Variables ranked above the root branch freely.
  return n * std::exp2(static_cast<double>(root_rank));
}

std::vector<std::pair<Var, bool>> BddManager::sat_one(const Bdd& f) {
  assert(f.manager() == this);
  std::vector<std::pair<Var, bool>> result;
  // Walk with the complement parity folded into the edge, so terminal
  // tests against the canonical constants stay exact.
  NodeIndex e = f.index();
  while (!edge_is_terminal(e)) {
    if (node_low(e) != kFalseIndex) {
      result.emplace_back(node_var(e), false);
      e = node_low(e);
    } else {
      result.emplace_back(node_var(e), true);
      e = node_high(e);
    }
  }
  if (e == kFalseIndex) return {};
  return result;
}

std::vector<std::pair<Var, bool>> BddManager::pick_minterm(
    const Bdd& f, const std::vector<Var>& over) {
  assert(f.manager() == this && !f.is_false());
  // Walk one satisfying path, then default every unconstrained variable
  // to false so the result is a deterministic full assignment.
  std::vector<std::pair<Var, bool>> path = sat_one(f);
  std::vector<char> seen_value(num_vars(), -1);
  for (const auto& [v, val] : path) seen_value[v] = val ? 1 : 0;

  std::vector<std::pair<Var, bool>> result;
  result.reserve(over.size());
  for (Var v : over) {
    result.emplace_back(v, seen_value[v] == 1);
  }
  return result;
}

std::vector<std::vector<std::pair<Var, bool>>> BddManager::enumerate_minterms(
    const Bdd& f, const std::vector<Var>& over, std::size_t limit) {
  assert(f.manager() == this);
  std::vector<Var> by_level = over;
  std::sort(by_level.begin(), by_level.end(), [this](Var a, Var b) {
    return var_to_level_[a] < var_to_level_[b];
  });

  std::vector<std::vector<std::pair<Var, bool>>> out;
  std::vector<std::pair<Var, bool>> current;

  // DFS over the variable list; gap variables (not in f's support on this
  // path) branch both ways, so enumeration is exhaustive over `over`.
  // `n` is a semantic edge: the complement parity of the path so far is
  // already folded in, so the constant tests are exact.
  auto rec = [&](auto&& self, NodeIndex n, std::size_t i) -> bool {
    if (n == kFalseIndex) return true;
    if (i == by_level.size()) {
      assert(n == kTrueIndex);
      out.push_back(current);
      return out.size() < limit;
    }
    const Var v = by_level[i];
    const bool at_var = !edge_is_terminal(n) && node_var(n) == v;
    for (bool value : {false, true}) {
      const NodeIndex child =
          at_var ? (value ? node_high(n) : node_low(n)) : n;
      current.emplace_back(v, value);
      const bool keep_going = self(self, child, i + 1);
      current.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  rec(rec, f.index(), 0);
  return out;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  assert(f.manager() == this);
  // Accumulate the complement parity along the path; the terminal node
  // denotes TRUE, so the final answer is the parity's inverse.
  NodeIndex e = f.index();
  bool complemented = false;
  while (!edge_is_terminal(e)) {
    complemented ^= edge_is_complemented(e);
    const Node& n = nodes_[edge_node(e)];
    assert(n.var < assignment.size());
    e = assignment[n.var] ? n.high : n.low;
  }
  complemented ^= edge_is_complemented(e);
  return !complemented;
}

std::vector<Var> BddManager::support(const Bdd& f) {
  assert(f.manager() == this);
  // Stamp the support variables in var_gen_; no per-call bitmaps.
  next_generation();
  work_stack_.clear();
  work_stack_.push_back(edge_node(f.index()));
  while (!work_stack_.empty()) {
    const NodeIndex slot = work_stack_.back();
    work_stack_.pop_back();
    if (slot == 0 || stamps_[slot].gen == generation_) continue;
    stamps_[slot].gen = generation_;
    var_gen_[nodes_[slot].var] = generation_;
    work_stack_.push_back(edge_node(nodes_[slot].low));
    work_stack_.push_back(edge_node(nodes_[slot].high));
  }
  std::vector<Var> result;
  for (Var v = 0; v < var_gen_.size(); ++v) {
    if (var_gen_[v] == generation_) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::node_count(const Bdd& f) {
  assert(f.manager() == this);
  next_generation();
  return mark_reachable(f.index());
}

std::size_t BddManager::node_count(const std::vector<Bdd>& fs) {
  next_generation();
  std::size_t count = 0;
  for (const Bdd& f : fs) {
    assert(f.manager() == this);
    count += mark_reachable(f.index());
  }
  return count;
}

}  // namespace covest::bdd
