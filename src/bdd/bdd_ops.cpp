// Recursive BDD algorithms: ITE, binary apply, quantification, relational
// product, composition and renaming.
#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/bdd.h"

namespace covest::bdd {

namespace {

// Marks the manager as busy for the duration of a (possibly re-entrant)
// public operation; garbage collection only triggers between operations,
// so unreferenced intermediate results created during recursion are safe.
class OperationGuard {
 public:
  OperationGuard(bool& flag) : flag_(flag), was_(flag) { flag_ = true; }
  ~OperationGuard() { flag_ = was_; }

 private:
  bool& flag_;
  bool was_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ITE
// ---------------------------------------------------------------------------

NodeIndex BddManager::ite_rec(NodeIndex f, NodeIndex g, NodeIndex h) {
  if (f == kTrueIndex) return g;
  if (f == kFalseIndex) return h;
  if (g == h) return g;
  if (g == kTrueIndex && h == kFalseIndex) return f;

  NodeIndex cached;
  if (cache_find(kOpIte, f, g, h, &cached)) return cached;

  const unsigned lf = level(f), lg = level(g), lh = level(h);
  const unsigned top = std::min(lf, std::min(lg, lh));
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? nodes_[f].low : f;
  const NodeIndex f1 = lf == top ? nodes_[f].high : f;
  const NodeIndex g0 = lg == top ? nodes_[g].low : g;
  const NodeIndex g1 = lg == top ? nodes_[g].high : g;
  const NodeIndex h0 = lh == top ? nodes_[h].low : h;
  const NodeIndex h1 = lh == top ? nodes_[h].high : h;

  const NodeIndex low = ite_rec(f0, g0, h0);
  const NodeIndex high = ite_rec(f1, g1, h1);
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpIte, f, g, h, result);
  return result;
}

Bdd BddManager::apply_ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, ite_rec(f.index(), g.index(), h.index()));
}

// ---------------------------------------------------------------------------
// Binary apply and negation
// ---------------------------------------------------------------------------

NodeIndex BddManager::apply_rec(std::uint32_t op, NodeIndex f, NodeIndex g) {
  // Terminal rules per operator.
  switch (op) {
    case kOpAnd:
      if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
      if (f == kTrueIndex) return g;
      if (g == kTrueIndex) return f;
      if (f == g) return f;
      break;
    case kOpOr:
      if (f == kTrueIndex || g == kTrueIndex) return kTrueIndex;
      if (f == kFalseIndex) return g;
      if (g == kFalseIndex) return f;
      if (f == g) return f;
      break;
    case kOpXor:
      if (f == kFalseIndex) return g;
      if (g == kFalseIndex) return f;
      if (f == g) return kFalseIndex;
      if (f == kTrueIndex) return not_rec(g);
      if (g == kTrueIndex) return not_rec(f);
      break;
    default:
      assert(false && "unknown binary op");
  }

  // Commutative ops: normalize operand order to double cache hits.
  if (f > g) std::swap(f, g);

  NodeIndex cached;
  if (cache_find(op, f, g, 0, &cached)) return cached;

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? nodes_[f].low : f;
  const NodeIndex f1 = lf == top ? nodes_[f].high : f;
  const NodeIndex g0 = lg == top ? nodes_[g].low : g;
  const NodeIndex g1 = lg == top ? nodes_[g].high : g;

  const NodeIndex low = apply_rec(op, f0, g0);
  const NodeIndex high = apply_rec(op, f1, g1);
  const NodeIndex result = make_node(v, low, high);
  cache_store(op, f, g, 0, result);
  return result;
}

NodeIndex BddManager::not_rec(NodeIndex f) {
  if (f == kFalseIndex) return kTrueIndex;
  if (f == kTrueIndex) return kFalseIndex;

  NodeIndex cached;
  if (cache_find(kOpNot, f, 0, 0, &cached)) return cached;

  const NodeIndex low = not_rec(nodes_[f].low);
  const NodeIndex high = not_rec(nodes_[f].high);
  const NodeIndex result = make_node(nodes_[f].var, low, high);
  cache_store(kOpNot, f, 0, 0, result);
  return result;
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, apply_rec(kOpAnd, f.index(), g.index()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, apply_rec(kOpOr, f.index(), g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, apply_rec(kOpXor, f.index(), g.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  assert(f.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, not_rec(f.index()));
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

NodeIndex BddManager::quant_rec(std::uint32_t op, NodeIndex f, NodeIndex cube) {
  if (f <= kTrueIndex) return f;
  // Skip quantified variables above f's top variable: quantifying a
  // variable not in the support is the identity.
  unsigned lf = level(f);
  while (cube > kTrueIndex && level(cube) < lf) cube = nodes_[cube].high;
  if (cube <= kTrueIndex) return f;

  NodeIndex cached;
  if (cache_find(op, f, cube, 0, &cached)) return cached;

  NodeIndex result;
  if (level(cube) == lf) {
    const NodeIndex low = quant_rec(op, nodes_[f].low, nodes_[cube].high);
    const NodeIndex high = quant_rec(op, nodes_[f].high, nodes_[cube].high);
    result = op == kOpExists ? apply_rec(kOpOr, low, high)
                             : apply_rec(kOpAnd, low, high);
  } else {
    const NodeIndex low = quant_rec(op, nodes_[f].low, cube);
    const NodeIndex high = quant_rec(op, nodes_[f].high, cube);
    result = make_node(nodes_[f].var, low, high);
  }
  cache_store(op, f, cube, 0, result);
  return result;
}

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  assert(f.manager() == this && cube.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, quant_rec(kOpExists, f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  assert(f.manager() == this && cube.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, quant_rec(kOpForall, f.index(), cube.index()));
}

// ---------------------------------------------------------------------------
// Relational product: exists(cube, f & g) in a single recursion
// ---------------------------------------------------------------------------

NodeIndex BddManager::and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube) {
  if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
  if (f == kTrueIndex && g == kTrueIndex) return kTrueIndex;
  if (cube <= kTrueIndex) return apply_rec(kOpAnd, f, g);

  if (f > g) std::swap(f, g);  // AND is commutative.

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  while (cube > kTrueIndex && level(cube) < top) cube = nodes_[cube].high;
  if (cube <= kTrueIndex) return apply_rec(kOpAnd, f, g);

  NodeIndex cached;
  if (cache_find(kOpAndExists, f, g, cube, &cached)) return cached;

  const Var v = level_to_var_[top];
  const NodeIndex f0 = lf == top ? nodes_[f].low : f;
  const NodeIndex f1 = lf == top ? nodes_[f].high : f;
  const NodeIndex g0 = lg == top ? nodes_[g].low : g;
  const NodeIndex g1 = lg == top ? nodes_[g].high : g;

  NodeIndex result;
  if (level(cube) == top) {
    const NodeIndex low = and_exists_rec(f0, g0, nodes_[cube].high);
    if (low == kTrueIndex) {
      result = kTrueIndex;  // Early termination: OR with anything is true.
    } else {
      const NodeIndex high = and_exists_rec(f1, g1, nodes_[cube].high);
      result = apply_rec(kOpOr, low, high);
    }
  } else {
    const NodeIndex low = and_exists_rec(f0, g0, cube);
    const NodeIndex high = and_exists_rec(f1, g1, cube);
    result = make_node(v, low, high);
  }
  cache_store(kOpAndExists, f, g, cube, result);
  return result;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  assert(f.manager() == this && g.manager() == this && cube.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, and_exists_rec(f.index(), g.index(), cube.index()));
}

// ---------------------------------------------------------------------------
// Composition, cofactor and renaming
// ---------------------------------------------------------------------------

NodeIndex BddManager::compose_rec(NodeIndex f, Var v, NodeIndex g,
                                  unsigned v_level) {
  if (f <= kTrueIndex || level(f) > v_level) return f;

  NodeIndex cached;
  if (cache_find(kOpCompose, f, g, v, &cached)) return cached;

  NodeIndex result;
  if (nodes_[f].var == v) {
    // Children of f cannot contain v; splice g in with one ITE.
    result = ite_rec(g, nodes_[f].high, nodes_[f].low);
  } else {
    const NodeIndex low = compose_rec(nodes_[f].low, v, g, v_level);
    const NodeIndex high = compose_rec(nodes_[f].high, v, g, v_level);
    // Recombine with ITE on f's root variable: g's support may reach
    // above f's root, so make_node alone would violate the ordering.
    const NodeIndex root = make_node(nodes_[f].var, kFalseIndex, kTrueIndex);
    result = ite_rec(root, high, low);
  }
  cache_store(kOpCompose, f, g, v, result);
  return result;
}

Bdd BddManager::compose(const Bdd& f, Var v, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, compose_rec(f.index(), v, g.index(), var_to_level_[v]));
}

Bdd BddManager::cofactor(const Bdd& f, Var v, bool value) {
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, compose_rec(f.index(), v,
                               value ? kTrueIndex : kFalseIndex,
                               var_to_level_[v]));
}

NodeIndex BddManager::simplify_rec(NodeIndex f, NodeIndex care) {
  if (f <= kTrueIndex || care == kTrueIndex) return f;
  assert(care != kFalseIndex && "simplify: empty care set");

  NodeIndex cached;
  if (cache_find(kOpSimplify, f, care, 0, &cached)) return cached;

  const unsigned lf = level(f), lc = level(care);
  NodeIndex result;
  if (lc < lf) {
    // The care set branches on a variable f does not mention: both care
    // cofactors constrain f, so merge them existentially.
    result = simplify_rec(f, apply_rec(kOpOr, nodes_[care].low,
                                       nodes_[care].high));
  } else {
    const NodeIndex c0 = lc == lf ? nodes_[care].low : care;
    const NodeIndex c1 = lc == lf ? nodes_[care].high : care;
    if (c0 == kFalseIndex) {
      result = simplify_rec(nodes_[f].high, c1);
    } else if (c1 == kFalseIndex) {
      result = simplify_rec(nodes_[f].low, c0);
    } else {
      const NodeIndex low = simplify_rec(nodes_[f].low, c0);
      const NodeIndex high = simplify_rec(nodes_[f].high, c1);
      result = make_node(nodes_[f].var, low, high);
    }
  }
  cache_store(kOpSimplify, f, care, 0, result);
  return result;
}

Bdd BddManager::simplify(const Bdd& f, const Bdd& care) {
  assert(f.manager() == this && care.manager() == this);
  assert(!care.is_false());
  maybe_gc();
  OperationGuard guard(in_operation_);
  return Bdd(this, simplify_rec(f.index(), care.index()));
}

NodeIndex BddManager::permute_rec(
    NodeIndex f, const std::vector<Var>& perm,
    std::unordered_map<NodeIndex, NodeIndex>& memo) {
  if (f <= kTrueIndex) return f;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;

  const NodeIndex low = permute_rec(nodes_[f].low, perm, memo);
  const NodeIndex high = permute_rec(nodes_[f].high, perm, memo);
  const Var old_var = nodes_[f].var;
  const Var new_var = old_var < perm.size() ? perm[old_var] : old_var;
  // ITE keeps the result canonical even if the renaming moves the
  // variable across levels of the children.
  const NodeIndex root = make_node(new_var, kFalseIndex, kTrueIndex);
  const NodeIndex result = ite_rec(root, high, low);
  memo.emplace(f, result);
  return result;
}

Bdd BddManager::permute(const Bdd& f, const std::vector<Var>& perm) {
  assert(f.manager() == this);
  maybe_gc();
  OperationGuard guard(in_operation_);
  std::unordered_map<NodeIndex, NodeIndex> memo;
  return Bdd(this, permute_rec(f.index(), perm, memo));
}

}  // namespace covest::bdd
