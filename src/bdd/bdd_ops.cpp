// Recursive BDD algorithms: ITE, AND/XOR apply, quantification, relational
// product, composition and renaming — all complement-edge aware.
//
// Complement-bit canonicalization before every cache lookup:
//   * AND orders its (commutative) operands by edge value; OR is derived
//     via De Morgan (`or(f,g) = !and(!f,!g)`) so both share one cache.
//   * XOR strips the complement bits of both operands and re-applies the
//     parity to the result, collapsing xor/xnor into one cache line.
//   * ITE forces a plain `f` (ite(!f,g,h) = ite(f,h,g)) and a plain `g`
//     (ite(f,!g,h) = !ite(f,g,!h)), and routes constant-`g`/`h` triples
//     into the AND/XOR caches.
//   * exists/simplify/compose commute with complement on `f` where valid,
//     and forall is derived (`forall(f,c) = !exists(!f,c)`), so the
//     kOpExists cache serves both quantifiers.
//
// The recursions call cache_find/cache_store and make_node through the
// mode-dispatched paths in bdd.cpp: unsynchronized in exclusive mode,
// lock-free CAS/seqlock or striped mutexes in shared mode. Because the
// shared-mode computed cache is *lossy* (a racing writer may drop or
// overwrite an entry), every recursion below must be — and is — correct
// with a cache that forgets arbitrarily: a miss recomputes and lands on
// the same canonical edge.
#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/bdd.h"

namespace covest::bdd {

// ---------------------------------------------------------------------------
// Binary apply: AND (OR via De Morgan) and XOR
// ---------------------------------------------------------------------------

NodeIndex BddManager::and_rec(NodeIndex f, NodeIndex g) {
  if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
  if (f == kTrueIndex) return g;
  if (g == kTrueIndex) return f;
  if (f == g) return f;
  if (f == edge_not(g)) return kFalseIndex;

  // Commutative: normalize operand order to double cache hits.
  if (f > g) std::swap(f, g);

  NodeIndex cached;
  if (cache_find(kOpAnd, f, g, 0, &cached)) return cached;

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  const NodeIndex low = and_rec(f0, g0);
  const NodeIndex high = and_rec(f1, g1);
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpAnd, f, g, 0, result);
  return result;
}

NodeIndex BddManager::xor_rec(NodeIndex f, NodeIndex g) {
  // xor commutes with complement on either side; strip both bits and
  // re-apply the parity so xor and xnor share cache entries and nodes.
  NodeIndex parity = 0;
  parity ^= f & kComplementBit;
  parity ^= g & kComplementBit;
  f = edge_node(f);
  g = edge_node(g);

  if (f == g) return kFalseIndex ^ parity;
  if (f == kTrueIndex) return edge_not(g) ^ parity;
  if (g == kTrueIndex) return edge_not(f) ^ parity;

  if (f > g) std::swap(f, g);

  NodeIndex cached;
  if (cache_find(kOpXor, f, g, 0, &cached)) return cached ^ parity;

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  const NodeIndex low = xor_rec(f0, g0);
  const NodeIndex high = xor_rec(f1, g1);
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpXor, f, g, 0, result);
  return result ^ parity;
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, par_enabled() ? par_and_rec(f.index(), g.index())
                                 : and_rec(f.index(), g.index()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, par_enabled() ? par_or_rec(f.index(), g.index())
                                 : or_rec(f.index(), g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, par_enabled() ? par_xor_rec(f.index(), g.index())
                                 : xor_rec(f.index(), g.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  assert(f.manager() == this);
  // O(1): no recursion, no allocation, no cache traffic.
  ++hot_stats().o1_negations;
  return Bdd(this, edge_not(f.index()));
}

// ---------------------------------------------------------------------------
// ITE
// ---------------------------------------------------------------------------

NodeIndex BddManager::ite_rec(NodeIndex f, NodeIndex g, NodeIndex h) {
  if (f == kTrueIndex) return g;
  if (f == kFalseIndex) return h;
  if (g == h) return g;
  if (g == kTrueIndex && h == kFalseIndex) return f;
  if (g == kFalseIndex && h == kTrueIndex) return edge_not(f);

  // Collapse branches that repeat (a polarity of) the condition.
  if (g == f) g = kTrueIndex;
  if (g == edge_not(f)) g = kFalseIndex;
  if (h == f) h = kFalseIndex;
  if (h == edge_not(f)) h = kTrueIndex;
  if (g == h) return g;
  if (g == kTrueIndex && h == kFalseIndex) return f;
  if (g == kFalseIndex && h == kTrueIndex) return edge_not(f);

  // Constant-branch triples are plain connectives; route them into the
  // AND/XOR caches instead of burning separate ITE entries.
  if (g == kTrueIndex) return or_rec(f, h);
  if (g == kFalseIndex) return and_rec(edge_not(f), h);
  if (h == kFalseIndex) return and_rec(f, g);
  if (h == kTrueIndex) return edge_not(and_rec(f, edge_not(g)));
  if (g == edge_not(h)) return edge_not(xor_rec(f, g));

  // Canonicalize complement bits: plain f (swap branches), plain g
  // (complement the whole triple).
  if (edge_is_complemented(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  NodeIndex out_parity = 0;
  if (edge_is_complemented(g)) {
    g = edge_not(g);
    h = edge_not(h);
    out_parity = kComplementBit;
  }

  NodeIndex cached;
  if (cache_find(kOpIte, f, g, h, &cached)) return cached ^ out_parity;

  const unsigned lf = level(f), lg = level(g), lh = level(h);
  const unsigned top = std::min(lf, std::min(lg, lh));
  const Var v = level_to_var_[top];

  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;
  const NodeIndex h0 = lh == top ? node_low(h) : h;
  const NodeIndex h1 = lh == top ? node_high(h) : h;

  const NodeIndex low = ite_rec(f0, g0, h0);
  const NodeIndex high = ite_rec(f1, g1, h1);
  const NodeIndex result = make_node(v, low, high);
  cache_store(kOpIte, f, g, h, result);
  return result ^ out_parity;
}

Bdd BddManager::apply_ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, par_enabled()
                       ? par_ite_rec(f.index(), g.index(), h.index())
                       : ite_rec(f.index(), g.index(), h.index()));
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

NodeIndex BddManager::exists_rec(NodeIndex f, NodeIndex cube) {
  if (edge_is_terminal(f)) return f;
  // Skip quantified variables above f's top variable: quantifying a
  // variable not in the support is the identity.
  const unsigned lf = level(f);
  while (!edge_is_terminal(cube) && level(cube) < lf) {
    cube = node_at(edge_node(cube)).high;  // Positive cube: high is plain.
  }
  if (edge_is_terminal(cube)) return f;

  NodeIndex cached;
  if (cache_find(kOpExists, f, cube, 0, &cached)) return cached;

  const NodeIndex f0 = node_low(f);
  const NodeIndex f1 = node_high(f);
  NodeIndex result;
  if (level(cube) == lf) {
    const NodeIndex rest = node_at(edge_node(cube)).high;
    const NodeIndex low = exists_rec(f0, rest);
    if (low == kTrueIndex) {
      result = kTrueIndex;  // Early termination: OR with anything is true.
    } else {
      const NodeIndex high = exists_rec(f1, rest);
      result = or_rec(low, high);
    }
  } else {
    const NodeIndex low = exists_rec(f0, cube);
    const NodeIndex high = exists_rec(f1, cube);
    result = make_node(node_var(f), low, high);
  }
  cache_store(kOpExists, f, cube, 0, result);
  return result;
}

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  assert(f.manager() == this && cube.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, par_enabled() ? par_exists_rec(f.index(), cube.index())
                                 : exists_rec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  assert(f.manager() == this && cube.manager() == this);
  OpGate gate(*this, ctx());
  // Duality: forall(f) = !exists(!f); shares the kOpExists cache.
  return Bdd(this,
             par_enabled()
                 ? edge_not(par_exists_rec(edge_not(f.index()), cube.index()))
                 : edge_not(exists_rec(edge_not(f.index()), cube.index())));
}

// ---------------------------------------------------------------------------
// Relational product: exists(cube, f & g) in a single recursion
// ---------------------------------------------------------------------------

NodeIndex BddManager::and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube) {
  if (f == kFalseIndex || g == kFalseIndex) return kFalseIndex;
  if (f == edge_not(g)) return kFalseIndex;
  if (f == kTrueIndex || f == g) return exists_rec(g, cube);
  if (g == kTrueIndex) return exists_rec(f, cube);
  if (edge_is_terminal(cube)) return and_rec(f, g);

  if (f > g) std::swap(f, g);  // AND is commutative.

  const unsigned lf = level(f), lg = level(g);
  const unsigned top = std::min(lf, lg);
  while (!edge_is_terminal(cube) && level(cube) < top) {
    cube = node_at(edge_node(cube)).high;
  }
  if (edge_is_terminal(cube)) return and_rec(f, g);

  NodeIndex cached;
  if (cache_find(kOpAndExists, f, g, cube, &cached)) return cached;

  const Var v = level_to_var_[top];
  const NodeIndex f0 = lf == top ? node_low(f) : f;
  const NodeIndex f1 = lf == top ? node_high(f) : f;
  const NodeIndex g0 = lg == top ? node_low(g) : g;
  const NodeIndex g1 = lg == top ? node_high(g) : g;

  NodeIndex result;
  if (level(cube) == top) {
    const NodeIndex rest = node_at(edge_node(cube)).high;
    const NodeIndex low = and_exists_rec(f0, g0, rest);
    if (low == kTrueIndex) {
      result = kTrueIndex;  // Early termination: OR with anything is true.
    } else {
      const NodeIndex high = and_exists_rec(f1, g1, rest);
      result = or_rec(low, high);
    }
  } else {
    const NodeIndex low = and_exists_rec(f0, g0, cube);
    const NodeIndex high = and_exists_rec(f1, g1, cube);
    result = make_node(v, low, high);
  }
  cache_store(kOpAndExists, f, g, cube, result);
  return result;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  assert(f.manager() == this && g.manager() == this && cube.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this,
             par_enabled()
                 ? par_and_exists_rec(f.index(), g.index(), cube.index())
                 : and_exists_rec(f.index(), g.index(), cube.index()));
}

// ---------------------------------------------------------------------------
// Composition, cofactor and renaming
// ---------------------------------------------------------------------------

NodeIndex BddManager::compose_rec(NodeIndex f, Var v, NodeIndex g,
                                  unsigned v_level) {
  if (edge_is_terminal(f) || level(f) > v_level) return f;

  // Composition commutes with complement on f; memoize on the plain edge.
  const NodeIndex parity = f & kComplementBit;
  f = edge_node(f);

  NodeIndex cached;
  if (cache_find(kOpCompose, f, g, v, &cached)) return cached ^ parity;

  // Copy fields before recursing: make_node may grow the pool.
  const Var fv = node_at(f).var;
  const NodeIndex flow = node_at(f).low;
  const NodeIndex fhigh = node_at(f).high;

  NodeIndex result;
  if (fv == v) {
    // Children of f cannot contain v; splice g in with one ITE.
    result = ite_rec(g, fhigh, flow);
  } else {
    const NodeIndex low = compose_rec(flow, v, g, v_level);
    const NodeIndex high = compose_rec(fhigh, v, g, v_level);
    // Recombine with ITE on f's root variable: g's support may reach
    // above f's root, so make_node alone would violate the ordering.
    const NodeIndex root = make_node(fv, kFalseIndex, kTrueIndex);
    result = ite_rec(root, high, low);
  }
  cache_store(kOpCompose, f, g, v, result);
  return result ^ parity;
}

Bdd BddManager::compose(const Bdd& f, Var v, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  OpGate gate(*this, ctx());
  return Bdd(this, compose_rec(f.index(), v, g.index(), var_to_level_[v]));
}

Bdd BddManager::cofactor(const Bdd& f, Var v, bool value) {
  OpGate gate(*this, ctx());
  return Bdd(this, compose_rec(f.index(), v,
                               value ? kTrueIndex : kFalseIndex,
                               var_to_level_[v]));
}

NodeIndex BddManager::simplify_rec(NodeIndex f, NodeIndex care) {
  if (edge_is_terminal(f) || care == kTrueIndex) return f;
  assert(care != kFalseIndex && "simplify: empty care set");

  // Restrict commutes with complement on f; memoize on the plain edge.
  const NodeIndex parity = f & kComplementBit;
  f = edge_node(f);

  NodeIndex cached;
  if (cache_find(kOpSimplify, f, care, 0, &cached)) return cached ^ parity;

  const unsigned lf = level(f), lc = level(care);
  NodeIndex result;
  if (lc < lf) {
    // The care set branches on a variable f does not mention: both care
    // cofactors constrain f, so merge them existentially.
    const NodeIndex c0 = node_low(care);
    const NodeIndex c1 = node_high(care);
    result = simplify_rec(f, or_rec(c0, c1));
  } else {
    const NodeIndex c0 = lc == lf ? node_low(care) : care;
    const NodeIndex c1 = lc == lf ? node_high(care) : care;
    const Var fv = node_at(f).var;
    const NodeIndex flow = node_at(f).low;
    const NodeIndex fhigh = node_at(f).high;
    if (c0 == kFalseIndex) {
      result = simplify_rec(fhigh, c1);
    } else if (c1 == kFalseIndex) {
      result = simplify_rec(flow, c0);
    } else {
      const NodeIndex low = simplify_rec(flow, c0);
      const NodeIndex high = simplify_rec(fhigh, c1);
      result = make_node(fv, low, high);
    }
  }
  cache_store(kOpSimplify, f, care, 0, result);
  return result ^ parity;
}

Bdd BddManager::simplify(const Bdd& f, const Bdd& care) {
  assert(f.manager() == this && care.manager() == this);
  assert(!care.is_false());
  OpGate gate(*this, ctx());
  return Bdd(this, simplify_rec(f.index(), care.index()));
}

NodeIndex BddManager::permute_rec(ThreadCtx& tc, NodeIndex f,
                                  const std::vector<Var>& perm) {
  if (edge_is_terminal(f)) return f;

  // Renaming commutes with complement: memoize on the plain node, with
  // the result edge in the slot's scratch word (generation-stamped, in
  // this thread's context — each shared-mode thread memoizes its own
  // traversal).
  const NodeIndex parity = f & kComplementBit;
  const NodeIndex slot = edge_node(f);
  if (tc.stamps[slot].gen == tc.generation) {
    return tc.stamps[slot].scratch ^ parity;
  }

  // Copy fields before recursing: make_node may grow the pool.
  const Var old_var = node_at(slot).var;
  const NodeIndex flow = node_at(slot).low;
  const NodeIndex fhigh = node_at(slot).high;

  const NodeIndex low = permute_rec(tc, flow, perm);
  const NodeIndex high = permute_rec(tc, fhigh, perm);
  const Var new_var = old_var < perm.size() ? perm[old_var] : old_var;
  // ITE keeps the result canonical even if the renaming moves the
  // variable across levels of the children.
  const NodeIndex root = make_node(new_var, kFalseIndex, kTrueIndex);
  const NodeIndex result = ite_rec(root, high, low);
  // make_node/ite_rec may have grown the pool past the stamp array that
  // next_generation sized; the memoized slots themselves are all roots
  // of the *input* BDD, which predates the traversal.
  tc.stamps[slot].gen = tc.generation;
  tc.stamps[slot].scratch = result;
  return result ^ parity;
}

Bdd BddManager::permute(const Bdd& f, const std::vector<Var>& perm) {
  assert(f.manager() == this);
  ThreadCtx& tc = ctx();
  OpGate gate(*this, tc);
  next_generation(tc);
  return Bdd(this, permute_rec(tc, f.index(), perm));
}

}  // namespace covest::bdd
