// Graphviz DOT export for debugging and documentation.
#include <ostream>
#include <unordered_set>
#include <vector>

#include "bdd/bdd.h"

namespace covest::bdd {

void BddManager::write_dot(std::ostream& os, const Bdd& f,
                           const std::string& label) {
  os << "digraph bdd {\n";
  os << "  label=\"" << label << "\";\n";
  os << "  node [shape=circle];\n";
  os << "  t0 [shape=box, label=\"0\"];\n";
  os << "  t1 [shape=box, label=\"1\"];\n";

  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{f.index()};
  auto node_name = [](NodeIndex n) {
    if (n == kFalseIndex) return std::string("t0");
    if (n == kTrueIndex) return std::string("t1");
    return "n" + std::to_string(n);
  };
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrueIndex || visited.count(n) != 0) continue;
    visited.insert(n);
    os << "  " << node_name(n) << " [label=\"" << var_names_[nodes_[n].var]
       << "\"];\n";
    os << "  " << node_name(n) << " -> " << node_name(nodes_[n].low)
       << " [style=dashed];\n";
    os << "  " << node_name(n) << " -> " << node_name(nodes_[n].high)
       << ";\n";
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  os << "}\n";
}

}  // namespace covest::bdd
