// Graphviz DOT export for debugging and documentation.
//
// Complement edges are drawn with an odot arrowhead (the CUDD
// convention); the single terminal renders as the box "1" (named t1).
// A plaintext root stub shows the polarity of the exported edge itself.
#include <ostream>
#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace covest::bdd {

void BddManager::write_dot(std::ostream& os, const Bdd& f,
                           const std::string& label) {
  os << "digraph bdd {\n";
  os << "  label=\"" << label << "\";\n";
  os << "  node [shape=circle];\n";
  os << "  t1 [shape=box, label=\"1\"];\n";

  auto node_name = [](NodeIndex slot) {
    if (slot == 0) return std::string("t1");
    return "n" + std::to_string(slot);
  };
  auto edge_attrs = [](NodeIndex e, bool dashed) {
    std::string attrs;
    if (dashed) attrs += "style=dashed";
    if (edge_is_complemented(e)) {
      if (!attrs.empty()) attrs += ", ";
      attrs += "arrowhead=odot";
    }
    return attrs.empty() ? std::string() : " [" + attrs + "]";
  };

  os << "  root [shape=plaintext, label=\"" << label << "\"];\n";
  os << "  root -> " << node_name(edge_node(f.index()))
     << edge_attrs(f.index(), false) << ";\n";

  // Generation-stamped DFS over plain slots; no per-call visited sets.
  next_generation();
  work_stack_.clear();
  work_stack_.push_back(edge_node(f.index()));
  while (!work_stack_.empty()) {
    const NodeIndex slot = work_stack_.back();
    work_stack_.pop_back();
    if (slot == 0 || stamps_[slot].gen == generation_) continue;
    stamps_[slot].gen = generation_;
    const NodeIndex low = nodes_[slot].low;
    const NodeIndex high = nodes_[slot].high;
    os << "  " << node_name(slot) << " [label=\""
       << var_names_[nodes_[slot].var] << "\"];\n";
    os << "  " << node_name(slot) << " -> " << node_name(edge_node(low))
       << edge_attrs(low, true) << ";\n";
    os << "  " << node_name(slot) << " -> " << node_name(edge_node(high))
       << edge_attrs(high, false) << ";\n";
    work_stack_.push_back(edge_node(low));
    work_stack_.push_back(edge_node(high));
  }
  os << "}\n";
}

}  // namespace covest::bdd
