// Graphviz DOT export for debugging and documentation.
//
// Complement edges are drawn with an odot arrowhead (the CUDD
// convention); the single terminal renders as the box "1" (named t1).
// A plaintext root stub shows the polarity of the exported edge itself.
#include <ostream>
#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace covest::bdd {

void BddManager::write_dot(std::ostream& os, const Bdd& f,
                           const std::string& label) {
  OpGate gate(*this, ctx(), /*allow_gc=*/false);
  os << "digraph bdd {\n";
  os << "  label=\"" << label << "\";\n";
  os << "  node [shape=circle];\n";
  os << "  t1 [shape=box, label=\"1\"];\n";

  auto node_name = [](NodeIndex slot) {
    if (slot == 0) return std::string("t1");
    return "n" + std::to_string(slot);
  };
  auto edge_attrs = [](NodeIndex e, bool dashed) {
    std::string attrs;
    if (dashed) attrs += "style=dashed";
    if (edge_is_complemented(e)) {
      if (!attrs.empty()) attrs += ", ";
      attrs += "arrowhead=odot";
    }
    return attrs.empty() ? std::string() : " [" + attrs + "]";
  };

  os << "  root [shape=plaintext, label=\"" << label << "\"];\n";
  os << "  root -> " << node_name(edge_node(f.index()))
     << edge_attrs(f.index(), false) << ";\n";

  // Generation-stamped DFS over plain slots; no per-call visited sets.
  ThreadCtx& tc = ctx();
  next_generation(tc);
  tc.work_stack.clear();
  tc.work_stack.push_back(edge_node(f.index()));
  while (!tc.work_stack.empty()) {
    const NodeIndex slot = tc.work_stack.back();
    tc.work_stack.pop_back();
    if (slot == 0 || tc.stamps[slot].gen == tc.generation) continue;
    tc.stamps[slot].gen = tc.generation;
    const NodeIndex low = node_at(slot).low;
    const NodeIndex high = node_at(slot).high;
    os << "  " << node_name(slot) << " [label=\""
       << var_names_[node_at(slot).var] << "\"];\n";
    os << "  " << node_name(slot) << " -> " << node_name(edge_node(low))
       << edge_attrs(low, true) << ";\n";
    os << "  " << node_name(slot) << " -> " << node_name(edge_node(high))
       << edge_attrs(high, false) << ";\n";
    tc.work_stack.push_back(edge_node(low));
    tc.work_stack.push_back(edge_node(high));
  }
  os << "}\n";
}

}  // namespace covest::bdd
