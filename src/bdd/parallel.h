// Work-stealing fork/join parallelism *inside* a single BDD operation
// (Sylvan-style), layered on the shared-mode substrate from PR 5: the
// lock-free CAS-chained unique table and the wait-free seqlock computed
// cache already make `make_node` / `cache_find` / `cache_store` safe
// from any registered thread, so a parallel apply needs no new
// synchronization on the node store at all — only a way to distribute
// cofactor subproblems across threads.
//
// The scheduler is a Chase–Lev work-stealing deque per participating
// thread (the C11-atomics formulation from Lê, Pop, Cohen & Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models"):
//
//   * The owner pushes and pops at the bottom end with no atomic RMW on
//     the common path; thieves CAS `top_` to claim the oldest task.
//   * Tasks are *stack-allocated in the forking frame* and joined
//     before that frame returns (fully strict fork/join), so the deque
//     never owns memory and there is no reclamation problem.
//   * The ring is fixed-capacity: when `push` reports full, the forker
//     simply evaluates the subproblem inline — a load-shedding fallback
//     that keeps the deque growth-free.
//
// Determinism: every parallel recursion builds results exclusively
// through `make_node` (canonical, hash-consed) and the lossy computed
// cache, exactly like the serial cores. Canonicity makes the final
// edge independent of the schedule, so parallel results are
// byte-identical to the serial path by construction — the determinism
// battery in tests/parallel_apply_test.cpp pins this at every worker
// count, both table modes, and both granularity-threshold extremes.
//
// Governance: `governor_tick()` runs at every task boundary (steal-side
// and inline-join side). This also closes the PR-6 blind spot where a
// single enormous conjunction could blow past `deadline_ms` unboundedly
// because ticks only fired at fix-point loop heads: with forking
// enabled, a deep apply now observes the deadline mid-operation and
// surfaces the usual structured DeadlineExceeded/ResourceExhausted.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "util/governance.h"

namespace covest::bdd {

/// One forked cofactor subproblem, stack-allocated in the forking frame
/// and joined before the frame returns. `state_` is the only
/// owner/thief rendezvous: the executor (whoever dequeued the task)
/// publishes `result`/`error` and then stores kDone with release; the
/// joiner spins with acquire loads.
struct ParallelTask {
  enum Kind : std::uint8_t { kAnd, kXor, kIte, kExists, kAndExists };
  enum : int { kPending = 0, kDone = 1 };

  ParallelTask(Kind kind, NodeIndex a, NodeIndex b, NodeIndex c) noexcept
      : kind(kind), a(a), b(b), c(c) {}

  Kind kind;
  NodeIndex a;
  NodeIndex b;
  NodeIndex c;
  NodeIndex result = kInvalidIndex;
  std::exception_ptr error;
  std::atomic<int> state{kPending};
};

/// Fixed-capacity Chase–Lev deque. Owner: `push`/`pop` at the bottom;
/// thieves: `steal` at the top. All cells are atomic pointers; tasks
/// outlive their deque residency by the fully-strict join discipline.
class TaskDeque {
 public:
  TaskDeque() : cells_(kCapacity) {}

  // The orderings below are the operation-based (fence-free) spelling
  // of the Lê et al. protocol: the cell store/load pair carries the
  // task-publication happens-before (release -> acquire), and the
  // seq_cst operations on top_/bottom_ provide the store-load ordering
  // the paper gets from explicit seq_cst fences. Equivalent under the
  // C++ memory model, but visible to ThreadSanitizer — TSan does not
  // model std::atomic_thread_fence, so the fence formulation reports
  // false races on every published task field.

  /// Owner-only. False when the ring is full (caller runs the task
  /// inline instead — never blocks, never grows).
  bool push(ParallelTask* task) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    // Publishes the task fields: a thief's acquire load of this cell
    // sees the fully-constructed task.
    cells_[static_cast<std::size_t>(b) & kMask].store(
        task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner-only. Nullptr when empty or when a thief won the race for
  /// the last task — either way the owner's task is (being) stolen.
  ParallelTask* pop() noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst store/load: the decrement must be globally visible before
    // top is read, or a thief and the owner could both claim the last
    // task.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    ParallelTask* task = nullptr;
    if (t <= b) {
      task = cells_[static_cast<std::size_t>(b) & kMask].load(
          std::memory_order_acquire);
      if (t == b) {
        // Last task: race the thieves for it via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Thief-side. Nullptr when empty or the claim CAS lost. A successful
  /// CAS transfers exclusive execution rights: `top_` is monotonic and
  /// a cell is only reused after `top_` has moved past it, so a stale
  /// read can never satisfy the CAS.
  ParallelTask* steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    ParallelTask* task = cells_[static_cast<std::size_t>(t) & kMask].load(
        std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

 private:
  static constexpr std::size_t kCapacity = std::size_t{1} << 13;
  static constexpr std::size_t kMask = kCapacity - 1;

  // Padded apart: bottom_ is owner-hot, top_ is thief-hot.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<ParallelTask*>> cells_;
};

/// The per-epoch scheduler: one deque per participating thread (client
/// shard threads and pool helpers alike, slots claimed lazily on first
/// fork), plus `workers - 1` helper threads that register as shard
/// threads and steal until the epoch ends. Owned by BddManager for the
/// duration of one shared epoch; `begin_shared` starts it after the
/// epoch is open, `end_shared` stops and joins it before teardown.
class ParallelPool {
 public:
  /// `helpers` extra threads (0 for workers=1: the forking machinery
  /// still runs, single-threaded) over `slots` total participants.
  ParallelPool(BddManager& mgr, std::size_t helpers,
               std::uint32_t fork_threshold, std::size_t slots);
  ~ParallelPool();

  ParallelPool(const ParallelPool&) = delete;
  ParallelPool& operator=(const ParallelPool&) = delete;

  /// Spawns the helper threads. Call with the epoch open (helpers
  /// register as shard threads) and the run's governor installed on the
  /// calling thread — helpers adopt it, so deadline expiry latches
  /// across the whole pool.
  void start();

  /// Signals stop and joins every helper. Safe to call repeatedly; the
  /// caller guarantees no client operation is still in flight.
  void stop_and_join();

  std::uint32_t fork_threshold() const noexcept { return fork_threshold_; }

  /// Enqueues `task` on the calling thread's deque. False = ring full;
  /// the caller evaluates inline.
  bool try_fork(ParallelTask& task);

  /// Joins a forked task: if our own pop gets it back (nobody stole
  /// it), evaluates inline on this thread; otherwise helps by stealing
  /// other tasks (bounded depth) until the thief publishes, then
  /// returns the published result or rethrows the published error.
  NodeIndex join(ParallelTask& task);

  /// Join for the unwind path: the sibling subproblem threw while
  /// `task` was outstanding. Reclaims it (own pop) or waits out the
  /// thief, discarding result and error, so the frame-owned task can
  /// leave scope.
  void join_abandoned(ParallelTask& task) noexcept;

 private:
  struct Slot {
    TaskDeque deque;
  };

  std::size_t slot_index();
  ParallelTask* try_steal(std::size_t self) noexcept;
  /// Executes a dequeued task, publishing result/error + kDone.
  void run_task(ParallelTask& task) noexcept;
  NodeIndex evaluate(const ParallelTask& task);
  void wait_for(ParallelTask& task) noexcept;
  void helper_main();

  BddManager& mgr_;
  const std::size_t helpers_;
  const std::uint32_t fork_threshold_;
  const std::uint64_t pool_id_;
  covest::RunGovernor* governor_ = nullptr;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::size_t> next_slot_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace covest::bdd
