// Shared popen/CLI helpers for the integration tests that drive the
// real binaries (engine_cli_test, covest_batch_cli_test): run a shell
// command and capture exit code + output, resolve example-model paths,
// write manifests into the test temp dir, split captured NDJSON into
// lines. Header-only; include from tests/ only.
#pragma once

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace covest::testutil {

struct RunOutcome {
  int exit_code = -1;
  /// Captured stdout of the command. Whether stderr is folded in or
  /// discarded is the caller's choice via the command's redirection
  /// (batch tests keep NDJSON pure with `2>/dev/null`; CLI tests
  /// interleave with `2>&1`).
  std::string output;
};

/// Runs `cmd` through popen and captures stdout until EOF.
inline RunOutcome run_shell(const std::string& cmd) {
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome outcome;
  if (pipe == nullptr) return outcome;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    outcome.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return outcome;
}

#ifdef COVEST_SOURCE_DIR
/// Absolute path of one of the checked-in example models.
inline std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}
#endif

/// Writes a covest_batch manifest of the given lines into the test's
/// temp dir and returns its path.
inline std::string write_manifest(const std::vector<std::string>& lines) {
  const std::string path = ::testing::TempDir() + "covest_batch_manifest.txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "# test manifest\n\n";
  for (const std::string& l : lines) out << l << "\n";
  return path;
}

/// Splits captured output on '\n' (no trailing empty line entry).
inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

}  // namespace covest::testutil
