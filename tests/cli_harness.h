// Shared popen/CLI helpers for the integration tests that drive the
// real binaries (engine_cli_test, covest_batch_cli_test,
// covest_serve_test): run a shell command and capture exit code +
// output, resolve example-model paths, write manifests into the test
// temp dir, split captured NDJSON into lines — plus a fork/exec
// `ServerProcess` and a line-oriented `TcpClient` for the socket tests.
// Header-only; include from tests/ only.
#pragma once

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace covest::testutil {

struct RunOutcome {
  int exit_code = -1;
  /// Captured stdout of the command. Whether stderr is folded in or
  /// discarded is the caller's choice via the command's redirection
  /// (batch tests keep NDJSON pure with `2>/dev/null`; CLI tests
  /// interleave with `2>&1`).
  std::string output;
};

/// Runs `cmd` through popen and captures stdout until EOF.
inline RunOutcome run_shell(const std::string& cmd) {
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome outcome;
  if (pipe == nullptr) return outcome;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    outcome.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return outcome;
}

#ifdef COVEST_SOURCE_DIR
/// Absolute path of one of the checked-in example models.
inline std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}
#endif

/// Writes a covest_batch manifest of the given lines into the test's
/// temp dir and returns its path.
inline std::string write_manifest(const std::vector<std::string>& lines) {
  const std::string path = ::testing::TempDir() + "covest_batch_manifest.txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "# test manifest\n\n";
  for (const std::string& l : lines) out << l << "\n";
  return path;
}

// ---------------------------------------------------------------------------
// Socket harness (covest_serve_test)
// ---------------------------------------------------------------------------

/// A spawned server binary with its stdout piped back. `start` blocks
/// until the first stdout line ("covest_serve listening on HOST:PORT")
/// and parses the bound port, so tests can always use `--port 0`.
class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      wait();
    }
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
  }

  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// Spawns `binary args...`; `env_extra` ("NAME=VALUE") is exported to
  /// the child only. False if the process could not be spawned or never
  /// printed a listening line.
  bool start(const std::string& binary, const std::vector<std::string>& args,
             const std::string& env_extra = std::string()) {
    int out[2];
    if (::pipe(out) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) {
      ::close(out[0]);
      ::close(out[1]);
      return false;
    }
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      if (!env_extra.empty()) {
        const std::size_t eq = env_extra.find('=');
        if (eq != std::string::npos) {
          ::setenv(env_extra.substr(0, eq).c_str(),
                   env_extra.substr(eq + 1).c_str(), 1);
        }
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    stdout_fd_ = out[0];
    std::string line;
    char c = 0;
    while (::read(stdout_fd_, &c, 1) == 1 && c != '\n') line.push_back(c);
    const std::size_t colon = line.find_last_of(':');
    if (colon == std::string::npos) return false;
    port_ = static_cast<std::uint16_t>(
        std::strtoul(line.c_str() + colon + 1, nullptr, 10));
    return port_ != 0;
  }

  std::uint16_t port() const { return port_; }

  void signal(int sig) {
    if (pid_ > 0) ::kill(pid_, sig);
  }

  /// Reaps the child and returns its exit code (-1 on abnormal death).
  int wait() {
    if (pid_ <= 0) return -1;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  ::pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A blocking line-oriented client for the NDJSON wire contract.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient() { close(); }

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close();
      return false;
    }
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ::ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// One received line, '\n' stripped. Empty string with `eof()` set on
  /// disconnect — or on `timeout_ms` of silence (a test failure either
  /// way, never a hang).
  std::string recv_line(int timeout_ms = 60'000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      if (eof_) return std::string();
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) {
        eof_ = true;
        return std::string();
      }
      char chunk[4096];
      const ::ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        eof_ = true;
        return std::string();
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool eof() const { return eof_; }

  void shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  bool eof_ = false;
};

/// Splits captured output on '\n' (no trailing empty line entry).
inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

}  // namespace covest::testutil
