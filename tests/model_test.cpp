// Tests for the model layer: builder, validation, DEFINE expansion and the
// .cov model-file parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "expr/expr_parser.h"
#include "model/model.h"
#include "model/model_parser.h"

namespace covest::model {
namespace {

using expr::Expr;
using expr::Type;

// --------------------------------------------------------------------------
// ModelBuilder
// --------------------------------------------------------------------------

TEST(ModelBuilderTest, BuildsCounterModel) {
  ModelBuilder b("counter");
  auto count = b.state_word("count", 3, 0);
  auto stall = b.input_bool("stall");
  b.next("count", ite(stall, count, count + ModelBuilder::lit(1, 3)));
  const Model m = b.build();

  EXPECT_EQ(m.name(), "counter");
  EXPECT_EQ(m.state_bit_count(), 3u);
  EXPECT_EQ(m.signal("count").kind, SignalKind::kState);
  EXPECT_EQ(m.signal("stall").kind, SignalKind::kInput);
  EXPECT_TRUE(m.signal("count").next.valid());
  EXPECT_TRUE(m.signal("count").init.valid());
  EXPECT_FALSE(m.signal("stall").next.valid());
}

TEST(ModelBuilderTest, RejectsDuplicateSignals) {
  ModelBuilder b;
  b.state_bool("x");
  EXPECT_THROW(b.state_bool("x"), std::runtime_error);
}

TEST(ModelBuilderTest, RejectsNextOnInput) {
  ModelBuilder b;
  auto x = b.input_bool("x");
  EXPECT_THROW(b.next("x", !x), std::runtime_error);
}

TEST(ModelBuilderTest, RejectsTypeMismatchedNext) {
  ModelBuilder b;
  b.state_word("w", 3);
  auto flag = b.input_bool("flag");
  b.next("w", flag);  // bool into a word signal.
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(ModelBuilderTest, RejectsWiderNext) {
  ModelBuilder b;
  b.state_word("w", 2);
  auto in = b.input_word("in", 4);
  b.next("w", in);
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(ModelBuilderTest, DefinesExpandTransitively) {
  ModelBuilder b;
  auto x = b.state_bool("x");
  auto y = b.state_bool("y");
  auto both = b.define("both", x & y);
  b.define("none", !both);
  const Model m = b.build();

  const Expr expanded = m.expand_defines(Expr::var("none"));
  EXPECT_EQ(expr::to_string(expanded), "!(x & y)");
}

TEST(ModelBuilderTest, DefineReferencingUnknownSignalThrows) {
  ModelBuilder b;
  EXPECT_THROW(b.define("bad", Expr::var("ghost")), std::runtime_error);
}

TEST(ModelBuilderTest, StateBitCountSumsWidths) {
  ModelBuilder b;
  b.state_word("a", 4);
  b.state_bool("f");
  b.input_word("in", 7);  // Inputs do not count.
  b.define("d", Expr::var("f"));
  EXPECT_EQ(b.build().state_bit_count(), 5u);
}

// --------------------------------------------------------------------------
// Model-file parser
// --------------------------------------------------------------------------

constexpr const char* kQueueSource = R"(
MODULE queue;
-- pointers and wrap bit
VAR wptr : uint<3>;
VAR rptr : uint<3>;
VAR wrap : bool;
IVAR push : bool;
IVAR stall : bool;
DEFINE equal := wptr == rptr;
DEFINE full := equal & wrap;
INIT wptr == 0;
INIT rptr := 0;
INIT wrap := false;
NEXT wptr := (push & !stall & !full) ? wptr + 1 : wptr;
NEXT wrap := (push & !stall & !full & wptr == 7) ? !wrap : wrap;
FAIRNESS !stall;
DONTCARE wptr > 5;
SPEC AG (full -> AX !push) OBSERVE full;
SPEC AG (wrap | !wrap) OBSERVE wrap, full;
)";

TEST(ModelParserTest, ParsesQueueModel) {
  const Model m = parse_model(kQueueSource);
  EXPECT_EQ(m.name(), "queue");
  EXPECT_EQ(m.state_bit_count(), 7u);
  EXPECT_EQ(m.signal("push").kind, SignalKind::kInput);
  EXPECT_EQ(m.signal("full").kind, SignalKind::kDefine);
  EXPECT_EQ(m.signal("full").type, Type::boolean());
  EXPECT_EQ(m.init_constraints().size(), 1u);
  EXPECT_TRUE(m.signal("rptr").init.valid());
  EXPECT_TRUE(m.signal("wrap").init.valid());
  EXPECT_EQ(m.fairness().size(), 1u);
  EXPECT_EQ(m.dontcares().size(), 1u);
}

TEST(ModelParserTest, SpecsKeepRawTextAndObservedSignals) {
  const Model m = parse_model(kQueueSource);
  ASSERT_EQ(m.specs().size(), 2u);
  EXPECT_EQ(m.specs()[0].observed, (std::vector<std::string>{"full"}));
  EXPECT_EQ(m.specs()[1].observed,
            (std::vector<std::string>{"wrap", "full"}));
  EXPECT_NE(m.specs()[0].ctl_text.find("AG"), std::string::npos);
  EXPECT_NE(m.specs()[0].ctl_text.find("AX"), std::string::npos);
}

TEST(ModelParserTest, RangeTypeSugar) {
  const Model m = parse_model("VAR x : 0..7; VAR y : 0..4;");
  EXPECT_EQ(m.signal("x").type, Type::word(3));
  EXPECT_EQ(m.signal("y").type, Type::word(3));
}

TEST(ModelParserTest, BooleanKeywordAliases) {
  const Model m = parse_model("VAR a : bool; VAR b : boolean;");
  EXPECT_TRUE(m.signal("a").type.is_bool);
  EXPECT_TRUE(m.signal("b").type.is_bool);
}

TEST(ModelParserTest, RejectsUnknownStatement) {
  EXPECT_THROW(parse_model("FROBNICATE x;"), std::runtime_error);
}

TEST(ModelParserTest, RejectsNextForUndeclaredSignal) {
  EXPECT_THROW(parse_model("NEXT ghost := 1;"), std::runtime_error);
}

TEST(ModelParserTest, RejectsIllTypedNext) {
  EXPECT_THROW(parse_model("VAR x : bool; NEXT x := 3;"),
               std::runtime_error);
}

TEST(ModelParserTest, RejectsRangeNotStartingAtZero) {
  EXPECT_THROW(parse_model("VAR x : 1..5;"), std::runtime_error);
}

TEST(ModelParserTest, RejectsZeroWidth) {
  EXPECT_THROW(parse_model("VAR x : uint<0>;"), std::runtime_error);
}

TEST(ModelParserTest, RejectsNonBooleanFairness) {
  EXPECT_THROW(parse_model("VAR x : uint<2>; FAIRNESS x + 1;"),
               std::runtime_error);
}

TEST(ModelParserTest, ErrorsIncludeLineNumbers) {
  try {
    parse_model("VAR x : bool;\nNEXT x := ;\n");
    FAIL() << "expected syntax error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ModelParserTest, ParseFileReportsMissingFile) {
  EXPECT_THROW(parse_model_file("/nonexistent/model.cov"),
               std::runtime_error);
}

TEST(ModelParserTest, RejectsUnknownObserveTarget) {
  // OBSERVE targets resolve at validate time: a typo is a parse-stage
  // error line, not a mid-suite surprise.
  EXPECT_THROW(
      parse_model("VAR x : bool; NEXT x := !x; SPEC AG (x) OBSERVE ghost;"),
      std::runtime_error);
  try {
    parse_model("VAR x : bool; NEXT x := !x; SPEC AG (x) OBSERVE ghost;");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

// --------------------------------------------------------------------------
// Malformed-model corpus (tests/golden/fuzz/bad_model, good_model): one
// `.cov` file per case, mirroring the PR-4 JSON corpora. Every bad file
// must be refused with a graceful one-line error (never a crash or an
// accept); every good file must parse — so the set also documents the
// dialect's edge syntax.
// --------------------------------------------------------------------------

std::vector<std::filesystem::path> model_corpus(const char* subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(COVEST_SOURCE_DIR) / "tests" / "golden" / "fuzz" /
      subdir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cov") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ModelFuzzCorpusTest, BadModelsAreRejectedGracefully) {
  const auto files = model_corpus("bad_model");
  ASSERT_GE(files.size(), 15u);  // The corpus is present, not an empty dir.
  for (const auto& path : files) {
    try {
      (void)parse_model_file(path.string());
      ADD_FAILURE() << "parse_model accepted " << path.filename();
    } catch (const std::runtime_error& e) {
      // Graceful error line: non-empty, and prefixed with the file path
      // (the batch layers print exactly this line per failing job).
      const std::string what = e.what();
      EXPECT_FALSE(what.empty()) << path.filename();
      EXPECT_NE(what.find(path.filename().string()), std::string::npos)
          << path.filename() << ": " << what;
    }
  }
}

TEST(ModelFuzzCorpusTest, GoodModelsParseAndValidate) {
  const auto files = model_corpus("good_model");
  ASSERT_GE(files.size(), 3u);
  for (const auto& path : files) {
    const Model m = parse_model_file(path.string());
    // Parsed AND validated: specs' OBSERVE targets all resolve.
    for (const SpecEntry& spec : m.specs()) {
      for (const std::string& observed : spec.observed) {
        EXPECT_TRUE(m.has_signal(observed))
            << path.filename() << " observes " << observed;
      }
    }
  }
}

}  // namespace
}  // namespace covest::model
