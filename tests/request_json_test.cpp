// The CoverageRequest JSON round-trip: canonical-form golden files
// (parse -> serialize -> byte-identical), programmatic field round-trips,
// and the malformed-input rejection table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_json.h"
#include "engine/result_json.h"
#include "model/model.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::JsonOptions;
using engine::PropertySpec;

// --------------------------------------------------------------------------
// Programmatic round-trips
// --------------------------------------------------------------------------

CoverageRequest sample_request() {
  CoverageRequest req;
  req.model_path = "examples/models/arbiter.cov";
  req.properties.push_back(
      PropertySpec::text("AG (!(g0 & g1))", {"g0", "g1"}));
  req.properties.back().comment = "mutual exclusion";
  req.properties.push_back(PropertySpec::text("AG (r0 & !r1 -> AX g0)"));
  req.signals = {"g0", "g1"};
  req.options.restrict_to_fair = false;
  req.skip_failing = true;
  req.uncovered_limit = 7;
  req.want_traces = true;
  req.shards = 3;
  req.table_mode = bdd::TableMode::kStriped;  // Non-default round-trips.
  req.options.parallel_apply = 3;
  req.deadline_ms = 1500;
  req.max_live_nodes = 250000;
  return req;
}

void expect_same_request(const CoverageRequest& a, const CoverageRequest& b) {
  EXPECT_EQ(a.model_path, b.model_path);
  EXPECT_EQ(a.model_source, b.model_source);
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (std::size_t i = 0; i < a.properties.size(); ++i) {
    EXPECT_EQ(a.properties[i].ctl_text, b.properties[i].ctl_text);
    EXPECT_EQ(a.properties[i].observe, b.properties[i].observe);
    EXPECT_EQ(a.properties[i].comment, b.properties[i].comment);
  }
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.options.restrict_to_fair, b.options.restrict_to_fair);
  EXPECT_EQ(a.options.exclude_dontcares, b.options.exclude_dontcares);
  EXPECT_EQ(a.skip_failing, b.skip_failing);
  EXPECT_EQ(a.uncovered_limit, b.uncovered_limit);
  EXPECT_EQ(a.want_traces, b.want_traces);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.shard_mode, b.shard_mode);
  EXPECT_EQ(a.table_mode, b.table_mode);
  EXPECT_EQ(a.options.parallel_apply, b.options.parallel_apply);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.max_live_nodes, b.max_live_nodes);
}

TEST(RequestJsonTest, FieldsSurviveTheRoundTrip) {
  const CoverageRequest original = sample_request();
  for (const bool pretty : {true, false}) {
    JsonOptions opts;
    opts.pretty = pretty;
    const std::string json = engine::to_json(original, opts);
    std::string err;
    ASSERT_TRUE(engine::validate_json(json, &err)) << err << "\n" << json;
    expect_same_request(engine::request_from_json(json), original);
  }
}

TEST(RequestJsonTest, CompactFormIsOneNdjsonLine) {
  JsonOptions opts;
  opts.pretty = false;
  const std::string json = engine::to_json(sample_request(), opts);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // No interior newlines.
}

TEST(RequestJsonTest, SerializeThenParseIsIdempotent) {
  // Canonical form is a fixed point: parse(serialize(r)) serializes to
  // the same bytes.
  const std::string once = engine::to_json(sample_request());
  const std::string twice =
      engine::to_json(engine::request_from_json(once));
  EXPECT_EQ(once, twice);
}

TEST(RequestJsonTest, InlineModelSourceRoundTrips) {
  CoverageRequest req;
  req.model_source =
      "MODULE m;\nVAR x : bool;\nINIT x := false;\nNEXT x := !x;\n"
      "SPEC AG (x | !x) OBSERVE x;\n";
  req.signals = {"x"};
  const std::string json = engine::to_json(req);
  const CoverageRequest back = engine::request_from_json(json);
  EXPECT_EQ(back.model_source, req.model_source);
  EXPECT_EQ(engine::to_json(back), json);
}

TEST(RequestJsonTest, MinimalInputGetsDefaults) {
  const CoverageRequest req = engine::request_from_json(
      R"({"model_path": "m.cov"})");
  EXPECT_EQ(req.model_path, "m.cov");
  EXPECT_TRUE(req.properties.empty());
  EXPECT_TRUE(req.signals.empty());
  EXPECT_TRUE(req.options.restrict_to_fair);
  EXPECT_TRUE(req.options.exclude_dontcares);
  EXPECT_FALSE(req.skip_failing);
  EXPECT_EQ(req.uncovered_limit, 4u);
  EXPECT_FALSE(req.want_traces);
  EXPECT_EQ(req.shards, 1u);
  EXPECT_EQ(req.shard_mode, engine::ShardMode::kSharedManager);
  EXPECT_EQ(req.table_mode, bdd::TableMode::kLockFree);
  EXPECT_EQ(req.options.parallel_apply, 0u);  // Serial, by omission.
  EXPECT_EQ(req.deadline_ms, 0u);       // Unlimited, spelled by omission.
  EXPECT_EQ(req.max_live_nodes, 0u);
}

TEST(RequestJsonTest, InMemoryModelRefusesToSerialize) {
  CoverageRequest req;
  req.model.emplace();
  EXPECT_THROW(engine::to_json(req), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Malformed-input corpus (tests/golden/fuzz/): one file per case, shared
// by the request parser and the result-side validate_json. Regenerate
// with tests/golden/fuzz/generate_corpus.py.
//
//   bad_json/     rejected by the RFC 8259 grammar itself (truncated
//                 UTF-8, NaN/Inf spellings, depth limit + 1, lone
//                 surrogates...) — both parsers must refuse.
//   bad_request/  grammar-valid JSON the request schema refuses
//                 (duplicate keys incl. nested objects, wrong types,
//                 unknown keys, bad counts/modes).
//   good_json/    must validate (depth exactly at the limit, huge
//                 numbers, multi-byte UTF-8, surrogate pairs).
//   good_request/ must survive both parsers.
// --------------------------------------------------------------------------

std::vector<std::filesystem::path> corpus_files(const char* subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(COVEST_SOURCE_DIR) / "tests" / "golden" / "fuzz" /
      subdir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(FuzzCorpusTest, BadJsonIsRejectedByBothParsers) {
  const auto files = corpus_files("bad_json");
  ASSERT_GE(files.size(), 25u);  // The corpus is present, not an empty dir.
  for (const auto& path : files) {
    const std::string text = read_file(path);
    std::string error;
    EXPECT_FALSE(engine::validate_json(text, &error))
        << "validate_json accepted " << path.filename();
    EXPECT_FALSE(error.empty()) << path.filename();
    CoverageRequest out;
    error.clear();
    EXPECT_FALSE(engine::parse_request(text, &out, &error))
        << "parse_request accepted " << path.filename();
    EXPECT_FALSE(error.empty()) << path.filename();
  }
}

TEST(FuzzCorpusTest, BadRequestsAreValidJsonButRejectedBySchema) {
  const auto files = corpus_files("bad_request");
  ASSERT_GE(files.size(), 20u);
  for (const auto& path : files) {
    const std::string text = read_file(path);
    std::string error;
    EXPECT_TRUE(engine::validate_json(text, &error))
        << path.filename() << ": " << error;
    CoverageRequest out;
    EXPECT_FALSE(engine::parse_request(text, &out, &error))
        << "parse_request accepted " << path.filename();
    EXPECT_FALSE(error.empty()) << path.filename();
  }
}

TEST(FuzzCorpusTest, GoodJsonValidates) {
  const auto files = corpus_files("good_json");
  ASSERT_GE(files.size(), 5u);
  for (const auto& path : files) {
    std::string error;
    EXPECT_TRUE(engine::validate_json(read_file(path), &error))
        << path.filename() << ": " << error;
  }
}

TEST(FuzzCorpusTest, GoodRequestsSurviveBothParsersAndReserialize) {
  const auto files = corpus_files("good_request");
  ASSERT_GE(files.size(), 3u);
  for (const auto& path : files) {
    const std::string text = read_file(path);
    std::string error;
    EXPECT_TRUE(engine::validate_json(text, &error))
        << path.filename() << ": " << error;
    CoverageRequest out;
    ASSERT_TRUE(engine::parse_request(text, &out, &error))
        << path.filename() << ": " << error;
    // Canonical form is a fixed point from any accepted spelling.
    const std::string once = engine::to_json(out);
    EXPECT_EQ(engine::to_json(engine::request_from_json(once)), once)
        << path.filename();
  }
}

TEST(FuzzCorpusTest, ShardModeRoundTripsThroughTheCorpusForms) {
  const CoverageRequest replicated = engine::request_from_json(
      read_file(corpus_files("good_request")[0].parent_path() /
                "full_sharded.json"));
  EXPECT_EQ(replicated.shard_mode, engine::ShardMode::kReplicated);
  EXPECT_EQ(replicated.shards, 4u);
  const CoverageRequest shared = engine::request_from_json(
      read_file(corpus_files("good_request")[0].parent_path() /
                "shard_mode_shared.json"));
  EXPECT_EQ(shared.shard_mode, engine::ShardMode::kSharedManager);
  // Unstated table_mode defaults to the lock-free table; the explicit
  // corpus form selects the striped baseline.
  EXPECT_EQ(shared.table_mode, bdd::TableMode::kLockFree);
  const CoverageRequest striped = engine::request_from_json(
      read_file(corpus_files("good_request")[0].parent_path() /
                "table_mode_striped.json"));
  EXPECT_EQ(striped.table_mode, bdd::TableMode::kStriped);
}

TEST(FuzzCorpusTest, GovernanceLimitsRoundTripThroughTheCorpusForm) {
  const CoverageRequest limited = engine::request_from_json(
      read_file(corpus_files("good_request")[0].parent_path() /
                "deadline_and_budget.json"));
  EXPECT_EQ(limited.deadline_ms, 500u);
  EXPECT_EQ(limited.max_live_nodes, 100000u);
  // Canonical form keeps both keys (they are non-default)...
  const std::string json = engine::to_json(limited);
  EXPECT_NE(json.find("\"deadline_ms\": 500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_live_nodes\": 100000"), std::string::npos)
      << json;
  // ...and an unlimited request serializes neither, so pre-governance
  // goldens stay byte-identical.
  const std::string unlimited =
      engine::to_json(engine::request_from_json(R"({"model_path": "m.cov"})"));
  EXPECT_EQ(unlimited.find("deadline_ms"), std::string::npos) << unlimited;
  EXPECT_EQ(unlimited.find("max_live_nodes"), std::string::npos) << unlimited;
}

TEST(FuzzCorpusTest, ParallelApplyRoundTripsThroughTheCorpusForm) {
  const CoverageRequest par = engine::request_from_json(
      read_file(corpus_files("good_request")[0].parent_path() /
                "parallel_apply.json"));
  EXPECT_EQ(par.options.parallel_apply, 4u);
  EXPECT_EQ(par.shards, 2u);
  // Canonical form keeps the key (non-default)...
  const std::string json = engine::to_json(par);
  EXPECT_NE(json.find("\"parallel_apply\": 4"), std::string::npos) << json;
  // ...and a serial request serializes no parallel_apply at all, so
  // pre-parallel goldens stay byte-identical.
  const std::string serial =
      engine::to_json(engine::request_from_json(R"({"model_path": "m.cov"})"));
  EXPECT_EQ(serial.find("parallel_apply"), std::string::npos) << serial;
}

TEST(RequestJsonTest, HostileNestingDepthIsRejectedNotACrash) {
  // One untrusted NDJSON line of brackets must produce a parse error,
  // not a stack overflow of the whole batch process.
  std::string bomb = "{\"signals\": ";
  bomb.append(50000, '[');
  bomb.append(50000, ']');
  bomb += "}";
  CoverageRequest out;
  std::string err;
  EXPECT_FALSE(engine::parse_request(bomb, &out, &err));
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;
  EXPECT_FALSE(engine::validate_json(bomb, &err));
  // Sane nesting still parses.
  EXPECT_TRUE(engine::validate_json("[[[[[[[[[[1]]]]]]]]]]", &err)) << err;
}

TEST(RequestJsonTest, HugeNumbersValidateWithoutThrowing) {
  // RFC 8259 puts no bound on number magnitude: grammar-valid tokens
  // must saturate, not throw out of the non-throwing validator.
  std::string err;
  EXPECT_TRUE(engine::validate_json("[1e999, -1e999, 1e-999]", &err)) << err;
  // But a saturated magnitude is not a valid count for the schema.
  CoverageRequest out;
  EXPECT_FALSE(engine::parse_request(R"({"uncovered_limit": 1e999})", &out,
                                     &err));
}

TEST(RequestJsonTest, SurrogatePairsDecodeLoneSurrogatesDoNot) {
  // json.dumps(ensure_ascii=True) encodes non-BMP characters as
  // surrogate pairs; those are valid input. Lone surrogates are not.
  const CoverageRequest req = engine::request_from_json(
      "{\"model_path\": \"x\\ud83d\\udca5.cov\"}");
  EXPECT_EQ(req.model_path, "x\xf0\x9f\x92\xa5.cov");

  CoverageRequest out;
  std::string err;
  EXPECT_FALSE(engine::parse_request(R"({"model_path": "\ud83d"})", &out,
                                     &err));
  EXPECT_FALSE(engine::parse_request(R"({"model_path": "\udca5"})", &out,
                                     &err));
}

TEST(RequestJsonTest, AcceptsFieldOrderVariations) {
  const CoverageRequest req = engine::request_from_json(R"json({
    "shards": 2,
    "signals": ["count"],
    "model_path": "counter.cov",
    "properties": [{"comment": "c", "observe": ["count"],
                    "ctl": "AG (count == 0 -> AX (count == 1))"}]
  })json");
  EXPECT_EQ(req.shards, 2u);
  EXPECT_EQ(req.model_path, "counter.cov");
  ASSERT_EQ(req.properties.size(), 1u);
  EXPECT_EQ(req.properties[0].comment, "c");
}

// --------------------------------------------------------------------------
// Golden files: the canonical serialization is a fixed byte contract.
// Regenerate with COVEST_REGEN_GOLDEN=1 ./request_json_test
// --------------------------------------------------------------------------

class GoldenRequestTest : public ::testing::Test {
 protected:
  static std::string golden_path(const std::string& name) {
    return std::string(COVEST_SOURCE_DIR) + "/tests/golden/" + name;
  }

  static void compare_or_regen(const std::string& name,
                               const std::string& actual) {
    const std::string path = golden_path(name);
    if (std::getenv("COVEST_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str()) << "golden mismatch for " << name;
  }

  /// The round-trip contract: the golden file parses, and re-serializing
  /// the parsed request reproduces the file byte for byte.
  static void check_round_trip(const std::string& name,
                               const CoverageRequest& request) {
    compare_or_regen(name, engine::to_json(request));
    const std::string path = golden_path(name);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream text;
    text << in.rdbuf();
    const CoverageRequest parsed = engine::request_from_json(text.str());
    EXPECT_EQ(engine::to_json(parsed), text.str())
        << "parse -> serialize is not byte-identical for " << name;
  }
};

TEST_F(GoldenRequestTest, PathRequest) {
  CoverageRequest req;
  req.model_path = "examples/models/counter.cov";
  req.want_traces = true;
  check_round_trip("request_counter.json", req);
}

TEST_F(GoldenRequestTest, FullRequestWithInlineModelAndSharding) {
  CoverageRequest req;
  req.model_source =
      "MODULE gate;\nVAR q : bool;\nIVAR en : bool;\n"
      "INIT q := false;\nNEXT q := en ? !q : q;\n";
  req.properties.push_back(PropertySpec::text("AG (q & !en -> AX q)", {"q"}));
  req.properties.back().comment = "hold";
  req.properties.push_back(PropertySpec::text("AG (!q & !en -> AX !q)", {"q"}));
  req.signals = {"q"};
  req.options.exclude_dontcares = false;
  req.skip_failing = true;
  req.uncovered_limit = 2;
  req.shards = 2;
  req.options.parallel_apply = 2;
  check_round_trip("request_sharded_inline.json", req);
}

}  // namespace
}  // namespace covest
