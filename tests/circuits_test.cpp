// The paper's Section-5 narratives as integration tests: each circuit's
// property suite, its coverage holes, the traced corner cases, and the
// escaped-bug discovery in the priority buffer.
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "core/coverage.h"
#include "ctl/checker.h"
#include "fsm/symbolic_fsm.h"

namespace covest::circuits {
namespace {

using bdd::Bdd;
using core::CoverageEstimator;
using core::ObservedSignal;
using core::observe_all_bits;
using core::observe_bool;
using ctl::Formula;
using expr::Expr;

/// Coverage % of a property suite for a group of observed bits.
double coverage_percent(fsm::SymbolicFsm& fsm, CoverageEstimator& est,
                        const std::vector<Formula>& props,
                        const std::vector<ObservedSignal>& group) {
  Bdd covered = fsm.mgr().bdd_false();
  for (const ObservedSignal& q : group) {
    covered |= est.coverage(props, q).covered;
  }
  const double space = fsm.count_states(est.coverage_space());
  return 100.0 *
         fsm.mgr().sat_count(covered & est.coverage_space(),
                             fsm.current_vars()) /
         space;
}

// --------------------------------------------------------------------------
// Circuit 1: priority buffer — the escaped bug
// --------------------------------------------------------------------------

class PriorityBufferNarrative : public ::testing::Test {
 protected:
  PriorityBufferSpec buggy{8, true};
  PriorityBufferSpec fixed{8, false};
};

TEST_F(PriorityBufferNarrative, InitialSuitesVerifyOnBuggyDesign) {
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  for (const Formula& f : buffer_hi_properties(buggy)) {
    EXPECT_TRUE(mc.holds(f));
  }
  for (const Formula& f : buffer_lo_properties_initial(buggy)) {
    EXPECT_TRUE(mc.holds(f));
  }
}

TEST_F(PriorityBufferNarrative, HiPriorityIsFullyCovered) {
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator est(mc);
  const double pct = coverage_percent(fsm, est, buffer_hi_properties(buggy),
                                      observe_all_bits(fsm.model(), "hi"));
  EXPECT_DOUBLE_EQ(pct, 100.0);  // Paper: 100.00%.
}

TEST_F(PriorityBufferNarrative, LoPriorityHasANearMissHole) {
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator est(mc);
  const double pct =
      coverage_percent(fsm, est, buffer_lo_properties_initial(buggy),
                       observe_all_bits(fsm.model(), "lo"));
  EXPECT_LT(pct, 100.0);  // Paper: 99.98%.
  EXPECT_GT(pct, 95.0);   // A small hole, like the paper's.
}

TEST_F(PriorityBufferNarrative, UncoveredStatesAreTheCreditStates) {
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator est(mc);
  Bdd covered = fsm.mgr().bdd_false();
  for (const ObservedSignal& q : observe_all_bits(fsm.model(), "lo")) {
    covered |= est.coverage(buffer_lo_properties_initial(buggy), q).covered;
  }
  const Bdd holes = est.uncovered(covered);
  EXPECT_FALSE(holes.is_false());
  EXPECT_TRUE(holes.subset_of(fsm.blast_bool(Expr::var("lo_cred"))));
}

TEST_F(PriorityBufferNarrative, TraceToHoleShowsEmptyBufferAccept) {
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator est(mc);
  Bdd covered = fsm.mgr().bdd_false();
  for (const ObservedSignal& q : observe_all_bits(fsm.model(), "lo")) {
    covered |= est.coverage(buffer_lo_properties_initial(buggy), q).covered;
  }
  const auto trace = est.trace_to_uncovered(covered);
  ASSERT_TRUE(trace.has_value());
  // The step before the hole is exactly the missing case: empty buffer,
  // low-priority entries incoming.
  const auto& before = trace->steps[trace->steps.size() - 2].values;
  EXPECT_EQ(before.at("hi"), 0u);
  EXPECT_EQ(before.at("lo"), 0u);
  EXPECT_GT(before.at("in_lo"), 0u);
}

TEST_F(PriorityBufferNarrative, MissingPropertyFailsOnBuggyDesign) {
  // "Verification of this property failed and actually revealed a bug in
  // the design of the buffer!"
  fsm::SymbolicFsm fsm(make_priority_buffer(buggy));
  ctl::ModelChecker mc(fsm);
  const ctl::CheckResult r = mc.check(buffer_lo_missing_case(buggy));
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
}

TEST_F(PriorityBufferNarrative, MissingPropertyHoldsOnFixedDesign) {
  fsm::SymbolicFsm fsm(make_priority_buffer(fixed));
  ctl::ModelChecker mc(fsm);
  EXPECT_TRUE(mc.holds(buffer_lo_missing_case(fixed)));
}

TEST_F(PriorityBufferNarrative, FixedDesignWithFullSuiteReaches100) {
  fsm::SymbolicFsm fsm(make_priority_buffer(fixed));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator est(mc);
  auto props = buffer_lo_properties_initial(fixed);
  props.push_back(buffer_lo_missing_case(fixed));
  const double pct = coverage_percent(fsm, est, props,
                                      observe_all_bits(fsm.model(), "lo"));
  EXPECT_DOUBLE_EQ(pct, 100.0);
}

// --------------------------------------------------------------------------
// Circuit 2: circular queue — the stalled-wrap corner
// --------------------------------------------------------------------------

class CircularQueueNarrative : public ::testing::Test {
 protected:
  CircularQueueSpec spec{3};
  CircularQueueNarrative()
      : fsm(make_circular_queue(spec)), mc(fsm), est(mc) {}
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator est;
  ObservedSignal wrap = observe_bool(fsm.model(), "wrap");
};

TEST_F(CircularQueueNarrative, AllSuitesVerify) {
  for (const Formula& f : queue_wrap_properties_initial(spec)) {
    EXPECT_TRUE(mc.holds(f));
  }
  for (const Formula& f : queue_wrap_properties_additional(spec)) {
    EXPECT_TRUE(mc.holds(f));
  }
  EXPECT_TRUE(mc.holds(queue_wrap_stall_property(spec)));
}

TEST_F(CircularQueueNarrative, CoverageClimbsAcrossPhases) {
  auto initial = queue_wrap_properties_initial(spec);
  const double phase_a = coverage_percent(fsm, est, initial, {wrap});

  auto plus3 = initial;
  for (const Formula& f : queue_wrap_properties_additional(spec)) {
    plus3.push_back(f);
  }
  const double phase_b = coverage_percent(fsm, est, plus3, {wrap});

  auto final_suite = plus3;
  final_suite.push_back(queue_wrap_stall_property(spec));
  const double phase_c = coverage_percent(fsm, est, final_suite, {wrap});

  // Paper: 60.08% -> (+3 properties, still short) -> 100%.
  EXPECT_LT(phase_a, phase_b);
  EXPECT_LT(phase_b, 100.0);
  EXPECT_DOUBLE_EQ(phase_c, 100.0);
}

TEST_F(CircularQueueNarrative, RemainingHoleIsThePendingToggleRegion) {
  auto plus3 = queue_wrap_properties_initial(spec);
  for (const Formula& f : queue_wrap_properties_additional(spec)) {
    plus3.push_back(f);
  }
  const Bdd covered = est.coverage(plus3, wrap).covered;
  const Bdd holes = est.uncovered(covered);
  EXPECT_FALSE(holes.is_false());
  EXPECT_TRUE(holes.subset_of(fsm.blast_bool(Expr::var("pend"))));
}

TEST_F(CircularQueueNarrative, TraceToHoleShowsStalledPointerWrap) {
  // "We traced the input/state sequences leading to these uncovered
  // states and found that the value of wrap was not checked if the stall
  // signal was asserted when the write pointer wraps around."
  auto plus3 = queue_wrap_properties_initial(spec);
  for (const Formula& f : queue_wrap_properties_additional(spec)) {
    plus3.push_back(f);
  }
  const Bdd covered = est.coverage(plus3, wrap).covered;
  const auto trace = est.trace_to_uncovered(covered);
  ASSERT_TRUE(trace.has_value());
  const auto& before = trace->steps[trace->steps.size() - 2].values;
  EXPECT_EQ(before.at("stall"), 1u);
  // A pointer wrap is in flight: write (or read) pointer at the top.
  const std::uint64_t top = (1u << spec.ptr_bits) - 1;
  EXPECT_TRUE((before.at("wptr") == top && before.at("push") == 1u) ||
              (before.at("rptr") == top && before.at("pop") == 1u));
}

TEST_F(CircularQueueNarrative, FullAndEmptyAreFullyCovered) {
  const double full_pct = coverage_percent(
      fsm, est, queue_full_properties(spec),
      {observe_bool(fsm.model(), "full")});
  const double empty_pct = coverage_percent(
      fsm, est, queue_empty_properties(spec),
      {observe_bool(fsm.model(), "empty")});
  EXPECT_DOUBLE_EQ(full_pct, 100.0);   // Paper: 100.00%.
  EXPECT_DOUBLE_EQ(empty_pct, 100.0);  // Paper: 100.00%.
}

// --------------------------------------------------------------------------
// Circuit 3: decode pipeline — the 3-cycle output hold
// --------------------------------------------------------------------------

class PipelineNarrative : public ::testing::Test {
 protected:
  PipelineSpec spec{3, 3};
  PipelineNarrative() : fsm(make_pipeline(spec)), mc(fsm), est(mc) {}
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator est;
  ObservedSignal out = observe_bool(fsm.model(), "out");
};

TEST_F(PipelineNarrative, AllPropertiesVerifyUnderFairness) {
  for (const Formula& f : pipeline_properties_initial(spec)) {
    EXPECT_TRUE(mc.holds(f)) << ctl::to_string(f);
  }
  for (const Formula& f : pipeline_hold_properties(spec)) {
    EXPECT_TRUE(mc.holds(f)) << ctl::to_string(f);
  }
}

TEST_F(PipelineNarrative, EventualityPropertiesNeedFairness) {
  // Without the FAIRNESS declaration the AF property fails (a forever-
  // stalling path never delivers the instruction).
  model::Model m = make_pipeline(spec);
  model::Model unfair("pipeline_unfair");
  for (const auto& s : m.signals()) unfair.add_signal(s);
  for (const auto& e : m.init_constraints()) unfair.add_init_constraint(e);
  fsm::SymbolicFsm f2(unfair);
  ctl::ModelChecker mc2(f2);
  const auto props = pipeline_properties_initial(spec);
  EXPECT_FALSE(mc2.holds(props[0]));  // The AF property.
}

TEST_F(PipelineNarrative, InitialSuiteLeavesHoldStatesUncovered) {
  const auto initial = pipeline_properties_initial(spec);
  const double pct = coverage_percent(fsm, est, initial, {out});
  EXPECT_LT(pct, 100.0);  // Paper: 74.36%.
  EXPECT_GT(pct, 25.0);

  Bdd covered = fsm.mgr().bdd_false();
  for (const Formula& f : initial) covered |= est.covered_set(f, out);
  const Bdd holes = est.uncovered(covered);
  // Every hole sits in the middle of the hold sequence (hold in 1..2 —
  // successors of hold==3/2 states that only stability props would check).
  EXPECT_FALSE(holes.is_false());
  const Bdd holding = fsm.blast_bool(Expr::var("hold") >
                                     Expr::word_const(0, 2));
  EXPECT_TRUE(holes.subset_of(holding));
}

TEST_F(PipelineNarrative, HoldPropertiesCloseTheHole) {
  auto props = pipeline_properties_initial(spec);
  for (const Formula& f : pipeline_hold_properties(spec)) {
    props.push_back(f);
  }
  const double pct = coverage_percent(fsm, est, props, {out});
  EXPECT_DOUBLE_EQ(pct, 100.0);
}

TEST_F(PipelineNarrative, CoverageSpaceExcludesInvalidOutput) {
  // The model declares DONTCARE !outv (Section 4.2): while no valid
  // instruction has reached the output register its value is irrelevant.
  EXPECT_TRUE(est.coverage_space().subset_of(
      fsm.blast_bool(Expr::var("outv"))));
}

}  // namespace
}  // namespace covest::circuits
