// Integration tests for the coverage_tool CLI: spawns the real binary
// against the example models and checks exit codes, the hardened
// argument parsing, and that --json output parses.
#include <gtest/gtest.h>

#include <string>

#include "cli_harness.h"
#include "engine/result_json.h"

namespace covest {
namespace {

#if defined(COVEST_COVERAGE_TOOL_PATH) && defined(COVEST_SOURCE_DIR)

using testutil::RunOutcome;
using testutil::model_path;

/// stdout + stderr, interleaved.
RunOutcome run_tool(const std::string& args) {
  return testutil::run_shell(std::string(COVEST_COVERAGE_TOOL_PATH) + " " +
                             args + " 2>&1");
}

TEST(CoverageToolCliTest, JsonOutputParses) {
  for (const char* model : {"counter.cov", "arbiter.cov"}) {
    const RunOutcome r = run_tool(model_path(model) + " --json --trace");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    std::string err;
    EXPECT_TRUE(engine::validate_json(r.output, &err))
        << model << ": " << err << "\n" << r.output;
    EXPECT_NE(r.output.find("\"coverage_space_states\""), std::string::npos);
    EXPECT_NE(r.output.find("\"signals\""), std::string::npos);
  }
}

TEST(CoverageToolCliTest, TextReportShowsTheTable) {
  const RunOutcome r = run_tool(model_path("counter.cov"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[PASS]"), std::string::npos);
  EXPECT_NE(r.output.find("coverage space:"), std::string::npos);
  EXPECT_NE(r.output.find("count"), std::string::npos);
}

TEST(CoverageToolCliTest, RejectsBadUncoveredValues) {
  for (const char* bad : {"12x", "-3", "", "0x10", "nonsense",
                          "99999999999999999999999"}) {
    const RunOutcome r =
        run_tool(model_path("counter.cov") + " --uncovered '" + bad + "'");
    EXPECT_EQ(r.exit_code, 2) << "accepted --uncovered " << bad;
    EXPECT_NE(r.output.find("--uncovered needs a non-negative integer"),
              std::string::npos)
        << r.output;
  }
  // A missing value is rejected too.
  const RunOutcome r = run_tool(model_path("counter.cov") + " --uncovered");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CoverageToolCliTest, RejectsUnknownOptionsAndExtraModels) {
  EXPECT_EQ(run_tool(model_path("counter.cov") + " --bogus").exit_code, 2);
  EXPECT_EQ(run_tool(model_path("counter.cov") + " " +
                     model_path("arbiter.cov")).exit_code, 2);
  // Bare invocation is a usage error too, not success.
  EXPECT_EQ(run_tool("").exit_code, 2);
}

TEST(CoverageToolCliTest, MissingFileReportsError) {
  const RunOutcome r = run_tool("/nonexistent/model.cov");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

#else

TEST(CoverageToolCliTest, DISABLED_NeedsExampleBinary) {}

#endif

}  // namespace
}  // namespace covest
