// Integration tests for the coverage_tool CLI: spawns the real binary
// against the example models and checks exit codes, the hardened
// argument parsing, and that --json output parses.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

#include "engine/result_json.h"

namespace covest {
namespace {

#if defined(COVEST_COVERAGE_TOOL_PATH) && defined(COVEST_SOURCE_DIR)

struct RunOutcome {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved.
};

RunOutcome run_tool(const std::string& args) {
  const std::string cmd =
      std::string(COVEST_COVERAGE_TOOL_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome outcome;
  if (pipe == nullptr) return outcome;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    outcome.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return outcome;
}

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

TEST(CoverageToolCliTest, JsonOutputParses) {
  for (const char* model : {"counter.cov", "arbiter.cov"}) {
    const RunOutcome r = run_tool(model_path(model) + " --json --trace");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    std::string err;
    EXPECT_TRUE(engine::validate_json(r.output, &err))
        << model << ": " << err << "\n" << r.output;
    EXPECT_NE(r.output.find("\"coverage_space_states\""), std::string::npos);
    EXPECT_NE(r.output.find("\"signals\""), std::string::npos);
  }
}

TEST(CoverageToolCliTest, TextReportShowsTheTable) {
  const RunOutcome r = run_tool(model_path("counter.cov"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[PASS]"), std::string::npos);
  EXPECT_NE(r.output.find("coverage space:"), std::string::npos);
  EXPECT_NE(r.output.find("count"), std::string::npos);
}

TEST(CoverageToolCliTest, RejectsBadUncoveredValues) {
  for (const char* bad : {"12x", "-3", "", "0x10", "nonsense",
                          "99999999999999999999999"}) {
    const RunOutcome r =
        run_tool(model_path("counter.cov") + " --uncovered '" + bad + "'");
    EXPECT_EQ(r.exit_code, 2) << "accepted --uncovered " << bad;
    EXPECT_NE(r.output.find("--uncovered needs a non-negative integer"),
              std::string::npos)
        << r.output;
  }
  // A missing value is rejected too.
  const RunOutcome r = run_tool(model_path("counter.cov") + " --uncovered");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(CoverageToolCliTest, RejectsUnknownOptionsAndExtraModels) {
  EXPECT_EQ(run_tool(model_path("counter.cov") + " --bogus").exit_code, 2);
  EXPECT_EQ(run_tool(model_path("counter.cov") + " " +
                     model_path("arbiter.cov")).exit_code, 2);
  // Bare invocation is a usage error too, not success.
  EXPECT_EQ(run_tool("").exit_code, 2);
}

TEST(CoverageToolCliTest, MissingFileReportsError) {
  const RunOutcome r = run_tool("/nonexistent/model.cov");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

#else

TEST(CoverageToolCliTest, DISABLED_NeedsExampleBinary) {}

#endif

}  // namespace
}  // namespace covest
