// Direct tests for the explicit-state reference engine (it backs the
// oracles, so it needs its own grounding against hand-computed facts).
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "ctl/ctl_parser.h"
#include "model/model.h"
#include "xstate/explicit_model.h"

namespace covest::xstate {
namespace {

using ctl::parse_ctl;
using expr::Expr;

model::Model two_bit_counter() {
  model::ModelBuilder b("c2");
  const Expr c = b.state_word("c", 2, 0);
  const Expr en = b.input_bool("en");
  b.next("c", ite(en, c + Expr::word_const(1, 2), c));
  return b.build();
}

class ExplicitModelTest : public ::testing::Test {
 protected:
  ExplicitModelTest() : xm(two_bit_counter()) {}
  ExplicitModel xm;

  // State index layout: bits 0..1 = c, bit 2 = en.
  static std::size_t state(std::uint64_t c, bool en) {
    return c | (std::size_t{en} << 2);
  }
};

TEST_F(ExplicitModelTest, EnumeratesFullStateSpace) {
  EXPECT_EQ(xm.num_bits(), 3u);
  EXPECT_EQ(xm.num_states(), 8u);
}

TEST_F(ExplicitModelTest, ValuesDecodeSignals) {
  EXPECT_EQ(xm.value(state(2, true), "c"), 2u);
  EXPECT_EQ(xm.value(state(2, true), "en"), 1u);
  EXPECT_EQ(xm.value(state(3, false), "en"), 0u);
  EXPECT_THROW(xm.value(0, "ghost"), std::runtime_error);
}

TEST_F(ExplicitModelTest, SuccessorsFollowNextFunctions) {
  // c=1, en=1 -> c=2 with either next input.
  const auto& succ = xm.successors(state(1, true));
  ASSERT_EQ(succ.size(), 2u);
  for (const auto t : succ) {
    EXPECT_EQ(xm.value(t, "c"), 2u);
  }
  // c=1, en=0 holds.
  for (const auto t : xm.successors(state(1, false))) {
    EXPECT_EQ(xm.value(t, "c"), 1u);
  }
}

TEST_F(ExplicitModelTest, PredecessorsInvertSuccessors) {
  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    for (const auto t : xm.successors(s)) {
      const auto& preds = xm.predecessors(t);
      EXPECT_NE(std::find(preds.begin(), preds.end(), s), preds.end());
    }
  }
}

TEST_F(ExplicitModelTest, InitialAndReachable) {
  EXPECT_TRUE(xm.initial()[state(0, false)]);
  EXPECT_TRUE(xm.initial()[state(0, true)]);
  EXPECT_FALSE(xm.initial()[state(1, false)]);
  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    EXPECT_TRUE(xm.reachable()[s]);  // The counter visits everything.
  }
}

TEST_F(ExplicitModelTest, SatOfInvariants) {
  const auto sat = xm.sat(parse_ctl("c < 2"));
  EXPECT_TRUE(sat[state(1, false)]);
  EXPECT_FALSE(sat[state(2, false)]);
  EXPECT_TRUE(xm.holds(parse_ctl("AG (c <= 3)")));
  EXPECT_FALSE(xm.holds(parse_ctl("AG (c < 3)")));
}

TEST_F(ExplicitModelTest, TemporalOperators) {
  EXPECT_TRUE(xm.holds(parse_ctl("EF (c == 3)")));
  EXPECT_FALSE(xm.holds(parse_ctl("AF (c == 3)")));  // May never enable.
  EXPECT_TRUE(xm.holds(parse_ctl("AG EF (c == 0)")));  // Wraps around.
  EXPECT_TRUE(xm.holds(parse_ctl("AG (en & c == 0 -> AX (c == 1))")));
}

TEST_F(ExplicitModelTest, AtomOverrideFlipsOneState) {
  // Override: c reads as 3 in state (c=1, en=0) only.
  AtomOverride hook;
  hook.value = [this](std::size_t s, const std::string& name)
      -> std::optional<std::uint64_t> {
    if (name == "c" && s == state(1, false)) return 3;
    return std::nullopt;
  };
  const auto sat = xm.sat(parse_ctl("c == 3"), &hook);
  EXPECT_TRUE(sat[state(1, false)]);
  EXPECT_FALSE(sat[state(1, true)]);
  EXPECT_TRUE(sat[state(3, false)]);
}

TEST_F(ExplicitModelTest, IndexOfRoundTrips) {
  const std::unordered_map<std::string, std::uint64_t> values{{"c", 2},
                                                              {"en", 1}};
  const std::size_t s = xm.index_of(values);
  EXPECT_EQ(xm.value(s, "c"), 2u);
  EXPECT_EQ(xm.value(s, "en"), 1u);
}

TEST(ExplicitModelLimitsTest, RejectsOversizedModels) {
  model::ModelBuilder b("big");
  b.state_word("w", 30);
  EXPECT_THROW(ExplicitModel(b.build(), 1u << 20), std::runtime_error);
}

TEST(ExplicitFairnessTest, FairSetMatchesEmersonLei) {
  // x latches to 1; fairness demands !x infinitely often, so states with
  // x=1 have no fair path.
  model::ModelBuilder b("fair");
  const Expr x = b.state_bool("x", false);
  const Expr go = b.input_bool("go");
  b.next("x", x | go);
  b.fairness(!x);
  ExplicitModel xm(b.build());
  // Only (x=0, go=0) has a fair path: with go=1 in the current state the
  // latch is forced to 1 next cycle and !x never holds again.
  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    const bool expect_fair =
        xm.value(s, "x") == 0 && xm.value(s, "go") == 0;
    EXPECT_EQ(xm.fair()[s], expect_fair) << "state " << s;
  }
}

TEST(ExplicitFairnessTest, FairSemanticsAffectAF) {
  model::ModelBuilder b("fc");
  const Expr c = b.state_word("c", 2, 0);
  const Expr stall = b.input_bool("stall");
  b.next("c", ite(stall, c, c + Expr::word_const(1, 2)));
  b.fairness(!stall);
  ExplicitModel xm(b.build());
  EXPECT_TRUE(xm.holds(parse_ctl("AF (c == 3)")));

  // The same machine without the constraint: AF fails.
  model::ModelBuilder b2("nf");
  const Expr c2 = b2.state_word("c", 2, 0);
  const Expr stall2 = b2.input_bool("stall");
  b2.next("c", ite(stall2, c2, c2 + Expr::word_const(1, 2)));
  ExplicitModel xm2(b2.build());
  EXPECT_FALSE(xm2.holds(parse_ctl("AF (c == 3)")));
}

TEST(ExplicitDefineTest, DefinesEvaluateThroughExpansion) {
  model::ModelBuilder b("d");
  const Expr w = b.state_word("w", 2, 0);
  b.next("w", w + Expr::word_const(1, 2));
  b.define("top", w == Expr::word_const(3, 2));
  b.define("not_top", !Expr::var("top"));
  ExplicitModel xm(b.build());
  EXPECT_EQ(xm.value(3, "top"), 1u);
  EXPECT_EQ(xm.value(3, "not_top"), 0u);
  EXPECT_TRUE(xm.holds(parse_ctl("AG (top -> AX (!top))")));
}

TEST(ExplicitDefineTest, PreserveDefineKeepsItOverridable) {
  model::ModelBuilder b("d");
  const Expr w = b.state_word("w", 2, 0);
  b.next("w", w);
  b.define("flag", w == Expr::word_const(0, 2));
  ExplicitModel xm(b.build());

  AtomOverride hook;
  hook.preserve_define = "flag";
  hook.value = [](std::size_t s, const std::string& name)
      -> std::optional<std::uint64_t> {
    if (name == "flag" && s == 0) return 0;  // Flip at state 0 only.
    return std::nullopt;
  };
  const auto sat = xm.sat(parse_ctl("flag"), &hook);
  EXPECT_FALSE(sat[0]);  // Overridden.
  EXPECT_FALSE(sat[1]);  // w==1: flag genuinely false.
}

}  // namespace
}  // namespace covest::xstate
