#!/usr/bin/env python3
"""Regenerates the shared malformed-input corpus.

The corpus is the fixture set for request_json_test's corpus-driven
tests: every file in bad_json/ must be rejected by BOTH the RFC 8259
validator (engine::validate_json) and the request parser; bad_request/
holds grammar-valid JSON the request schema rejects; good_json/ must
validate; good_request/ must survive both parsers. Run this script from
the repo root after changing the parser's limits (e.g. the nesting
depth) and commit the result.
"""
import os

base = os.path.dirname(os.path.abspath(__file__))
for d in ('bad_json', 'bad_request', 'good_json', 'good_request'):
    os.makedirs(os.path.join(base, d), exist_ok=True)


def w(rel, data):
    mode = 'wb' if isinstance(data, bytes) else 'w'
    with open(os.path.join(base, rel), mode) as f:
        f.write(data)


# ---- bad_json: rejected by the RFC 8259 parser itself (and therefore
# by both the request parser and validate_json). ----
w('bad_json/empty.json', '')
w('bad_json/not_json.json', 'not json')
w('bad_json/truncated_object.json', '{')
w('bad_json/truncated_string.json', '{"model_path": "m.co')
w('bad_json/trailing_comma.json', '{"model_path": "m.cov",}')
w('bad_json/trailing_content.json', '{"model_path": "m.cov"} trailing')
w('bad_json/leading_zero.json', '[01]')
w('bad_json/plus_sign_number.json', '[+1]')
w('bad_json/hex_number.json', '[0x10]')
w('bad_json/bad_escape.json', r'{"model_path": "\x"}')
w('bad_json/unescaped_control.json', b'{"model_path": "a\x01b"}')
# NaN / Infinity spellings: valid in no RFC 8259 production.
w('bad_json/nan.json', '{"uncovered_limit": NaN}')
w('bad_json/nan_lowercase.json', '[nan]')
w('bad_json/infinity.json', '[Infinity]')
w('bad_json/neg_infinity.json', '[-Infinity]')
w('bad_json/inf_short.json', '[inf]')
# Lone surrogate escapes.
w('bad_json/lone_high_surrogate.json', r'{"model_path": "\ud83d"}')
w('bad_json/lone_low_surrogate.json', r'{"model_path": "\udca5"}')
w('bad_json/surrogate_pair_backwards.json', r'{"model_path": "\udca5\ud83d"}')
# Truncated / invalid raw UTF-8 byte sequences (RFC 8259 section 8.1).
w('bad_json/utf8_truncated_2byte.json', b'{"model_path": "x\xc3"}')
w('bad_json/utf8_truncated_3byte.json', b'{"model_path": "x\xe2\x82"}')
w('bad_json/utf8_truncated_4byte.json', b'{"model_path": "x\xf0\x9f\x92"}')
w('bad_json/utf8_bare_continuation.json', b'{"model_path": "\x80"}')
w('bad_json/utf8_overlong_slash.json', b'{"model_path": "\xc0\xaf"}')
w('bad_json/utf8_overlong_nul.json', b'{"model_path": "\xc0\x80"}')
w('bad_json/utf8_raw_surrogate.json', b'{"model_path": "\xed\xa0\x80"}')
w('bad_json/utf8_beyond_u10ffff.json', b'{"model_path": "\xf4\x90\x80\x80"}')
w('bad_json/utf8_invalid_lead_f5.json', b'{"model_path": "\xf5\x80\x80\x80"}')
# Nesting one past the parser's depth limit: kMaxDepth = 256, and the
# innermost scalar occupies a level, so 256 arrays + the scalar = 257.
w('bad_json/nesting_limit_plus_1.json', '[' * 256 + '1' + ']' * 256)

# ---- bad_request: grammar-valid JSON the request schema rejects. ----
w('bad_request/not_an_object_array.json', '[]')
w('bad_request/not_an_object_string.json', '"model_path"')
w('bad_request/null_model_path.json', '{"model_path": null}')
w('bad_request/wrong_type_path.json', '{"model_path": 7}')
w('bad_request/wrong_type_model.json', '{"model": false}')
w('bad_request/wrong_type_signals.json', '{"signals": "g0"}')
w('bad_request/wrong_element_type_signals.json', '{"signals": [1]}')
w('bad_request/wrong_type_properties.json', '{"properties": {}}')
w('bad_request/properties_not_objects.json', '{"properties": ["AG x"]}')
w('bad_request/property_missing_ctl.json', '{"properties": [{"observe": []}]}')
w('bad_request/property_unknown_key.json',
  '{"properties": [{"ctl": "AG x", "extra": 1}]}')
w('bad_request/wrong_type_options.json', '{"options": []}')
w('bad_request/options_unknown_key.json', '{"options": {"fairness": true}}')
w('bad_request/wrong_type_skip_failing.json', '{"skip_failing": "yes"}')
w('bad_request/uncovered_negative.json', '{"uncovered_limit": -1}')
w('bad_request/uncovered_fractional.json', '{"uncovered_limit": 1.5}')
w('bad_request/uncovered_bool.json', '{"uncovered_limit": true}')
w('bad_request/uncovered_saturated.json', '{"uncovered_limit": 1e999}')
w('bad_request/shards_zero.json', '{"shards": 0}')
w('bad_request/shard_mode_unknown.json', '{"shard_mode": "both"}')
w('bad_request/shard_mode_wrong_type.json', '{"shard_mode": 2}')
w('bad_request/table_mode_unknown.json',
  '{"model_path": "m.cov", "table_mode": "spinlock"}')
w('bad_request/table_mode_wrong_type.json',
  '{"model_path": "m.cov", "table_mode": 2}')
w('bad_request/image_strategy_unknown.json',
  '{"model_path": "m.cov", "image_strategy": "saturation"}')
w('bad_request/image_strategy_wrong_type.json',
  '{"model_path": "m.cov", "image_strategy": 1}')
w('bad_request/unknown_top_level_key.json', '{"modle_path": "m.cov"}')
# Resource-governance counts: both must be >= 1 integers when present
# (0 is spelled by omission), and the shared count grammar already
# rejects negatives, fractions, booleans and magnitudes past 1e15.
w('bad_request/deadline_zero.json', '{"deadline_ms": 0}')
w('bad_request/deadline_negative.json', '{"deadline_ms": -5}')
w('bad_request/deadline_fractional.json', '{"deadline_ms": 1.5}')
w('bad_request/deadline_overflow.json', '{"deadline_ms": 1e16}')
w('bad_request/deadline_wrong_type.json', '{"deadline_ms": "soon"}')
w('bad_request/max_nodes_zero.json', '{"max_live_nodes": 0}')
w('bad_request/max_nodes_fractional.json', '{"max_live_nodes": 2.5}')
w('bad_request/max_nodes_wrong_type.json', '{"max_live_nodes": true}')
# parallel_apply follows the same count grammar: >= 1 when present,
# serial is spelled by omission.
w('bad_request/parallel_apply_zero.json', '{"parallel_apply": 0}')
w('bad_request/parallel_apply_negative.json', '{"parallel_apply": -2}')
w('bad_request/parallel_apply_fractional.json', '{"parallel_apply": 1.5}')
w('bad_request/parallel_apply_wrong_type.json', '{"parallel_apply": "all"}')
w('bad_request/parallel_apply_misspelled.json',
  '{"model_path": "m.cov", "parallel_aply": 2}')
# Duplicate keys (grammar-valid; the schema rejects two-jobs-at-once),
# including duplicates buried in nested objects.
w('bad_request/duplicate_top_level.json',
  '{"model_path": "a.cov", "model_path": "b.cov"}')
w('bad_request/duplicate_top_level_properties.json',
  '{"properties": [], "properties": [{"ctl": "AG (x)"}]}')
w('bad_request/duplicate_nested_options.json',
  '{"options": {"restrict_to_fair": true, "restrict_to_fair": false}}')
w('bad_request/duplicate_nested_property_ctl.json',
  '{"properties": [{"ctl": "AG (x)", "ctl": "AG (y)"}]}')
w('bad_request/duplicate_nested_property_observe.json',
  '{"properties": [{"ctl": "AG (x)", "observe": [], "observe": ["x"]}]}')

# ---- good_json: must validate as JSON (request-schema validity is a
# separate question; some of these are deliberately not requests). ----
# Exactly at the limit: 255 arrays + the innermost scalar = depth 256.
w('good_json/nesting_at_limit_arrays.json', '[' * 255 + '1' + ']' * 255)
w('good_json/nesting_below_limit_objects.json',
  '{"a": ' * 255 + '1' + '}' * 255)
w('good_json/surrogate_pair_escapes.json', '["\\ud83d\\udca5"]')
w('good_json/huge_numbers.json', '[1e999, -1e999, 1e-999, -1e-999]')
w('good_json/utf8_multibyte.json',
  '["café", "€", "\U0001f4a5"]'.encode('utf-8'))
w('good_json/escapes.json', r'["\"\\\/\b\f\n\r\t "]')

# ---- good_request: must survive both parsers. ----
w('good_request/minimal.json', '{"model_path": "m.cov"}')
w('good_request/utf8_path.json',
  '{"model_path": "mödel\U0001f44d.cov"}'.encode('utf-8'))
w('good_request/full_sharded.json',
  '{"model_path": "m.cov", "properties": [{"ctl": "AG (x)", '
  '"observe": ["x"], "comment": "c"}], "signals": ["x"], '
  '"options": {"restrict_to_fair": false, "exclude_dontcares": true}, '
  '"skip_failing": true, "uncovered_limit": 0, "want_traces": true, '
  '"shards": 4, "shard_mode": "replicated"}')
w('good_request/shard_mode_shared.json',
  '{"model_path": "m.cov", "shards": 2, "shard_mode": "shared_manager"}')
w('good_request/table_mode_striped.json',
  '{"model_path": "m.cov", "shards": 2, "table_mode": "striped"}')
w('good_request/image_strategy_chaining.json',
  '{"model_path": "m.cov", "image_strategy": "chaining"}')
w('good_request/deadline_and_budget.json',
  '{"model_path": "m.cov", "deadline_ms": 500, "max_live_nodes": 100000}')
w('good_request/parallel_apply.json',
  '{"model_path": "m.cov", "shards": 2, "parallel_apply": 4}')

for d in ('bad_json', 'bad_request', 'good_json', 'good_request'):
    print(d, len(os.listdir(os.path.join(base, d))))
