// Direct battery for the lock-free shared-mode structures (bdd.h
// TableMode::kLockFree): the CAS-chained unique table under
// same-variable `make_node` bursts, the wait-free lossy computed cache
// under deliberate overwrite races, and the hard (throwing) form of the
// exclusive-only structural-mutation contract. Built for the sanitizer
// CI matrix alongside shared_shard_stress_test: every assertion here
// runs under TSan and ASan+UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bdd/bdd.h"

namespace covest::bdd {
namespace {

// --------------------------------------------------------------------------
// Unique table: same-variable bursts stay canonical
// --------------------------------------------------------------------------

/// A formula family deliberately dense in a *tiny* variable set, so every
/// thread's make_node calls land in the same few subtables — the burst
/// pattern the striped locks serialized and the CAS chains must survive.
/// Different lanes build overlapping functions in different orders, which
/// maximizes equal-key CAS races (the loser-recycles path).
Bdd dense_family(BddManager& mgr, const std::vector<Bdd>& vars,
                 std::size_t lane, std::size_t rounds) {
  Bdd acc = lane % 2 == 0 ? mgr.bdd_false() : mgr.bdd_true();
  Bdd parity = mgr.bdd_false();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const Bdd& a = vars[(i + lane) % vars.size()];
      const Bdd& b = vars[(i + r) % vars.size()];
      parity ^= a;
      acc = ite(a, acc ^ b, acc | (a & !b));
    }
  }
  return acc ^ parity;
}

TEST(BddLockFreeTest, SameVariableBurstsStayCanonicalAndMatchExclusive) {
  constexpr unsigned kVars = 6;  // Tiny on purpose: maximal collisions.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 40;
  BddManager mgr(kVars);
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.var(i));

  std::vector<Bdd> shared_results(kThreads);
  mgr.begin_shared(kThreads, TableMode::kLockFree);
  EXPECT_EQ(mgr.shared_table_mode(), TableMode::kLockFree);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        shared_results[t] = dense_family(mgr, vars, t, kRounds);
        // Lanes also rebuild each other's functions, so equal-key CAS
        // races are certain, not probabilistic.
        const Bdd twin = dense_family(mgr, vars, (t + 1) % kThreads, kRounds);
        (void)twin;
      });
    }
    for (std::thread& th : threads) th.join();
  }
  mgr.end_shared();

  // Canonicity is global: no stored complemented high edge, no low==high,
  // anywhere in the pool the burst built.
  EXPECT_TRUE(mgr.check_canonical());
  // Exclusive recomputation lands on the identical edge for every lane:
  // the CAS chains deduplicated exactly like a locked table would.
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shared_results[t], dense_family(mgr, vars, t, kRounds))
        << "lane " << t;
  }
  // And the structures survive a GC with every root intact.
  mgr.gc();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shared_results[t], dense_family(mgr, vars, t, kRounds))
        << "post-gc lane " << t;
  }
}

TEST(BddLockFreeTest, StripedAndLockFreeEpochsAgreeEdgeForEdge) {
  // The same family built under both table modes of one manager must
  // resolve to the same canonical edges — the unique table is one
  // logical structure regardless of how an epoch synchronizes it.
  constexpr unsigned kVars = 6;
  BddManager mgr(kVars);
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.var(i));

  std::vector<Bdd> results[2];
  const TableMode modes[2] = {TableMode::kStriped, TableMode::kLockFree};
  for (int m = 0; m < 2; ++m) {
    results[m].resize(3);
    mgr.begin_shared(3, modes[m]);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 3; ++t) {
      threads.emplace_back([&, m, t] {
        mgr.register_shard_thread();
        results[m][t] = dense_family(mgr, vars, t, 12);
      });
    }
    for (std::thread& th : threads) th.join();
    mgr.end_shared();
  }
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(results[0][t], results[1][t]) << "lane " << t;
  }
  EXPECT_TRUE(mgr.check_canonical());
}

TEST(BddLockFreeTest, RepeatedLockFreeEpochsDoNotLeakThePool) {
  // Equal-key races make losing threads recycle their speculative
  // slots; end_shared returns arena/recycle leftovers to the free list.
  // Repeated epochs must therefore plateau, not grow the pool.
  constexpr unsigned kVars = 6;
  BddManager mgr(kVars);
  std::vector<Bdd> vars;
  for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.var(i));

  std::size_t after_first = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    mgr.begin_shared(2, TableMode::kLockFree);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        (void)dense_family(mgr, vars, t, 8);
      });
    }
    for (std::thread& th : threads) th.join();
    mgr.end_shared();
    mgr.gc();
    mgr.live_node_count();
    if (epoch == 0) after_first = mgr.stats().allocated_nodes;
  }
  // ≤ one arena block per thread of slack beyond the first epoch.
  EXPECT_LE(mgr.stats().allocated_nodes, after_first + 2 * 256);
}

// --------------------------------------------------------------------------
// Computed cache: overwrite races never alias keys
// --------------------------------------------------------------------------

TEST(BddLockFreeTest, CacheOverwriteRacesNeverReturnAForeignResult) {
  // A deliberately minuscule cache (4 entries) so dozens of distinct
  // keys fight over every slot. The invariant under test is the
  // wait-free cache's whole correctness argument: a reader may miss for
  // any reason, but a hit must carry the result stored with exactly the
  // probed key. Keys are synthetic (op is opaque to the cache) and each
  // key k's only ever-stored result is derived from k, so any aliasing
  // or torn read is immediately visible.
  BddManager mgr(1, /*cache_size_log2=*/2);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint32_t kKeys = 64;
  constexpr int kRoundsPerThread = 20000;
  const auto result_for = [](std::uint32_t k) -> NodeIndex {
    return k * 2654435761u;  // Any key-determined value works.
  };

  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> mismatches{0};
  mgr.begin_shared(kThreads, TableMode::kLockFree);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 13u);
        std::uniform_int_distribution<std::uint32_t> pick(0, kKeys - 1);
        for (int round = 0; round < kRoundsPerThread; ++round) {
          const std::uint32_t k = pick(rng);
          // op >= 1: 0 is the exclusive path's empty marker.
          const std::uint32_t op = 1 + (k % 7);
          if (round % 2 == 0) {
            mgr.debug_cache_store(op, k, k ^ 0x55u, k + 3, result_for(k));
          } else {
            NodeIndex out = 0;
            if (mgr.debug_cache_find(op, k, k ^ 0x55u, k + 3, &out)) {
              ++hits;
              if (out != result_for(k)) ++mismatches;
            }
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  mgr.end_shared();

  EXPECT_EQ(mismatches.load(), 0u);
  // The cache is lossy but not useless: with 4 slots and this much
  // traffic, *some* lookups must have hit.
  EXPECT_GT(hits.load(), 0u);
}

TEST(BddLockFreeTest, CacheEntriesFromBeforeClearCacheStopMatching) {
  // clear_cache's O(1) epoch bump must invalidate wait-free entries
  // exactly like striped/exclusive ones.
  BddManager mgr(1, /*cache_size_log2=*/2);
  mgr.begin_shared(1, TableMode::kLockFree);
  mgr.register_shard_thread();
  mgr.debug_cache_store(9, 1, 2, 3, 42);
  NodeIndex out = 0;
  EXPECT_TRUE(mgr.debug_cache_find(9, 1, 2, 3, &out));
  EXPECT_EQ(out, 42u);
  mgr.end_shared();

  mgr.clear_cache();

  mgr.begin_shared(1, TableMode::kLockFree);
  mgr.register_shard_thread();
  EXPECT_FALSE(mgr.debug_cache_find(9, 1, 2, 3, &out));
  mgr.end_shared();
}

// --------------------------------------------------------------------------
// Affinity guard and the exclusive-only contract
// --------------------------------------------------------------------------

TEST(BddLockFreeTest, UnregisteredThreadIsRejectedInLockFreeMode) {
  BddManager mgr(2);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  mgr.begin_shared(2, TableMode::kLockFree);
  std::thread outsider([&] {
    // Structured failure, not pool corruption — same guard as striped.
    EXPECT_THROW((void)(a & b), std::logic_error);
  });
  outsider.join();
  mgr.register_shard_thread();
  const Bdd conj = a & b;
  mgr.end_shared();
  EXPECT_FALSE(conj.is_false());
  EXPECT_TRUE(mgr.check_canonical());
}

TEST(BddLockFreeTest, StructuralMutationThrowsWhileShared) {
  // The remaining exclusive-only entry points are hard errors in release
  // builds too: nothing may move or relabel nodes under a shared epoch
  // of either table mode. gc() and clear_cache() are legal since the
  // epoch-based reclamation landed — they collect through the
  // stop-the-world-at-op-boundaries protocol instead of throwing.
  for (const TableMode mode : {TableMode::kLockFree, TableMode::kStriped}) {
    BddManager mgr(4);
    const Bdd keep = mgr.var(0) & mgr.var(1);
    mgr.begin_shared(1, mode);
    mgr.register_shard_thread();
    EXPECT_NO_THROW(mgr.gc());
    EXPECT_NO_THROW(mgr.clear_cache());
    EXPECT_FALSE((mgr.var(0) & mgr.var(1)).is_false());  // Still operable.
    EXPECT_THROW(mgr.new_var(), std::logic_error);
    EXPECT_THROW(mgr.live_node_count(), std::logic_error);
    EXPECT_THROW(mgr.reorder_sift(), std::logic_error);
    EXPECT_THROW(mgr.swap_adjacent_levels(0), std::logic_error);
    EXPECT_THROW(mgr.set_order({0, 1, 2, 3}), std::logic_error);
    EXPECT_THROW(mgr.begin_shared(2, mode), std::logic_error);
    mgr.end_shared();
    // And everything works again once the epoch is over.
    EXPECT_THROW(mgr.end_shared(), std::logic_error);
    mgr.gc();
    mgr.clear_cache();
    (void)mgr.new_var();
    (void)mgr.live_node_count();
    (void)mgr.reorder_sift();
    EXPECT_FALSE(keep.is_false());
    EXPECT_TRUE(mgr.check_canonical());
  }
}

TEST(BddLockFreeTest, TraversalsRunConcurrentlyWithBursts) {
  // Mixed load: half the threads build (unique-table pressure), half
  // traverse shared roots (sat_count / support / node_count, which size
  // their stamp arrays from the atomic allocation counter while the
  // pool grows under them).
  constexpr unsigned kVars = 8;
  constexpr std::size_t kThreads = 4;
  BddManager mgr(kVars);
  std::vector<Bdd> vars;
  std::vector<Var> over;
  for (unsigned i = 0; i < kVars; ++i) {
    vars.push_back(mgr.var(i));
    over.push_back(i);
  }
  Bdd root = mgr.bdd_false();
  for (unsigned i = 0; i + 1 < kVars; i += 2) {
    root |= vars[i] & !vars[i + 1];
  }
  const double expected = mgr.sat_count(root, over);

  mgr.begin_shared(kThreads, TableMode::kLockFree);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        if (t % 2 == 0) {
          (void)dense_family(mgr, vars, t, 20);
        } else {
          for (int i = 0; i < 50; ++i) {
            EXPECT_DOUBLE_EQ(mgr.sat_count(root, over), expected);
            (void)mgr.support(root);
            (void)mgr.node_count(root);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  mgr.end_shared();
  EXPECT_TRUE(mgr.check_canonical());
}

}  // namespace
}  // namespace covest::bdd
