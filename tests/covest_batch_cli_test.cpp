// Integration tests for the covest_batch CLI: manifest and stdin NDJSON
// modes, --jobs determinism, byte-level parity of batch lines with the
// serial engine, structured error lines and exit codes.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/result_json.h"

namespace covest {
namespace {

#if defined(COVEST_BATCH_TOOL_PATH) && defined(COVEST_SOURCE_DIR)

struct RunOutcome {
  int exit_code = -1;
  std::string output;  ///< stdout only (stderr separate keeps NDJSON pure).
};

RunOutcome run_shell(const std::string& cmd) {
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome outcome;
  if (pipe == nullptr) return outcome;
  std::array<char, 4096> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    outcome.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  outcome.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return outcome;
}

RunOutcome run_batch(const std::string& args) {
  return run_shell(std::string(COVEST_BATCH_TOOL_PATH) + " " + args +
                   " 2>/dev/null");
}

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// Writes a manifest of the given lines into the test's temp dir.
std::string write_manifest(const std::vector<std::string>& lines) {
  const std::string path =
      ::testing::TempDir() + "covest_batch_manifest.txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "# test manifest\n\n";
  for (const std::string& l : lines) out << l << "\n";
  return path;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

TEST(CovestBatchCliTest, ManifestModeEmitsOneValidJsonLinePerModel) {
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("arbiter.cov"),
       model_path("handshake.cov"), model_path("shift.cov"),
       model_path("traffic.cov")});
  const RunOutcome r = run_batch("--jobs 2 " + manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;

  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 5u);
  const char* names[] = {"counter", "arbiter", "handshake", "shift",
                         "traffic"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string err;
    EXPECT_TRUE(engine::validate_json(lines[i] + "\n", &err))
        << err << "\n" << lines[i];
    EXPECT_NE(lines[i].find(std::string("\"name\":\"") + names[i] + "\""),
              std::string::npos)
        << "line " << i << " out of order: " << lines[i];
  }
}

TEST(CovestBatchCliTest, JobsFourIsByteIdenticalToJobsOne) {
  // The CLI face of the determinism satellite: the whole NDJSON stream
  // (rows, percentages, holes) must not depend on the worker count.
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("arbiter.cov")});
  const RunOutcome serial = run_batch("--jobs 1 " + manifest);
  const RunOutcome parallel = run_batch("--jobs 4 " + manifest);
  const RunOutcome sharded = run_batch("--jobs 4 --shards 3 " + manifest);
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(parallel.exit_code, 0);
  EXPECT_EQ(sharded.exit_code, 0);
  EXPECT_EQ(serial.output, parallel.output);
  EXPECT_EQ(serial.output, sharded.output);
}

TEST(CovestBatchCliTest, BatchLinesMatchTheSerialEngineByteForByte) {
  // One NDJSON line == the serial engine's deterministic serialization
  // of the same request: the acceptance parity between covest_batch and
  // coverage_tool's engine output.
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("traffic.cov")});
  const RunOutcome batch = run_batch("--jobs 4 " + manifest);
  ASSERT_EQ(batch.exit_code, 0);

  std::string expected;
  for (const char* name : {"counter.cov", "traffic.cov"}) {
    engine::CoverageRequest req;
    req.model_path = model_path(name);
    engine::JsonOptions opts;
    opts.pretty = false;
    opts.include_stats = false;
    expected += engine::to_json(engine::Engine().run(req), opts);
  }
  EXPECT_EQ(batch.output, expected);
}

TEST(CovestBatchCliTest, StdinNdjsonRequestsRunInOrder) {
  const std::string requests =
      "{\"model_path\": \"" + model_path("traffic.cov") + "\"}\n" +
      "{\"model_path\": \"" + model_path("counter.cov") + "\", "
      "\"uncovered_limit\": 0}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + requests + "' | " + COVEST_BATCH_TOOL_PATH +
      " --jobs 2 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\":\"traffic\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"uncovered\":[]"), std::string::npos);
}

TEST(CovestBatchCliTest, StdinKeepsLinePairingForCommentLikeGarbage) {
  // Stdin is a machine contract: a '#' line is not silently skipped (as
  // in hand-written manifests) but answered with an error line, so
  // request i always pairs with output line i.
  const std::string input =
      "# not a comment on stdin\n"
      "{\"model_path\": \"" + model_path("counter.cov") + "\"}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + input + "' | " + COVEST_BATCH_TOOL_PATH +
      " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
}

TEST(CovestBatchCliTest, RelativePathsResolveAgainstTheManifestDir) {
  // Bare path lines and JSON model_path fields follow the same rule, so
  // one manifest works from any working directory.
  const std::string dir = ::testing::TempDir();
  {
    std::ifstream src(model_path("counter.cov"), std::ios::binary);
    std::ofstream dst(dir + "counter.cov", std::ios::binary);
    dst << src.rdbuf();
  }
  const std::string manifest = dir + "relative_manifest.txt";
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << "counter.cov\n";
    out << "{\"model_path\": \"counter.cov\"}\n";
  }
  const RunOutcome r = run_batch(manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);  // Same model, same request defaults.
  EXPECT_NE(lines[0].find("\"name\":\"counter\""), std::string::npos);
}

TEST(CovestBatchCliTest, BadJobsAreErrorLinesAndNonzeroExit) {
  // A missing model file and an unparsable request line both produce a
  // structured error line in place, without aborting the other jobs.
  const std::string manifest = write_manifest(
      {"/nonexistent/model.cov", model_path("counter.cov"),
       "{\"this is\": not json"});
  const RunOutcome r = run_batch("--jobs 2 " + manifest);
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"error\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\""), std::string::npos) << lines[2];
  for (const std::string& line : lines) {
    std::string err;
    EXPECT_TRUE(engine::validate_json(line + "\n", &err)) << err;
  }
}

TEST(CovestBatchCliTest, RequestValidationErrorsSurfacePerJob) {
  const std::string requests =
      "{\"model_path\": \"" + model_path("counter.cov") +
      "\", \"signals\": [\"bogus\"]}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + requests + "' | " + COVEST_BATCH_TOOL_PATH +
      " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("bogus"), std::string::npos) << r.output;
}

TEST(CovestBatchCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_batch("--jobs nope /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--shards 0 /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--bogus-flag /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("/nonexistent/manifest.txt").exit_code, 2);
  EXPECT_EQ(run_batch("a.txt b.txt").exit_code, 2);
}

TEST(CovestBatchCliTest, EmptyStdinIsAnEmptySuccessfulBatch) {
  const RunOutcome r = run_shell(std::string(": | ") +
                                 COVEST_BATCH_TOOL_PATH + " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(r.output.empty()) << r.output;
}

#else

TEST(CovestBatchCliTest, DISABLED_NeedsBatchBinary) {}

#endif

}  // namespace
}  // namespace covest
