// Integration tests for the covest_batch CLI: manifest and stdin NDJSON
// modes, --jobs determinism, byte-level parity of batch lines with the
// serial engine, structured error lines and exit codes.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "cli_harness.h"
#include "engine/engine.h"
#include "engine/result_json.h"

namespace covest {
namespace {

#if defined(COVEST_BATCH_TOOL_PATH) && defined(COVEST_SOURCE_DIR)

using testutil::RunOutcome;
using testutil::model_path;
using testutil::run_shell;
using testutil::split_lines;
using testutil::write_manifest;

/// stdout only (stderr discarded keeps the captured NDJSON pure).
RunOutcome run_batch(const std::string& args) {
  return run_shell(std::string(COVEST_BATCH_TOOL_PATH) + " " + args +
                   " 2>/dev/null");
}

TEST(CovestBatchCliTest, ManifestModeEmitsOneValidJsonLinePerModel) {
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("arbiter.cov"),
       model_path("handshake.cov"), model_path("shift.cov"),
       model_path("traffic.cov")});
  const RunOutcome r = run_batch("--jobs 2 " + manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;

  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 5u);
  const char* names[] = {"counter", "arbiter", "handshake", "shift",
                         "traffic"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string err;
    EXPECT_TRUE(engine::validate_json(lines[i] + "\n", &err))
        << err << "\n" << lines[i];
    EXPECT_NE(lines[i].find(std::string("\"name\":\"") + names[i] + "\""),
              std::string::npos)
        << "line " << i << " out of order: " << lines[i];
  }
}

TEST(CovestBatchCliTest, JobsFourIsByteIdenticalToJobsOne) {
  // The CLI face of the determinism satellite: the whole NDJSON stream
  // (rows, percentages, holes) must not depend on the worker count.
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("arbiter.cov")});
  const RunOutcome serial = run_batch("--jobs 1 " + manifest);
  const RunOutcome parallel = run_batch("--jobs 4 " + manifest);
  const RunOutcome sharded = run_batch("--jobs 4 --shards 3 " + manifest);
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(parallel.exit_code, 0);
  EXPECT_EQ(sharded.exit_code, 0);
  EXPECT_EQ(serial.output, parallel.output);
  EXPECT_EQ(serial.output, sharded.output);
}

TEST(CovestBatchCliTest, BatchLinesMatchTheSerialEngineByteForByte) {
  // One NDJSON line == the serial engine's deterministic serialization
  // of the same request: the acceptance parity between covest_batch and
  // coverage_tool's engine output.
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("traffic.cov")});
  const RunOutcome batch = run_batch("--jobs 4 " + manifest);
  ASSERT_EQ(batch.exit_code, 0);

  std::string expected;
  for (const char* name : {"counter.cov", "traffic.cov"}) {
    engine::CoverageRequest req;
    req.model_path = model_path(name);
    engine::JsonOptions opts;
    opts.pretty = false;
    opts.include_stats = false;
    expected += engine::to_json(engine::Engine().run(req), opts);
  }
  EXPECT_EQ(batch.output, expected);
}

TEST(CovestBatchCliTest, StdinNdjsonRequestsRunInOrder) {
  const std::string requests =
      "{\"model_path\": \"" + model_path("traffic.cov") + "\"}\n" +
      "{\"model_path\": \"" + model_path("counter.cov") + "\", "
      "\"uncovered_limit\": 0}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + requests + "' | " + COVEST_BATCH_TOOL_PATH +
      " --jobs 2 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\":\"traffic\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"uncovered\":[]"), std::string::npos);
}

TEST(CovestBatchCliTest, StdinKeepsLinePairingForCommentLikeGarbage) {
  // Stdin is a machine contract: a '#' line is not silently skipped (as
  // in hand-written manifests) but answered with an error line, so
  // request i always pairs with output line i.
  const std::string input =
      "# not a comment on stdin\n"
      "{\"model_path\": \"" + model_path("counter.cov") + "\"}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + input + "' | " + COVEST_BATCH_TOOL_PATH +
      " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
}

TEST(CovestBatchCliTest, RelativePathsResolveAgainstTheManifestDir) {
  // Bare path lines and JSON model_path fields follow the same rule, so
  // one manifest works from any working directory.
  const std::string dir = ::testing::TempDir();
  {
    std::ifstream src(model_path("counter.cov"), std::ios::binary);
    std::ofstream dst(dir + "counter.cov", std::ios::binary);
    dst << src.rdbuf();
  }
  const std::string manifest = dir + "relative_manifest.txt";
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << "counter.cov\n";
    out << "{\"model_path\": \"counter.cov\"}\n";
  }
  const RunOutcome r = run_batch(manifest);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);  // Same model, same request defaults.
  EXPECT_NE(lines[0].find("\"name\":\"counter\""), std::string::npos);
}

TEST(CovestBatchCliTest, BadJobsAreErrorLinesAndNonzeroExit) {
  // A missing model file and an unparsable request line both produce a
  // structured error line in place, without aborting the other jobs.
  const std::string manifest = write_manifest(
      {"/nonexistent/model.cov", model_path("counter.cov"),
       "{\"this is\": not json"});
  const RunOutcome r = run_batch("--jobs 2 " + manifest);
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"error\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"error\""), std::string::npos) << lines[2];
  for (const std::string& line : lines) {
    std::string err;
    EXPECT_TRUE(engine::validate_json(line + "\n", &err)) << err;
  }
}

TEST(CovestBatchCliTest, RequestValidationErrorsSurfacePerJob) {
  const std::string requests =
      "{\"model_path\": \"" + model_path("counter.cov") +
      "\", \"signals\": [\"bogus\"]}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + requests + "' | " + COVEST_BATCH_TOOL_PATH +
      " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("bogus"), std::string::npos) << r.output;
}

TEST(CovestBatchCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_batch("--jobs nope /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--shards 0 /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--bogus-flag /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("/nonexistent/manifest.txt").exit_code, 2);
  EXPECT_EQ(run_batch("a.txt b.txt").exit_code, 2);
  // Governance flags demand positive integers: 0 is spelled by omission.
  EXPECT_EQ(run_batch("--deadline-ms 0 /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--deadline-ms soon /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--max-nodes nope /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--max-nodes 0 /dev/null").exit_code, 2);
  EXPECT_EQ(run_batch("--max-queue 0 /dev/null").exit_code, 2);
}

TEST(CovestBatchCliTest, ResourceLimitedJobsExitThreeWithStatusLines) {
  // A starved node budget must not abort the batch: the limited job
  // gets a structured status line, the healthy job still completes, and
  // the whole batch exits 3 (resource-limited trumps 1/0).
  const std::string requests =
      "{\"model_path\": \"" + model_path("traffic.cov") +
      "\", \"max_live_nodes\": 8}\n" +
      "{\"model_path\": \"" + model_path("counter.cov") + "\"}\n";
  const RunOutcome r = run_shell(
      "printf '%s' '" + requests + "' | " + COVEST_BATCH_TOOL_PATH +
      " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  const std::vector<std::string> lines = split_lines(r.output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":\"resource_exhausted\""),
            std::string::npos)
      << lines[0];
  EXPECT_EQ(lines[0].find("\"error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"name\":\"counter\""), std::string::npos);
  for (const std::string& line : lines) {
    std::string err;
    EXPECT_TRUE(engine::validate_json(line + "\n", &err)) << err;
  }
}

TEST(CovestBatchCliTest, MaxNodesFlagCapsEveryJobInTheBatch) {
  const std::string manifest = write_manifest({model_path("traffic.cov")});
  const RunOutcome r = run_batch("--max-nodes 8 " + manifest);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("\"status\":\"resource_exhausted\""),
            std::string::npos)
      << r.output;
}

TEST(CovestBatchCliTest, GenerousLimitsAreByteIdenticalToNoLimits) {
  // The zero-cost contract at the CLI face: a batch run under limits it
  // never hits emits exactly the bytes of an unlimited run.
  const std::string manifest = write_manifest(
      {model_path("counter.cov"), model_path("arbiter.cov")});
  const RunOutcome unlimited = run_batch("--jobs 2 " + manifest);
  const RunOutcome governed = run_batch(
      "--jobs 2 --deadline-ms 3600000 --max-nodes 100000000 --max-queue 64 " +
      manifest);
  EXPECT_EQ(unlimited.exit_code, 0);
  EXPECT_EQ(governed.exit_code, 0);
  EXPECT_EQ(unlimited.output, governed.output);
}

TEST(CovestBatchCliTest, EmptyStdinIsAnEmptySuccessfulBatch) {
  const RunOutcome r = run_shell(std::string(": | ") +
                                 COVEST_BATCH_TOOL_PATH + " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(r.output.empty()) << r.output;
}

#else

TEST(CovestBatchCliTest, DISABLED_NeedsBatchBinary) {}

#endif

}  // namespace
}  // namespace covest
