// The Correctness Theorem as an executable property: the symbolic Table-1
// covered set equals the brute-force Definition-3 covered set of the
// observability-transformed formula, on randomized models and formulas as
// well as on the benchmark circuits.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "circuits/circuits.h"
#include "core/coverage.h"
#include "core/coverage_oracle.h"
#include "core/observed.h"
#include "ctl/checker.h"
#include "ctl/ctl_parser.h"
#include "fsm/symbolic_fsm.h"
#include "xstate/explicit_model.h"

namespace covest::core {
namespace {

using bdd::Bdd;
using ctl::Formula;
using expr::Expr;

/// Enumerates a symbolic state set as explicit-model state indices.
std::vector<std::size_t> to_explicit_indices(const fsm::SymbolicFsm& fsm,
                                             const xstate::ExplicitModel& xm,
                                             const Bdd& set) {
  std::vector<std::size_t> out;
  for (const auto& minterm :
       fsm.mgr().enumerate_minterms(set, fsm.current_vars(),
                                    xm.num_states() + 1)) {
    out.push_back(xm.index_of(fsm.decode_state(minterm)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Checks symbolic covered set == Definition-3 covered set; returns false
/// if the property does not hold (so callers can skip).
::testing::AssertionResult covered_sets_agree(const model::Model& m,
                                              const Formula& f,
                                              const ObservedSignal& q) {
  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker mc(fsm);
  if (!mc.holds(ctl::collapse_propositional(f))) {
    return ::testing::AssertionFailure() << "property does not hold";
  }
  CoverageEstimator estimator(mc);
  const Bdd covered = estimator.covered_set(f, q);

  xstate::ExplicitModel xm(m);
  const Def3Result oracle = definition3_covered(xm, f, q, true);

  const auto symbolic = to_explicit_indices(fsm, xm, covered);
  if (symbolic == oracle.covered) return ::testing::AssertionSuccess();

  auto show = [](const std::vector<std::size_t>& v) {
    std::string s;
    for (std::size_t i = 0; i < v.size() && i < 20; ++i) {
      s += std::to_string(v[i]) + " ";
    }
    return s;
  };
  return ::testing::AssertionFailure()
         << "covered sets differ for " << ctl::to_string(f) << " observing "
         << q.to_string() << "\n  symbolic: " << show(symbolic)
         << "\n  oracle:   " << show(oracle.covered);
}

// --------------------------------------------------------------------------
// Hand-picked cases: figures and paper shapes
// --------------------------------------------------------------------------

TEST(CoverageOracleTest, Figure1) {
  const model::Model m = circuits::make_fig1_graph();
  EXPECT_TRUE(covered_sets_agree(m, circuits::fig1_formula(),
                                 observe_bool(m, "q")));
}

TEST(CoverageOracleTest, Figure2Transformed) {
  const model::Model m = circuits::make_fig2_graph();
  EXPECT_TRUE(covered_sets_agree(m, circuits::fig2_formula(),
                                 observe_bool(m, "q")));
  EXPECT_TRUE(covered_sets_agree(m, circuits::fig2_formula(),
                                 observe_bool(m, "p1")));
}

TEST(CoverageOracleTest, Figure2NaiveCoverageIsZero) {
  // The faithful Definition-3 semantics on the *original* formula: no
  // state is covered, the anomaly motivating the transformation.
  const model::Model m = circuits::make_fig2_graph();
  xstate::ExplicitModel xm(m);
  const Def3Result naive = definition3_covered(
      xm, circuits::fig2_formula(), observe_bool(m, "q"), false);
  EXPECT_TRUE(naive.covered.empty());
}

TEST(CoverageOracleTest, Figure3BothSignals) {
  const model::Model m = circuits::make_fig3_graph();
  EXPECT_TRUE(covered_sets_agree(m, circuits::fig3_formula(),
                                 observe_bool(m, "f1")));
  EXPECT_TRUE(covered_sets_agree(m, circuits::fig3_formula(),
                                 observe_bool(m, "f2")));
}

TEST(CoverageOracleTest, CounterIntroFormula) {
  const model::Model m = circuits::make_mod_counter({3, 5});
  const Formula f = ctl::parse_ctl(
      "AG (!stall & !reset & count == 2 -> AX (count == 3))");
  for (const auto& q : observe_all_bits(m, "count")) {
    EXPECT_TRUE(covered_sets_agree(m, f, q)) << q.to_string();
  }
}

TEST(CoverageOracleTest, NestedUntilPaperShape) {
  const model::Model m = circuits::make_fig3_graph();
  // AG(f1 -> A[f1 U f2]) exercises implication + until nesting.
  const Formula f = ctl::parse_ctl("AG (f1 -> A[f1 U f2])");
  EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, "f2")));
  EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, "f1")));
}

TEST(CoverageOracleTest, AFDesugarsToUntil) {
  const model::Model m = circuits::make_fig2_graph();
  const Formula f = ctl::parse_ctl("AF q");
  EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, "q")));
}

// --------------------------------------------------------------------------
// Benchmark circuits (downsized so the oracle stays fast)
// --------------------------------------------------------------------------

TEST(CoverageOracleTest, QueueWrapProperties) {
  const circuits::CircularQueueSpec spec{2};
  const model::Model m = circuits::make_circular_queue(spec);
  const ObservedSignal wrap = observe_bool(m, "wrap");
  for (const Formula& f : circuits::queue_wrap_properties_initial(spec)) {
    EXPECT_TRUE(covered_sets_agree(m, f, wrap)) << ctl::to_string(f);
  }
  EXPECT_TRUE(covered_sets_agree(
      m, circuits::queue_wrap_stall_property(spec), wrap));
}

TEST(CoverageOracleTest, QueueFullEmptyDefineObservations) {
  // Observed signals that are DEFINEs, including iff-shaped atoms.
  const circuits::CircularQueueSpec spec{2};
  const model::Model m = circuits::make_circular_queue(spec);
  for (const Formula& f : circuits::queue_full_properties(spec)) {
    EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, "full")))
        << ctl::to_string(f);
  }
  for (const Formula& f : circuits::queue_empty_properties(spec)) {
    EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, "empty")))
        << ctl::to_string(f);
  }
}

TEST(CoverageOracleTest, PipelineWithFairness) {
  // stages=1, hold=2 keeps the explicit model at 2^9 states. Fairness is
  // active (FAIRNESS !stall), so this validates Section 4.3 end to end.
  const circuits::PipelineSpec spec{1, 2};
  const model::Model m = circuits::make_pipeline(spec);
  const ObservedSignal out = observe_bool(m, "out");
  for (const Formula& f : circuits::pipeline_properties_initial(spec)) {
    EXPECT_TRUE(covered_sets_agree(m, f, out)) << ctl::to_string(f);
  }
}

TEST(CoverageOracleTest, PipelineHoldProperties) {
  const circuits::PipelineSpec spec{1, 2};
  const model::Model m = circuits::make_pipeline(spec);
  const ObservedSignal out = observe_bool(m, "out");
  for (const Formula& f : circuits::pipeline_hold_properties(spec)) {
    EXPECT_TRUE(covered_sets_agree(m, f, out)) << ctl::to_string(f);
  }
}

// --------------------------------------------------------------------------
// Randomized sweep (the theorem on arbitrary small machines)
// --------------------------------------------------------------------------

model::Model random_model(std::mt19937& rng) {
  model::ModelBuilder b("rand");
  const Expr x = b.state_bool("x", false);
  const Expr y = b.state_bool("y", false);
  const Expr in = b.input_bool("in");
  const std::vector<Expr> pool{x,  y,  in, x ^ y, x & in, !y, x | y,
                               !x, !in};
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  const auto rand_expr = [&] {
    Expr e = pool[pick(rng)];
    if (pick(rng) % 2 == 0) e = e ^ pool[pick(rng)];
    return e;
  };
  b.next("x", rand_expr());
  b.next("y", rand_expr());
  return b.build();
}

Expr random_atom(std::mt19937& rng) {
  const std::vector<const char*> names{"x", "y", "in"};
  std::uniform_int_distribution<std::size_t> pick(0, 5);
  Expr e = Expr::var(names[pick(rng) % names.size()]);
  switch (pick(rng)) {
    case 0: e = !e; break;
    case 1: e = e | Expr::var(names[pick(rng) % names.size()]); break;
    case 2: e = e & Expr::var(names[pick(rng) % names.size()]); break;
    case 3: e = e | !Expr::var(names[pick(rng) % names.size()]); break;
    default: break;
  }
  return e;
}

/// Random formula from the acceptable ACTL grammar (Section 2.1).
Formula random_acceptable(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, 6);
  if (depth == 0) return Formula::prop(random_atom(rng));
  switch (pick(rng)) {
    case 0: return Formula::prop(random_atom(rng));
    case 1:
      return Formula::prop(random_atom(rng))
          .implies(random_acceptable(rng, depth - 1));
    case 2: return Formula::AX(random_acceptable(rng, depth - 1));
    case 3: return Formula::AG(random_acceptable(rng, depth - 1));
    case 4:
      return Formula::AU(random_acceptable(rng, depth - 1),
                         random_acceptable(rng, depth - 1));
    case 5:
      return random_acceptable(rng, depth - 1) &
             random_acceptable(rng, depth - 1);
    default: return Formula::AF(random_acceptable(rng, depth - 1));
  }
}

class CoverageTheoremSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoverageTheoremSweep, SymbolicEqualsDefinition3) {
  std::mt19937 rng(GetParam() + 9000);
  const model::Model m = random_model(rng);
  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker mc(fsm);

  int tested = 0;
  for (int trial = 0; trial < 40 && tested < 4; ++trial) {
    const Formula f =
        ctl::collapse_propositional(random_acceptable(rng, 3));
    if (!mc.holds(f)) continue;
    ++tested;
    for (const char* sig : {"x", "y", "in"}) {
      EXPECT_TRUE(covered_sets_agree(m, f, observe_bool(m, sig)))
          << "signal " << sig;
    }
  }
  // Random verified properties are common enough that an empty sweep
  // would indicate a generator bug.
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageTheoremSweep, ::testing::Range(0, 25));

// --------------------------------------------------------------------------
// Definition-3 consequences (minimality / uniqueness spot checks)
// --------------------------------------------------------------------------

TEST(Definition3Test, FlipInsideCoveredFalsifiesOutsideKeeps) {
  const model::Model m = circuits::make_fig1_graph();
  const ObservedSignal q = observe_bool(m, "q");
  xstate::ExplicitModel xm(m);
  const Def3Result r =
      definition3_covered(xm, circuits::fig1_formula(), q, true);
  // By construction of the oracle these two assertions are what it
  // computed; re-assert them through the public API for documentation.
  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    if (!xm.reachable()[s]) continue;
    const bool covered =
        std::binary_search(r.covered.begin(), r.covered.end(), s);
    // Unreachable from the initial states or not: flipping q outside the
    // covered set keeps the transformed property true.
    (void)covered;
  }
  EXPECT_FALSE(r.covered.empty());
}

TEST(Definition3Test, UnverifiedPropertyIsRejected) {
  const model::Model m = circuits::make_fig2_graph();
  xstate::ExplicitModel xm(m);
  EXPECT_THROW(definition3_covered(xm, ctl::parse_ctl("AG !q"),
                                   observe_bool(m, "q"), true),
               std::runtime_error);
}

}  // namespace
}  // namespace covest::core
