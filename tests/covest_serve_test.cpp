// Integration tests for covest_serve, the long-lived NDJSON coverage
// server: wire parity with covest_batch (including under concurrent
// clients), the warm model cache (byte-identical repeats that skip
// elaborate/verify), the /metrics surface, governance statuses over the
// wire, malformed/oversize input robustness, connection-cap admission
// and the SIGTERM drain contract.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_harness.h"
#include "engine/json.h"

namespace covest {
namespace {

#if defined(COVEST_SERVE_PATH) && defined(COVEST_BATCH_TOOL_PATH) && \
    defined(COVEST_SOURCE_DIR)

using testutil::RunOutcome;
using testutil::ServerProcess;
using testutil::TcpClient;
using testutil::model_path;
using testutil::run_shell;
using testutil::split_lines;

/// A JSON request line for one of the checked-in example models
/// (absolute path — the server resolves relative paths against *its*
/// cwd, which is not the test's).
std::string request_line(const char* name) {
  return "{\"model_path\": \"" + model_path(name) + "\"}";
}

/// What covest_batch (serial, default options) prints for `lines` on
/// stdin — the byte-level contract every server reply is held to.
std::vector<std::string> batch_lines(const std::vector<std::string>& lines) {
  const std::string path = ::testing::TempDir() + "covest_serve_requests.txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const std::string& l : lines) out << l << "\n";
  out.close();
  const RunOutcome r = run_shell(std::string(COVEST_BATCH_TOOL_PATH) + " < " +
                                 path + " 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  return split_lines(r.output);
}

const engine::json::Value* find(const engine::json::Value& v,
                                const std::string& key) {
  if (v.type != engine::json::Value::Type::kObject) return nullptr;
  for (const auto& kv : v.object) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

/// Numeric member at `path` (ADD_FAILURE + -1 when absent).
double num_at(const engine::json::Value& root,
              const std::vector<std::string>& path) {
  const engine::json::Value* v = &root;
  for (const std::string& key : path) {
    v = find(*v, key);
    if (v == nullptr) {
      ADD_FAILURE() << "missing JSON member '" << key << "'";
      return -1.0;
    }
  }
  return v->number;
}

// --------------------------------------------------------------------------
// Wire parity
// --------------------------------------------------------------------------

TEST(CovestServeTest, FourConcurrentClientsMatchSerialBatchByteForByte) {
  const std::vector<std::string> requests = {
      request_line("counter.cov"), request_line("arbiter.cov"),
      request_line("handshake.cov"), request_line("shift.cov"),
      request_line("traffic.cov")};
  const std::vector<std::string> expected = batch_lines(requests);
  ASSERT_EQ(expected.size(), requests.size());

  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "4"}));

  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> replies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpClient client;
      if (!client.connect_to(server.port())) return;
      for (const std::string& r : requests) client.send_line(r);
      client.shutdown_write();
      for (std::size_t i = 0; i < requests.size(); ++i) {
        replies[c].push_back(client.recv_line());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Every client sees the full serial-batch stream, in its own submit
  // order, byte for byte — concurrency and the shared cache must not
  // leak into the payload.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(replies[c].size(), expected.size()) << "client " << c;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(replies[c][i], expected[i]) << "client " << c << " line " << i;
    }
  }

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

// --------------------------------------------------------------------------
// Warm model cache
// --------------------------------------------------------------------------

TEST(CovestServeTest, WarmRepeatIsByteIdenticalToColdAcrossConnections) {
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "2"}));

  TcpClient a;
  ASSERT_TRUE(a.connect_to(server.port()));
  ASSERT_TRUE(a.send_line(request_line("counter.cov")));
  const std::string cold = a.recv_line();
  ASSERT_TRUE(a.send_line(request_line("counter.cov")));
  const std::string warm = a.recv_line();
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm);

  // The cache is shared across connections, not per-connection.
  TcpClient b;
  ASSERT_TRUE(b.connect_to(server.port()));
  ASSERT_TRUE(b.send_line(request_line("counter.cov")));
  EXPECT_EQ(b.recv_line(), cold);

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

TEST(CovestServeTest, WarmRepeatSkipsElaborateAndVerifyPhases) {
  // --stats exposes PhaseStats over the wire: a cold suite elaborates
  // and verifies once (passes == 1), a warm repeat leases the parked
  // session and replays the verified-suite record (passes == 0) — the
  // acceptance assertion that repeats skip parse/elaborate/verify.
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH,
                           {"--port", "0", "--jobs", "1", "--stats"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  const engine::json::Value cold = engine::json::parse(client.recv_line());
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  const engine::json::Value warm = engine::json::parse(client.recv_line());

  EXPECT_EQ(num_at(cold, {"stats", "elaborate", "passes"}), 1.0);
  EXPECT_EQ(num_at(cold, {"stats", "verify", "passes"}), 1.0);
  EXPECT_EQ(num_at(warm, {"stats", "elaborate", "passes"}), 0.0);
  EXPECT_EQ(num_at(warm, {"stats", "verify", "passes"}), 0.0);
  // Estimation always runs — that's the per-request half of the split.
  EXPECT_EQ(num_at(cold, {"stats", "estimate", "passes"}), 1.0);
  EXPECT_EQ(num_at(warm, {"stats", "estimate", "passes"}), 1.0);

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

TEST(CovestServeTest, MaintenanceWindowRunsAndKeepsRepliesByteIdentical) {
  // --gc-interval 1: after every completed suite the background thread
  // takes the executor's stop-the-world window and GCs the parked
  // sessions. Replies before/after a window must stay byte-identical
  // (maintenance reclaims garbage, never live structure).
  ServerProcess server;
  ASSERT_TRUE(server.start(
      COVEST_SERVE_PATH,
      {"--port", "0", "--jobs", "2", "--gc-interval", "1"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(request_line("arbiter.cov")));
  const std::string cold = client.recv_line();
  ASSERT_FALSE(cold.empty());

  // The window is asynchronous; poll metrics until it has run.
  double runs = 0.0;
  for (int i = 0; i < 250 && runs < 1.0; ++i) {
    ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
    const engine::json::Value m = engine::json::parse(client.recv_line());
    runs = num_at(m, {"metrics", "maintenance", "runs"});
    if (runs < 1.0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(runs, 1.0);

  // A warm replay through a GC'd session is still byte-identical.
  ASSERT_TRUE(client.send_line(request_line("arbiter.cov")));
  EXPECT_EQ(client.recv_line(), cold);

  ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
  const engine::json::Value m = engine::json::parse(client.recv_line());
  EXPECT_EQ(num_at(m, {"metrics", "maintenance", "interval"}), 1.0);
  EXPECT_GE(num_at(m, {"metrics", "maintenance", "sessions"}), 1.0);
  EXPECT_GE(num_at(m, {"metrics", "maintenance", "live_nodes_after"}), 1.0);

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

// --------------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------------

TEST(CovestServeTest, MetricsLinesAreImmediateMonotonicAndConsistent) {
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "2"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));

  ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
  const engine::json::Value m0 = engine::json::parse(client.recv_line());
  EXPECT_EQ(num_at(m0, {"metrics", "suites", "total"}), 0.0);
  EXPECT_EQ(num_at(m0, {"metrics", "cache", "misses"}), 0.0);
  EXPECT_GE(num_at(m0, {"metrics", "connections", "active"}), 1.0);

  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  ASSERT_FALSE(client.recv_line().empty());
  ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
  const std::string raw1 = client.recv_line();
  const engine::json::Value m1 = engine::json::parse(raw1);
  EXPECT_EQ(num_at(m1, {"metrics", "suites", "total"}), 1.0);
  EXPECT_EQ(num_at(m1, {"metrics", "suites", "ok"}), 1.0);
  EXPECT_EQ(num_at(m1, {"metrics", "cache", "misses"}), 1.0);
  EXPECT_EQ(num_at(m1, {"metrics", "cache", "hits"}), 0.0);
  EXPECT_EQ(num_at(m1, {"metrics", "cache", "entries"}), 1.0);
  EXPECT_EQ(num_at(m1, {"metrics", "queue_depth"}), 0.0);
  EXPECT_GT(num_at(m1, {"metrics", "suites", "per_sec"}), 0.0);
  EXPECT_GT(num_at(m1, {"metrics", "cache", "live_nodes"}), 0.0);

  // Format contract on the raw wire bytes: uptime_ms is a plain
  // integer — a default-precision ostringstream used to flip it into
  // scientific notation ("1.00735e+06") once the server had been up
  // ~16.7 minutes, breaking naive metric scrapers — and the rates are
  // fixed-point, never exponent-form.
  const auto field_text = [&raw1](const char* name) {
    const std::string tag = std::string("\"") + name + "\":";
    const std::size_t at = raw1.find(tag);
    EXPECT_NE(at, std::string::npos) << name << " missing in " << raw1;
    if (at == std::string::npos) return std::string();
    std::size_t end = at + tag.size();
    while (end < raw1.size() && raw1[end] != ',' && raw1[end] != '}') ++end;
    return raw1.substr(at + tag.size(), end - (at + tag.size()));
  };
  const std::string uptime_text = field_text("uptime_ms");
  EXPECT_EQ(uptime_text.find_first_not_of("0123456789"), std::string::npos)
      << "uptime_ms not a plain integer: " << uptime_text;
  const std::string per_sec_text = field_text("per_sec");
  EXPECT_EQ(per_sec_text.find_first_of("eE+"), std::string::npos)
      << "per_sec not fixed-point: " << per_sec_text;

  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  ASSERT_FALSE(client.recv_line().empty());
  ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
  const engine::json::Value m2 = engine::json::parse(client.recv_line());
  EXPECT_EQ(num_at(m2, {"metrics", "suites", "total"}), 2.0);
  EXPECT_EQ(num_at(m2, {"metrics", "suites", "ok"}), 2.0);
  EXPECT_EQ(num_at(m2, {"metrics", "cache", "hits"}), 1.0);
  EXPECT_EQ(num_at(m2, {"metrics", "cache", "misses"}), 1.0);
  EXPECT_GE(num_at(m2, {"metrics", "uptime_ms"}),
            num_at(m1, {"metrics", "uptime_ms"}));

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

// --------------------------------------------------------------------------
// Governance statuses over the wire
// --------------------------------------------------------------------------

TEST(CovestServeTest, InjectedDeadlineStatusTravelsTheWire) {
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "1"},
                           "COVEST_SERVE_FAULT=deadline:1"));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  const std::string line = client.recv_line();
  EXPECT_NE(line.find("\"status\":\"deadline_exceeded\""), std::string::npos)
      << line;
  client.close();

  // A resource-limited suite makes the batch-compatible exit code 3.
  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 3);
}

TEST(CovestServeTest, NodeBudgetDefaultAppliesAndARequestOverridesIt) {
  // Server flags are defaults, not clamps: --max-nodes 8 exhausts any
  // real model, but a request carrying its own max_live_nodes wins.
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH,
                           {"--port", "0", "--jobs", "1", "--max-nodes", "8"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  const std::string limited = client.recv_line();
  EXPECT_NE(limited.find("\"status\":\"resource_exhausted\""),
            std::string::npos)
      << limited;

  ASSERT_TRUE(client.send_line("{\"model_path\": \"" +
                               model_path("counter.cov") +
                               "\", \"max_live_nodes\": 100000000}"));
  const std::string generous = client.recv_line();
  EXPECT_EQ(generous.find("\"status\":"), std::string::npos) << generous;
  EXPECT_NE(generous.find("\"all_passed\":true"), std::string::npos)
      << generous;

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 3);
}

// --------------------------------------------------------------------------
// Input robustness
// --------------------------------------------------------------------------

TEST(CovestServeTest, MalformedLinesGetOneErrorLineEachAndTheStreamLivesOn) {
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "1"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line("garbage that is not json"));
  ASSERT_TRUE(client.send_line("{\"model_path\": "));  // Truncated JSON.
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));

  const std::string not_json = client.recv_line();
  EXPECT_NE(not_json.find("\"status\":\"error\""), std::string::npos)
      << not_json;
  EXPECT_NE(not_json.find("must be JSON requests"), std::string::npos)
      << not_json;
  const std::string truncated = client.recv_line();
  EXPECT_NE(truncated.find("\"status\":\"error\""), std::string::npos)
      << truncated;
  const std::string ok = client.recv_line();
  EXPECT_NE(ok.find("\"all_passed\":true"), std::string::npos) << ok;
  EXPECT_FALSE(client.eof());

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 1);  // The error lines count against exit 0.
}

TEST(CovestServeTest, OversizeLineIsRejectedImmediatelyAndTheStreamResyncs) {
  ServerProcess server;
  ASSERT_TRUE(server.start(
      COVEST_SERVE_PATH,
      {"--port", "0", "--jobs", "1", "--max-line-bytes", "128"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  // The rejection must not wait for the newline — it fires as soon as
  // the cap is crossed, so a client streaming an unbounded line gets
  // told off while still sending.
  ASSERT_TRUE(client.send_raw(std::string(512, 'x')));
  const std::string rejected = client.recv_line();
  EXPECT_NE(rejected.find("\"status\":\"admission_rejected\""),
            std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find("max_line_bytes"), std::string::npos) << rejected;

  // Terminate the oversize line; the stream resyncs and serves again.
  ASSERT_TRUE(client.send_raw("\n"));
  ASSERT_TRUE(client.send_line(request_line("counter.cov")));
  const std::string ok = client.recv_line();
  EXPECT_NE(ok.find("\"all_passed\":true"), std::string::npos) << ok;

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 3);  // admission_rejected is a limit status.
}

TEST(CovestServeTest, MidSuiteDisconnectLeavesTheServerServiceable) {
  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "1"}));

  {
    TcpClient rude;
    ASSERT_TRUE(rude.connect_to(server.port()));
    ASSERT_TRUE(rude.send_line(request_line("arbiter.cov")));
    rude.close();  // Gone before the result line can be written.
  }

  TcpClient polite;
  ASSERT_TRUE(polite.connect_to(server.port()));
  ASSERT_TRUE(polite.send_line(request_line("counter.cov")));
  const std::string ok = polite.recv_line();
  EXPECT_NE(ok.find("\"all_passed\":true"), std::string::npos) << ok;

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 0);
}

// --------------------------------------------------------------------------
// Connection-cap admission
// --------------------------------------------------------------------------

TEST(CovestServeTest, ConnectionCapRejectsTheExcessConnectionWithOneLine) {
  ServerProcess server;
  ASSERT_TRUE(server.start(
      COVEST_SERVE_PATH,
      {"--port", "0", "--jobs", "1", "--max-connections", "1"}));

  TcpClient held;
  ASSERT_TRUE(held.connect_to(server.port()));
  ASSERT_TRUE(held.send_line("{\"op\": \"metrics\"}"));
  ASSERT_FALSE(held.recv_line().empty());  // Registered for sure.

  TcpClient excess;
  ASSERT_TRUE(excess.connect_to(server.port()));
  const std::string rejected = excess.recv_line();
  EXPECT_NE(rejected.find("\"status\":\"admission_rejected\""),
            std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find("max_connections"), std::string::npos) << rejected;
  EXPECT_TRUE(excess.recv_line().empty());  // One line, then close.
  EXPECT_TRUE(excess.eof());

  // The held connection is untouched by the rejection...
  ASSERT_TRUE(held.send_line(request_line("counter.cov")));
  EXPECT_NE(held.recv_line().find("\"all_passed\":true"), std::string::npos);
  held.close();

  // ...and its slot frees up for a later client.
  bool reconnected = false;
  for (int attempt = 0; attempt < 50 && !reconnected; ++attempt) {
    TcpClient later;
    if (later.connect_to(server.port()) &&
        later.send_line("{\"op\": \"metrics\"}")) {
      const std::string line = later.recv_line(2'000);
      reconnected = line.find("\"metrics\":") != std::string::npos;
    }
    if (!reconnected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(reconnected);

  server.signal(SIGTERM);
  EXPECT_EQ(server.wait(), 3);  // The rejection is a limit status.
}

// --------------------------------------------------------------------------
// Drain on SIGTERM
// --------------------------------------------------------------------------

TEST(CovestServeTest, SigtermDrainsPendingResultLinesThenExitsClean) {
  const std::vector<std::string> requests = {request_line("counter.cov"),
                                             request_line("arbiter.cov"),
                                             request_line("traffic.cov")};
  const std::vector<std::string> expected = batch_lines(requests);
  ASSERT_EQ(expected.size(), requests.size());

  ServerProcess server;
  ASSERT_TRUE(server.start(COVEST_SERVE_PATH, {"--port", "0", "--jobs", "1"}));

  TcpClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  for (const std::string& r : requests) ASSERT_TRUE(client.send_line(r));
  // The metrics reply proves the reader consumed all three requests —
  // shutdown stops *reading*, never the flushing of submitted work.
  // Result lines the bounded window already flushed may arrive first
  // (metrics replies are out-of-band), so collect until the metrics
  // line shows up.
  ASSERT_TRUE(client.send_line("{\"op\": \"metrics\"}"));
  std::vector<std::string> results;
  for (;;) {
    const std::string line = client.recv_line();
    ASSERT_FALSE(line.empty()) << "connection dropped before metrics reply";
    if (line.find("\"metrics\":") != std::string::npos) break;
    results.push_back(line);
  }

  server.signal(SIGTERM);
  for (std::string line = client.recv_line(); !line.empty();
       line = client.recv_line()) {
    results.push_back(line);
  }
  EXPECT_TRUE(client.eof());  // Drained, then closed.
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(results[i], expected[i]) << "line " << i;
  }
  EXPECT_EQ(server.wait(), 0);
}

#else
TEST(CovestServeTest, DISABLED_BinaryPathsNotConfigured) {}
#endif

}  // namespace
}  // namespace covest
