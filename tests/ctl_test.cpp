// Tests for the CTL layer: AST/collapse/subset checks, the parser, and the
// symbolic checker validated against the explicit-state engine on
// randomized models (the first oracle).
#include <gtest/gtest.h>

#include <random>

#include "circuits/circuits.h"
#include "ctl/checker.h"
#include "ctl/ctl.h"
#include "ctl/ctl_parser.h"
#include "fsm/symbolic_fsm.h"
#include "model/model.h"
#include "xstate/explicit_model.h"

namespace covest::ctl {
namespace {

using expr::Expr;

// --------------------------------------------------------------------------
// AST and collapse
// --------------------------------------------------------------------------

TEST(CtlAstTest, PropositionalSubtreesCollapse) {
  const Formula f = (!Formula::prop(Expr::var("a"))) &
                    Formula::prop(Expr::var("b"));
  const Formula c = collapse_propositional(f);
  EXPECT_EQ(c.op(), CtlOp::kProp);
  EXPECT_EQ(expr::to_string(c.prop()), "!a & b");
}

TEST(CtlAstTest, ImplicationsDoNotCollapse) {
  const Formula f = Formula::prop(Expr::var("a"))
                        .implies(Formula::prop(Expr::var("b")));
  const Formula c = collapse_propositional(f);
  EXPECT_EQ(c.op(), CtlOp::kImplies);
  EXPECT_EQ(c.arg(0).op(), CtlOp::kProp);
}

TEST(CtlAstTest, AntecedentsCollapseInsideImplication) {
  const Formula f =
      ((!Formula::prop(Expr::var("a"))) & Formula::prop(Expr::var("b")))
          .implies(Formula::AX(Formula::prop(Expr::var("c"))));
  const Formula c = collapse_propositional(f);
  ASSERT_EQ(c.op(), CtlOp::kImplies);
  EXPECT_EQ(c.arg(0).op(), CtlOp::kProp);
  EXPECT_EQ(expr::to_string(c.arg(0).prop()), "!a & b");
  EXPECT_EQ(c.arg(1).op(), CtlOp::kAX);
}

TEST(CtlAstTest, CollapseIsIdempotent) {
  const Formula f = Formula::AG(
      (Formula::prop(Expr::var("a")) | Formula::prop(Expr::var("b"))));
  const Formula once = collapse_propositional(f);
  const Formula twice = collapse_propositional(once);
  EXPECT_EQ(to_string(once), to_string(twice));
}

// --------------------------------------------------------------------------
// Acceptable ACTL subset
// --------------------------------------------------------------------------

TEST(CtlSubsetTest, AcceptsThePaperShapes) {
  const auto ok = [](const char* text) {
    EXPECT_EQ(acceptable_actl_violation(parse_ctl(text)), "") << text;
  };
  ok("a");
  ok("a -> AX b");
  ok("AG (a -> AX b)");
  ok("AG a & AG b");
  ok("A[a U b]");
  ok("AF a");
  ok("AG (p1 -> A[p2 U A[p3 U p4]])");  // The paper's pipeline shape.
  ok("AG ((!stall) & (!reset) & count < 5 -> AX (count == 3))");
}

TEST(CtlSubsetTest, RejectsOutsideShapes) {
  const auto bad = [](const char* text) {
    EXPECT_NE(acceptable_actl_violation(parse_ctl(text)), "") << text;
  };
  bad("EF a");
  bad("EG a");
  bad("E[a U b]");
  bad("AG a | AG b");   // Disjunction of temporal formulas.
  bad("!AX a");         // Negated temporal formula.
  bad("AX a -> AX b");  // Temporal antecedent.
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

TEST(CtlParserTest, ParsesTemporalOperators) {
  EXPECT_EQ(parse_ctl("AG (a -> AX b)").op(), CtlOp::kAG);
  EXPECT_EQ(parse_ctl("A[a U b]").op(), CtlOp::kAU);
  EXPECT_EQ(parse_ctl("E[a U b]").op(), CtlOp::kEU);
  EXPECT_EQ(parse_ctl("EF a").op(), CtlOp::kEF);
  EXPECT_EQ(parse_ctl("AF a").op(), CtlOp::kAF);
  EXPECT_EQ(parse_ctl("EX a").op(), CtlOp::kEX);
  EXPECT_EQ(parse_ctl("EG a").op(), CtlOp::kEG);
}

TEST(CtlParserTest, ImplicationSplitsFormulaLevels) {
  const Formula f = parse_ctl("(!stall) & count < 5 -> AX (count == 3)");
  ASSERT_EQ(f.op(), CtlOp::kImplies);
  EXPECT_EQ(f.arg(0).op(), CtlOp::kProp);
  EXPECT_EQ(f.arg(1).op(), CtlOp::kAX);
}

TEST(CtlParserTest, NestedUntil) {
  const Formula f = parse_ctl("AG (p1 -> A[p2 U A[p3 U p4]])");
  ASSERT_EQ(f.op(), CtlOp::kAG);
  const Formula& imp = f.arg(0);
  ASSERT_EQ(imp.op(), CtlOp::kImplies);
  ASSERT_EQ(imp.arg(1).op(), CtlOp::kAU);
  EXPECT_EQ(imp.arg(1).arg(1).op(), CtlOp::kAU);
}

TEST(CtlParserTest, ParenthesisedArithmeticAtomBacktracks) {
  const Formula f = parse_ctl("AG ((x + y) == 3)");
  ASSERT_EQ(f.op(), CtlOp::kAG);
  ASSERT_EQ(f.arg(0).op(), CtlOp::kProp);
  EXPECT_EQ(expr::to_string(f.arg(0).prop()), "x + y == 3");
}

TEST(CtlParserTest, ParenthesisedFormulaStaysFormula) {
  const Formula f = parse_ctl("(a -> AX b) & AG c");
  ASSERT_EQ(f.op(), CtlOp::kAnd);
  EXPECT_EQ(f.arg(0).op(), CtlOp::kImplies);
  EXPECT_EQ(f.arg(1).op(), CtlOp::kAG);
}

TEST(CtlParserTest, TemporalKeywordsCannotBeSignals) {
  EXPECT_THROW(parse_ctl("AG (AX == 3)"), std::runtime_error);
}

TEST(CtlParserTest, RejectsTrailingInput) {
  EXPECT_THROW(parse_ctl("AG a b"), std::runtime_error);
}

TEST(CtlParserTest, RoundTripsThroughToString) {
  for (const char* text :
       {"AG (a -> AX b)", "A[a U b] & AF c", "AG (p1 -> A[p2 U A[p3 U p4]])",
        "AG ((!stall) & count < 5 -> AX (count == 3))"}) {
    const Formula f = parse_ctl(text);
    const Formula reparsed = parse_ctl(to_string(f));
    EXPECT_EQ(to_string(reparsed), to_string(f)) << text;
  }
}

// --------------------------------------------------------------------------
// Checker on hand-built models
// --------------------------------------------------------------------------

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : fsm(circuits::make_mod_counter({3, 5})), mc(fsm) {}
  fsm::SymbolicFsm fsm;
  ModelChecker mc;
};

TEST_F(CheckerTest, CounterIncrementHolds) {
  EXPECT_TRUE(mc.holds(
      parse_ctl("AG ((!stall) & (!reset) & count == 2 -> AX (count == 3))")));
}

TEST_F(CheckerTest, WrongIncrementFails) {
  EXPECT_FALSE(mc.holds(
      parse_ctl("AG ((!stall) & (!reset) & count == 2 -> AX (count == 4))")));
}

TEST_F(CheckerTest, CounterStaysBelowLimit) {
  EXPECT_TRUE(mc.holds(parse_ctl("AG (count < 5)")));
  EXPECT_FALSE(mc.holds(parse_ctl("AG (count < 4)")));
}

TEST_F(CheckerTest, ResetEventuallyPossible) {
  EXPECT_TRUE(mc.holds(parse_ctl("AG EF (count == 0)")));
}

TEST_F(CheckerTest, EventualWrapUnderInputs) {
  // Without fairness, stalling forever avoids the wrap: AF fails.
  EXPECT_FALSE(mc.holds(parse_ctl("AF (count == 4)")));
  // But a path to the wrap exists.
  EXPECT_TRUE(mc.holds(parse_ctl("EF (count == 4)")));
}

TEST_F(CheckerTest, CounterexampleTraceEndsInViolation) {
  const CheckResult r = mc.check(parse_ctl("AG (count < 3)"));
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->steps.back().values.at("count"), 3u);
}

TEST_F(CheckerTest, MemoizationReusesSubformulas) {
  const Formula f = parse_ctl("AG (count < 5)");
  mc.sat(f);
  const std::size_t size_after_first = mc.memo_size();
  mc.sat(f);
  EXPECT_EQ(mc.memo_size(), size_after_first);
}

TEST_F(CheckerTest, MemoIsKeyedStructurallyAcrossSeparateParses) {
  // The memo is keyed by structural hash, not AST node address: parsing
  // the same text twice (distinct shared-AST nodes) must hit the memo,
  // so identical SPEC sub-formulas share satisfaction sets across a
  // suite.
  const Formula a = parse_ctl("AG (count < 5 -> AX (count < 6))");
  const Formula b = parse_ctl("AG (count < 5 -> AX (count < 6))");
  ASSERT_NE(a.id(), b.id());
  EXPECT_TRUE(structural_equal(a, b));
  EXPECT_EQ(structural_hash(a), structural_hash(b));

  const bdd::Bdd sat_a = mc.sat(a);
  const std::size_t size_after_first = mc.memo_size();
  EXPECT_EQ(mc.sat(b), sat_a);
  EXPECT_EQ(mc.memo_size(), size_after_first);

  // A structurally different formula is a new entry.
  mc.sat(parse_ctl("AG (count < 4 -> AX (count < 6))"));
  EXPECT_GT(mc.memo_size(), size_after_first);
}

TEST(CheckerFairnessTest, FairnessTurnsLivenessTrue) {
  // With FAIRNESS !stall, the pipeline-style argument applies to the
  // counter: AF(count==4) becomes true because eternal stalling is
  // unfair... reset still breaks it, so restrict to !reset via fairness
  // as well for the test model.
  model::ModelBuilder b("fair_counter");
  const Expr count = b.state_word("count", 3, 0);
  const Expr stall = b.input_bool("stall");
  const Expr wrapped = ite(count == Expr::word_const(4, 3),
                           Expr::word_const(0, 3),
                           count + Expr::word_const(1, 3));
  b.next("count", ite(stall, count, wrapped));
  b.fairness(!stall);
  fsm::SymbolicFsm f(b.build());
  ModelChecker mc(f);
  EXPECT_TRUE(mc.holds(parse_ctl("AF (count == 4)")));
  EXPECT_FALSE(f.fairness().empty());
}

TEST(CheckerFairnessTest, FairStatesAreAllStatesWithFreeInputs) {
  fsm::SymbolicFsm f(circuits::make_pipeline({2, 3}));
  ModelChecker mc(f);
  // Every state can start a fair path (stall is a free input).
  EXPECT_TRUE(mc.fair_states().is_true());
}

// --------------------------------------------------------------------------
// Randomized equivalence with the explicit-state engine
// --------------------------------------------------------------------------

// Random small models: 3 boolean latches with random next functions over
// latches and one input, plus (sometimes) a fairness constraint.
model::Model random_model(std::mt19937& rng, bool with_fairness) {
  model::ModelBuilder b("rand");
  const Expr x = b.state_bool("x", false);
  const Expr y = b.state_bool("y", false);
  const Expr z = b.state_bool("z");  // Free initial value.
  const Expr in = b.input_bool("in");
  const std::vector<Expr> pool{x, y, z, in, x ^ y, y & z, (!x), x | (y & in)};
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  const auto rand_expr = [&] {
    Expr e = pool[pick(rng)];
    if (pick(rng) % 2 == 0) e = e ^ pool[pick(rng)];
    if (pick(rng) % 3 == 0) e = !e;
    return e;
  };
  b.next("x", rand_expr());
  b.next("y", rand_expr());
  b.next("z", rand_expr());
  if (with_fairness) b.fairness(rand_expr());
  return b.build();
}

// Random full-CTL formula over the signals of `random_model`.
Formula random_ctl(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, 12);
  const std::vector<const char*> atoms{"x", "y", "z", "in"};
  std::uniform_int_distribution<std::size_t> atom(0, atoms.size() - 1);
  if (depth == 0) {
    Expr e = Expr::var(atoms[atom(rng)]);
    if (pick(rng) % 2 == 0) e = !e;
    return Formula::prop(e);
  }
  switch (pick(rng)) {
    case 0: return !random_ctl(rng, depth - 1);
    case 1: return random_ctl(rng, depth - 1) & random_ctl(rng, depth - 1);
    case 2: return random_ctl(rng, depth - 1) | random_ctl(rng, depth - 1);
    case 3:
      return random_ctl(rng, depth - 1).implies(random_ctl(rng, depth - 1));
    case 4: return Formula::AX(random_ctl(rng, depth - 1));
    case 5: return Formula::EX(random_ctl(rng, depth - 1));
    case 6: return Formula::AF(random_ctl(rng, depth - 1));
    case 7: return Formula::EF(random_ctl(rng, depth - 1));
    case 8: return Formula::AG(random_ctl(rng, depth - 1));
    case 9: return Formula::EG(random_ctl(rng, depth - 1));
    case 10:
      return Formula::AU(random_ctl(rng, depth - 1),
                         random_ctl(rng, depth - 1));
    case 11:
      return Formula::EU(random_ctl(rng, depth - 1),
                         random_ctl(rng, depth - 1));
    default: return random_ctl(rng, 0);
  }
}

class CtlOracleEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CtlOracleEquivalence, SymbolicMatchesExplicitOnRandomModels) {
  std::mt19937 rng(GetParam());
  const bool with_fairness = GetParam() % 3 == 0;
  const model::Model m = random_model(rng, with_fairness);

  fsm::SymbolicFsm sym(m);
  ModelChecker mc(sym);
  xstate::ExplicitModel xm(m);

  // Bit k of the explicit state index corresponds to current var k.
  const auto& vars = sym.current_vars();
  ASSERT_EQ(std::size_t{1} << vars.size(), xm.num_states());

  for (int trial = 0; trial < 8; ++trial) {
    const Formula f = collapse_propositional(random_ctl(rng, 3));
    const bdd::Bdd sat = mc.sat(f);
    const std::vector<bool> xsat = xm.sat(f);
    for (std::size_t s = 0; s < xm.num_states(); ++s) {
      std::vector<bool> assignment(sym.mgr().num_vars(), false);
      for (std::size_t k = 0; k < vars.size(); ++k) {
        assignment[vars[k]] = (s >> k) & 1;
      }
      ASSERT_EQ(sym.mgr().eval(sat, assignment), xsat[s])
          << "state " << s << " formula " << to_string(f)
          << (with_fairness ? " (fair)" : "");
    }
    EXPECT_EQ(mc.holds(f), xm.holds(f)) << to_string(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtlOracleEquivalence, ::testing::Range(0, 30));

}  // namespace
}  // namespace covest::ctl
