// Deterministic chaos battery for the resource-governance layer: the
// covest::FaultInjector fires allocation failures, deadline expiries and
// admission rejections at exact trigger points, across all five example
// models, and every single one must surface as a structured
// `ResultStatus` — no crash, no hang, no corrupted pool — after which
// the same manager (and the same session) must complete a clean run
// whose bytes match an uninjected baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/result_json.h"
#include "image/image.h"
#include "util/governance.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Executor;
using engine::ExecutorOptions;
using engine::JobHandle;
using engine::ResultStatus;
using engine::Session;
using engine::SuiteResult;

constexpr const char* kModels[] = {"counter.cov", "arbiter.cov",
                                   "handshake.cov", "shift.cov",
                                   "traffic.cov"};

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// The deterministic serialization (no stats) every injection round is
/// compared against: successful runs must not change by a byte.
std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

CoverageRequest path_request(const char* name) {
  CoverageRequest req;
  req.model_path = model_path(name);
  return req;
}

/// Every test disarms on every exit path: a leaked armed injector would
/// poison every later test in the binary (the injector is process-wide).
struct InjectorGuard {
  InjectorGuard() { FaultInjector::disarm(); }
  ~InjectorGuard() { FaultInjector::disarm(); }
};

/// Arm-with-huge-fire_at calibration: counts the trigger points of
/// `site` during one clean run of `req` (the injector never fires at
/// ~2^60), and doubles as the zero-interference check — an armed but
/// non-firing injector must not change a byte of the result.
std::uint64_t calibrate(FaultInjector::Site site, const CoverageRequest& req,
                        const std::string& baseline) {
  FaultInjector::arm(site, std::uint64_t{1} << 60);
  const SuiteResult r = Engine().run(req);
  const std::uint64_t triggers = FaultInjector::trigger_count();
  FaultInjector::disarm();
  EXPECT_EQ(canonical(r), baseline);
  return triggers;
}

/// Sweep points for an injection site with `total` observed triggers:
/// the first few (boundaries bite earliest), a spread through the
/// middle, and the very last one. Small enough to stay fast under TSan.
std::vector<std::uint64_t> sweep_points(std::uint64_t total) {
  std::vector<std::uint64_t> points;
  for (const std::uint64_t n :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{5}, std::uint64_t{10}, total / 4, total / 2,
        (3 * total) / 4, total}) {
    if (n >= 1 && n <= total &&
        (points.empty() || n > points.back())) {
      points.push_back(n);
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// Allocation failures
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, AllocationSweepAcrossAllModels) {
  InjectorGuard guard;
  for (const char* model : kModels) {
    const CoverageRequest req = path_request(model);
    const std::string baseline = canonical(Engine().run(req));
    const std::uint64_t total =
        calibrate(FaultInjector::Site::kAllocation, req, baseline);
    ASSERT_GT(total, 0u) << model;

    for (const std::uint64_t n : sweep_points(total)) {
      FaultInjector::arm(FaultInjector::Site::kAllocation, n);
      const SuiteResult r = Engine().run(req);
      FaultInjector::disarm();
      EXPECT_EQ(r.status, ResultStatus::kResourceExhausted)
          << model << " @ allocation " << n << ": " << canonical(r);
      EXPECT_TRUE(r.error.empty()) << r.error;
      EXPECT_FALSE(r.status_detail.empty());

      // Recovery: the very next uninjected run is byte-identical.
      EXPECT_EQ(canonical(Engine().run(req)), baseline)
          << model << " after allocation " << n;
    }
  }
}

TEST(FaultInjectionTest, SameSessionRecoversAfterShardedAllocationFailure) {
  InjectorGuard guard;
  // The end_shared recovery contract: an allocation failure on an
  // estimator thread aborts the fan-out through the fail-fast path, the
  // pool exits shared mode consistent, and the SAME manager then
  // completes a clean sharded run — under both table modes.
  for (const bdd::TableMode mode :
       {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
    CoverageRequest req = path_request("arbiter.cov");
    req.shards = 2;
    req.table_mode = mode;
    const std::string fresh = canonical(Engine().run(req));

    Session session(Engine::load_model(req));
    bool injected_one = false;
    for (const std::uint64_t n : {std::uint64_t{1}, std::uint64_t{40}}) {
      FaultInjector::arm(FaultInjector::Site::kAllocation, n);
      const SuiteResult r = session.run(req);
      FaultInjector::disarm();
      if (r.status == ResultStatus::kResourceExhausted) injected_one = true;
      // A warm session may satisfy everything from its caches; either
      // the failure surfaced structurally or the run finished clean.
      EXPECT_TRUE(r.status == ResultStatus::kResourceExhausted ||
                  canonical(r) == fresh)
          << canonical(r);
      // Same manager, next run, no injection: must be clean and whole.
      EXPECT_EQ(canonical(session.run(req)), fresh)
          << "table mode " << static_cast<int>(mode) << " after " << n;
    }
    EXPECT_TRUE(injected_one) << "sweep never hit an allocation";
  }
}

// ---------------------------------------------------------------------------
// Deadline expiries
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DeadlineSweepAcrossAllModels) {
  InjectorGuard guard;
  for (const char* model : kModels) {
    const CoverageRequest req = path_request(model);
    const SuiteResult base = Engine().run(req);
    const std::string baseline = canonical(base);
    const std::uint64_t total =
        calibrate(FaultInjector::Site::kDeadline, req, baseline);
    ASSERT_GT(total, 0u) << model;

    for (const std::uint64_t n : sweep_points(total)) {
      FaultInjector::arm(FaultInjector::Site::kDeadline, n);
      const SuiteResult r = Engine().run(req);
      FaultInjector::disarm();
      ASSERT_EQ(r.status, ResultStatus::kDeadlineExceeded)
          << model << " @ tick " << n;
      EXPECT_TRUE(r.error.empty()) << r.error;
      // The partial result is a clean prefix: completed properties
      // match the baseline's in order.
      ASSERT_LE(r.properties.size(), base.properties.size());
      for (std::size_t i = 0; i < r.properties.size(); ++i) {
        EXPECT_EQ(r.properties[i].ctl_text, base.properties[i].ctl_text);
        EXPECT_EQ(r.properties[i].holds, base.properties[i].holds);
      }
      EXPECT_EQ(canonical(Engine().run(req)), baseline)
          << model << " after tick " << n;
    }
  }
}

TEST(FaultInjectionTest, GenerousRealLimitsChangeNothing) {
  InjectorGuard guard;
  for (const char* model : kModels) {
    const std::string baseline =
        canonical(Engine().run(path_request(model)));
    CoverageRequest req = path_request(model);
    req.deadline_ms = 3'600'000;  // One hour: can't expire here.
    req.max_live_nodes = 100'000'000;
    EXPECT_EQ(canonical(Engine().run(req)), baseline) << model;
  }
}

TEST(FaultInjectionTest, TinyRealBudgetSurfacesStructurally) {
  InjectorGuard guard;
  CoverageRequest req = path_request("arbiter.cov");
  req.max_live_nodes = 16;  // Elaboration needs far more.
  const SuiteResult r = Engine().run(req);
  EXPECT_EQ(r.status, ResultStatus::kResourceExhausted);
  EXPECT_TRUE(r.error.empty()) << r.error;
  // The failing phase records where the budget bit.
  EXPECT_EQ(r.elaborate.node_budget, 16u);
  EXPECT_GE(r.elaborate.live_nodes, 16u);
}

// ---------------------------------------------------------------------------
// Image-strategy sweeps
// ---------------------------------------------------------------------------

/// Deadline and node-budget injection under the non-default image
/// strategies. Each strategy runs a different fix-point discipline with
/// its own trigger-point count (chaining ticks once per cluster
/// application), so the sweep recalibrates per strategy — and holds
/// every interruption to the same contract as the default engine: a
/// structured status, no error string, and a byte-exact
/// completed-property prefix of that strategy's own baseline. The
/// baseline itself must match the default engine's bytes (canonical
/// sets don't depend on how the image was scheduled).
TEST(FaultInjectionTest, StrategySweepsKeepStructuredStatusesAndPrefixes) {
  InjectorGuard guard;
  for (const image::ImageStrategy strategy :
       {image::ImageStrategy::kMonolithic, image::ImageStrategy::kChaining}) {
    for (const char* model : {"arbiter.cov", "traffic.cov"}) {
      CoverageRequest req = path_request(model);
      req.options.image_strategy = strategy;
      const SuiteResult base = Engine().run(req);
      const std::string baseline = canonical(base);
      EXPECT_EQ(baseline, canonical(Engine().run(path_request(model))))
          << image::to_string(strategy) << " diverged on " << model;

      const std::uint64_t deadline_total =
          calibrate(FaultInjector::Site::kDeadline, req, baseline);
      ASSERT_GT(deadline_total, 0u) << model;
      for (const std::uint64_t n : sweep_points(deadline_total)) {
        FaultInjector::arm(FaultInjector::Site::kDeadline, n);
        const SuiteResult r = Engine().run(req);
        FaultInjector::disarm();
        ASSERT_EQ(r.status, ResultStatus::kDeadlineExceeded)
            << image::to_string(strategy) << " " << model << " @ tick " << n;
        EXPECT_TRUE(r.error.empty()) << r.error;
        ASSERT_LE(r.properties.size(), base.properties.size());
        for (std::size_t i = 0; i < r.properties.size(); ++i) {
          EXPECT_EQ(r.properties[i].ctl_text, base.properties[i].ctl_text);
          EXPECT_EQ(r.properties[i].holds, base.properties[i].holds);
        }
        EXPECT_EQ(canonical(Engine().run(req)), baseline)
            << image::to_string(strategy) << " " << model
            << " after tick " << n;
      }

      const std::uint64_t alloc_total =
          calibrate(FaultInjector::Site::kAllocation, req, baseline);
      ASSERT_GT(alloc_total, 0u) << model;
      for (const std::uint64_t n :
           {std::uint64_t{1}, alloc_total / 2, alloc_total}) {
        if (n < 1) continue;
        FaultInjector::arm(FaultInjector::Site::kAllocation, n);
        const SuiteResult r = Engine().run(req);
        FaultInjector::disarm();
        EXPECT_EQ(r.status, ResultStatus::kResourceExhausted)
            << image::to_string(strategy) << " " << model
            << " @ allocation " << n;
        EXPECT_TRUE(r.error.empty()) << r.error;
        EXPECT_FALSE(r.status_detail.empty());
        EXPECT_EQ(canonical(Engine().run(req)), baseline)
            << image::to_string(strategy) << " " << model
            << " after allocation " << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel apply
// ---------------------------------------------------------------------------

/// Deadline and allocation injections landing inside the work-stealing
/// parallel kernels (bdd/parallel.h). Helper threads tick the governor
/// at every task boundary, so the exact trigger schedule is not
/// deterministic the way the serial sweeps above are — the contract
/// held here is schedule-independent: every armed run ends in a
/// structured status (or a clean run when warm caches absorb the work
/// before the counter fires), never a crash, hang or corrupted pool,
/// and the SAME session then completes a clean run byte-identical to an
/// uninjected parallel run — which itself must match the serial bytes.
/// Both table modes.
TEST(FaultInjectionTest, ParallelApplyInjectionsSurfaceStructurally) {
  InjectorGuard guard;
  for (const bdd::TableMode mode :
       {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
    SCOPED_TRACE(static_cast<int>(mode));
    CoverageRequest req = path_request("arbiter.cov");
    req.options.parallel_apply = 2;
    req.table_mode = mode;
    const std::string fresh = canonical(Engine().run(req));
    EXPECT_EQ(fresh, canonical(Engine().run(path_request("arbiter.cov"))))
        << "parallel apply diverged from serial bytes";

    Session session(Engine::load_model(req));
    // Allocation first, while the session is cold: the estimate phase
    // is guaranteed to allocate, so small fire_at values must land.
    bool alloc_hit = false;
    for (const std::uint64_t n : {std::uint64_t{1}, std::uint64_t{40}}) {
      FaultInjector::arm(FaultInjector::Site::kAllocation, n);
      const SuiteResult r = session.run(req);
      FaultInjector::disarm();
      if (r.status == ResultStatus::kResourceExhausted) {
        alloc_hit = true;
        EXPECT_FALSE(r.status_detail.empty());
      }
      EXPECT_TRUE(r.status == ResultStatus::kResourceExhausted ||
                  canonical(r) == fresh)
          << canonical(r);
      EXPECT_TRUE(r.error.empty()) << r.error;
      EXPECT_EQ(canonical(session.run(req)), fresh)
          << "after allocation " << n;
    }
    EXPECT_TRUE(alloc_hit) << "sweep never hit an allocation";

    // Deadline ticks fire on the injection counter regardless of the
    // real (absent) budget; n=1 lands at the first phase boundary,
    // larger n reach the ticks inside the parallel recursion itself.
    bool deadline_hit = false;
    for (const std::uint64_t n :
         {std::uint64_t{1}, std::uint64_t{5}, std::uint64_t{25},
          std::uint64_t{125}}) {
      FaultInjector::arm(FaultInjector::Site::kDeadline, n);
      const SuiteResult r = session.run(req);
      FaultInjector::disarm();
      if (r.status == ResultStatus::kDeadlineExceeded) deadline_hit = true;
      EXPECT_TRUE(r.status == ResultStatus::kDeadlineExceeded ||
                  canonical(r) == fresh)
          << canonical(r);
      EXPECT_TRUE(r.error.empty()) << r.error;
      EXPECT_EQ(canonical(session.run(req)), fresh) << "after tick " << n;
    }
    EXPECT_TRUE(deadline_hit) << "sweep never hit a deadline tick";
  }
}

// ---------------------------------------------------------------------------
// Admission rejections
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, InjectedAdmissionRejectionThenCleanResubmit) {
  InjectorGuard guard;
  const CoverageRequest req = path_request("counter.cov");
  const std::string baseline = canonical(Engine().run(req));

  Executor ex{ExecutorOptions{2, nullptr}};
  FaultInjector::arm(FaultInjector::Site::kAdmission, 1);
  JobHandle rejected = ex.submit(req);
  FaultInjector::disarm();
  ASSERT_TRUE(rejected.wait_for(std::chrono::milliseconds(5000)));
  const SuiteResult r = rejected.take();
  EXPECT_EQ(r.status, ResultStatus::kAdmissionRejected);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.signals.empty());

  // The rejection left the executor fully serviceable.
  EXPECT_EQ(canonical(ex.submit(req).take()), baseline);
}

// ---------------------------------------------------------------------------
// Taxonomy round-trips
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, StatusSurvivesJsonSerialization) {
  InjectorGuard guard;
  FaultInjector::arm(FaultInjector::Site::kDeadline, 1);
  const SuiteResult r = Engine().run(path_request("traffic.cov"));
  FaultInjector::disarm();
  ASSERT_EQ(r.status, ResultStatus::kDeadlineExceeded);
  const std::string json = canonical(r);
  EXPECT_NE(json.find("\"status\": \"deadline_exceeded\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"status_detail\": "), std::string::npos) << json;
  std::string err;
  EXPECT_TRUE(engine::validate_json(json, &err)) << err;
}

TEST(FaultInjectionTest, StatusStringsRoundTripStrictly) {
  using engine::result_status_from_string;
  for (const ResultStatus s :
       {ResultStatus::kOk, ResultStatus::kCancelled,
        ResultStatus::kDeadlineExceeded, ResultStatus::kResourceExhausted,
        ResultStatus::kAdmissionRejected, ResultStatus::kError}) {
    ResultStatus parsed = ResultStatus::kOk;
    ASSERT_TRUE(result_status_from_string(engine::to_string(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  ResultStatus parsed = ResultStatus::kOk;
  EXPECT_FALSE(result_status_from_string("OK", &parsed));
  EXPECT_FALSE(result_status_from_string("deadline", &parsed));
  EXPECT_FALSE(result_status_from_string("", &parsed));
  EXPECT_FALSE(result_status_from_string("timeout", &parsed));
}

}  // namespace
}  // namespace covest
