// Determinism battery for the work-stealing parallel apply kernels
// (bdd/parallel.h): every parallel operation — AND, XOR, ITE, exists,
// and_exists, and the reachability fix-points built from them — must be
// edge-for-edge identical to an exclusive-mode recomputation, at every
// worker count, under both table modes, because every result path runs
// through the same canonicalizing make_node. Also pins the governance
// contract inside parallel recursion: a deadline reaches a deep single
// apply through the task-boundary ticks (the blind spot serial apply
// still has), and the manager recovers cleanly afterwards. Built for
// the sanitizer CI matrix: every assertion runs under TSan and
// ASan+UBSan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "circuits/circuits.h"
#include "fsm/symbolic_fsm.h"
#include "model/model_parser.h"
#include "util/governance.h"

namespace covest {
namespace {

using bdd::Bdd;
using bdd::BddManager;
using bdd::ParallelConfig;
using bdd::TableMode;

constexpr const char* kModels[] = {"counter.cov", "arbiter.cov",
                                   "handshake.cov", "shift.cov",
                                   "traffic.cov"};

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// One result per parallel entry point, plus the fix-point that chains
/// them. Handles stay valid across epochs (no gc runs between).
struct Battery {
  Bdd conj;        ///< apply_and
  Bdd parity;      ///< apply_xor
  Bdd mux;         ///< apply_ite
  Bdd projected;   ///< exists
  Bdd rel_prod;    ///< and_exists
  Bdd reachable;   ///< the fix-point built from all of the above
};

/// Runs every operation the parallel kernels cover, on operands derived
/// from the FSM's own transition parts — real model structure, not toy
/// formulas, so the recursions are deep enough to fork.
Battery run_battery(fsm::SymbolicFsm& fsm) {
  BddManager& mgr = fsm.mgr();
  const std::vector<Bdd>& parts = fsm.transition_parts();
  Bdd a = mgr.bdd_true();
  Bdd b = mgr.bdd_true();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    (i % 2 == 0 ? a : b) &= parts[i];
  }
  Bdd cube = mgr.bdd_true();
  for (const bdd::Var v : fsm.next_vars()) cube &= mgr.var(v);

  Battery out;
  out.conj = mgr.apply_and(a, b);
  out.parity = mgr.apply_xor(a, b);
  out.mux = mgr.apply_ite(fsm.initial_states(), a, b);
  out.projected = mgr.exists(out.conj, cube);
  out.rel_prod = mgr.and_exists(a, b, cube);
  out.reachable = fsm.reachable(fsm.initial_states());
  return out;
}

/// The same battery inside a parallel shared epoch. The computed cache
/// is cleared first so every recursion genuinely re-runs through the
/// parallel kernels instead of replaying exclusive-mode cache hits.
Battery run_parallel(fsm::SymbolicFsm& fsm, std::size_t workers,
                     TableMode mode,
                     std::uint32_t threshold =
                         ParallelConfig::kDefaultForkThreshold) {
  BddManager& mgr = fsm.mgr();
  mgr.clear_cache();
  ParallelConfig par;
  par.workers = workers;
  par.fork_threshold = threshold;
  mgr.begin_shared(1, mode, par);
  mgr.register_shard_thread();
  Battery out = run_battery(fsm);
  mgr.end_shared();
  return out;
}

void expect_identical(const Battery& got, const Battery& want,
                      const std::string& label) {
  EXPECT_EQ(got.conj, want.conj) << label << ": and";
  EXPECT_EQ(got.parity, want.parity) << label << ": xor";
  EXPECT_EQ(got.mux, want.mux) << label << ": ite";
  EXPECT_EQ(got.projected, want.projected) << label << ": exists";
  EXPECT_EQ(got.rel_prod, want.rel_prod) << label << ": and_exists";
  EXPECT_EQ(got.reachable, want.reachable) << label << ": reachable";
}

// --------------------------------------------------------------------------
// Every op, every worker count, both table modes, all five models
// --------------------------------------------------------------------------

TEST(ParallelApplyTest, ExampleModelsByteIdenticalAtEveryWorkerCount) {
  for (const char* name : kModels) {
    SCOPED_TRACE(name);
    fsm::SymbolicFsm fsm(model::parse_model_file(model_path(name)));
    const Battery baseline = run_battery(fsm);
    for (const TableMode mode : {TableMode::kLockFree, TableMode::kStriped}) {
      for (const std::size_t workers : {1u, 2u, 4u}) {
        const std::string label =
            std::string(name) + " workers=" + std::to_string(workers) +
            (mode == TableMode::kStriped ? " striped" : " lockfree");
        expect_identical(run_parallel(fsm, workers, mode), baseline, label);
      }
    }
    EXPECT_TRUE(fsm.mgr().check_canonical()) << name;
  }
}

// --------------------------------------------------------------------------
// Token ring: recursions deep enough that forking actually happens
// --------------------------------------------------------------------------

TEST(ParallelApplyTest, TokenRingByteIdenticalAcrossWorkerCounts) {
  for (const unsigned cells : {16u, 24u}) {
    SCOPED_TRACE(cells);
    circuits::TokenRingSpec spec;
    spec.cells = cells;
    fsm::SymbolicFsm fsm(circuits::make_token_ring(spec));
    const Battery baseline = run_battery(fsm);
    for (const std::size_t workers : {1u, 2u, 4u}) {
      expect_identical(
          run_parallel(fsm, workers, TableMode::kLockFree), baseline,
          "cells=" + std::to_string(cells) +
              " workers=" + std::to_string(workers));
    }
    EXPECT_TRUE(fsm.mgr().check_canonical());
  }
}

// --------------------------------------------------------------------------
// Threshold edges: 0 = fork every split, huge = never fork
// --------------------------------------------------------------------------

TEST(ParallelApplyTest, ThresholdEdgeCasesAgreeByteForByte) {
  circuits::TokenRingSpec spec;
  spec.cells = 16;
  fsm::SymbolicFsm fsm(circuits::make_token_ring(spec));
  const Battery baseline = run_battery(fsm);
  // threshold 0 forks at every internal split (maximal task pressure,
  // exercising the deque-full inline fallback); a huge threshold never
  // forks (the pool idles; recursion runs the par_* mirrors serially).
  expect_identical(run_parallel(fsm, 4, TableMode::kLockFree, 0), baseline,
                   "threshold=0");
  expect_identical(run_parallel(fsm, 4, TableMode::kLockFree, 0xffffffffu),
                   baseline, "threshold=max");
  EXPECT_TRUE(fsm.mgr().check_canonical());
}

// --------------------------------------------------------------------------
// Repeated epochs plateau: the pool does not grow across re-runs
// --------------------------------------------------------------------------

TEST(ParallelApplyTest, RepeatedEpochsDoNotGrowThePool) {
  circuits::TokenRingSpec spec;
  spec.cells = 16;
  fsm::SymbolicFsm fsm(circuits::make_token_ring(spec));
  const Battery first = run_parallel(fsm, 4, TableMode::kLockFree);
  const std::size_t after_first = fsm.mgr().stats().allocated_nodes;
  for (int epoch = 0; epoch < 3; ++epoch) {
    expect_identical(run_parallel(fsm, 4, TableMode::kLockFree), first,
                     "epoch " + std::to_string(epoch));
  }
  // Every recomputation canonicalizes onto already-allocated nodes. The
  // small slack tolerates schedule-dependent speculative subresults in
  // forked quantified branches (computed-then-unused, still canonical).
  EXPECT_LE(fsm.mgr().stats().allocated_nodes, after_first + 512);
}

// --------------------------------------------------------------------------
// Manager churn: destroying a manager and creating a new one (commonly
// at the same heap address) must not alias thread-local ctx caches
// --------------------------------------------------------------------------

// Regression: the per-thread shard-ctx cache was keyed on (manager
// address, per-manager epoch counter). A new manager allocated at a
// dead manager's address false-hit once its counter climbed back to
// the cached value, returning a ThreadCtx* into freed memory. The
// epoch token is process-global now; this loop is the use-after-free
// reproducer (each round's first epoch collided with the previous
// round's cached epoch), kept hot for ASan/TSan.
TEST(ParallelApplyTest, ManagerChurnDoesNotAliasThreadCtxCaches) {
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(round);
    circuits::TokenRingSpec spec;
    spec.cells = 8;
    auto fsm = std::make_unique<fsm::SymbolicFsm>(
        circuits::make_token_ring(spec));
    const Battery baseline = run_battery(*fsm);
    expect_identical(run_parallel(*fsm, 2, TableMode::kLockFree), baseline,
                     "round " + std::to_string(round));
    EXPECT_TRUE(fsm->mgr().check_canonical());
  }
}

// --------------------------------------------------------------------------
// Governance: a deadline reaches *inside* one deep apply (the serial
// blind spot), and the manager recovers cleanly afterwards
// --------------------------------------------------------------------------

TEST(ParallelApplyTest, DeadlineReachesInsideOneDeepParallelApply) {
  circuits::TokenRingSpec spec;
  spec.cells = 24;
  fsm::SymbolicFsm fsm(circuits::make_token_ring(spec));
  BddManager& mgr = fsm.mgr();
  // Baseline (and the operand halves) before any governor exists —
  // reachable() ticks at its loop heads and must not be cut short here.
  const Battery baseline = run_battery(fsm);
  const std::vector<Bdd>& parts = fsm.transition_parts();
  Bdd a = mgr.bdd_true();
  Bdd b = mgr.bdd_true();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    (i % 2 == 0 ? a : b) &= parts[i];
  }

  covest::RunGovernor governor(1);  // Expired before the apply starts.
  covest::RunGovernor::Scope scope(&governor);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Serial apply has no interior ticks: even with the expired governor
  // installed, one deep exclusive-mode apply runs to completion. This
  // is the blind spot — only fix-point loop heads used to tick.
  mgr.clear_cache();
  EXPECT_EQ(mgr.apply_and(a, b), baseline.conj);

  // The parallel kernels tick at every task boundary, so the same
  // expired governor now stops the same single apply mid-recursion,
  // promptly.
  mgr.clear_cache();
  ParallelConfig par;
  par.workers = 2;
  par.fork_threshold = 0;  // Fork (and tick) at every split.
  mgr.begin_shared(1, TableMode::kLockFree, par);
  mgr.register_shard_thread();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)mgr.apply_and(a, b), covest::DeadlineExceeded);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  mgr.end_shared();
  // Generous bound (sanitizer builds are slow), but the point stands:
  // the stop lands inside the apply, not after it finishes.
  EXPECT_LT(elapsed.count(), 2000) << "deadline overshoot inside apply";

  // Clean recovery on the same manager: a fresh epoch (and exclusive
  // mode) still produce the canonical results.
  covest::RunGovernor fresh(0);  // 0 = unlimited.
  covest::RunGovernor::Scope fresh_scope(&fresh);
  expect_identical(run_parallel(fsm, 2, TableMode::kLockFree), baseline,
                   "post-deadline epoch");
  EXPECT_TRUE(mgr.check_canonical());
}

}  // namespace
}  // namespace covest
