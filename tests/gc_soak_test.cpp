// The reclamation soak battery: concurrent shared-mode collections at
// the BDD layer (retire batches, grace periods, forced collections
// racing working threads) and the server-shaped executor soak — 100+
// warm-cache requests with model churn, sharded estimation epochs and
// periodic stop-the-world maintenance windows, held to byte-identical
// replies and a live-node plateau. Both shared-table modes throughout.
// Built for the sanitizer CI matrix: every assertion here runs under
// TSan and ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/result_json.h"
#include "engine/session_cache.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Executor;
using engine::ExecutorOptions;
using engine::JobHandle;
using engine::SuiteResult;

const char* kModels[] = {"counter.cov", "arbiter.cov", "handshake.cov",
                         "shift.cov", "traffic.cov"};
constexpr std::size_t kModelCount = sizeof(kModels) / sizeof(kModels[0]);

const bdd::TableMode kTableModes[] = {bdd::TableMode::kLockFree,
                                      bdd::TableMode::kStriped};

const char* table_mode_name(bdd::TableMode mode) {
  return mode == bdd::TableMode::kLockFree ? "lockfree" : "striped";
}

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

// --------------------------------------------------------------------------
// bdd.h shared-mode reclamation, driven directly
// --------------------------------------------------------------------------

TEST(SharedGcSoakTest, ConcurrentCollectionsReclaimAndStayCanonical) {
  for (const bdd::TableMode mode : kTableModes) {
    constexpr unsigned kVars = 14;
    constexpr std::size_t kWorkers = 3;
    constexpr int kRounds = 60;
    bdd::BddManager mgr(kVars);
    // Low threshold: the allocator raises gc_requested_ as soon as the
    // free list runs dry, so collections genuinely interleave with the
    // working threads below instead of never firing.
    mgr.set_gc_threshold(2048);
    std::vector<bdd::Bdd> vars;
    for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.var(i));

    // Deterministic per-(lane, round) formula; every round's
    // intermediates die when the next round overwrites the handle —
    // exactly the garbage concurrent collections must reclaim while
    // sibling threads keep building.
    const auto family = [&vars](bdd::BddManager& m, std::size_t lane,
                                int round) {
      bdd::Bdd acc = (round % 2) != 0 ? m.bdd_true() : m.bdd_false();
      for (std::size_t i = 0; i < vars.size(); ++i) {
        const bdd::Bdd& v = vars[(i * (lane + 1) + round) % vars.size()];
        if ((round % 2) != 0) {
          acc &= v ^ vars[i];
        } else {
          acc = ite(v, acc, !vars[i] | acc);
        }
      }
      return acc;
    };

    std::vector<bdd::Bdd> finals(kWorkers);
    mgr.begin_shared(kWorkers + 1, mode);
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < kWorkers; ++t) {
        threads.emplace_back([&, t] {
          mgr.register_shard_thread();
          for (int round = 0; round < kRounds; ++round) {
            finals[t] = family(mgr, t, round);
            // Grace announcement between units of work — the governor
            // boundary the engine loops hit.
            mgr.quiescent_point();
          }
          // A finished worker's stale epoch view must not stall
          // reclamation for the threads still running.
          mgr.mark_thread_passive();
        });
      }
      // A collector thread forces full collections while the workers
      // are mid-build: every one of them must park at its next
      // operation gate and resume with its handles intact.
      threads.emplace_back([&] {
        mgr.register_shard_thread();
        for (int i = 0; i < 8; ++i) {
          mgr.gc();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          mgr.quiescent_point();
        }
        mgr.mark_thread_passive();
      });
      for (std::thread& th : threads) th.join();
    }
    mgr.end_shared();

    const bdd::BddStats stats = mgr.stats();
    EXPECT_GT(stats.shared_gc_runs, 0u) << table_mode_name(mode);
    EXPECT_GT(stats.retired_nodes, 0u) << table_mode_name(mode);
    EXPECT_GT(stats.reclaimed_nodes, 0u) << table_mode_name(mode);
    // The plateau: with reclamation working, the pool stays near the
    // collection threshold instead of absorbing every round's garbage
    // (3 workers x 60 rounds would otherwise pile up tens of
    // thousands of dead slots).
    EXPECT_LT(stats.allocated_nodes, 32768u) << table_mode_name(mode);

    // Collections must not have touched live structure: exclusive-mode
    // recomputation lands on the identical canonical edge.
    EXPECT_TRUE(mgr.check_canonical()) << table_mode_name(mode);
    for (std::size_t t = 0; t < kWorkers; ++t) {
      EXPECT_EQ(finals[t], family(mgr, t, kRounds - 1))
          << table_mode_name(mode) << " lane " << t;
    }
  }
}

TEST(SharedGcSoakTest, QuiescentPointIsSafeAnywhere) {
  bdd::BddManager mgr(4);
  mgr.quiescent_point();  // Exclusive mode: a no-op, never a throw.
  const bdd::Bdd a = mgr.var(0) & mgr.var(1);
  mgr.begin_shared(1);
  mgr.register_shard_thread();
  mgr.quiescent_point();
  const bdd::Bdd b = a | mgr.var(2);
  mgr.end_shared();
  EXPECT_FALSE(b.is_false());
  EXPECT_TRUE(mgr.check_canonical());
}

// --------------------------------------------------------------------------
// The server-shaped soak: warm cache, churn, maintenance windows
// --------------------------------------------------------------------------

TEST(GcSoakTest, HundredWarmRequestsWithMaintenanceStayByteIdentical) {
  // Low collection threshold for every manager elaborated below, so the
  // sharded estimation epochs actually collect concurrently (the
  // exclusive-mode threshold adapts back up on its own).
  ::setenv("COVEST_GC_THRESHOLD", "32", 1);
  struct RestoreEnv {
    ~RestoreEnv() { ::unsetenv("COVEST_GC_THRESHOLD"); }
  } restore;

  // Serial cold ground truth, computed once per model.
  std::vector<std::string> expected;
  for (const char* m : kModels) {
    CoverageRequest req;
    req.model_path = model_path(m);
    expected.push_back(canonical(Engine().run(req)));
  }

  for (const bdd::TableMode mode : kTableModes) {
    // Capacity below the model count: every round churns the cache
    // (evictions + re-elaborations), the worst case for reclamation.
    auto cache = std::make_shared<engine::SessionCache>(4);
    ExecutorOptions options;
    options.workers = 2;
    options.session_cache = cache;
    Executor ex{options};

    constexpr int kRounds = 12;
    constexpr int kPerRound = 10;
    std::size_t total = 0;
    std::size_t max_shared_gc_runs = 0;
    std::vector<std::size_t> plateau;  ///< live_nodes after each window.
    for (int round = 0; round < kRounds; ++round) {
      std::vector<JobHandle> handles;
      std::vector<std::size_t> which;
      for (int k = 0; k < kPerRound; ++k) {
        const std::size_t idx = (round + k) % kModelCount;
        CoverageRequest req;
        req.model_path = model_path(kModels[idx]);
        req.shards = 2;  // Shared estimation epochs inside every job.
        req.table_mode = mode;
        which.push_back(idx);
        handles.push_back(ex.submit(req));
      }
      // The stop-the-world window races the in-flight batch: it must
      // drain active tasks, GC the parked sessions and hand the queue
      // back without perturbing a single reply byte.
      const engine::MaintenanceStats window = ex.maintenance();
      for (std::size_t i = 0; i < handles.size(); ++i) {
        const SuiteResult r = handles[i].take();
        ASSERT_TRUE(r.error.empty())
            << kModels[which[i]] << ": " << r.error;
        EXPECT_EQ(canonical(r), expected[which[i]])
            << table_mode_name(mode) << " round " << round << " "
            << kModels[which[i]];
        max_shared_gc_runs = std::max(
            max_shared_gc_runs, r.estimate.shared_gc_runs);
        ++total;
      }
      (void)window;
      plateau.push_back(cache->stats().live_nodes);
    }
    EXPECT_GE(total, 100u);
    // Some job's manager really collected inside a shared epoch.
    EXPECT_GT(max_shared_gc_runs, 0u) << table_mode_name(mode);

    // The plateau: once every model has been seen (round 3 on), parked
    // live nodes stop growing — maintenance plus in-epoch reclamation
    // keep the resident set flat across another ~100 requests.
    ASSERT_GE(plateau.size(), 4u);
    const std::size_t baseline = plateau[2];
    EXPECT_GT(baseline, 0u);
    const std::size_t worst =
        *std::max_element(plateau.begin() + 3, plateau.end());
    EXPECT_LE(worst, baseline * 2) << table_mode_name(mode);
  }
}

}  // namespace
}  // namespace covest
