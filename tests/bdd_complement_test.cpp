// Invariants of the complement-edge encoding (see the header comment in
// bdd/bdd.h): canonical form of stored nodes, O(1) negation semantics,
// cache-free constant results, count duality and reordering stability of
// complemented handles.
#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace covest::bdd {
namespace {

class BddComplementTest : public ::testing::Test {
 protected:
  BddManager mgr{8};
  Bdd v(Var i) { return mgr.var(i); }
};

// A random expression builder, mirroring the one in bdd_test.cpp, biased
// towards negation so complement bits appear throughout the DAG.
Bdd random_function(BddManager& mgr, std::mt19937& rng, int num_vars,
                    int depth) {
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  if (depth == 0) return mgr.var(static_cast<Var>(var_dist(rng)));
  std::uniform_int_distribution<int> kind(0, 4);
  switch (kind(rng)) {
    case 0:
      return !random_function(mgr, rng, num_vars, depth - 1);
    case 1:
      return random_function(mgr, rng, num_vars, depth - 1) &
             random_function(mgr, rng, num_vars, depth - 1);
    case 2:
      return random_function(mgr, rng, num_vars, depth - 1) |
             random_function(mgr, rng, num_vars, depth - 1);
    case 3:
      return random_function(mgr, rng, num_vars, depth - 1) ^
             random_function(mgr, rng, num_vars, depth - 1);
    default:
      return mgr.var(static_cast<Var>(var_dist(rng)));
  }
}

std::vector<bool> truth_table(BddManager& mgr, const Bdd& f, int num_vars) {
  std::vector<bool> table;
  std::vector<bool> assignment(num_vars);
  for (unsigned bits = 0; bits < (1u << num_vars); ++bits) {
    for (int i = 0; i < num_vars; ++i) assignment[i] = (bits >> i) & 1;
    table.push_back(mgr.eval(f, assignment));
  }
  return table;
}

// --------------------------------------------------------------------------
// Canonical form
// --------------------------------------------------------------------------

TEST_F(BddComplementTest, NoStoredNodeHasComplementedHighEdge) {
  std::mt19937 rng(7);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = random_function(mgr, rng, 8, 6);
    (void)f;
    EXPECT_TRUE(mgr.check_canonical());
  }
}

TEST_F(BddComplementTest, CanonicalFormSurvivesGcAndReordering) {
  std::mt19937 rng(11);
  Bdd keep = random_function(mgr, rng, 8, 6);
  { Bdd garbage = random_function(mgr, rng, 8, 6); }
  mgr.gc();
  EXPECT_TRUE(mgr.check_canonical());
  mgr.reorder_sift();
  EXPECT_TRUE(mgr.check_canonical());
}

TEST_F(BddComplementTest, ConstantsAreComplementsOfEachOther) {
  EXPECT_EQ(mgr.bdd_false(), !mgr.bdd_true());
  EXPECT_EQ(mgr.bdd_true(), !mgr.bdd_false());
  EXPECT_EQ(kFalseIndex, edge_not(kTrueIndex));
}

// --------------------------------------------------------------------------
// O(1) negation
// --------------------------------------------------------------------------

TEST_F(BddComplementTest, DoubleNegationIsIdentity) {
  std::mt19937 rng(23);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = random_function(mgr, rng, 8, 6);
    EXPECT_EQ(!(!f), f);
  }
}

TEST_F(BddComplementTest, NegationSharesAllNodes) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3));
  const Bdd g = !f;
  // Same slot, opposite polarity: node_count is identical and the handles
  // differ exactly by the complement bit.
  EXPECT_EQ(mgr.node_count(f), mgr.node_count(g));
  EXPECT_EQ(edge_node(f.index()), edge_node(g.index()));
  EXPECT_EQ(f.index() ^ kComplementBit, g.index());
}

TEST_F(BddComplementTest, NegationIsAllocationAndCacheFree) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3)) | (!v(4) & v(5));
  const BddStats before = mgr.stats();
  const Bdd g = !f;
  const Bdd h = !g;
  const BddStats& after = mgr.stats();
  EXPECT_EQ(h, f);
  // No node allocated, no unique-table traffic, no cache traffic.
  EXPECT_EQ(after.unique_misses, before.unique_misses);
  EXPECT_EQ(after.unique_hits, before.unique_hits);
  EXPECT_EQ(after.cache_lookups, before.cache_lookups);
  EXPECT_EQ(after.o1_negations, before.o1_negations + 2);
}

TEST_F(BddComplementTest, ContradictionNeedsNoCacheLookup) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3));
  const Bdd nf = !f;
  const std::size_t lookups = mgr.stats().cache_lookups;
  // f & !f and f | !f are recognised by the complement terminal rule
  // before any cache or recursion is touched.
  EXPECT_TRUE((f & nf).is_false());
  EXPECT_TRUE((f | nf).is_true());
  EXPECT_EQ(mgr.stats().cache_lookups, lookups);
}

// --------------------------------------------------------------------------
// Counting duality
// --------------------------------------------------------------------------

TEST_F(BddComplementTest, SatCountOfNegationIsComplementCount) {
  std::mt19937 rng(31);
  const std::vector<Var> all{0, 1, 2, 3, 4, 5, 6, 7};
  const double total = std::exp2(static_cast<double>(all.size()));
  for (int i = 0; i < 20; ++i) {
    const Bdd f = random_function(mgr, rng, 8, 5);
    EXPECT_DOUBLE_EQ(mgr.sat_count(!f, all), total - mgr.sat_count(f, all));
  }
}

TEST(BddComplementDeepTest, SatCountIsExactForDeepSparseFunctions) {
  // A conjunction of 1100 literals has exactly one minterm. A naive
  // fraction-based count underflows double subnormals past ~1074 levels;
  // the rank-based recursion must stay exact.
  constexpr unsigned kDepth = 1100;
  BddManager mgr(kDepth);
  std::vector<Var> all;
  for (Var v = 0; v < kDepth; ++v) all.push_back(v);
  const Bdd cube = mgr.cube(all);
  EXPECT_DOUBLE_EQ(mgr.sat_count(cube, all), 1.0);
  // Two free variables -> 4 minterms; and the negation counts the rest.
  std::vector<Var> most(all.begin(), all.end() - 2);
  const Bdd partial = mgr.cube(most);
  EXPECT_DOUBLE_EQ(mgr.sat_count(partial, all), 4.0);
}

TEST_F(BddComplementTest, SupportOfNegationIsSupportOfFunction) {
  const Bdd f = (v(1) & v(3)) ^ v(6);
  EXPECT_EQ(mgr.support(!f), mgr.support(f));
}

// --------------------------------------------------------------------------
// Reordering with complemented handles
// --------------------------------------------------------------------------

TEST_F(BddComplementTest, ReorderingPreservesComplementedHandles) {
  std::mt19937 rng(47);
  constexpr int kNumVars = 8;
  const Bdd f = random_function(mgr, rng, kNumVars, 6);
  const Bdd nf = !f;
  const auto f_before = truth_table(mgr, f, kNumVars);
  const auto nf_before = truth_table(mgr, nf, kNumVars);

  for (unsigned lvl = 0; lvl + 1 < mgr.num_vars(); ++lvl) {
    mgr.swap_adjacent_levels(lvl);
    EXPECT_TRUE(mgr.check_canonical()) << "after swap at level " << lvl;
  }
  EXPECT_EQ(truth_table(mgr, f, kNumVars), f_before);
  EXPECT_EQ(truth_table(mgr, nf, kNumVars), nf_before);

  std::vector<Var> order{7, 2, 5, 0, 3, 6, 1, 4};
  mgr.set_order(order);
  EXPECT_EQ(truth_table(mgr, f, kNumVars), f_before);
  EXPECT_EQ(truth_table(mgr, nf, kNumVars), nf_before);
  EXPECT_EQ(nf, !f);  // Still the same slot, opposite polarity.

  mgr.reorder_sift();
  EXPECT_EQ(truth_table(mgr, f, kNumVars), f_before);
  EXPECT_EQ(truth_table(mgr, nf, kNumVars), nf_before);
  EXPECT_TRUE(mgr.check_canonical());
}

// --------------------------------------------------------------------------
// De Morgan / duality identities exercising shared caches
// --------------------------------------------------------------------------

TEST_F(BddComplementTest, SharedCacheIdentities) {
  std::mt19937 rng(59);
  for (int i = 0; i < 20; ++i) {
    const Bdd f = random_function(mgr, rng, 8, 5);
    const Bdd g = random_function(mgr, rng, 8, 5);
    EXPECT_EQ(f | g, !(!f & !g));        // OR via the AND cache.
    EXPECT_EQ(f ^ g, !(f ^ !g));         // XOR parity stripping.
    EXPECT_EQ(!(f ^ g), (!f) ^ g);
    const Bdd cube = mgr.cube({1, 4, 6});
    EXPECT_EQ(mgr.forall(f, cube), !mgr.exists(!f, cube));
  }
}

TEST_F(BddComplementTest, StatsReportComplementSavingsAndHitRate) {
  Bdd f = (v(0) & v(1)) | (v(2) & v(3));
  Bdd g = !f;
  Bdd h = (v(0) & v(1)) | (v(2) & v(3));  // Replay: cache hits.
  EXPECT_EQ(h, f);
  EXPECT_GT(mgr.stats().o1_negations, 0u);
  EXPECT_GT(mgr.stats().cache_hit_rate(), 0.0);
  EXPECT_LE(mgr.stats().cache_hit_rate(), 1.0);
  mgr.clear_cache();
  EXPECT_EQ(mgr.stats().cache_lookups, 0u);
  EXPECT_EQ(mgr.stats().cache_hits, 0u);
  EXPECT_DOUBLE_EQ(mgr.stats().cache_hit_rate(), 0.0);
}

}  // namespace
}  // namespace covest::bdd
