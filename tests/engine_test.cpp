// The engine facade: declarative CoverageRequest -> SuiteResult runs,
// progress/cancellation hooks, equivalence with the core estimator API,
// and golden-file tests for the JSON serializer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "circuits/circuits.h"
#include "core/coverage.h"
#include "ctl/ctl_parser.h"
#include "engine/engine.h"
#include "engine/result_json.h"
#include "engine/result_text.h"
#include "model/model_parser.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Progress;
using engine::PropertySpec;
using engine::RunHooks;
using engine::Session;
using engine::SuiteResult;

constexpr const char* kHandshakeSource = R"(
MODULE handshake;
VAR  req_r : bool;
VAR  ack   : bool;
IVAR req   : bool;
IVAR grant : bool;
INIT req_r := false;
INIT ack := false;
NEXT req_r := req;
NEXT ack := req_r & grant;
SPEC AG (!req_r -> AX (!ack)) OBSERVE ack;
SPEC AG (req_r & grant -> AX ack) OBSERVE ack;
)";

// The first SPEC fails (x flips to 1 whenever in=1); the second holds.
constexpr const char* kBrokenSource = R"(
MODULE broken;
VAR  x : bool;
IVAR in : bool;
INIT x := false;
NEXT x := in;
SPEC AG (!x) OBSERVE x;
SPEC AG (in -> AX x) OBSERVE x;
)";

// --------------------------------------------------------------------------
// Facade end-to-end
// --------------------------------------------------------------------------

TEST(EngineTest, ModelSpecsDriveTheWholeSuite) {
  CoverageRequest req;
  req.model = model::parse_model(kHandshakeSource);
  const SuiteResult r = Engine().run(req);

  EXPECT_EQ(r.model_name, "handshake");
  EXPECT_EQ(r.state_bits, 2u);
  ASSERT_EQ(r.properties.size(), 2u);
  EXPECT_TRUE(r.all_passed());
  EXPECT_FALSE(r.cancelled);
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_EQ(r.signals[0].name, "ack");
  EXPECT_EQ(r.signals[0].num_properties, 2u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, 100.0);
  EXPECT_TRUE(r.signals[0].uncovered.empty());
  EXPECT_GT(r.space_count, 0.0);
  EXPECT_GT(r.reachable_states, 0.0);
}

TEST(EngineTest, MissingModelSourceThrows) {
  EXPECT_THROW(Engine().run(CoverageRequest{}), std::runtime_error);
}

TEST(EngineTest, RowsMatchTheCoreEstimator) {
  // The facade's per-signal rows must equal CoverageEstimator::report's
  // (both delegate to the same group aggregation).
  const model::Model m = model::parse_model(kHandshakeSource);

  CoverageRequest req;
  req.model = m;
  auto session = Engine().open(req);
  const SuiteResult r = session->run(req);

  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker checker(fsm);
  core::CoverageEstimator est(checker);
  std::vector<ctl::Formula> props;
  for (const auto& spec : m.specs()) {
    props.push_back(ctl::parse_ctl(spec.ctl_text));
  }
  const core::CoverageReport rep =
      est.report(props, {core::observe_all_bits(m, "ack")});

  ASSERT_EQ(rep.signals.size(), 1u);
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, rep.signals[0].percent);
  EXPECT_DOUBLE_EQ(r.signals[0].covered_count, rep.signals[0].covered_count);
  EXPECT_EQ(r.signals[0].num_properties, rep.signals[0].num_properties);
}

TEST(EngineTest, FailingPropertiesAreSkippedByDefault) {
  CoverageRequest req;
  req.model = model::parse_model(kBrokenSource);
  const SuiteResult r = Engine().run(req);

  ASSERT_EQ(r.properties.size(), 2u);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_FALSE(r.all_passed());

  const engine::PropertyResult& failing = r.properties[0];
  EXPECT_FALSE(failing.holds);
  EXPECT_TRUE(failing.skipped);
  ASSERT_TRUE(failing.counterexample.has_value());
  EXPECT_FALSE(failing.counterexample->steps.empty());

  const engine::PropertyResult& passing = r.properties[1];
  EXPECT_TRUE(passing.holds);
  EXPECT_FALSE(passing.skipped);
  EXPECT_FALSE(passing.counterexample.has_value());

  // The row reflects only the passing property.
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_EQ(r.signals[0].num_properties, 1u);
}

TEST(EngineTest, SkipFailingKeepsFailingPropertiesInTheSuite) {
  CoverageRequest req;
  req.model = model::parse_model(kBrokenSource);
  req.skip_failing = true;
  const SuiteResult r = Engine().run(req);

  EXPECT_EQ(r.failures, 1u);
  for (const auto& p : r.properties) EXPECT_FALSE(p.skipped);
  // The failing property stays in the suite but contributes an empty
  // covered set (Definition 3 presupposes M |= f), so both count toward
  // the row without changing its covered states.
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_EQ(r.signals[0].num_properties, 2u);
}

TEST(EngineTest, ExplicitSuiteAndSignalsBypassModelSpecs) {
  const circuits::CounterSpec spec{3, 5};
  CoverageRequest req;
  req.model = circuits::make_mod_counter(spec);
  for (const auto& f : circuits::counter_increment_properties(spec)) {
    req.properties.push_back(PropertySpec::of(f));
  }
  req.signals = {"count"};
  req.want_traces = true;

  const SuiteResult r = Engine().run(req);
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_GT(r.signals[0].percent, 0.0);
  EXPECT_LT(r.signals[0].percent, 100.0);  // The reset/stall hole.
  EXPECT_FALSE(r.signals[0].uncovered.empty());
  ASSERT_TRUE(r.signals[0].trace.has_value());
  EXPECT_FALSE(r.signals[0].trace->steps.empty());
  // The covered handle stays valid: `retain` parks the session.
  EXPECT_TRUE(r.retain != nullptr);
  EXPECT_FALSE(r.signals[0].covered.is_false());
}

TEST(EngineTest, SessionReuseSharesWorkAcrossSuites) {
  const circuits::CircularQueueSpec spec{3};
  CoverageRequest base;
  base.model = circuits::make_circular_queue(spec);
  auto session = Engine().open(base);

  auto suite = circuits::queue_wrap_properties_initial(spec);
  CoverageRequest phase1;
  for (const auto& f : suite) phase1.properties.push_back(PropertySpec::of(f));
  phase1.signals = {"wrap"};
  const double pct1 = session->run(phase1).signals.front().percent;

  const std::size_t memo_after_first = session->checker().memo_size();
  // Re-running the same suite hits the structural memo: no new entries.
  session->run(phase1);
  EXPECT_EQ(session->checker().memo_size(), memo_after_first);

  // A grown suite is monotone.
  suite.push_back(circuits::queue_wrap_stall_property(spec));
  CoverageRequest phase2 = phase1;
  phase2.properties.clear();
  for (const auto& f : suite) phase2.properties.push_back(PropertySpec::of(f));
  EXPECT_GE(session->run(phase2).signals.front().percent, pct1);
}

// --------------------------------------------------------------------------
// Progress and cancellation
// --------------------------------------------------------------------------

TEST(EngineProgressTest, TicksArriveInPhaseOrderWithTotals) {
  CoverageRequest req;
  req.model = model::parse_model(kHandshakeSource);

  std::vector<Progress> ticks;
  RunHooks hooks;
  hooks.on_progress = [&ticks](const Progress& p) {
    ticks.push_back(p);
    return true;
  };
  const SuiteResult r = Engine().run(req, hooks);
  EXPECT_FALSE(r.cancelled);

  // elaborate, 2 properties, 1 signal, done.
  ASSERT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks[0].phase, Progress::Phase::kElaborate);
  EXPECT_EQ(ticks[1].phase, Progress::Phase::kVerify);
  EXPECT_EQ(ticks[1].index, 1u);
  EXPECT_EQ(ticks[1].total, 2u);
  EXPECT_TRUE(ticks[1].ok);
  EXPECT_EQ(ticks[2].phase, Progress::Phase::kVerify);
  EXPECT_EQ(ticks[2].index, 2u);
  EXPECT_EQ(ticks[3].phase, Progress::Phase::kEstimate);
  EXPECT_EQ(ticks[3].item, "ack");
  EXPECT_DOUBLE_EQ(ticks[3].percent, 100.0);
  EXPECT_EQ(ticks[4].phase, Progress::Phase::kDone);
}

TEST(EngineProgressTest, CancellingDuringVerifyReturnsPartialResult) {
  CoverageRequest req;
  req.model = model::parse_model(kHandshakeSource);

  RunHooks hooks;
  hooks.on_progress = [](const Progress& p) {
    return p.phase != Progress::Phase::kVerify;  // Cancel on first property.
  };
  const SuiteResult r = Engine().run(req, hooks);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.properties.size(), 1u);  // Stopped after the first check.
  EXPECT_TRUE(r.signals.empty());     // Never reached estimation.
}

TEST(EngineProgressTest, CancellingDuringEstimateKeepsVerification) {
  CoverageRequest req;
  req.model = model::parse_model(kHandshakeSource);

  RunHooks hooks;
  hooks.on_progress = [](const Progress& p) {
    return p.phase != Progress::Phase::kEstimate;
  };
  const SuiteResult r = Engine().run(req, hooks);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.properties.size(), 2u);  // Verification completed.
  EXPECT_EQ(r.signals.size(), 1u);     // First row done, then stopped.
}

// --------------------------------------------------------------------------
// JSON serializer
// --------------------------------------------------------------------------

TEST(ResultJsonTest, ValidatorAcceptsAndRejects) {
  std::string err;
  EXPECT_TRUE(engine::validate_json(R"({"a": [1, 2.5e-3], "b": "x\n"})",
                                    &err));
  EXPECT_TRUE(engine::validate_json("[]", &err));
  EXPECT_TRUE(engine::validate_json("null", &err));
  EXPECT_FALSE(engine::validate_json("", &err));
  EXPECT_FALSE(engine::validate_json("{", &err));
  EXPECT_FALSE(engine::validate_json("{\"a\": 1,}", &err));
  EXPECT_FALSE(engine::validate_json("[1 2]", &err));
  EXPECT_FALSE(engine::validate_json("{\"a\": 01}", &err));
  EXPECT_FALSE(engine::validate_json("\"unterminated", &err));
  EXPECT_FALSE(engine::validate_json("[1] trailing", &err));
}

TEST(ResultJsonTest, OutputValidatesAndEscapes) {
  CoverageRequest req;
  req.model = model::parse_model(kHandshakeSource);
  SuiteResult r = Engine().run(req);
  r.model_name = "quoted\"name\nwith\tescapes\\";

  for (const bool pretty : {true, false}) {
    engine::JsonOptions opts;
    opts.pretty = pretty;
    const std::string json = engine::to_json(r, opts);
    std::string err;
    EXPECT_TRUE(engine::validate_json(json, &err)) << err << "\n" << json;
  }
}

// Golden-file tests: deterministic serializations (include_stats=false)
// compared byte-for-byte. Regenerate with
//   COVEST_REGEN_GOLDEN=1 ./engine_test
class GoldenJsonTest : public ::testing::Test {
 protected:
  static std::string golden_path(const std::string& name) {
    return std::string(COVEST_SOURCE_DIR) + "/tests/golden/" + name;
  }

  static void compare_or_regen(const std::string& name,
                               const std::string& actual) {
    const std::string path = golden_path(name);
    if (std::getenv("COVEST_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str()) << "golden mismatch for " << name;
  }
};

TEST_F(GoldenJsonTest, ArbiterSuite) {
  CoverageRequest req;
  req.model_path = std::string(COVEST_SOURCE_DIR) +
                   "/examples/models/arbiter.cov";
  const SuiteResult r = Engine().run(req);

  engine::JsonOptions opts;
  opts.include_stats = false;
  const std::string json = engine::to_json(r, opts);
  std::string err;
  ASSERT_TRUE(engine::validate_json(json, &err)) << err;
  compare_or_regen("arbiter_suite.json", json);
}

TEST_F(GoldenJsonTest, CounterSuiteWithHolesAndTrace) {
  CoverageRequest req;
  req.model_path = std::string(COVEST_SOURCE_DIR) +
                   "/examples/models/counter.cov";
  req.want_traces = true;
  const SuiteResult r = Engine().run(req);

  engine::JsonOptions opts;
  opts.include_stats = false;
  const std::string json = engine::to_json(r, opts);
  std::string err;
  ASSERT_TRUE(engine::validate_json(json, &err)) << err;
  compare_or_regen("counter_suite.json", json);
}

TEST_F(GoldenJsonTest, TextRendererIsStableToo) {
  CoverageRequest req;
  req.model_path = std::string(COVEST_SOURCE_DIR) +
                   "/examples/models/counter.cov";
  req.want_traces = true;
  const SuiteResult r = Engine().run(req);
  compare_or_regen("counter_suite.txt", engine::render_text(r));
}

}  // namespace
}  // namespace covest
