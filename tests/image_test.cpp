// Unit tests for the partitioned image engine (src/image): dependency-
// matrix derivation from next-state supports, the FORCE-derived static
// variable order, early-quantification schedules, cluster-order
// determinism, and strategy parity — every strategy must return the
// identical canonical BDD for every image/preimage/fix-point, because
// the set is the set regardless of how the relational product was
// scheduled.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "circuits/circuits.h"
#include "fsm/symbolic_fsm.h"
#include "image/image.h"
#include "model/model.h"

namespace covest {
namespace {

using bdd::Bdd;
using bdd::Var;
using expr::Expr;
using image::ImageStrategy;

// --------------------------------------------------------------------------
// Strategy spellings
// --------------------------------------------------------------------------

TEST(ImageStrategyTest, SpellingsRoundTrip) {
  for (const ImageStrategy s :
       {ImageStrategy::kMonolithic, ImageStrategy::kPartitioned,
        ImageStrategy::kChaining}) {
    ImageStrategy parsed{};
    ASSERT_TRUE(image::image_strategy_from_string(image::to_string(s),
                                                  &parsed));
    EXPECT_EQ(parsed, s);
  }
  ImageStrategy out = ImageStrategy::kChaining;
  EXPECT_FALSE(image::image_strategy_from_string("Monolithic", &out));
  EXPECT_FALSE(image::image_strategy_from_string("", &out));
  EXPECT_FALSE(image::image_strategy_from_string("saturation", &out));
  EXPECT_EQ(out, ImageStrategy::kChaining);  // Untouched on failure.
}

// --------------------------------------------------------------------------
// Dependency matrix on a hand-built model
// --------------------------------------------------------------------------

/// x' = y, y' = x & in, z' = z: one row per state bit with known reads.
model::Model chain_model() {
  model::ModelBuilder b("chain");
  const Expr x = b.state_bool("x", false);
  const Expr y = b.state_bool("y", false);
  const Expr z = b.state_bool("z", true);
  const Expr in = b.input_bool("in");
  b.next("x", y);
  b.next("y", x & in);
  b.next("z", z);
  return b.build();
}

TEST(DependencyMatrixTest, RowsRecordNextStateSupport) {
  const fsm::SymbolicFsm f(chain_model());
  const image::DependencyMatrix& dep = f.dependency_matrix();
  ASSERT_EQ(dep.rows(), 3u);

  const Var x = f.layout("x").current[0];
  const Var y = f.layout("y").current[0];
  const Var z = f.layout("z").current[0];
  const Var in = f.layout("in").current[0];

  // Parts are built in declaration order: x', y', z'.
  EXPECT_EQ(dep.row(0).writes, f.layout("x").next[0]);
  EXPECT_EQ(dep.row(0).reads, (std::vector<Var>{y}));
  EXPECT_EQ(dep.row(1).writes, f.layout("y").next[0]);
  std::vector<Var> yr = {x, in};
  std::sort(yr.begin(), yr.end());
  EXPECT_EQ(dep.row(1).reads, yr);
  EXPECT_EQ(dep.row(2).writes, f.layout("z").next[0]);
  EXPECT_EQ(dep.row(2).reads, (std::vector<Var>{z}));

  EXPECT_TRUE(dep.reads(0, y));
  EXPECT_FALSE(dep.reads(0, x));
  EXPECT_FALSE(dep.reads(2, in));
}

TEST(DependencyMatrixTest, DerivedOrderKeepsPairsAdjacent) {
  const fsm::SymbolicFsm f(chain_model());
  const image::VariableOrdering ordering =
      f.dependency_matrix().derive_order(f.current_vars(), f.next_vars());
  ASSERT_EQ(ordering.order.size(), 2 * f.current_vars().size());
  ASSERT_EQ(ordering.pair_rank.size(), f.current_vars().size());

  // Every (current, next) pair occupies adjacent positions, current on
  // top — the invariant that keeps cur<->next renaming a valid permute.
  for (std::size_t i = 0; i < f.current_vars().size(); ++i) {
    const std::size_t rank = ordering.pair_rank[i];
    EXPECT_EQ(ordering.order[2 * rank], f.current_vars()[i]);
    EXPECT_EQ(ordering.order[2 * rank + 1], f.next_vars()[i]);
  }

  // The order is a permutation of all pair variables.
  std::set<Var> seen(ordering.order.begin(), ordering.order.end());
  EXPECT_EQ(seen.size(), ordering.order.size());
}

TEST(DependencyMatrixTest, DerivationIsDeterministic) {
  const fsm::SymbolicFsm a(
      circuits::make_token_ring(circuits::TokenRingSpec{8, 2}));
  const fsm::SymbolicFsm b(
      circuits::make_token_ring(circuits::TokenRingSpec{8, 2}));
  const image::VariableOrdering oa =
      a.dependency_matrix().derive_order(a.current_vars(), a.next_vars());
  const image::VariableOrdering ob =
      b.dependency_matrix().derive_order(b.current_vars(), b.next_vars());
  EXPECT_EQ(oa.order, ob.order);
  EXPECT_EQ(oa.pair_rank, ob.pair_rank);
  EXPECT_EQ(a.dependency_matrix().part_order(oa),
            b.dependency_matrix().part_order(ob));
}

// --------------------------------------------------------------------------
// Early-quantification schedules
// --------------------------------------------------------------------------

/// The product of all per-cluster cubes and the rest cube must be
/// exactly the cube of every image-quantified variable — each variable
/// quantified once, none forgotten.
TEST(PartitionedRelationTest, ImageCubesPartitionTheQuantifiedVariables) {
  for (const auto& m :
       {circuits::make_token_ring(circuits::TokenRingSpec{8, 2}),
        circuits::make_circular_queue(circuits::CircularQueueSpec{3}),
        circuits::make_pipeline(circuits::PipelineSpec{})}) {
    const fsm::SymbolicFsm f(m);
    const image::PartitionedRelation& rel = f.relation();
    ASSERT_GT(rel.cluster_count(), 0u);
    ASSERT_EQ(rel.image_cubes().size(), rel.cluster_count());

    Bdd product = rel.image_rest_cube();
    std::set<Var> seen;
    for (const Var v : f.mgr().support(product)) seen.insert(v);
    for (const Bdd& cube : rel.image_cubes()) {
      for (const Var v : f.mgr().support(cube)) {
        EXPECT_TRUE(seen.insert(v).second)
            << "variable " << v << " scheduled twice in " << m.name();
      }
      product &= cube;
    }

    // An image quantifies the whole current space — state bits and
    // inputs alike (inputs are allocated as current/next pairs too).
    EXPECT_EQ(product, f.mgr().cube(f.current_vars())) << m.name();
  }
}

TEST(PartitionedRelationTest, ClusteringIsDeterministicAndComplete) {
  const fsm::SymbolicFsm a(
      circuits::make_token_ring(circuits::TokenRingSpec{12, 2}));
  const fsm::SymbolicFsm b(
      circuits::make_token_ring(circuits::TokenRingSpec{12, 2}));
  const image::PartitionedRelation& ra = a.relation();
  const image::PartitionedRelation& rb = b.relation();

  EXPECT_EQ(ra.partial_count(), 24u);  // 2 bits per station.
  EXPECT_EQ(ra.partial_count(), rb.partial_count());
  EXPECT_EQ(ra.cluster_count(), rb.cluster_count());
  EXPECT_EQ(ra.parts_per_cluster(), rb.parts_per_cluster());
  EXPECT_EQ(ra.chain_order(), rb.chain_order());

  // Every partial lands in exactly one cluster.
  std::size_t total = 0;
  for (const std::size_t n : ra.parts_per_cluster()) total += n;
  EXPECT_EQ(total, ra.partial_count());
  EXPECT_EQ(ra.largest_cluster(),
            *std::max_element(ra.parts_per_cluster().begin(),
                              ra.parts_per_cluster().end()));

  // The chain order visits each cluster exactly once.
  std::set<std::size_t> visited(ra.chain_order().begin(),
                                ra.chain_order().end());
  EXPECT_EQ(visited.size(), ra.cluster_count());
}

// --------------------------------------------------------------------------
// Strategy parity
// --------------------------------------------------------------------------

/// On one relation (one manager), every strategy must return the
/// *identical* canonical BDD for images and preimages of assorted sets.
TEST(PartitionedRelationTest, StrategiesAgreeNodeForNode) {
  const fsm::SymbolicFsm f(
      circuits::make_token_ring(circuits::TokenRingSpec{8, 2}));
  const image::PartitionedRelation& rel = f.relation();

  std::vector<Bdd> sets = {f.initial_states(),
                           f.reachable(f.initial_states())};
  sets.push_back(sets[0] | f.forward(sets[0]));
  for (const Bdd& s : sets) {
    const Bdd img = rel.image(s, ImageStrategy::kMonolithic);
    EXPECT_EQ(img, rel.image(s, ImageStrategy::kPartitioned));
    EXPECT_EQ(img, rel.image(s, ImageStrategy::kChaining));

    const Bdd pre = rel.preimage(f.to_next(s), ImageStrategy::kMonolithic);
    EXPECT_EQ(pre, rel.preimage(f.to_next(s), ImageStrategy::kPartitioned));
    EXPECT_EQ(pre, rel.preimage(f.to_next(s), ImageStrategy::kChaining));
  }
}

/// Reachable sets, ring decompositions and state counts must agree
/// across strategies on every benchmark circuit (separate managers, so
/// the comparison is on counts and ring shapes).
TEST(ImageStrategyParityTest, FixpointsAgreeAcrossCircuits) {
  const std::vector<model::Model> models = {
      circuits::make_mod_counter(circuits::CounterSpec{}),
      circuits::make_priority_buffer(circuits::PriorityBufferSpec{}),
      circuits::make_circular_queue(circuits::CircularQueueSpec{3}),
      circuits::make_pipeline(circuits::PipelineSpec{}),
      circuits::make_token_ring(circuits::TokenRingSpec{6, 2}),
  };
  for (const model::Model& m : models) {
    double reached_count = -1.0;
    std::size_t ring_count = 0;
    std::vector<double> ring_sizes;
    for (const ImageStrategy strategy :
         {ImageStrategy::kMonolithic, ImageStrategy::kPartitioned,
          ImageStrategy::kChaining}) {
      SCOPED_TRACE(m.name() + std::string(" under ") +
                   image::to_string(strategy));
      const fsm::SymbolicFsm f(m, 0, strategy);
      EXPECT_EQ(f.image_strategy(), strategy);
      const Bdd reached = f.reachable(f.initial_states());
      const double count = f.count_states(reached);

      // forward_rings is strict BFS under every strategy (the ring
      // decomposition is part of the trace contract), so sizes must
      // match exactly, not just the union.
      const std::vector<Bdd> rings = f.forward_rings(f.initial_states());
      std::vector<double> sizes;
      for (const Bdd& r : rings) sizes.push_back(f.count_states(r));

      if (reached_count < 0.0) {
        reached_count = count;
        ring_count = rings.size();
        ring_sizes = sizes;
      } else {
        EXPECT_EQ(count, reached_count);
        EXPECT_EQ(rings.size(), ring_count);
        EXPECT_EQ(sizes, ring_sizes);
      }
    }
  }
}

}  // namespace
}  // namespace covest
