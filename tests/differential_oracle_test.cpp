// Randomized differential battery: the whole suite pipeline
// (engine::Session — parse/elaborate, symbolic verification, Table-1
// coverage estimation over the shared lock-free BddManager) against the
// independent explicit-state oracle (xstate::ExplicitModel +
// brute-force Definition-3 coverage), on hundreds of seeded random
// models and random ACTL suites.
//
// Per seed it asserts, for the same random model / suite / OBSERVE
// sets:
//   * identical pass/fail verdict for every property,
//   * identical reachable-state and coverage-space counts,
//   * identical covered-state counts and coverage percentages for every
//     signal row,
// and, on a sub-sample of seeds, that the sharded runs (both
// table_mode=lockfree and table_mode=striped) and the parallel-apply
// replays (serial and sharded, both table modes) stay byte-identical
// to the serial run.
//
// Reproduction: every failure message carries its seed; set
// COVEST_DIFF_SEED=<n> to re-run exactly that seed (and only it),
// COVEST_DIFF_COUNT=<k> to change the sweep width (default 200).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/coverage_oracle.h"
#include "core/observed.h"
#include "ctl/ctl.h"
#include "engine/engine.h"
#include "engine/result_json.h"
#include "model/model.h"
#include "xstate/explicit_model.h"

namespace covest {
namespace {

using ctl::Formula;
using engine::CoverageRequest;
using engine::PropertySpec;
using engine::SuiteResult;
using expr::Expr;

// --------------------------------------------------------------------------
// Seeded random model + suite generator
// --------------------------------------------------------------------------

struct GeneratedSuite {
  model::Model model;
  std::vector<Formula> formulas;            ///< Parallel to request props.
  std::vector<std::string> signal_names;    ///< Requested row order.
  CoverageRequest request;                  ///< Serial form (shards = 1).
};

/// Random boolean expression over the given signal names.
Expr random_expr(std::mt19937& rng, const std::vector<std::string>& names,
                 int depth) {
  std::uniform_int_distribution<int> pick(0, 7);
  std::uniform_int_distribution<std::size_t> var(0, names.size() - 1);
  if (depth == 0) {
    Expr e = Expr::var(names[var(rng)]);
    return pick(rng) % 2 == 0 ? e : !e;
  }
  switch (pick(rng)) {
    case 0: return !random_expr(rng, names, depth - 1);
    case 1:
      return random_expr(rng, names, depth - 1) &
             random_expr(rng, names, depth - 1);
    case 2:
      return random_expr(rng, names, depth - 1) |
             random_expr(rng, names, depth - 1);
    case 3:
      return random_expr(rng, names, depth - 1) ^
             random_expr(rng, names, depth - 1);
    default: {
      Expr e = Expr::var(names[var(rng)]);
      return pick(rng) % 2 == 0 ? e : !e;
    }
  }
}

/// Random formula from the acceptable ACTL grammar (paper Section 2.1):
/// propositions, b -> f, AX, AG, A[f U g], AF, conjunction.
Formula random_acceptable(std::mt19937& rng,
                          const std::vector<std::string>& atoms, int depth) {
  std::uniform_int_distribution<int> pick(0, 6);
  if (depth == 0) return Formula::prop(random_expr(rng, atoms, 1));
  switch (pick(rng)) {
    case 0: return Formula::prop(random_expr(rng, atoms, 1));
    case 1:
      return Formula::prop(random_expr(rng, atoms, 1))
          .implies(random_acceptable(rng, atoms, depth - 1));
    case 2: return Formula::AX(random_acceptable(rng, atoms, depth - 1));
    case 3: return Formula::AG(random_acceptable(rng, atoms, depth - 1));
    case 4:
      return Formula::AU(random_acceptable(rng, atoms, depth - 1),
                         random_acceptable(rng, atoms, depth - 1));
    case 5:
      return random_acceptable(rng, atoms, depth - 1) &
             random_acceptable(rng, atoms, depth - 1);
    default: return Formula::AF(random_acceptable(rng, atoms, depth - 1));
  }
}

GeneratedSuite generate(std::uint32_t seed) {
  std::mt19937 rng(seed * 2654435761u + 0x9e3779b9u);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> d6(0, 5);

  GeneratedSuite g;
  model::ModelBuilder b("diff" + std::to_string(seed));
  const std::vector<std::string> state_names = {"x", "y", "z"};
  // Mixed initial values: some concrete, some free — the initial set is
  // never empty, so "all initial states satisfy f" is never vacuous.
  b.state_bool("x", false);
  b.state_bool("y", coin(rng) == 0);
  if (coin(rng) == 0) {
    b.state_bool("z", true);
  } else {
    b.state_bool("z");  // Unconstrained initial value.
  }
  b.input_bool("in");

  std::vector<std::string> expr_names = {"x", "y", "z", "in"};
  g.signal_names = {"x", "y", "z", "in"};
  if (d6(rng) < 2) {
    // Occasionally a DEFINE, observable like any signal (the estimator
    // keeps an observed DEFINE symbolic so its label can flip).
    b.define("d", random_expr(rng, expr_names, 1));
    g.signal_names.push_back("d");
  }
  const bool has_define =
      g.signal_names.size() == 5;  // "d" was added above.

  // Random next-state functions over the full signal set (defines
  // excluded from next-state support to keep the generator simple).
  for (const std::string& s : state_names) {
    b.next(s, random_expr(rng, expr_names, 2));
  }

  // Fairness about a third of the time: a random literal. Whatever fair
  // set results — even a degenerate one — both engines must agree on it.
  if (d6(rng) < 2) {
    Expr f = Expr::var(expr_names[static_cast<std::size_t>(d6(rng)) %
                                  expr_names.size()]);
    b.fairness(coin(rng) == 0 ? f : !f);
  }

  g.model = b.build();

  // Random suite: 2–4 properties, each with a random OBSERVE set (empty
  // means "relevant to every requested signal").
  std::vector<std::string> atoms = expr_names;
  if (has_define) atoms.push_back("d");
  std::uniform_int_distribution<int> nprops(2, 4);
  const int props = nprops(rng);
  for (int i = 0; i < props; ++i) {
    const Formula f = random_acceptable(rng, atoms, 3);
    std::vector<std::string> observe;
    if (coin(rng) == 0) {
      for (const std::string& s : g.signal_names) {
        if (coin(rng) == 0) observe.push_back(s);
      }
    }
    g.formulas.push_back(f);
    g.request.properties.push_back(PropertySpec::of(f, observe));
  }

  g.request.model = g.model;
  g.request.signals = g.signal_names;
  g.request.uncovered_limit = 0;  // Counts and percentages are the contract.
  return g;
}

// --------------------------------------------------------------------------
// The explicit-state side of the differential
// --------------------------------------------------------------------------

struct OracleSuite {
  std::vector<bool> verdicts;         ///< Per property.
  double reachable_count = 0;
  double space_count = 0;             ///< |reachable ∧ fair|.
  std::vector<double> covered_counts;  ///< Per requested signal row.
  std::vector<double> percents;
};

OracleSuite oracle_run(const GeneratedSuite& g) {
  OracleSuite o;
  const xstate::ExplicitModel xm(g.model);

  std::vector<Formula> collapsed;
  for (const Formula& f : g.formulas) {
    collapsed.push_back(ctl::collapse_propositional(f));
    o.verdicts.push_back(xm.holds(collapsed.back()));
  }

  // The coverage space of the defaults (restrict_to_fair = true, no
  // DONTCAREs here): states both reachable and fair. Any state on a
  // path to a fair state is itself fair, so plain reachability
  // intersected with the fair set equals fair-restricted reachability.
  std::vector<bool> space(xm.num_states());
  for (std::size_t s = 0; s < xm.num_states(); ++s) {
    if (xm.reachable()[s]) o.reachable_count += 1.0;
    space[s] = xm.reachable()[s] && xm.fair()[s];
    if (space[s]) o.space_count += 1.0;
  }

  for (const std::string& name : g.request.signals) {
    std::vector<bool> covered(xm.num_states(), false);
    for (std::size_t j = 0; j < g.formulas.size(); ++j) {
      if (!o.verdicts[j]) continue;  // skip_failing=false skips failures.
      const std::vector<std::string>& obs = g.request.properties[j].observe;
      if (!obs.empty() &&
          std::find(obs.begin(), obs.end(), name) == obs.end()) {
        continue;
      }
      for (const core::ObservedSignal& q :
           core::observe_all_bits(g.model, name)) {
        const core::Def3Result r =
            core::definition3_covered(xm, g.formulas[j], q, true);
        for (const std::size_t s : r.covered) covered[s] = true;
      }
    }
    double count = 0;
    for (std::size_t s = 0; s < xm.num_states(); ++s) {
      if (covered[s] && space[s]) count += 1.0;
    }
    o.covered_counts.push_back(count);
    o.percents.push_back(o.space_count == 0.0
                             ? 100.0
                             : 100.0 * count / o.space_count);
  }
  return o;
}

// --------------------------------------------------------------------------
// The differential assertion
// --------------------------------------------------------------------------

std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

/// One seed, end to end; returns how many signal rows had a non-empty
/// covered set (generator-health accounting). `check_sharded`
/// additionally replays the suite sharded under both table modes and
/// holds them to byte-identity.
std::size_t run_seed(std::uint32_t seed, bool check_sharded) {
  SCOPED_TRACE("COVEST_DIFF_SEED=" + std::to_string(seed));
  const GeneratedSuite g = generate(seed);

  engine::Engine eng;
  auto session = eng.open(g.request);
  const SuiteResult serial = session->run(g.request);
  EXPECT_TRUE(serial.error.empty()) << serial.error;
  if (!serial.error.empty()) return 0;

  const OracleSuite o = oracle_run(g);

  // Verdicts.
  EXPECT_EQ(serial.properties.size(), o.verdicts.size());
  if (serial.properties.size() != o.verdicts.size()) return 0;
  std::size_t failures = 0;
  for (std::size_t j = 0; j < o.verdicts.size(); ++j) {
    EXPECT_EQ(serial.properties[j].holds, o.verdicts[j])
        << "property " << j << ": " << serial.properties[j].ctl_text;
    if (!o.verdicts[j]) ++failures;
  }
  EXPECT_EQ(serial.failures, failures);

  // State-space bookkeeping.
  EXPECT_DOUBLE_EQ(serial.reachable_states, o.reachable_count);
  EXPECT_DOUBLE_EQ(serial.space_count, o.space_count);

  // Covered counts and percentages, row by row.
  EXPECT_EQ(serial.signals.size(), o.covered_counts.size());
  if (serial.signals.size() != o.covered_counts.size()) return 0;
  std::size_t interesting = 0;
  for (std::size_t i = 0; i < serial.signals.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.signals[i].covered_count, o.covered_counts[i])
        << "signal " << serial.signals[i].name;
    EXPECT_DOUBLE_EQ(serial.signals[i].percent, o.percents[i])
        << "signal " << serial.signals[i].name;
    if (o.covered_counts[i] > 0.0) ++interesting;
  }

  if (check_sharded) {
    const std::string expect = canonical(serial);
    for (const bdd::TableMode table_mode :
         {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
      CoverageRequest sharded = g.request;
      sharded.shards = 3;
      sharded.table_mode = table_mode;
      const SuiteResult r = session->run(sharded);
      EXPECT_EQ(canonical(r), expect)
          << (table_mode == bdd::TableMode::kLockFree ? "lockfree"
                                                      : "striped");
    }

    // Parallel-apply parity: the work-stealing kernels (bdd/parallel.h)
    // must not perturb a single byte whatever the schedule — serial row
    // order with in-operation parallelism, and the sharded fan-out with
    // a shared pool, under both table modes.
    for (const bdd::TableMode table_mode :
         {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
      SCOPED_TRACE(table_mode == bdd::TableMode::kLockFree ? "lockfree"
                                                           : "striped");
      CoverageRequest par = g.request;
      par.options.parallel_apply = 2;
      par.table_mode = table_mode;
      EXPECT_EQ(canonical(session->run(par)), expect) << "parallel serial";
      par.shards = 3;
      EXPECT_EQ(canonical(session->run(par)), expect) << "parallel sharded";
    }

    // Image-strategy parity: the baseline above ran under the default
    // (partitioned). Each strategy bakes a different image engine and
    // fix-point discipline into the session at elaboration, so replay
    // through a *fresh* session per strategy — serial and sharded, both
    // table modes — and hold every run to byte-identity.
    for (const image::ImageStrategy strategy :
         {image::ImageStrategy::kMonolithic, image::ImageStrategy::kChaining}) {
      SCOPED_TRACE(image::to_string(strategy));
      CoverageRequest replay = g.request;
      replay.options.image_strategy = strategy;
      auto strategy_session = eng.open(replay);
      EXPECT_EQ(canonical(strategy_session->run(replay)), expect);
      for (const bdd::TableMode table_mode :
           {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
        CoverageRequest sharded = replay;
        sharded.shards = 3;
        sharded.table_mode = table_mode;
        EXPECT_EQ(canonical(strategy_session->run(sharded)), expect)
            << (table_mode == bdd::TableMode::kLockFree ? "lockfree"
                                                        : "striped");
      }
    }
  }
  return interesting;
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  return static_cast<std::uint32_t>(std::strtoul(text, nullptr, 10));
}

TEST(DifferentialOracleTest, RandomSuitesAgreeWithExplicitOracle) {
  const char* pinned = std::getenv("COVEST_DIFF_SEED");
  if (pinned != nullptr && *pinned != '\0') {
    // Reproduction mode: exactly the reported seed, with the sharded
    // replay always on.
    (void)run_seed(env_u32("COVEST_DIFF_SEED", 0), /*check_sharded=*/true);
    return;
  }
  const std::uint32_t count = env_u32("COVEST_DIFF_COUNT", 200);
  std::size_t interesting_rows = 0;
  for (std::uint32_t seed = 0; seed < count; ++seed) {
    interesting_rows += run_seed(seed, /*check_sharded=*/seed % 8 == 0);
    if (HasFailure()) {
      return;  // The SCOPED_TRACE already names the failing seed.
    }
  }
  // Generator health: the sweep must exercise non-trivial coverage, not
  // just vacuous 0% rows.
  EXPECT_GT(interesting_rows, 20u)
      << "the random generator stopped producing covered states";
}

}  // namespace
}  // namespace covest
