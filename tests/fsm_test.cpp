// Tests for the symbolic FSM layer: elaboration, image/preimage,
// reachability, counting and traces.
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "fsm/symbolic_fsm.h"
#include "fsm/trace.h"
#include "model/model.h"
#include "model/model_parser.h"

namespace covest::fsm {
namespace {

using bdd::Bdd;
using expr::Expr;

model::Model two_bit_counter() {
  model::ModelBuilder b("c2");
  const Expr c = b.state_word("c", 2, 0);
  const Expr en = b.input_bool("en");
  b.next("c", ite(en, c + Expr::word_const(1, 2), c));
  return b.build();
}

class FsmTest : public ::testing::Test {
 protected:
  FsmTest() : fsm(two_bit_counter()) {}
  SymbolicFsm fsm;

  Bdd c_equals(std::uint64_t v) {
    return fsm.blast_bool(Expr::var("c") == Expr::word_const(v, 2));
  }
};

TEST_F(FsmTest, LayoutAllocatesCurrentAndNextPairs) {
  const SignalLayout& c = fsm.layout("c");
  EXPECT_EQ(c.current.size(), 2u);
  EXPECT_EQ(c.next.size(), 2u);
  const SignalLayout& en = fsm.layout("en");
  EXPECT_EQ(en.current.size(), 1u);
  EXPECT_EQ(fsm.current_vars().size(), 3u);  // c[0], c[1], en.
  EXPECT_THROW(fsm.layout("nosuch"), std::runtime_error);
}

TEST_F(FsmTest, InitialStatesLeaveInputsFree) {
  // init: c == 0, en free -> 2 states of the 8-state space.
  EXPECT_DOUBLE_EQ(fsm.count_states(fsm.initial_states()), 2.0);
}

TEST_F(FsmTest, ForwardImageOfInitial) {
  // From c=0: en=0 keeps c=0, en=1 gives c=1; next input free.
  const Bdd img = fsm.forward(fsm.initial_states());
  EXPECT_DOUBLE_EQ(fsm.count_states(img), 4.0);
  EXPECT_TRUE((img - (c_equals(0) | c_equals(1))).is_false());
}

TEST_F(FsmTest, ForwardOfEnabledStatesIncrements) {
  const Bdd enabled = c_equals(2) & fsm.blast_bool(Expr::var("en"));
  const Bdd img = fsm.forward(enabled);
  EXPECT_EQ(img, c_equals(3));
}

TEST_F(FsmTest, BackwardIsAdjointOfForward) {
  // S intersects backward(T) iff forward(S) intersects T.
  const Bdd s = c_equals(1);
  const Bdd t = c_equals(2);
  EXPECT_EQ(fsm.forward(s).intersects(t), s.intersects(fsm.backward(t)));
  const Bdd t2 = c_equals(3);
  EXPECT_EQ(fsm.forward(s).intersects(t2), s.intersects(fsm.backward(t2)));
}

TEST_F(FsmTest, ReachableIsWholeCounterSpace) {
  const Bdd reach = fsm.reachable(fsm.initial_states());
  EXPECT_DOUBLE_EQ(fsm.count_states(reach), 8.0);  // 4 counts x 2 inputs.
}

TEST_F(FsmTest, ForwardRingsArePairwiseDisjointAndOrdered) {
  const auto rings = fsm.forward_rings(fsm.initial_states());
  ASSERT_EQ(rings.size(), 4u);  // c=0,1,2,3 discovered in BFS order.
  for (std::size_t i = 0; i < rings.size(); ++i) {
    for (std::size_t j = i + 1; j < rings.size(); ++j) {
      EXPECT_FALSE(rings[i].intersects(rings[j]));
    }
  }
  EXPECT_TRUE(rings[3].subset_of(c_equals(3)));
}

TEST_F(FsmTest, ForwardRingsStopEarlyAtTarget) {
  const Bdd target = c_equals(1);
  const auto rings = fsm.forward_rings(fsm.initial_states(), &target);
  EXPECT_EQ(rings.size(), 2u);
}

TEST_F(FsmTest, TransitionRelationMatchesPartsProduct) {
  const Bdd t = fsm.transition_relation();
  // T & (c==2 & en) must force next c == 3.
  Bdd state = c_equals(2) & fsm.blast_bool(Expr::var("en"));
  const Bdd constrained = t & state;
  const Bdd next_c3 = fsm.to_next(c_equals(3));
  EXPECT_TRUE(constrained.subset_of(next_c3));
}

TEST_F(FsmTest, RenamingRoundTrips) {
  const Bdd s = c_equals(2);
  EXPECT_EQ(fsm.to_current(fsm.to_next(s)), s);
}

TEST_F(FsmTest, FormatStatesDecodesSignals) {
  const auto lines = fsm.format_states(c_equals(3), 10);
  ASSERT_EQ(lines.size(), 2u);  // en free: two minterms.
  EXPECT_NE(lines[0].find("c=3"), std::string::npos);
}

TEST_F(FsmTest, UnassignedStateVariableIsFreeRunning) {
  model::ModelBuilder b("free");
  b.state_bool("x");  // No next(): nondeterministic.
  const model::Model m = b.build();
  SymbolicFsm f(m);
  const Bdd x = f.blast_bool(Expr::var("x"));
  // Both values reachable from either value.
  EXPECT_TRUE(f.forward(x).is_true());
  EXPECT_TRUE(f.forward(!x).is_true());
}

TEST_F(FsmTest, DontcareCollectsModelDontcares) {
  model::ModelBuilder b("dc");
  const Expr w = b.state_word("w", 2, 0);
  b.next("w", w);
  b.dontcare(w == Expr::word_const(3, 2));
  SymbolicFsm f(b.build());
  EXPECT_DOUBLE_EQ(f.mgr().sat_count(f.dontcare(), f.current_vars()), 1.0);
}

TEST_F(FsmTest, ContradictoryInitThrows) {
  model::ModelBuilder b("bad");
  const Expr x = b.state_bool("x", true);
  b.next("x", x);
  b.init_constraint(!x);
  const model::Model m = b.build();
  EXPECT_THROW(SymbolicFsm{m}, std::runtime_error);
}

// --------------------------------------------------------------------------
// Traces
// --------------------------------------------------------------------------

TEST_F(FsmTest, ShortestTraceReachesTarget) {
  const auto trace = shortest_trace(fsm, fsm.initial_states(), c_equals(2));
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->steps.size(), 3u);  // 0 -> 1 -> 2.
  EXPECT_EQ(trace->steps[0].values.at("c"), 0u);
  EXPECT_EQ(trace->steps[1].values.at("c"), 1u);
  EXPECT_EQ(trace->steps[2].values.at("c"), 2u);
  // The inputs recorded along the way must drive the increments.
  EXPECT_EQ(trace->steps[0].values.at("en"), 1u);
  EXPECT_EQ(trace->steps[1].values.at("en"), 1u);
}

TEST_F(FsmTest, TraceStepsAreValidTransitions) {
  const auto trace = shortest_trace(fsm, fsm.initial_states(), c_equals(3));
  ASSERT_TRUE(trace.has_value());
  for (std::size_t i = 0; i + 1 < trace->steps.size(); ++i) {
    const auto& cur = trace->steps[i].values;
    const auto& nxt = trace->steps[i + 1].values;
    const std::uint64_t expected =
        cur.at("en") ? (cur.at("c") + 1) % 4 : cur.at("c");
    EXPECT_EQ(nxt.at("c"), expected) << "step " << i;
  }
}

TEST_F(FsmTest, TraceToUnreachableTargetIsNullopt) {
  // c==3 unreachable when en is never allowed... instead use empty target.
  EXPECT_FALSE(
      shortest_trace(fsm, fsm.initial_states(), fsm.mgr().bdd_false())
          .has_value());
}

TEST_F(FsmTest, TraceOfLengthZero) {
  const auto trace = shortest_trace(fsm, fsm.initial_states(), c_equals(0));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->steps.size(), 1u);
}

TEST_F(FsmTest, TraceRendersAllSignals) {
  const auto trace = shortest_trace(fsm, fsm.initial_states(), c_equals(1));
  ASSERT_TRUE(trace.has_value());
  const std::string text = trace->to_string(fsm);
  EXPECT_NE(text.find("step 0:"), std::string::npos);
  EXPECT_NE(text.find("c="), std::string::npos);
  EXPECT_NE(text.find("en="), std::string::npos);
}

// --------------------------------------------------------------------------
// Elaborated benchmark circuits sanity
// --------------------------------------------------------------------------

TEST(FsmCircuitTest, CounterReachableSpace) {
  SymbolicFsm f(circuits::make_mod_counter({3, 5}));
  const Bdd reach = f.reachable(f.initial_states());
  // count in 0..4, stall/reset free: 5 * 4 = 20 states.
  EXPECT_DOUBLE_EQ(f.count_states(reach), 20.0);
}

TEST(FsmCircuitTest, QueuePointersStayInRange) {
  SymbolicFsm f(circuits::make_circular_queue({2}));
  const Bdd reach = f.reachable(f.initial_states());
  EXPECT_GT(f.count_states(reach), 0.0);
  // pend=1 states are reachable (stalled pointer wraps happen).
  const Bdd pend = f.blast_bool(Expr::var("pend"));
  EXPECT_TRUE(reach.intersects(pend));
}

TEST(FsmCircuitTest, BufferCreditStatesAriseOnlyFromEmptyAccept) {
  SymbolicFsm f(circuits::make_priority_buffer({8, false}));
  const Bdd reach = f.reachable(f.initial_states());
  const Bdd cred = f.blast_bool(Expr::var("lo_cred"));
  EXPECT_TRUE(reach.intersects(cred));
  // Every predecessor of a reachable credit state has an empty buffer
  // with incoming lo entries.
  const Bdd pred = f.backward(reach & cred) & reach;
  const Bdd empty_accept = f.blast_bool(
      (Expr::var("hi") == Expr::word_const(0, 4)) &
      (Expr::var("lo") == Expr::word_const(0, 4)) &
      (Expr::var("in_lo") > Expr::word_const(0, 2)) & !Expr::var("clear"));
  EXPECT_TRUE(pred.subset_of(empty_accept));
}

TEST(FsmCircuitTest, PipelineHoldCountsDown) {
  SymbolicFsm f(circuits::make_pipeline({2, 3}));
  const Bdd reach = f.reachable(f.initial_states());
  const Bdd hold3 =
      f.blast_bool(Expr::var("hold") == Expr::word_const(3, 2));
  EXPECT_TRUE(reach.intersects(hold3));
  const Bdd hold2 =
      f.blast_bool(Expr::var("hold") == Expr::word_const(2, 2));
  EXPECT_TRUE(f.forward(reach & hold3).subset_of(hold2));
}

}  // namespace
}  // namespace covest::fsm
