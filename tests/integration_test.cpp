// End-to-end flows and cross-cutting properties: text model -> parse ->
// verify -> coverage -> report, plus metric-level invariants that hold
// for any suite (monotonicity, containment, option consistency).
#include <gtest/gtest.h>

#include <random>

#include "circuits/circuits.h"
#include "core/coverage.h"
#include "core/observed.h"
#include "ctl/checker.h"
#include "ctl/ctl_parser.h"
#include "fsm/symbolic_fsm.h"
#include "model/model_parser.h"

namespace covest {
namespace {

using bdd::Bdd;
using core::CoverageEstimator;
using core::ObservedSignal;
using ctl::Formula;
using expr::Expr;

// --------------------------------------------------------------------------
// Text-to-report pipeline
// --------------------------------------------------------------------------

constexpr const char* kHandshakeSource = R"(
MODULE handshake;
VAR  req_r : bool;
VAR  ack   : bool;
IVAR req   : bool;
IVAR grant : bool;
DEFINE idle := !req_r & !ack;
INIT req_r := false;
INIT ack := false;
NEXT req_r := req;
NEXT ack := req_r & grant;
SPEC AG (!req_r -> AX (!ack)) OBSERVE ack;
SPEC AG (req_r & grant -> AX ack) OBSERVE ack;
)";

TEST(PipelineIntegrationTest, ParseVerifyCoverFromText) {
  const model::Model m = model::parse_model(kHandshakeSource);
  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker checker(fsm);

  std::vector<Formula> props;
  for (const auto& spec : m.specs()) {
    const Formula f = ctl::parse_ctl(spec.ctl_text);
    EXPECT_TRUE(checker.holds(f)) << spec.ctl_text;
    props.push_back(f);
  }

  CoverageEstimator est(checker);
  const auto sc = est.coverage(props, core::observe_bool(m, "ack"));
  // The two properties cover every successor state: one checks ack after
  // idle requests, the other after granted requests... together they hit
  // every (req_r, grant) predecessor case.
  EXPECT_DOUBLE_EQ(sc.percent, 100.0);
}

TEST(PipelineIntegrationTest, SpecObserveDrivesTheReport) {
  const model::Model m = model::parse_model(kHandshakeSource);
  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker checker(fsm);
  CoverageEstimator est(checker);

  std::vector<Formula> props;
  for (const auto& spec : m.specs()) {
    props.push_back(ctl::parse_ctl(spec.ctl_text));
  }
  std::vector<std::vector<ObservedSignal>> groups{
      core::observe_all_bits(m, "ack")};
  const core::CoverageReport rep = est.report(props, groups);
  ASSERT_EQ(rep.signals.size(), 1u);
  EXPECT_EQ(rep.signals[0].signal.name, "ack");
  EXPECT_EQ(rep.signals[0].num_properties, 2u);
  EXPECT_GT(rep.space_count, 0.0);
}

// --------------------------------------------------------------------------
// Metric invariants
// --------------------------------------------------------------------------

class MetricInvariants : public ::testing::Test {
 protected:
  MetricInvariants()
      : spec{3},
        fsm(circuits::make_circular_queue(spec)),
        checker(fsm),
        est(checker),
        wrap(core::observe_bool(fsm.model(), "wrap")) {}
  circuits::CircularQueueSpec spec;
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker checker;
  CoverageEstimator est;
  ObservedSignal wrap;
};

TEST_F(MetricInvariants, CoveredSetsLieInsideTheCoverageSpace) {
  for (const Formula& f : circuits::queue_wrap_properties_initial(spec)) {
    EXPECT_TRUE(est.covered_set(f, wrap).subset_of(est.coverage_space()));
  }
}

TEST_F(MetricInvariants, CoverageIsMonotoneInTheSuite) {
  std::vector<Formula> suite;
  double last = -1.0;
  auto all = circuits::queue_wrap_properties_initial(spec);
  for (const auto& f : circuits::queue_wrap_properties_additional(spec)) {
    all.push_back(f);
  }
  all.push_back(circuits::queue_wrap_stall_property(spec));
  for (const Formula& f : all) {
    suite.push_back(f);
    const double pct = est.coverage(suite, wrap).percent;
    EXPECT_GE(pct, last);
    last = pct;
  }
}

TEST_F(MetricInvariants, UnionOverPropertiesEqualsSuiteCoverage) {
  const auto props = circuits::queue_wrap_properties_initial(spec);
  Bdd by_union = fsm.mgr().bdd_false();
  for (const Formula& f : props) by_union |= est.covered_set(f, wrap);
  EXPECT_EQ(est.coverage(props, wrap).covered, by_union);
}

TEST_F(MetricInvariants, FairOptionIsNoopWithoutFairnessConstraints) {
  core::CoverageOptions no_fair;
  no_fair.restrict_to_fair = false;
  CoverageEstimator est2(checker, no_fair);
  const auto props = circuits::queue_wrap_properties_initial(spec);
  EXPECT_EQ(est.coverage(props, wrap).covered,
            est2.coverage(props, wrap).covered);
}

TEST_F(MetricInvariants, WordSignalCoverageIsUnionOfBits) {
  // For the buffer: coverage of the word signal `lo` as a group must
  // equal the union of its per-bit covered sets.
  const circuits::PriorityBufferSpec bspec{8, true};
  fsm::SymbolicFsm bf(circuits::make_priority_buffer(bspec));
  ctl::ModelChecker bmc(bf);
  CoverageEstimator best(bmc);
  const auto props = circuits::buffer_lo_properties_initial(bspec);
  const auto bits = core::observe_all_bits(bf.model(), "lo");

  Bdd by_bits = bf.mgr().bdd_false();
  for (const auto& q : bits) by_bits |= best.coverage(props, q).covered;

  const core::CoverageReport rep = best.report(props, {bits});
  ASSERT_EQ(rep.signals.size(), 1u);
  EXPECT_EQ(rep.signals[0].covered, by_bits);
}

// --------------------------------------------------------------------------
// Randomized suite-level invariants
// --------------------------------------------------------------------------

class RandomSuiteInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomSuiteInvariants, CoverageBoundsAndContainment) {
  std::mt19937 rng(GetParam() + 5000);
  model::ModelBuilder b("rand");
  const Expr x = b.state_bool("x", false);
  const Expr y = b.state_bool("y", false);
  const Expr in = b.input_bool("in");
  const std::vector<Expr> pool{x, y, in, x ^ y, (!x), x & in};
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  b.next("x", pool[pick(rng)] ^ pool[pick(rng)]);
  b.next("y", pool[pick(rng)]);
  const model::Model m = b.build();

  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker checker(fsm);
  core::CoverageOptions lenient;
  lenient.require_holds = false;
  CoverageEstimator est(checker, lenient);

  // Random AG-implication properties; failing ones contribute nothing.
  std::vector<Formula> suite;
  for (int i = 0; i < 6; ++i) {
    suite.push_back(ctl::Formula::AG(
        Formula::prop(pool[pick(rng)])
            .implies(ctl::Formula::AX(Formula::prop(pool[pick(rng)])))));
  }
  for (const char* sig : {"x", "y"}) {
    const auto sc = est.coverage(suite, core::observe_bool(m, sig));
    EXPECT_GE(sc.percent, 0.0);
    EXPECT_LE(sc.percent, 100.0);
    EXPECT_TRUE(sc.covered.subset_of(est.coverage_space()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSuiteInvariants,
                         ::testing::Range(0, 15));

// --------------------------------------------------------------------------
// Dual estimators on one checker
// --------------------------------------------------------------------------

TEST(EstimatorSharingTest, TwoEstimatorsShareOneChecker) {
  fsm::SymbolicFsm fsm(circuits::make_mod_counter({3, 5}));
  ctl::ModelChecker checker(fsm);
  CoverageEstimator a(checker);
  CoverageEstimator b(checker);
  const auto f = ctl::parse_ctl(
      "AG ((!stall) & (!reset) & count == 1 -> AX (count == 2))");
  const auto q = core::ObservedSignal{"count", 1};
  EXPECT_EQ(a.covered_set(f, q), b.covered_set(f, q));
}

}  // namespace
}  // namespace covest
