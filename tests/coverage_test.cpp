// Tests for the coverage estimator: the Table-1 algorithm, the coverage
// metric, don't-cares, fairness, uncovered-state reporting and the
// paper's Figure 1-3 examples.
#include <gtest/gtest.h>

#include "circuits/circuits.h"
#include "core/coverage.h"
#include "core/observed.h"
#include "core/transform.h"
#include "ctl/checker.h"
#include "ctl/ctl_parser.h"
#include "fsm/symbolic_fsm.h"

namespace covest::core {
namespace {

using bdd::Bdd;
using ctl::Formula;
using ctl::parse_ctl;
using expr::Expr;

// --------------------------------------------------------------------------
// Figure 1: AG(p1 -> AX AX q)
// --------------------------------------------------------------------------

class Fig1Test : public ::testing::Test {
 protected:
  Fig1Test()
      : fsm(circuits::make_fig1_graph()),
        mc(fsm),
        estimator(mc),
        q(observe_bool(fsm.model(), "q")) {}
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator estimator;
  ObservedSignal q;

  Bdd st_equals(std::uint64_t v) {
    return fsm.blast_bool(Expr::var("st") == Expr::word_const(v, 3));
  }
};

TEST_F(Fig1Test, FormulaHolds) {
  EXPECT_TRUE(mc.holds(circuits::fig1_formula()));
}

TEST_F(Fig1Test, ExactlyTheTwoStepSuccessorIsCovered) {
  const Bdd covered = estimator.covered_set(circuits::fig1_formula(), q);
  // The covered latch state is st==3 (the state two steps after the p1
  // state), with both input values.
  EXPECT_EQ(covered, st_equals(3) & estimator.coverage_space());
  EXPECT_FALSE(covered.is_false());
}

TEST_F(Fig1Test, OtherQStatesAreNotCovered) {
  // st==4 has q asserted but is not critical to the formula (Figure 1).
  const Bdd covered = estimator.covered_set(circuits::fig1_formula(), q);
  EXPECT_FALSE(covered.intersects(st_equals(4)));
}

TEST_F(Fig1Test, CoveragePercentMatchesStateRatio) {
  const SignalCoverage sc =
      estimator.coverage({circuits::fig1_formula()}, q);
  // Reachable latch states: st in {0,1,2,3,4}, input free -> 10 states;
  // covered: st==3 with both inputs -> 2 states.
  EXPECT_DOUBLE_EQ(sc.covered_count, 2.0);
  EXPECT_NEAR(sc.percent, 20.0, 1e-9);
}

// --------------------------------------------------------------------------
// Figure 2: A[p1 U q] — the eventuality anomaly
// --------------------------------------------------------------------------

class Fig2Test : public ::testing::Test {
 protected:
  Fig2Test()
      : fsm(circuits::make_fig2_graph()),
        mc(fsm),
        estimator(mc),
        q(observe_bool(fsm.model(), "q")) {}
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator estimator;
  ObservedSignal q;

  Bdd st_equals(std::uint64_t v) {
    return fsm.blast_bool(Expr::var("st") == Expr::word_const(v, 2));
  }
};

TEST_F(Fig2Test, FormulaHolds) {
  EXPECT_TRUE(mc.holds(circuits::fig2_formula()));
}

TEST_F(Fig2Test, TransformedCoverageMarksFirstQState) {
  const Bdd covered = estimator.covered_set(circuits::fig2_formula(), q);
  // Intuitive semantics: the first state where q is asserted (st==2).
  EXPECT_EQ(covered, st_equals(2));
}

TEST_F(Fig2Test, UntilRhsAlsoCoversP1States) {
  // Observing p1 instead: covered states come from the traverse part.
  const ObservedSignal p1 = observe_bool(fsm.model(), "p1");
  const Bdd covered = estimator.covered_set(circuits::fig2_formula(), p1);
  // p1 must hold on st 0 and 1 (before q); flipping p1 there breaks the
  // property. st==2 satisfies q first, so p1 is not needed there.
  EXPECT_EQ(covered, st_equals(0) | st_equals(1));
}

// --------------------------------------------------------------------------
// Figure 3: A[f1 U f2] traverse / firstreached structure
// --------------------------------------------------------------------------

class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test()
      : fsm(circuits::make_fig3_graph()),
        mc(fsm),
        estimator(mc) {}
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator estimator;

  Bdd st_in(std::initializer_list<std::uint64_t> values) {
    Bdd result = fsm.mgr().bdd_false();
    for (const std::uint64_t v : values) {
      result |= fsm.blast_bool(Expr::var("st") == Expr::word_const(v, 3));
    }
    return result;
  }
};

TEST_F(Fig3Test, FormulaHolds) {
  EXPECT_TRUE(mc.holds(circuits::fig3_formula()));
}

TEST_F(Fig3Test, F2CoverageIsFirstReachedSet) {
  const ObservedSignal f2 = observe_bool(fsm.model(), "f2");
  const Bdd covered = estimator.covered_set(circuits::fig3_formula(), f2);
  // First f2 states along the paths: 3, 5, 6 (all are first-reached).
  EXPECT_EQ(covered, st_in({3, 5, 6}) & estimator.coverage_space());
}

TEST_F(Fig3Test, F1CoverageIsTraverseSet) {
  const ObservedSignal f1 = observe_bool(fsm.model(), "f1");
  const Bdd covered = estimator.covered_set(circuits::fig3_formula(), f1);
  // f1 matters on the pre-f2 prefix states: 0, 1, 2, 4.
  EXPECT_EQ(covered, st_in({0, 1, 2, 4}) & estimator.coverage_space());
}

// --------------------------------------------------------------------------
// The modulo-5 counter of the introduction
// --------------------------------------------------------------------------

class CounterCoverageTest : public ::testing::Test {
 protected:
  CounterCoverageTest()
      : spec{3, 5},
        fsm(circuits::make_mod_counter(spec)),
        mc(fsm),
        estimator(mc) {}
  circuits::CounterSpec spec;
  fsm::SymbolicFsm fsm;
  ctl::ModelChecker mc;
  CoverageEstimator estimator;
};

TEST_F(CounterCoverageTest, SinglePropertyCoversOnlySuccessorStates) {
  // AG((!stall & !reset & count==2) -> AX(count==3)) covers exactly the
  // successor states of the antecedent: count==3, any inputs.
  const Formula f =
      parse_ctl("AG (!stall & !reset & count == 2 -> AX (count == 3))");
  const auto group = observe_all_bits(fsm.model(), "count");
  Bdd covered = fsm.mgr().bdd_false();
  for (const auto& q : group) covered |= estimator.covered_set(f, q);
  EXPECT_EQ(covered,
            fsm.blast_bool(Expr::var("count") == Expr::word_const(3, 3)));
}

TEST_F(CounterCoverageTest, IncrementSuiteLeavesResetStateUncovered) {
  const auto props = circuits::counter_increment_properties(spec);
  const auto group = observe_all_bits(fsm.model(), "count");
  std::vector<std::vector<ObservedSignal>> groups{group};
  const CoverageReport rep = estimator.report(props, groups);
  ASSERT_EQ(rep.signals.size(), 1u);
  // Successors of count==0..3 are count==1..4: count==0 states are never
  // checked by the increment properties alone.
  EXPECT_LT(rep.signals[0].percent, 100.0);
  const Bdd uncovered = estimator.uncovered(rep.signals[0].covered);
  EXPECT_TRUE(uncovered.subset_of(
      fsm.blast_bool(Expr::var("count") == Expr::word_const(0, 3))));
}

TEST_F(CounterCoverageTest, FullSuiteAchievesFullCoverage) {
  const auto props = circuits::counter_full_suite(spec);
  const auto group = observe_all_bits(fsm.model(), "count");
  SignalCoverage merged;
  Bdd covered = fsm.mgr().bdd_false();
  for (const auto& q : group) {
    covered |= estimator.coverage(props, q).covered;
  }
  EXPECT_EQ(covered & estimator.coverage_space(), estimator.coverage_space());
}

TEST_F(CounterCoverageTest, RequireHoldsThrowsOnFailingProperty) {
  const Formula wrong =
      parse_ctl("AG (!stall & !reset & count == 2 -> AX (count == 4))");
  const auto q = observe_all_bits(fsm.model(), "count")[0];
  EXPECT_THROW(estimator.covered_set(wrong, q), std::runtime_error);
}

TEST_F(CounterCoverageTest, LenientOptionsSkipFailingProperty) {
  CoverageOptions opts;
  opts.require_holds = false;
  CoverageEstimator lenient(mc, opts);
  const Formula wrong =
      parse_ctl("AG (!stall & !reset & count == 2 -> AX (count == 4))");
  const auto q = observe_all_bits(fsm.model(), "count")[0];
  EXPECT_TRUE(lenient.covered_set(wrong, q).is_false());
}

TEST_F(CounterCoverageTest, NonAcceptableFormulaIsRejected) {
  const auto q = observe_all_bits(fsm.model(), "count")[0];
  EXPECT_THROW(estimator.covered_set(parse_ctl("EF (count == 0)"), q),
               std::runtime_error);
  EXPECT_THROW(
      estimator.covered_set(parse_ctl("AG (count == 0) | AG (count == 1)"), q),
      std::runtime_error);
}

TEST_F(CounterCoverageTest, ObservingUninvolvedSignalGivesZero) {
  // Coverage of `stall` (an input never constrained by the consequent).
  const Formula f =
      parse_ctl("AG (!reset & count == 2 -> AX (count == 2 | count == 3))");
  ASSERT_TRUE(mc.holds(f));
  const ObservedSignal stall = observe_bool(fsm.model(), "stall");
  // `stall` appears only in... this formula's antecedent is reset-free;
  // the consequent never mentions stall, so nothing is covered.
  EXPECT_TRUE(estimator.covered_set(f, stall).is_false());
}

TEST_F(CounterCoverageTest, UncoveredExamplesAndTrace) {
  const auto props = circuits::counter_increment_properties(spec);
  const auto group = observe_all_bits(fsm.model(), "count");
  Bdd covered = fsm.mgr().bdd_false();
  for (const auto& q : group) {
    for (const auto& f : props) covered |= estimator.covered_set(f, q);
  }
  const auto examples = estimator.uncovered_examples(covered, 4);
  ASSERT_FALSE(examples.empty());
  EXPECT_NE(examples[0].find("count=0"), std::string::npos);

  const auto trace = estimator.trace_to_uncovered(covered);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->steps.back().values.at("count"), 0u);
}

TEST_F(CounterCoverageTest, FullyCoveredHasNoTrace) {
  EXPECT_FALSE(estimator.trace_to_uncovered(estimator.coverage_space())
                   .has_value());
}

// --------------------------------------------------------------------------
// Don't cares (Section 4.2)
// --------------------------------------------------------------------------

TEST(DontcareTest, DontcareStatesLeaveTheCoverageSpace) {
  model::ModelBuilder b("dc");
  const Expr w = b.state_word("w", 2, 0);
  const Expr go = b.input_bool("go");
  b.next("w", ite(go, w + Expr::word_const(1, 2), w));
  b.dontcare(w == Expr::word_const(3, 2));
  fsm::SymbolicFsm fsm(b.build());
  ctl::ModelChecker mc(fsm);

  CoverageEstimator with_dc(mc);
  CoverageOptions keep;
  keep.exclude_dontcares = false;
  CoverageEstimator without_dc(mc, keep);

  const double space_with = fsm.count_states(with_dc.coverage_space());
  const double space_without = fsm.count_states(without_dc.coverage_space());
  EXPECT_DOUBLE_EQ(space_without - space_with, 2.0);  // w==3, go free.
}

TEST(DontcareTest, PipelineInvalidOutputIsDontcare) {
  fsm::SymbolicFsm fsm(circuits::make_pipeline({2, 2}));
  ctl::ModelChecker mc(fsm);
  CoverageEstimator estimator(mc);
  // The coverage space excludes !outv states entirely.
  EXPECT_TRUE(estimator.coverage_space().subset_of(
      fsm.blast_bool(Expr::var("outv"))));
}

// --------------------------------------------------------------------------
// Fairness (Section 4.3)
// --------------------------------------------------------------------------

TEST(FairCoverageTest, CoverageSpaceRestrictsToFairPaths) {
  // A model with a sink state that has no fair path: x latches to 1 and
  // the fairness constraint demands !x infinitely often.
  model::ModelBuilder b("fair");
  const Expr x = b.state_bool("x", false);
  const Expr go = b.input_bool("go");
  b.next("x", x | go);
  b.fairness(!x);
  fsm::SymbolicFsm fsm(b.build());
  ctl::ModelChecker mc(fsm);
  CoverageEstimator estimator(mc);
  // x==1 is reachable but lies on no fair path.
  const Bdd reach = fsm.reachable(fsm.initial_states());
  EXPECT_TRUE(reach.intersects(fsm.blast_bool(x)));
  EXPECT_FALSE(estimator.coverage_space().intersects(fsm.blast_bool(x)));
}

// --------------------------------------------------------------------------
// Observability transformation (Definition 5)
// --------------------------------------------------------------------------

TEST(TransformTest, AtomSubstitutionIntroducesPrimedSignal) {
  const model::Model m = circuits::make_fig2_graph();
  const ObservedSignal q = observe_bool(m, "q");
  const Formula f = ctl::Formula::prop(Expr::var("q"));
  const Formula t = observability_transform(f, q, m);
  ASSERT_EQ(t.op(), ctl::CtlOp::kProp);
  const auto refs = expr::referenced_signals(t.prop());
  EXPECT_NE(std::find(refs.begin(), refs.end(), "q'"), refs.end());
}

TEST(TransformTest, ImplicationKeepsAntecedentUnprimed) {
  const model::Model m = circuits::make_fig2_graph();
  const ObservedSignal q = observe_bool(m, "q");
  const Formula f = parse_ctl("q -> AX q");
  const Formula t = observability_transform(f, q, m);
  ASSERT_EQ(t.op(), ctl::CtlOp::kImplies);
  // Antecedent references plain q (expanded to its defining expression).
  for (const auto& name : expr::referenced_signals(t.arg(0).prop())) {
    EXPECT_NE(name, "q'");
  }
  // Consequent's atom references q'.
  const auto refs = expr::referenced_signals(t.arg(1).arg(0).prop());
  EXPECT_NE(std::find(refs.begin(), refs.end(), "q'"), refs.end());
}

TEST(TransformTest, UntilSplitsIntoTwoConjuncts) {
  const model::Model m = circuits::make_fig2_graph();
  const ObservedSignal q = observe_bool(m, "q");
  const Formula t =
      observability_transform(circuits::fig2_formula(), q, m);
  // φ(A[p1 U q]) = A[φ(p1) U q] & A[(p1 & !q) U φ(q)].
  ASSERT_EQ(t.op(), ctl::CtlOp::kAnd);
  EXPECT_EQ(t.arg(0).op(), ctl::CtlOp::kAU);
  EXPECT_EQ(t.arg(1).op(), ctl::CtlOp::kAU);
}

TEST(TransformTest, TransformedFormulaIsEquivalentWhenPrimedEqualsQ) {
  // Substituting q' := q in φ(f) yields a formula equivalent to f.
  const model::Model m = circuits::make_fig2_graph();
  const ObservedSignal q = observe_bool(m, "q");
  fsm::SymbolicFsm fsm(m);
  ctl::ModelChecker mc(fsm);
  for (const char* text : {"AG q", "A[p1 U q]", "AF q", "q -> AX q"}) {
    const Formula f = parse_ctl(text);
    Formula t = observability_transform(f, q, m);
    // Re-identify q' with q.
    t = ctl::transform_props(t, [&](const expr::Expr& e) {
      return expr::substitute_signal(e, "q'", Expr::var("q"));
    });
    EXPECT_EQ(mc.sat(ctl::collapse_propositional(f)),
              mc.sat(ctl::collapse_propositional(t)))
        << text;
  }
}

TEST(TransformTest, RejectsNonAcceptableFormulas) {
  const model::Model m = circuits::make_fig2_graph();
  const ObservedSignal q = observe_bool(m, "q");
  EXPECT_THROW(observability_transform(parse_ctl("EF q"), q, m),
               std::runtime_error);
}

// --------------------------------------------------------------------------
// Observed-signal helpers
// --------------------------------------------------------------------------

TEST(ObservedSignalTest, ParseAndValidate) {
  const model::Model m = circuits::make_mod_counter({3, 5});
  EXPECT_EQ(parse_observed(m, "count[1]").bit, 1u);
  EXPECT_EQ(parse_observed(m, "stall").bit, std::nullopt);
  EXPECT_THROW(parse_observed(m, "count"), std::runtime_error);   // Word.
  EXPECT_THROW(parse_observed(m, "count[3]"), std::runtime_error);
  EXPECT_THROW(parse_observed(m, "ghost"), std::runtime_error);
  EXPECT_EQ(observe_all_bits(m, "count").size(), 3u);
  EXPECT_EQ(observe_all_bits(m, "stall").size(), 1u);
}

TEST(ObservedSignalTest, FlipReplacementSemantics) {
  const model::Model m = circuits::make_mod_counter({3, 5});
  const Expr flip = flip_replacement(m, ObservedSignal{"count", 1});
  // count ^ 2 flips exactly bit 1.
  EXPECT_EQ(expr::to_string(flip), "count ^ 2");
  const Expr bflip = flip_replacement(m, ObservedSignal{"stall", {}});
  EXPECT_EQ(expr::to_string(bflip), "!stall");
}

}  // namespace
}  // namespace covest::core
