// Concurrency battery for the shared sharded BddManager: repeated
// randomized-order runs of every example model at shards = 1/2/4/K >
// signals — under BOTH shared-mode table modes (the lock-free
// unique-table/wait-free-cache default and the striped-lock baseline)
// — asserting byte-identical `SuiteResult` JSON against the serial
// engine and — the tentpole invariant — that the verification phase ran
// exactly once per suite (`PhaseStats::passes`). Also exercises the
// bdd.h shared mode directly (concurrent node construction stays
// canonical; unregistered threads are rejected) and the replicated
// baseline for contrast (its verify.passes counts every shard). Built
// for the sanitizer CI matrix: every assertion here runs under TSan and
// ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/result_json.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Executor;
using engine::ExecutorOptions;
using engine::JobHandle;
using engine::ShardMode;
using engine::SuiteResult;

const char* kModels[] = {"counter.cov", "arbiter.cov", "handshake.cov",
                         "shift.cov", "traffic.cov"};

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// Deterministic serialization (no stats) — the byte-level identity the
/// sharded paths are held to.
std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

const bdd::TableMode kTableModes[] = {bdd::TableMode::kLockFree,
                                      bdd::TableMode::kStriped};

const char* table_mode_name(bdd::TableMode mode) {
  return mode == bdd::TableMode::kLockFree ? "lockfree" : "striped";
}

CoverageRequest traced_request(
    const char* name, std::size_t shards,
    ShardMode mode = ShardMode::kSharedManager,
    bdd::TableMode table_mode = bdd::TableMode::kLockFree) {
  CoverageRequest req;
  req.model_path = model_path(name);
  req.want_traces = true;  // Trace generation must also be shard-safe.
  req.shards = shards;
  req.shard_mode = mode;
  req.table_mode = table_mode;
  return req;
}

/// Serial ground truth, computed once per model.
const std::map<std::string, std::string>& serial_expectations() {
  static const std::map<std::string, std::string> expected = [] {
    std::map<std::string, std::string> out;
    for (const char* m : kModels) {
      out.emplace(m, canonical(Engine().run(traced_request(m, 1))));
    }
    return out;
  }();
  return expected;
}

// --------------------------------------------------------------------------
// The tentpole invariant: verify once, rows byte-identical
// --------------------------------------------------------------------------

TEST(SharedShardStressTest, EveryModelEveryShardCountMatchesSerial) {
  for (const char* m : kModels) {
    // 9 > every example model's signal count: the K > signals case must
    // clamp to the row count, not spawn idle threads or change results.
    for (const std::size_t shards : {1u, 2u, 4u, 9u}) {
      // Both shared-mode synchronization schemes are held to the same
      // byte contract: lockfree and striped must match serial — and
      // therefore each other — exactly.
      for (const bdd::TableMode table_mode : kTableModes) {
        Executor ex{ExecutorOptions{4, nullptr}};
        const SuiteResult r =
            ex.submit(traced_request(m, shards, ShardMode::kSharedManager,
                                     table_mode))
                .take();
        EXPECT_TRUE(r.error.empty()) << m << ": " << r.error;
        EXPECT_EQ(canonical(r), serial_expectations().at(m))
            << m << " shards=" << shards
            << " table_mode=" << table_mode_name(table_mode);
        // The point of the shared-manager sharding: one parse, one
        // elaboration, one verification — regardless of the shard count.
        EXPECT_EQ(r.elaborate.passes, 1u) << m << " shards=" << shards;
        EXPECT_EQ(r.verify.passes, 1u) << m << " shards=" << shards;
        EXPECT_EQ(r.estimate.passes, 1u) << m << " shards=" << shards;
      }
    }
  }
}

TEST(SharedShardStressTest, VerifyingEventsFireOncePerProperty) {
  // The event-stream view of the same invariant: a sharded suite emits
  // exactly one kVerifying event per property (a replicated run would
  // emit one per property per shard).
  CoverageRequest req = traced_request("handshake.cov", 4);  // 3 properties.
  std::atomic<std::size_t> verifying{0};
  std::atomic<std::size_t> rows{0};
  engine::JobHooks hooks;
  hooks.on_event = [&](const engine::JobEvent& e) {
    if (e.kind == engine::JobEvent::Kind::kVerifying) ++verifying;
    if (e.kind == engine::JobEvent::Kind::kRowDone) ++rows;
  };
  Executor ex{ExecutorOptions{4, nullptr}};
  const SuiteResult r = ex.submit(req, hooks).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(verifying.load(), 3u);
  EXPECT_EQ(rows.load(), r.signals.size());
}

TEST(SharedShardStressTest, RandomizedInterleavedBatchesStayByteIdentical) {
  // The concurrency soak: several rounds of a shuffled deck of (model ×
  // shard-count) jobs, all in flight on one executor at once, so
  // shared-mode estimation threads of different jobs interleave with
  // worker threads and with each other. Fixed seed: reproducible runs.
  struct Spec {
    const char* model;
    std::size_t shards;
    bdd::TableMode table_mode;
  };
  std::vector<Spec> deck;
  for (const char* m : kModels) {
    for (const std::size_t shards : {1u, 2u, 4u, 9u}) {
      // The full deck runs under both table modes, so lockfree and
      // striped jobs interleave on the same executor in every round.
      for (const bdd::TableMode table_mode : kTableModes) {
        deck.push_back(Spec{m, shards, table_mode});
      }
    }
  }
  std::mt19937 rng(0x5eed5eed);
  for (int round = 0; round < 3; ++round) {
    std::shuffle(deck.begin(), deck.end(), rng);
    Executor ex{ExecutorOptions{4, nullptr}};
    std::vector<JobHandle> handles;
    handles.reserve(deck.size());
    for (const Spec& s : deck) {
      handles.push_back(ex.submit(traced_request(
          s.model, s.shards, ShardMode::kSharedManager, s.table_mode)));
    }
    for (std::size_t i = 0; i < deck.size(); ++i) {
      const SuiteResult r = handles[i].take();
      EXPECT_TRUE(r.error.empty()) << deck[i].model << ": " << r.error;
      EXPECT_EQ(canonical(r), serial_expectations().at(deck[i].model))
          << "round " << round << " " << deck[i].model << " shards="
          << deck[i].shards << " table_mode="
          << table_mode_name(deck[i].table_mode);
      EXPECT_EQ(r.verify.passes, 1u);
    }
  }
}

TEST(SharedShardStressTest, ReplicatedModeAgreesButPaysVerificationPerShard) {
  // The baseline the tentpole eliminates: byte-identical rows, but
  // verify.passes records one verification per elaborated shard.
  CoverageRequest req = traced_request("arbiter.cov", 2,
                                       ShardMode::kReplicated);
  Executor ex{ExecutorOptions{4, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(canonical(r), serial_expectations().at("arbiter.cov"));
  EXPECT_EQ(r.verify.passes, 2u);  // Both shards re-verified.
  EXPECT_EQ(r.elaborate.passes, 2u);
}

TEST(SharedShardStressTest, ReplicatedOnOneWorkerStaysSerialNotShared) {
  // A replicated request whose task count clamps to 1 (any 1-worker
  // executor) must run as one serial task — not fall through to the
  // shared-manager fan-out it explicitly opted out of. Observable via
  // the events' shard count: the shared path would report the
  // effective estimator-thread count (2 here), the serial task 1.
  CoverageRequest req = traced_request("arbiter.cov", 4,
                                       ShardMode::kReplicated);
  std::atomic<std::size_t> max_event_shards{0};
  engine::JobHooks hooks;
  hooks.on_event = [&](const engine::JobEvent& e) {
    std::size_t seen = max_event_shards.load();
    while (e.shards > seen &&
           !max_event_shards.compare_exchange_weak(seen, e.shards)) {
    }
  };
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req, hooks).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(canonical(r), serial_expectations().at("arbiter.cov"));
  EXPECT_EQ(max_event_shards.load(), 1u);
  EXPECT_EQ(r.verify.passes, 1u);  // One replica task = one verification.
}

TEST(SharedShardStressTest, SessionRunFansOutWithoutAnExecutor) {
  // The fan-out lives in Session::run, so library callers get it too —
  // and one session must survive alternating epochs of both table
  // modes with warm memo caches in between.
  CoverageRequest req = traced_request("traffic.cov", 4);
  engine::Engine eng;
  auto session = eng.open(req);
  bool first_epoch = true;
  for (const bdd::TableMode table_mode : kTableModes) {
    req.shards = 4;
    req.table_mode = table_mode;
    const SuiteResult sharded = session->run(req);
    EXPECT_EQ(canonical(sharded), serial_expectations().at("traffic.cov"))
        << table_mode_name(table_mode);
    // The first epoch verifies once; later epochs replay the session's
    // verified-suite record (passes == 0) with identical results.
    EXPECT_EQ(sharded.verify.passes, first_epoch ? 1u : 0u);
    first_epoch = false;
    // The manager is exclusive again: serial re-runs on the same
    // session (memo warm) still match.
    req.shards = 1;
    const SuiteResult serial = session->run(req);
    EXPECT_EQ(canonical(serial), serial_expectations().at("traffic.cov"))
        << table_mode_name(table_mode);
  }
}

TEST(SharedShardStressTest, CancellingASharededRunKeepsChunkPrefixes) {
  // Cancellation mid-estimate: the partial row list is chunk prefixes
  // in request order (interior gaps allowed), never corrupt state.
  CoverageRequest req = traced_request("arbiter.cov", 2);
  engine::JobHooks hooks;
  hooks.on_progress = [](const engine::Progress& p) {
    return p.phase != engine::Progress::Phase::kEstimate;
  };
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req, hooks).take();
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.properties.size(), 5u);  // Verification completed (once).
  EXPECT_EQ(r.verify.passes, 1u);
  EXPECT_LE(r.signals.size(), 2u);
  // Whatever rows exist must carry live, rebound covered handles.
  for (const engine::SignalRow& row : r.signals) {
    ASSERT_TRUE(row.covered.valid());
    const bdd::Bdd round_trip = !!row.covered;
    EXPECT_EQ(round_trip, row.covered);
  }
}

// --------------------------------------------------------------------------
// bdd.h shared mode, driven directly
// --------------------------------------------------------------------------

TEST(SharedModeBddTest, ConcurrentConstructionProducesCanonicalNodes) {
  // K threads hammer one manager with overlapping function families;
  // afterwards every function must equal its exclusive-mode twin edge
  // for edge (canonicity is global, not per-thread).
  constexpr unsigned kVars = 14;
  constexpr std::size_t kThreads = 4;
  bdd::BddManager mgr(kVars);
  std::vector<bdd::Bdd> vars;
  for (unsigned i = 0; i < kVars; ++i) vars.push_back(mgr.var(i));

  auto family = [&vars](bdd::BddManager& m, std::size_t lane) {
    // Deterministic per-lane formula mix sharing subterms across lanes.
    bdd::Bdd parity = m.bdd_false();
    bdd::Bdd conj = m.bdd_true();
    bdd::Bdd mix = m.bdd_false();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      parity ^= vars[i];
      if (i % (lane + 2) == 0) conj &= vars[i];
      mix = ite(vars[(i + lane) % vars.size()], mix, parity);
    }
    return (parity & conj) | mix;
  };

  std::vector<bdd::Bdd> shared_results(kThreads);
  mgr.begin_shared(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        shared_results[t] = family(mgr, t);
        // Traversals must be safe concurrently too.
        (void)mgr.support(shared_results[t]);
        (void)mgr.node_count(shared_results[t]);
        std::vector<bdd::Var> all;
        for (unsigned i = 0; i < kVars; ++i) all.push_back(i);
        (void)mgr.sat_count(shared_results[t], all);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  mgr.end_shared();

  EXPECT_TRUE(mgr.check_canonical());
  for (std::size_t t = 0; t < kThreads; ++t) {
    // Exclusive-mode recomputation lands on the identical edge: the
    // unique table was never corrupted by the concurrent build.
    EXPECT_EQ(shared_results[t], family(mgr, t)) << "lane " << t;
  }
  // The pool survives a GC and keeps every shared-mode root alive.
  mgr.gc();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shared_results[t], family(mgr, t)) << "post-gc lane " << t;
  }
}

TEST(SharedModeBddTest, SatCountsAgreeAcrossThreads) {
  constexpr unsigned kVars = 12;
  bdd::BddManager mgr(kVars);
  std::vector<bdd::Var> over;
  for (unsigned i = 0; i < kVars; ++i) over.push_back(i);
  bdd::Bdd f = mgr.bdd_false();
  for (unsigned i = 0; i + 1 < kVars; i += 2) {
    f |= mgr.var(i) & !mgr.var(i + 1);
  }
  const double expected = mgr.sat_count(f, over);

  std::vector<double> counts(3, -1.0);
  mgr.begin_shared(counts.size());
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < counts.size(); ++t) {
      threads.emplace_back([&, t] {
        mgr.register_shard_thread();
        counts[t] = mgr.sat_count(f, over);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  mgr.end_shared();
  for (const double c : counts) EXPECT_DOUBLE_EQ(c, expected);
}

TEST(SharedModeBddTest, UnregisteredThreadIsRejected) {
  bdd::BddManager mgr(2);
  const bdd::Bdd a = mgr.var(0);
  const bdd::Bdd b = mgr.var(1);
  mgr.begin_shared(2);
  std::thread outsider([&] {
    // The shared-mode affinity guard: structured failure, not pool
    // corruption.
    EXPECT_THROW((void)(a & b), std::logic_error);
  });
  outsider.join();
  // A registered thread (the owner included) works.
  mgr.register_shard_thread();
  const bdd::Bdd conj = a & b;
  mgr.end_shared();
  EXPECT_FALSE(conj.is_false());
  EXPECT_TRUE(mgr.check_canonical());
}

TEST(SharedModeBddTest, ArenaLeftoversAreRecycledAfterEndShared) {
  bdd::BddManager mgr(8);
  const std::size_t before = mgr.stats().allocated_nodes;
  mgr.begin_shared(2);
  std::thread t([&] {
    mgr.register_shard_thread();
    bdd::Bdd acc = mgr.bdd_true();
    for (unsigned i = 0; i < 8; ++i) acc &= mgr.var(i);
    (void)acc;
  });
  t.join();
  mgr.end_shared();
  mgr.gc();
  // Unused arena slots went back to the free list: repeated shared
  // epochs must not leak the pool upward.
  for (int epoch = 0; epoch < 16; ++epoch) {
    mgr.begin_shared(2);
    std::thread tt([&] {
      mgr.register_shard_thread();
      bdd::Bdd acc = mgr.bdd_false();
      for (unsigned i = 0; i < 8; ++i) acc |= mgr.var(i);
      (void)acc;
    });
    tt.join();
    mgr.end_shared();
    mgr.gc();
  }
  mgr.live_node_count();
  const std::size_t after = mgr.stats().allocated_nodes;
  EXPECT_LE(after, before + 2 * 256 + 64);  // ≤ one arena block per thread.
}

}  // namespace
}  // namespace covest
