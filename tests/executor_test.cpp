// The async multi-worker executor: submit/wait round-trips, deterministic
// ordering, bit-identical parity with the serial engine (including
// signal-sharded suites), streaming job events, cancellation, structured
// per-job errors, and the BDD thread-affinity hand-off.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/result_json.h"
#include "model/model_parser.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Executor;
using engine::ExecutorOptions;
using engine::JobEvent;
using engine::JobHandle;
using engine::JobHooks;
using engine::Progress;
using engine::SuiteResult;

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// Deterministic serialization (no stats) — the byte-level identity the
/// sharded and parallel paths are held to.
std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

CoverageRequest path_request(const char* name) {
  CoverageRequest req;
  req.model_path = model_path(name);
  return req;
}

// --------------------------------------------------------------------------
// Parity and ordering
// --------------------------------------------------------------------------

TEST(ExecutorTest, SubmitWaitMatchesSerialEngine) {
  CoverageRequest req = path_request("arbiter.cov");
  const SuiteResult serial = Engine().run(req);

  Executor ex{ExecutorOptions{2, nullptr}};
  JobHandle handle = ex.submit(req);
  handle.wait();
  EXPECT_TRUE(handle.done());
  const SuiteResult parallel = handle.take();

  EXPECT_TRUE(parallel.error.empty()) << parallel.error;
  EXPECT_EQ(canonical(parallel), canonical(serial));
}

TEST(ExecutorTest, RunAllReturnsResultsInSubmitOrder) {
  const char* models[] = {"counter.cov", "arbiter.cov", "handshake.cov",
                          "shift.cov",   "traffic.cov", "counter.cov",
                          "arbiter.cov", "shift.cov"};
  std::vector<CoverageRequest> requests;
  std::vector<std::string> expected;
  for (const char* m : models) {
    requests.push_back(path_request(m));
    expected.push_back(canonical(Engine().run(requests.back())));
  }

  Executor ex{ExecutorOptions{4, nullptr}};
  const std::vector<SuiteResult> results = ex.run_all(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(canonical(results[i]), expected[i]) << "request " << i;
  }
}

TEST(ExecutorTest, FourWorkersMatchOneWorkerByteForByte) {
  // The satellite determinism contract: --jobs 4 rows == --jobs 1 rows
  // for counter.cov and arbiter.cov.
  for (const char* m : {"counter.cov", "arbiter.cov"}) {
    std::vector<CoverageRequest> requests(4, path_request(m));
    Executor one{ExecutorOptions{1, nullptr}};
    Executor four{ExecutorOptions{4, nullptr}};
    const std::vector<SuiteResult> serial = one.run_all(requests);
    const std::vector<SuiteResult> parallel = four.run_all(requests);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(canonical(parallel[i]), canonical(serial[i])) << m;
    }
  }
}

// --------------------------------------------------------------------------
// Signal sharding
// --------------------------------------------------------------------------

TEST(ExecutorShardingTest, ShardedSuiteIsBitIdenticalToSerial) {
  for (const std::size_t shards : {2u, 3u, 8u}) {
    CoverageRequest req = path_request("arbiter.cov");
    req.want_traces = true;
    const std::string serial = canonical(Engine().run(req));

    req.shards = shards;
    Executor ex{ExecutorOptions{4, nullptr}};
    const SuiteResult sharded = ex.submit(req).take();
    EXPECT_TRUE(sharded.error.empty()) << sharded.error;
    EXPECT_EQ(canonical(sharded), serial) << "shards=" << shards;
  }
}

TEST(ExecutorShardingTest, ShardedCoveredHandlesStayLive) {
  // Rows estimated on different shard threads keep their covered-set
  // handles valid: the merged result retains the (single, shared)
  // session, and take() rebinds its manager to the consuming thread.
  CoverageRequest req = path_request("arbiter.cov");
  req.shards = 2;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  ASSERT_EQ(r.signals.size(), 2u);
  for (const engine::SignalRow& row : r.signals) {
    ASSERT_TRUE(row.covered.valid());
    EXPECT_FALSE(row.covered.is_false());
    // Composing with the handle exercises node construction on this
    // thread — the debug affinity guard must accept it after rebind.
    const bdd::Bdd complement = !row.covered;
    EXPECT_FALSE((row.covered & complement).is_true());
  }
}

TEST(ExecutorShardingTest, MoreShardsThanSignalsIsHarmless) {
  CoverageRequest req = path_request("counter.cov");  // One signal row.
  req.shards = 6;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, 80.0);
}

TEST(ExecutorShardingTest, AbsurdShardCountsAreClampedToThePool) {
  // An untrusted NDJSON request must not translate a huge shards value
  // into unbounded thread creation: effective_shards clamps to the
  // signal-row count (and kMaxEstimatorThreads), so the job still runs
  // and still matches the serial result byte for byte.
  CoverageRequest req = path_request("arbiter.cov");
  req.shards = 1000000000;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 2u);
  EXPECT_EQ(canonical(r), canonical(Engine().run(path_request("arbiter.cov"))));
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

TEST(ExecutorEventsTest, LifecycleEventsArriveInOrder) {
  std::mutex mu;
  std::vector<JobEvent> events;
  JobHooks hooks;
  hooks.on_event = [&](const JobEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
  };

  Executor ex{ExecutorOptions{1, nullptr}};
  ex.submit(path_request("handshake.cov"), hooks).take();

  std::lock_guard<std::mutex> lock(mu);
  // queued, started, 3 properties, estimating, 1 row, finished.
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].kind, JobEvent::Kind::kQueued);
  EXPECT_EQ(events[1].kind, JobEvent::Kind::kStarted);
  for (int i = 2; i <= 4; ++i) {
    EXPECT_EQ(events[i].kind, JobEvent::Kind::kVerifying);
    EXPECT_EQ(events[i].progress.index, static_cast<std::size_t>(i - 1));
    EXPECT_EQ(events[i].progress.total, 3u);
    EXPECT_TRUE(events[i].progress.ok);
  }
  EXPECT_EQ(events[5].kind, JobEvent::Kind::kEstimating);
  EXPECT_EQ(events[6].kind, JobEvent::Kind::kRowDone);
  EXPECT_EQ(events[6].progress.item, "ack");
  EXPECT_DOUBLE_EQ(events[6].progress.percent, 100.0);
  EXPECT_EQ(events[7].kind, JobEvent::Kind::kFinished);
  EXPECT_FALSE(events[7].cancelled);
  EXPECT_TRUE(events[7].error.empty());
  for (const JobEvent& e : events) EXPECT_EQ(e.job, events[0].job);
}

TEST(ExecutorEventsTest, ThrowingEventCallbacksAreSwallowed) {
  // An event tap is fire-and-forget: a throwing callback must neither
  // kill a worker thread nor fail the job.
  JobHooks hooks;
  hooks.on_event = [](const JobEvent&) { throw std::runtime_error("tap"); };
  ExecutorOptions options;
  options.workers = 2;
  options.on_event = [](const JobEvent&) { throw 42; };
  Executor ex(std::move(options));
  const SuiteResult r = ex.submit(path_request("counter.cov"), hooks).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, 80.0);
}

TEST(ExecutorEventsTest, ExecutorWideTapSeesEveryJob) {
  std::mutex mu;
  std::size_t queued = 0, finished = 0;
  ExecutorOptions options;
  options.workers = 2;
  options.on_event = [&](const JobEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e.kind == JobEvent::Kind::kQueued) ++queued;
    if (e.kind == JobEvent::Kind::kFinished) ++finished;
  };
  Executor ex(std::move(options));
  ex.run_all({path_request("counter.cov"), path_request("shift.cov"),
              path_request("traffic.cov")});
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(queued, 3u);
  EXPECT_EQ(finished, 3u);
}

// --------------------------------------------------------------------------
// Cancellation
// --------------------------------------------------------------------------

TEST(ExecutorCancelTest, CancellingAQueuedJobSkipsItsRun) {
  Executor ex{ExecutorOptions{1, nullptr}};

  // Job A blocks the single worker until job B has been cancelled, so
  // B is deterministically still queued when the cancel lands.
  std::atomic<bool> b_cancelled{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!b_cancelled.load()) std::this_thread::yield();
    return true;
  };
  JobHandle a = ex.submit(path_request("counter.cov"), gate);
  JobHandle b = ex.submit(path_request("arbiter.cov"));
  b.cancel();
  b_cancelled.store(true);

  const SuiteResult rb = b.take();
  EXPECT_TRUE(rb.cancelled);
  EXPECT_TRUE(rb.signals.empty());
  const SuiteResult ra = a.take();
  EXPECT_FALSE(ra.cancelled);
  EXPECT_EQ(ra.signals.size(), 1u);
}

TEST(ExecutorCancelTest, ProgressHookCancelsLikeTheFacade) {
  JobHooks hooks;
  hooks.on_progress = [](const Progress& p) {
    return p.phase != Progress::Phase::kEstimate;
  };
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(path_request("handshake.cov"), hooks).take();
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.properties.size(), 3u);  // Verification completed.
  EXPECT_EQ(r.signals.size(), 1u);     // First row, then stopped.
}

TEST(ExecutorCancelTest, CancelAllReachesQueuedJobs) {
  Executor ex{ExecutorOptions{1, nullptr}};
  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle first = ex.submit(path_request("counter.cov"), gate);
  std::vector<JobHandle> rest;
  for (int i = 0; i < 3; ++i) rest.push_back(ex.submit(path_request("arbiter.cov")));

  EXPECT_GE(ex.cancel_all(), 3u);
  release.store(true);

  for (const JobHandle& h : rest) {
    EXPECT_TRUE(h.take().cancelled);
  }
  first.take();  // Gated job finishes too (cancelled mid-run or not).
}

// --------------------------------------------------------------------------
// Structured per-job errors (never a throw out of a worker)
// --------------------------------------------------------------------------

TEST(ExecutorErrorTest, MissingModelSourceIsAStructuredError) {
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(CoverageRequest{}).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("model"), std::string::npos);
  EXPECT_FALSE(r.all_passed());
}

TEST(ExecutorErrorTest, UnknownSignalNameIsAStructuredError) {
  CoverageRequest req = path_request("counter.cov");
  req.signals = {"count", "bogus_signal"};
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("bogus_signal"), std::string::npos) << r.error;
}

TEST(ExecutorErrorTest, ShardedErrorsAreErrorOnlyLikeSerial) {
  // A defect in any shard's rows makes the whole job error-only: no
  // partial rows from sibling shards, byte-identical to the serial
  // error result (the documented sharding determinism contract).
  CoverageRequest req = path_request("counter.cov");
  req.signals = {"count", "count", "bogus_signal"};

  Executor serial{ExecutorOptions{1, nullptr}};
  CoverageRequest serial_req = req;
  const SuiteResult expect = serial.submit(serial_req).take();
  ASSERT_FALSE(expect.error.empty());
  EXPECT_TRUE(expect.signals.empty());

  req.shards = 3;
  Executor ex{ExecutorOptions{4, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.signals.empty());
  EXPECT_FALSE(r.cancelled);  // An aborted sibling is not a user cancel.
  EXPECT_EQ(canonical(r), canonical(expect));
}

TEST(ExecutorErrorTest, UnparsableCtlTextIsAStructuredError) {
  CoverageRequest req = path_request("counter.cov");
  req.properties = {engine::PropertySpec::text("AG ((count ==")};
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("AG ((count =="), std::string::npos) << r.error;
}

TEST(ExecutorErrorTest, UnreadableModelFileIsAStructuredError) {
  CoverageRequest req;
  req.model_path = "/nonexistent/model.cov";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
}

TEST(ExecutorErrorTest, BadInlineModelSourceIsAStructuredError) {
  CoverageRequest req;
  req.model_source = "MODULE broken; VAR x :";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
}

TEST(ExecutorErrorTest, ErrorSurvivesJsonSerialization) {
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(CoverageRequest{}).take();
  const std::string json = canonical(r);
  std::string err;
  EXPECT_TRUE(engine::validate_json(json, &err)) << err;
  EXPECT_NE(json.find("\"error\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Model-source precedence and the inline source path
// --------------------------------------------------------------------------

TEST(ExecutorTest, InlineModelSourceRunsLikeAFile) {
  CoverageRequest req;
  req.model_source = R"(
MODULE inline_counter;
VAR   x : bool;
IVAR  t : bool;
INIT  x := false;
NEXT  x := t ? !x : x;
SPEC AG (x & !t -> AX x) OBSERVE x;
)";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.model_name, "inline_counter");
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_GT(r.signals[0].percent, 0.0);
}

// --------------------------------------------------------------------------
// Thread-affinity guard
// --------------------------------------------------------------------------

TEST(ThreadAffinityTest, TakeRebindsManagersToTheConsumer) {
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(path_request("arbiter.cov")).take();
  ASSERT_FALSE(r.signals.empty());
  const bdd::Bdd& covered = r.signals[0].covered;
  ASSERT_TRUE(covered.valid());
  EXPECT_EQ(covered.manager()->owner_thread(), std::this_thread::get_id());
  // Node construction on the consuming thread is now legal.
  const bdd::Bdd sum = covered | !covered;
  EXPECT_TRUE(sum.is_true());
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ThreadAffinityDeathTest, ForeignThreadNodeConstructionAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        bdd::BddManager mgr(2);
        std::thread misuse([&mgr] { (void)(mgr.var(0) & mgr.var(1)); });
        misuse.join();
      },
      "foreign thread");
}
#endif

}  // namespace
}  // namespace covest
