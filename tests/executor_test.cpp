// The async multi-worker executor: submit/wait round-trips, deterministic
// ordering, bit-identical parity with the serial engine (including
// signal-sharded suites), streaming job events, cancellation, structured
// per-job errors, and the BDD thread-affinity hand-off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "engine/result_json.h"
#include "engine/session_cache.h"
#include "model/model_parser.h"
#include "util/governance.h"

namespace covest {
namespace {

using engine::CoverageRequest;
using engine::Engine;
using engine::Executor;
using engine::ExecutorOptions;
using engine::JobEvent;
using engine::JobHandle;
using engine::JobHooks;
using engine::Progress;
using engine::SuiteResult;

std::string model_path(const char* name) {
  return std::string(COVEST_SOURCE_DIR) + "/examples/models/" + name;
}

/// Deterministic serialization (no stats) — the byte-level identity the
/// sharded and parallel paths are held to.
std::string canonical(const SuiteResult& r) {
  engine::JsonOptions opts;
  opts.include_stats = false;
  return engine::to_json(r, opts);
}

CoverageRequest path_request(const char* name) {
  CoverageRequest req;
  req.model_path = model_path(name);
  return req;
}

// --------------------------------------------------------------------------
// Parity and ordering
// --------------------------------------------------------------------------

TEST(ExecutorTest, SubmitWaitMatchesSerialEngine) {
  CoverageRequest req = path_request("arbiter.cov");
  const SuiteResult serial = Engine().run(req);

  Executor ex{ExecutorOptions{2, nullptr}};
  JobHandle handle = ex.submit(req);
  handle.wait();
  EXPECT_TRUE(handle.done());
  const SuiteResult parallel = handle.take();

  EXPECT_TRUE(parallel.error.empty()) << parallel.error;
  EXPECT_EQ(canonical(parallel), canonical(serial));
}

TEST(ExecutorTest, RunAllReturnsResultsInSubmitOrder) {
  const char* models[] = {"counter.cov", "arbiter.cov", "handshake.cov",
                          "shift.cov",   "traffic.cov", "counter.cov",
                          "arbiter.cov", "shift.cov"};
  std::vector<CoverageRequest> requests;
  std::vector<std::string> expected;
  for (const char* m : models) {
    requests.push_back(path_request(m));
    expected.push_back(canonical(Engine().run(requests.back())));
  }

  Executor ex{ExecutorOptions{4, nullptr}};
  const std::vector<SuiteResult> results = ex.run_all(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(canonical(results[i]), expected[i]) << "request " << i;
  }
}

TEST(ExecutorTest, FourWorkersMatchOneWorkerByteForByte) {
  // The satellite determinism contract: --jobs 4 rows == --jobs 1 rows
  // for counter.cov and arbiter.cov.
  for (const char* m : {"counter.cov", "arbiter.cov"}) {
    std::vector<CoverageRequest> requests(4, path_request(m));
    Executor one{ExecutorOptions{1, nullptr}};
    Executor four{ExecutorOptions{4, nullptr}};
    const std::vector<SuiteResult> serial = one.run_all(requests);
    const std::vector<SuiteResult> parallel = four.run_all(requests);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(canonical(parallel[i]), canonical(serial[i])) << m;
    }
  }
}

// --------------------------------------------------------------------------
// Signal sharding
// --------------------------------------------------------------------------

TEST(ExecutorShardingTest, ShardedSuiteIsBitIdenticalToSerial) {
  for (const std::size_t shards : {2u, 3u, 8u}) {
    CoverageRequest req = path_request("arbiter.cov");
    req.want_traces = true;
    const std::string serial = canonical(Engine().run(req));

    req.shards = shards;
    Executor ex{ExecutorOptions{4, nullptr}};
    const SuiteResult sharded = ex.submit(req).take();
    EXPECT_TRUE(sharded.error.empty()) << sharded.error;
    EXPECT_EQ(canonical(sharded), serial) << "shards=" << shards;
  }
}

TEST(ExecutorShardingTest, ShardedCoveredHandlesStayLive) {
  // Rows estimated on different shard threads keep their covered-set
  // handles valid: the merged result retains the (single, shared)
  // session, and take() rebinds its manager to the consuming thread.
  CoverageRequest req = path_request("arbiter.cov");
  req.shards = 2;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  ASSERT_EQ(r.signals.size(), 2u);
  for (const engine::SignalRow& row : r.signals) {
    ASSERT_TRUE(row.covered.valid());
    EXPECT_FALSE(row.covered.is_false());
    // Composing with the handle exercises node construction on this
    // thread — the debug affinity guard must accept it after rebind.
    const bdd::Bdd complement = !row.covered;
    EXPECT_FALSE((row.covered & complement).is_true());
  }
}

TEST(ExecutorShardingTest, MoreShardsThanSignalsIsHarmless) {
  CoverageRequest req = path_request("counter.cov");  // One signal row.
  req.shards = 6;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, 80.0);
}

TEST(ExecutorShardingTest, AbsurdShardCountsAreClampedToThePool) {
  // An untrusted NDJSON request must not translate a huge shards value
  // into unbounded thread creation: effective_shards clamps to the
  // signal-row count (and kMaxEstimatorThreads), so the job still runs
  // and still matches the serial result byte for byte.
  CoverageRequest req = path_request("arbiter.cov");
  req.shards = 1000000000;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 2u);
  EXPECT_EQ(canonical(r), canonical(Engine().run(path_request("arbiter.cov"))));
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

TEST(ExecutorEventsTest, LifecycleEventsArriveInOrder) {
  std::mutex mu;
  std::vector<JobEvent> events;
  JobHooks hooks;
  hooks.on_event = [&](const JobEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
  };

  Executor ex{ExecutorOptions{1, nullptr}};
  ex.submit(path_request("handshake.cov"), hooks).take();

  std::lock_guard<std::mutex> lock(mu);
  // queued, started, 3 properties, estimating, 1 row, finished.
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].kind, JobEvent::Kind::kQueued);
  EXPECT_EQ(events[1].kind, JobEvent::Kind::kStarted);
  for (int i = 2; i <= 4; ++i) {
    EXPECT_EQ(events[i].kind, JobEvent::Kind::kVerifying);
    EXPECT_EQ(events[i].progress.index, static_cast<std::size_t>(i - 1));
    EXPECT_EQ(events[i].progress.total, 3u);
    EXPECT_TRUE(events[i].progress.ok);
  }
  EXPECT_EQ(events[5].kind, JobEvent::Kind::kEstimating);
  EXPECT_EQ(events[6].kind, JobEvent::Kind::kRowDone);
  EXPECT_EQ(events[6].progress.item, "ack");
  EXPECT_DOUBLE_EQ(events[6].progress.percent, 100.0);
  EXPECT_EQ(events[7].kind, JobEvent::Kind::kFinished);
  EXPECT_FALSE(events[7].cancelled);
  EXPECT_TRUE(events[7].error.empty());
  for (const JobEvent& e : events) EXPECT_EQ(e.job, events[0].job);
}

TEST(ExecutorEventsTest, ThrowingEventCallbacksAreSwallowed) {
  // An event tap is fire-and-forget: a throwing callback must neither
  // kill a worker thread nor fail the job.
  JobHooks hooks;
  hooks.on_event = [](const JobEvent&) { throw std::runtime_error("tap"); };
  ExecutorOptions options;
  options.workers = 2;
  options.on_event = [](const JobEvent&) { throw 42; };
  Executor ex(std::move(options));
  const SuiteResult r = ex.submit(path_request("counter.cov"), hooks).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_DOUBLE_EQ(r.signals[0].percent, 80.0);
}

TEST(ExecutorEventsTest, ExecutorWideTapSeesEveryJob) {
  std::mutex mu;
  std::size_t queued = 0, finished = 0;
  ExecutorOptions options;
  options.workers = 2;
  options.on_event = [&](const JobEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e.kind == JobEvent::Kind::kQueued) ++queued;
    if (e.kind == JobEvent::Kind::kFinished) ++finished;
  };
  Executor ex(std::move(options));
  ex.run_all({path_request("counter.cov"), path_request("shift.cov"),
              path_request("traffic.cov")});
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(queued, 3u);
  EXPECT_EQ(finished, 3u);
}

// --------------------------------------------------------------------------
// Cancellation
// --------------------------------------------------------------------------

TEST(ExecutorCancelTest, CancellingAQueuedJobSkipsItsRun) {
  Executor ex{ExecutorOptions{1, nullptr}};

  // Job A blocks the single worker until job B has been cancelled, so
  // B is deterministically still queued when the cancel lands.
  std::atomic<bool> b_cancelled{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!b_cancelled.load()) std::this_thread::yield();
    return true;
  };
  JobHandle a = ex.submit(path_request("counter.cov"), gate);
  JobHandle b = ex.submit(path_request("arbiter.cov"));
  b.cancel();
  b_cancelled.store(true);

  const SuiteResult rb = b.take();
  EXPECT_TRUE(rb.cancelled);
  EXPECT_TRUE(rb.signals.empty());
  const SuiteResult ra = a.take();
  EXPECT_FALSE(ra.cancelled);
  EXPECT_EQ(ra.signals.size(), 1u);
}

TEST(ExecutorCancelTest, ProgressHookCancelsLikeTheFacade) {
  JobHooks hooks;
  hooks.on_progress = [](const Progress& p) {
    return p.phase != Progress::Phase::kEstimate;
  };
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(path_request("handshake.cov"), hooks).take();
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.properties.size(), 3u);  // Verification completed.
  EXPECT_EQ(r.signals.size(), 1u);     // First row, then stopped.
}

TEST(ExecutorCancelTest, CancelAllReachesQueuedJobs) {
  Executor ex{ExecutorOptions{1, nullptr}};
  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle first = ex.submit(path_request("counter.cov"), gate);
  std::vector<JobHandle> rest;
  for (int i = 0; i < 3; ++i) rest.push_back(ex.submit(path_request("arbiter.cov")));

  EXPECT_GE(ex.cancel_all(), 3u);
  release.store(true);

  for (const JobHandle& h : rest) {
    EXPECT_TRUE(h.take().cancelled);
  }
  first.take();  // Gated job finishes too (cancelled mid-run or not).
}

// --------------------------------------------------------------------------
// Structured per-job errors (never a throw out of a worker)
// --------------------------------------------------------------------------

TEST(ExecutorErrorTest, MissingModelSourceIsAStructuredError) {
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(CoverageRequest{}).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("model"), std::string::npos);
  EXPECT_FALSE(r.all_passed());
}

TEST(ExecutorErrorTest, UnknownSignalNameIsAStructuredError) {
  CoverageRequest req = path_request("counter.cov");
  req.signals = {"count", "bogus_signal"};
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("bogus_signal"), std::string::npos) << r.error;
}

TEST(ExecutorErrorTest, ShardedErrorsAreErrorOnlyLikeSerial) {
  // A defect in any shard's rows makes the whole job error-only: no
  // partial rows from sibling shards, byte-identical to the serial
  // error result (the documented sharding determinism contract).
  CoverageRequest req = path_request("counter.cov");
  req.signals = {"count", "count", "bogus_signal"};

  Executor serial{ExecutorOptions{1, nullptr}};
  CoverageRequest serial_req = req;
  const SuiteResult expect = serial.submit(serial_req).take();
  ASSERT_FALSE(expect.error.empty());
  EXPECT_TRUE(expect.signals.empty());

  req.shards = 3;
  Executor ex{ExecutorOptions{4, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.signals.empty());
  EXPECT_FALSE(r.cancelled);  // An aborted sibling is not a user cancel.
  EXPECT_EQ(canonical(r), canonical(expect));
}

TEST(ExecutorErrorTest, UnparsableCtlTextIsAStructuredError) {
  CoverageRequest req = path_request("counter.cov");
  req.properties = {engine::PropertySpec::text("AG ((count ==")};
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("AG ((count =="), std::string::npos) << r.error;
}

TEST(ExecutorErrorTest, UnreadableModelFileIsAStructuredError) {
  CoverageRequest req;
  req.model_path = "/nonexistent/model.cov";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
}

TEST(ExecutorErrorTest, BadInlineModelSourceIsAStructuredError) {
  CoverageRequest req;
  req.model_source = "MODULE broken; VAR x :";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_FALSE(r.error.empty());
}

TEST(ExecutorErrorTest, ErrorSurvivesJsonSerialization) {
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(CoverageRequest{}).take();
  const std::string json = canonical(r);
  std::string err;
  EXPECT_TRUE(engine::validate_json(json, &err)) << err;
  EXPECT_NE(json.find("\"error\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Model-source precedence and the inline source path
// --------------------------------------------------------------------------

TEST(ExecutorTest, InlineModelSourceRunsLikeAFile) {
  CoverageRequest req;
  req.model_source = R"(
MODULE inline_counter;
VAR   x : bool;
IVAR  t : bool;
INIT  x := false;
NEXT  x := t ? !x : x;
SPEC AG (x & !t -> AX x) OBSERVE x;
)";
  Executor ex{ExecutorOptions{1, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.model_name, "inline_counter");
  ASSERT_EQ(r.signals.size(), 1u);
  EXPECT_GT(r.signals[0].percent, 0.0);
}

// --------------------------------------------------------------------------
// Warm session cache
// --------------------------------------------------------------------------

engine::ExecutorOptions cached_options(
    std::shared_ptr<engine::SessionCache> cache, std::size_t workers) {
  ExecutorOptions options;
  options.workers = workers;
  options.session_cache = std::move(cache);
  return options;
}

TEST(ExecutorCacheTest, WarmHitSkipsElaborateAndVerify) {
  auto cache = std::make_shared<engine::SessionCache>(4);
  Executor ex{cached_options(cache, 1)};
  const SuiteResult cold = ex.submit(path_request("counter.cov")).take();
  const SuiteResult warm = ex.submit(path_request("counter.cov")).take();
  ASSERT_TRUE(cold.error.empty()) << cold.error;
  EXPECT_EQ(cold.elaborate.passes, 1u);
  EXPECT_EQ(cold.verify.passes, 1u);
  // The repeat leases the parked session (skipping parse/elaborate) and
  // replays its verified-suite record (skipping verify)...
  EXPECT_EQ(warm.elaborate.passes, 0u);
  EXPECT_EQ(warm.verify.passes, 0u);
  // ...but the payload is byte-identical to the cold run.
  EXPECT_EQ(canonical(cold), canonical(warm));

  const engine::SessionCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);  // Parked again after each lease.
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.live_nodes, 0u);
}

TEST(ExecutorCacheTest, CachedResultsMatchAnUncachedExecutorByteForByte) {
  const char* sequence[] = {"counter.cov", "arbiter.cov", "counter.cov",
                            "traffic.cov", "arbiter.cov"};
  Executor plain{ExecutorOptions{}};
  Executor cached{cached_options(std::make_shared<engine::SessionCache>(8), 1)};
  for (const char* name : sequence) {
    const SuiteResult expected = plain.submit(path_request(name)).take();
    const SuiteResult actual = cached.submit(path_request(name)).take();
    EXPECT_EQ(canonical(expected), canonical(actual)) << name;
  }
}

TEST(ExecutorCacheTest, CapacityOneEvictsTheOldestSession) {
  auto cache = std::make_shared<engine::SessionCache>(1);
  Executor ex{cached_options(cache, 1)};
  // A/B/A with room for one parked session: every acquire misses, each
  // release evicts the previous tenant.
  ex.submit(path_request("counter.cov")).take();
  ex.submit(path_request("arbiter.cov")).take();
  const SuiteResult third = ex.submit(path_request("counter.cov")).take();
  EXPECT_EQ(third.elaborate.passes, 1u);  // Re-elaborated: it was evicted.

  const engine::SessionCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ExecutorCacheTest, ElaborationOptionsShapeTheCacheKey) {
  // Same bytes, different CoverageOptions → different sessions (the
  // BDDs they elaborate differ), so the key must separate them.
  auto cache = std::make_shared<engine::SessionCache>(8);
  Executor ex{cached_options(cache, 1)};
  CoverageRequest defaults = path_request("arbiter.cov");
  CoverageRequest unrestricted = path_request("arbiter.cov");
  unrestricted.options.restrict_to_fair = false;
  ex.submit(defaults).take();
  const SuiteResult r = ex.submit(unrestricted).take();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().entries, 2u);
}

TEST(ExecutorCacheTest, HashCollisionMissesInsteadOfServingTheWrongModel) {
  // Two different model sources forced onto one 64-bit hash via the
  // SessionKey test seam. Before keys carried their exact inputs the
  // cache matched on the hash alone, so the collision below leased
  // model A's elaborated session to a model-B request.
  const std::string source_a = R"(
MODULE model_a;
VAR   x : bool;
IVAR  t : bool;
INIT  x := false;
NEXT  x := t ? !x : x;
SPEC AG (x & !t -> AX x) OBSERVE x;
)";
  const std::string source_b = R"(
MODULE model_b;
VAR   y : bool;
IVAR  u : bool;
INIT  y := true;
NEXT  y := u ? y : !y;
SPEC AG (y & u -> AX y) OBSERVE y;
)";
  engine::SessionKey key_a = engine::SessionCache::key_of(source_a, {}, 0);
  engine::SessionKey key_b = engine::SessionCache::key_of(source_b, {}, 0);
  ASSERT_NE(key_a.hash, key_b.hash);  // Honest keys differ...
  key_b.hash = key_a.hash;            // ...until the seam makes them collide.
  EXPECT_FALSE(key_a.matches(key_b));
  EXPECT_FALSE(key_b.matches(key_a));
  EXPECT_TRUE(key_a.matches(key_a));

  engine::SessionCache cache(4);
  auto parked =
      std::make_shared<engine::Session>(model::parse_model(source_a));
  cache.release(key_a, std::move(parked), 1);

  // The colliding key must miss (and count as a miss), not lease A.
  EXPECT_EQ(cache.acquire(key_b), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The honest key still hits and gets the right model back.
  std::shared_ptr<engine::Session> hit = cache.acquire(key_a);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->model().name(), "model_a");
  EXPECT_EQ(cache.stats().hits, 1u);
}

// --------------------------------------------------------------------------
// Thread-affinity guard
// --------------------------------------------------------------------------

TEST(ThreadAffinityTest, TakeRebindsManagersToTheConsumer) {
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(path_request("arbiter.cov")).take();
  ASSERT_FALSE(r.signals.empty());
  const bdd::Bdd& covered = r.signals[0].covered;
  ASSERT_TRUE(covered.valid());
  EXPECT_EQ(covered.manager()->owner_thread(), std::this_thread::get_id());
  // Node construction on the consuming thread is now legal.
  const bdd::Bdd sum = covered | !covered;
  EXPECT_TRUE(sum.is_true());
}

// --------------------------------------------------------------------------
// Resource governance: deadlines, admission control, bounded waits
// --------------------------------------------------------------------------

/// The phase a limited result stopped in, from its status_detail prefix
/// ("verify: ..." -> "verify").
std::string stage_of(const SuiteResult& r) {
  const std::size_t colon = r.status_detail.find(':');
  return colon == std::string::npos ? r.status_detail
                                    : r.status_detail.substr(0, colon);
}

/// Asserts that `partial` is a governed prefix of `base`: completed
/// properties match the baseline's in order, and every signal row is an
/// in-order subsequence of the baseline rows, byte-equal field by field
/// (the chunk-prefix determinism contract for partial results).
void expect_governed_prefix(const SuiteResult& partial,
                            const SuiteResult& base) {
  ASSERT_LE(partial.properties.size(), base.properties.size());
  for (std::size_t i = 0; i < partial.properties.size(); ++i) {
    EXPECT_EQ(partial.properties[i].ctl_text, base.properties[i].ctl_text);
    EXPECT_EQ(partial.properties[i].holds, base.properties[i].holds);
  }
  std::size_t cursor = 0;
  for (const engine::SignalRow& row : partial.signals) {
    while (cursor < base.signals.size() &&
           base.signals[cursor].name != row.name) {
      ++cursor;
    }
    ASSERT_LT(cursor, base.signals.size())
        << "row '" << row.name << "' is not a baseline row in order";
    EXPECT_EQ(row.num_properties, base.signals[cursor].num_properties);
    EXPECT_DOUBLE_EQ(row.covered_count, base.signals[cursor].covered_count);
    EXPECT_DOUBLE_EQ(row.percent, base.signals[cursor].percent);
    EXPECT_EQ(row.uncovered, base.signals[cursor].uncovered);
    ++cursor;
  }
}

TEST(ExecutorGovernanceTest, DeadlineExpiryCoversEveryPhaseBoundary) {
  // Serial runs tick deterministically, so driving the kDeadline
  // injection site tick by tick walks the expiry through parse,
  // elaborate, verify and estimate; every partial result must be a
  // clean prefix and the next uninjected run must be byte-identical.
  struct Disarm {
    ~Disarm() { FaultInjector::disarm(); }
  } disarm;
  const CoverageRequest req = path_request("arbiter.cov");
  const SuiteResult base = Engine().run(req);
  const std::string baseline = canonical(base);

  FaultInjector::arm(FaultInjector::Site::kDeadline, std::uint64_t{1} << 60);
  ASSERT_EQ(canonical(Engine().run(req)), baseline);  // Armed-idle: no effect.
  const std::uint64_t total = FaultInjector::trigger_count();
  FaultInjector::disarm();
  ASSERT_GT(total, 4u);

  const auto expire_at = [&](std::uint64_t n) {
    FaultInjector::arm(FaultInjector::Site::kDeadline, n);
    const SuiteResult r = Engine().run(req);
    FaultInjector::disarm();
    EXPECT_EQ(r.status, engine::ResultStatus::kDeadlineExceeded) << n;
    expect_governed_prefix(r, base);
    return stage_of(r);
  };

  EXPECT_EQ(expire_at(1), "parse");
  EXPECT_EQ(expire_at(2), "elaborate");
  // Elaboration ticks once per transition partial while clustering the
  // relation, so its tick count tracks the model; walk past it to the
  // first in-Session tick, the verify loop. The run's very last tick
  // happens while estimating the final signal row.
  std::uint64_t boundary = 3;
  std::string stage = expire_at(boundary);
  while (stage == "elaborate" && boundary < total) {
    stage = expire_at(++boundary);
  }
  EXPECT_EQ(stage, "verify");
  EXPECT_EQ(expire_at(total), "estimate");
  EXPECT_EQ(canonical(Engine().run(req)), baseline);
}

TEST(ExecutorGovernanceTest, ShardedDeadlinePartialsKeepChunkPrefixes) {
  // Under both table modes, an expiry mid-fan-out must stop every shard
  // at its next tick and merge only whole rows — each surviving row
  // byte-equal to its serial twin, in order.
  struct Disarm {
    ~Disarm() { FaultInjector::disarm(); }
  } disarm;
  for (const bdd::TableMode mode :
       {bdd::TableMode::kLockFree, bdd::TableMode::kStriped}) {
    CoverageRequest req = path_request("arbiter.cov");
    req.shards = 2;
    req.table_mode = mode;
    const SuiteResult base = Engine().run(req);
    const std::string baseline = canonical(base);

    for (const std::uint64_t n : {1ull, 2ull, 4ull, 8ull, 16ull, 64ull}) {
      FaultInjector::arm(FaultInjector::Site::kDeadline, n);
      Executor ex{ExecutorOptions{2, nullptr}};
      const SuiteResult r = ex.submit(req).take();
      FaultInjector::disarm();
      if (r.status == engine::ResultStatus::kOk) {
        // Tick n never fired (shared-cache warm paths tick less often);
        // then the run must be untouched.
        EXPECT_EQ(canonical(r), baseline) << "mode " << static_cast<int>(mode);
      } else {
        ASSERT_EQ(r.status, engine::ResultStatus::kDeadlineExceeded) << n;
        EXPECT_TRUE(r.error.empty()) << r.error;
        EXPECT_FALSE(r.cancelled);  // Expiry is not a user cancel.
        expect_governed_prefix(r, base);
      }
      // Recovery including a full sharded pass on a fresh manager.
      Executor again{ExecutorOptions{2, nullptr}};
      EXPECT_EQ(canonical(again.submit(req).take()), baseline)
          << "mode " << static_cast<int>(mode) << " after tick " << n;
    }
  }
}

TEST(ExecutorGovernanceTest, GenerousDeadlineThroughExecutorChangesNothing) {
  CoverageRequest req = path_request("handshake.cov");
  const std::string baseline = canonical(Engine().run(req));
  req.deadline_ms = 3'600'000;
  req.shards = 2;
  Executor ex{ExecutorOptions{2, nullptr}};
  const SuiteResult r = ex.submit(req).take();
  EXPECT_EQ(r.status, engine::ResultStatus::kOk);
  EXPECT_EQ(canonical(r), baseline);
}

TEST(ExecutorAdmissionTest, RejectPolicyBoundsTheQueueDeterministically) {
  ExecutorOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.admission = engine::AdmissionPolicy::kReject;
  Executor ex(std::move(options));

  // Gate job A on the worker so B (queued) fills the bound and C must
  // be turned away at the door.
  std::atomic<bool> a_started{false};
  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    a_started.store(true);
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle a = ex.submit(path_request("counter.cov"), gate);
  while (!a_started.load()) std::this_thread::yield();
  JobHandle b = ex.submit(path_request("counter.cov"));
  JobHandle c = ex.submit(path_request("counter.cov"));

  // The rejection is synchronous: no worker ever sees the job.
  EXPECT_TRUE(c.done());
  const SuiteResult rc = c.take();
  EXPECT_EQ(rc.status, engine::ResultStatus::kAdmissionRejected);
  EXPECT_TRUE(rc.error.empty()) << rc.error;
  EXPECT_TRUE(rc.signals.empty());
  EXPECT_NE(rc.status_detail.find("max_queue_depth=1"), std::string::npos)
      << rc.status_detail;

  release.store(true);
  EXPECT_EQ(a.take().status, engine::ResultStatus::kOk);
  EXPECT_EQ(b.take().status, engine::ResultStatus::kOk);
  // With the queue drained, admission is open again.
  EXPECT_EQ(ex.submit(path_request("counter.cov")).take().status,
            engine::ResultStatus::kOk);
}

TEST(ExecutorAdmissionTest, RejectedJobEmitsASingleFinishedEvent) {
  std::mutex mu;
  std::vector<JobEvent> events;
  ExecutorOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.admission = engine::AdmissionPolicy::kReject;
  options.on_event = [&](const JobEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
  };
  Executor ex(std::move(options));

  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle a = ex.submit(path_request("counter.cov"), gate);
  JobHandle b = ex.submit(path_request("counter.cov"));
  JobHandle c = ex.submit(path_request("counter.cov"));
  const std::uint64_t rejected_job = c.id();
  ASSERT_TRUE(c.done());
  release.store(true);
  a.wait();
  b.wait();

  std::lock_guard<std::mutex> lock(mu);
  std::size_t rejected_events = 0;
  for (const JobEvent& e : events) {
    if (e.job != rejected_job) continue;
    ++rejected_events;
    EXPECT_EQ(e.kind, JobEvent::Kind::kFinished);
    EXPECT_EQ(e.status, engine::ResultStatus::kAdmissionRejected);
  }
  EXPECT_EQ(rejected_events, 1u);
}

TEST(ExecutorAdmissionTest, BlockPolicyAppliesBackpressure) {
  ExecutorOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.admission = engine::AdmissionPolicy::kBlock;
  Executor ex(std::move(options));

  std::atomic<bool> a_started{false};
  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    a_started.store(true);
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle a = ex.submit(path_request("counter.cov"), gate);
  while (!a_started.load()) std::this_thread::yield();
  JobHandle b = ex.submit(path_request("counter.cov"));  // Fills the queue.

  // C's submit must block until the worker frees a slot: the submitting
  // thread can only set `c_admitted` after the gate is released.
  std::atomic<bool> c_admitted{false};
  std::thread submitter([&] {
    JobHandle c = ex.submit(path_request("counter.cov"));
    c_admitted.store(true);
    EXPECT_EQ(c.take().status, engine::ResultStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(c_admitted.load());

  release.store(true);
  submitter.join();
  EXPECT_TRUE(c_admitted.load());
  EXPECT_EQ(a.take().status, engine::ResultStatus::kOk);
  EXPECT_EQ(b.take().status, engine::ResultStatus::kOk);
}

TEST(ExecutorGovernanceTest, WaitForTimesOutThenDelivers) {
  Executor ex{ExecutorOptions{1, nullptr}};
  std::atomic<bool> release{false};
  JobHooks gate;
  gate.on_progress = [&](const Progress&) {
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  JobHandle h = ex.submit(path_request("counter.cov"), gate);
  EXPECT_FALSE(h.wait_for(std::chrono::milliseconds(10)));
  EXPECT_FALSE(h.done());
  release.store(true);
  EXPECT_TRUE(h.wait_for(std::chrono::milliseconds(10000)));
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.take().status, engine::ResultStatus::kOk);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ThreadAffinityDeathTest, ForeignThreadNodeConstructionAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        bdd::BddManager mgr(2);
        std::thread misuse([&mgr] { (void)(mgr.var(0) & mgr.var(1)); });
        misuse.join();
      },
      "foreign thread");
}
#endif

}  // namespace
}  // namespace covest
