// Tests for the expression AST: typing, evaluation, substitution,
// bit-blasting and parsing.
#include <gtest/gtest.h>

#include <map>

#include "bdd/bdd.h"
#include "expr/bitblast.h"
#include "expr/expr.h"
#include "expr/expr_parser.h"
#include "expr/lexer.h"

namespace covest::expr {
namespace {

// A fixed signal environment used across the tests:
//   count : uint<3>, flag : bool, stall : bool, big : uint<5>.
std::optional<Type> test_types(const std::string& name) {
  if (name == "count") return Type::word(3);
  if (name == "big") return Type::word(5);
  if (name == "flag" || name == "stall") return Type::boolean();
  return std::nullopt;
}

class ExprTest : public ::testing::Test {
 protected:
  Expr count = Expr::var("count");
  Expr big = Expr::var("big");
  Expr flag = Expr::var("flag");
  Expr stall = Expr::var("stall");
  TypeResolver types = test_types;

  std::uint64_t eval_with(const Expr& e, std::uint64_t count_v,
                          std::uint64_t big_v, bool flag_v, bool stall_v) {
    return eval(
        e,
        [&](const std::string& n) -> std::uint64_t {
          if (n == "count") return count_v;
          if (n == "big") return big_v;
          if (n == "flag") return flag_v;
          return stall_v;
        },
        types);
  }
};

// --------------------------------------------------------------------------
// Typing
// --------------------------------------------------------------------------

TEST_F(ExprTest, InferBoolAndWordTypes) {
  EXPECT_EQ(infer_type(flag, types), Type::boolean());
  EXPECT_EQ(infer_type(count, types), Type::word(3));
  EXPECT_EQ(infer_type(count + big, types), Type::word(5));
  EXPECT_EQ(infer_type(count == big, types), Type::boolean());
  EXPECT_EQ(infer_type(!flag, types), Type::boolean());
  EXPECT_EQ(infer_type(ite(flag, count, big), types), Type::word(5));
}

TEST_F(ExprTest, TypeErrorsAreReported) {
  EXPECT_THROW(infer_type(Expr::var("nosuch"), types), std::runtime_error);
  EXPECT_THROW(infer_type(!count, types), std::runtime_error);
  EXPECT_THROW(infer_type(flag + count, types), std::runtime_error);
  EXPECT_THROW(infer_type(flag < stall, types), std::runtime_error);
  EXPECT_THROW(infer_type(ite(count, flag, flag), types), std::runtime_error);
  EXPECT_THROW(infer_type(count == flag, types), std::runtime_error);
  EXPECT_THROW(infer_type(Expr::extract(count, 3), types), std::runtime_error);
}

TEST_F(ExprTest, ExtractIsBoolean) {
  EXPECT_EQ(infer_type(Expr::extract(count, 2), types), Type::boolean());
}

// --------------------------------------------------------------------------
// Evaluation
// --------------------------------------------------------------------------

TEST_F(ExprTest, ArithmeticWrapsAtWidth) {
  EXPECT_EQ(eval_with(count + Expr::word_const(1, 3), 7, 0, false, false), 0u);
  EXPECT_EQ(eval_with(count - Expr::word_const(1, 3), 0, 0, false, false), 7u);
  EXPECT_EQ(eval_with(count * Expr::word_const(3, 3), 5, 0, false, false),
            7u);  // 15 mod 8.
}

TEST_F(ExprTest, MixedWidthZeroExtends) {
  // count (3 bits) + big (5 bits) evaluates at width 5.
  EXPECT_EQ(eval_with(count + big, 7, 30, false, false), 5u);  // 37 mod 32.
}

TEST_F(ExprTest, ComparisonsAndBooleans) {
  EXPECT_EQ(eval_with(count < Expr::word_const(5, 3), 4, 0, false, false), 1u);
  EXPECT_EQ(eval_with(count < Expr::word_const(5, 3), 5, 0, false, false), 0u);
  EXPECT_EQ(eval_with(flag.implies(stall), 0, 0, true, false), 0u);
  EXPECT_EQ(eval_with(flag.implies(stall), 0, 0, false, false), 1u);
  EXPECT_EQ(eval_with(flag.iff(stall), 0, 0, true, true), 1u);
  EXPECT_EQ(eval_with(flag ^ stall, 0, 0, true, false), 1u);
}

TEST_F(ExprTest, IteSelectsBranch) {
  const Expr e = ite(flag, count, count + Expr::word_const(1, 3));
  EXPECT_EQ(eval_with(e, 3, 0, true, false), 3u);
  EXPECT_EQ(eval_with(e, 3, 0, false, false), 4u);
}

TEST_F(ExprTest, ExtractReadsBit) {
  EXPECT_EQ(eval_with(Expr::extract(count, 1), 2, 0, false, false), 1u);
  EXPECT_EQ(eval_with(Expr::extract(count, 1), 5, 0, false, false), 0u);
}

// --------------------------------------------------------------------------
// Substitution (the observability flip)
// --------------------------------------------------------------------------

TEST_F(ExprTest, SubstituteBooleanFlip) {
  const Expr e = flag & stall;
  const Expr flipped = substitute_signal(e, "flag", !flag);
  EXPECT_EQ(to_string(flipped), "!flag & stall");
  EXPECT_EQ(eval_with(flipped, 0, 0, false, true), 1u);
  EXPECT_EQ(eval_with(flipped, 0, 0, true, true), 0u);
}

TEST_F(ExprTest, SubstituteWordBitFlip) {
  // count -> count ^ 2 flips bit 1 everywhere count is referenced.
  const Expr e = count == Expr::word_const(3, 3);
  const Expr flipped =
      substitute_signal(e, "count", count ^ Expr::word_const(2, 3));
  // Original true at count=3; flipped true at count=1 (1^2=3).
  EXPECT_EQ(eval_with(e, 3, 0, false, false), 1u);
  EXPECT_EQ(eval_with(flipped, 3, 0, false, false), 0u);
  EXPECT_EQ(eval_with(flipped, 1, 0, false, false), 1u);
}

TEST_F(ExprTest, SubstituteLeavesOtherSignalsAlone) {
  const Expr e = flag & stall;
  const Expr subst = substitute_signal(e, "nosuch", !flag);
  EXPECT_TRUE(subst.same_node(e));
}

TEST_F(ExprTest, ReferencedSignalsInFirstUseOrder) {
  const Expr e = (count + big == big) & flag;
  EXPECT_EQ(referenced_signals(e),
            (std::vector<std::string>{"count", "big", "flag"}));
}

// --------------------------------------------------------------------------
// Printing
// --------------------------------------------------------------------------

TEST_F(ExprTest, ToStringRoundTripsThroughParser) {
  const Expr e = ((!flag) & (count < Expr::word_const(5, 3)))
                     .implies(stall | Expr::extract(count, 0));
  const Expr reparsed = parse_expression(to_string(e));
  // Compare by printing again: the printer is deterministic.
  EXPECT_EQ(to_string(reparsed), to_string(e));
}

// --------------------------------------------------------------------------
// Bit-blasting
// --------------------------------------------------------------------------

class BlastTest : public ::testing::Test {
 protected:
  BlastTest() {
    for (int i = 0; i < 3; ++i) count_bits.bits.push_back(mgr.var(i));
    count_bits.is_bool = false;
    flag_bits.bits.push_back(mgr.var(3));
    flag_bits.is_bool = true;
  }

  BitVec resolve(const std::string& name) {
    if (name == "count") return count_bits;
    if (name == "flag") return flag_bits;
    return {};
  }

  // Exhaustively compares the blasted BDD against concrete evaluation.
  void check_equivalence(const Expr& e) {
    const auto types = [](const std::string& n) -> std::optional<Type> {
      if (n == "count") return Type::word(3);
      if (n == "flag") return Type::boolean();
      return std::nullopt;
    };
    const bdd::Bdd f = bit_blast_bool(
        e, mgr, [this](const std::string& n) { return resolve(n); }, types);
    for (unsigned c = 0; c < 8; ++c) {
      for (unsigned fl = 0; fl < 2; ++fl) {
        std::vector<bool> assignment(mgr.num_vars(), false);
        for (int i = 0; i < 3; ++i) assignment[i] = (c >> i) & 1;
        assignment[3] = fl;
        const auto value = eval(
            e,
            [&](const std::string& n) -> std::uint64_t {
              return n == "count" ? c : fl;
            },
            types);
        EXPECT_EQ(mgr.eval(f, assignment), value != 0)
            << to_string(e) << " at count=" << c << " flag=" << fl;
      }
    }
  }

  bdd::BddManager mgr{4};
  BitVec count_bits, flag_bits;
};

TEST_F(BlastTest, ComparisonAgainstConstant) {
  check_equivalence(parse_expression("count < 5"));
  check_equivalence(parse_expression("count <= 5"));
  check_equivalence(parse_expression("count > 2"));
  check_equivalence(parse_expression("count >= 2"));
  check_equivalence(parse_expression("count == 6"));
  check_equivalence(parse_expression("count != 6"));
}

TEST_F(BlastTest, ArithmeticWithWrap) {
  check_equivalence(parse_expression("count + 1 == 0"));
  check_equivalence(parse_expression("count - 1 == 7"));
  check_equivalence(parse_expression("count + count == 6"));
  check_equivalence(parse_expression("count * 3 == 1"));
}

TEST_F(BlastTest, BooleanStructure) {
  check_equivalence(parse_expression("flag -> count == 0"));
  check_equivalence(parse_expression("(!flag) & count[1]"));
  check_equivalence(parse_expression("flag <-> count[0]"));
  check_equivalence(parse_expression("(flag ? count : count + 1) == 3"));
}

TEST_F(BlastTest, TernaryAndIteFunctionSyntax) {
  check_equivalence(parse_expression("ite(flag, count == 1, count == 2)"));
}

// --------------------------------------------------------------------------
// Lexer / parser details
// --------------------------------------------------------------------------

TEST(LexerTest, TokenizesOperatorsLongestFirst) {
  const auto tokens = tokenize("a <-> b <= c -> d .. e := f");
  std::vector<std::string> puncts;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts,
            (std::vector<std::string>{"<->", "<=", "->", "..", ":="}));
}

TEST(LexerTest, SkipsCommentsAndTracksLines) {
  const auto tokens = tokenize("a -- comment\nb // other\nc");
  ASSERT_EQ(tokens.size(), 4u);  // a b c <end>
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(LexerTest, RejectsIllegalCharacters) {
  EXPECT_THROW(tokenize("a @ b"), std::runtime_error);
}

TEST(ParserTest, PrecedenceImpliesIsRightAssociative) {
  EXPECT_EQ(to_string(parse_expression("a -> b -> c")), "a -> (b -> c)");
}

TEST(ParserTest, PrecedenceAndBindsTighterThanOr) {
  // "a | b & c" groups as a | (b & c); both print minimally the same way.
  EXPECT_EQ(to_string(parse_expression("a | b & c")),
            to_string(parse_expression("a | (b & c)")));
  EXPECT_NE(to_string(parse_expression("a | b & c")),
            to_string(parse_expression("(a | b) & c")));
}

TEST(ParserTest, PrecedenceCmpBindsTighterThanAnd) {
  const Expr e = parse_expression("a < 3 & b == 1");
  EXPECT_EQ(e.op(), Op::kAnd);
  EXPECT_EQ(e.node().args[0].op(), Op::kLt);
  EXPECT_EQ(e.node().args[1].op(), Op::kEq);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  EXPECT_EQ(to_string(parse_expression("(a | b) & c")), "(a | b) & c");
}

TEST(ParserTest, RejectsTrailingInput) {
  EXPECT_THROW(parse_expression("a b"), std::runtime_error);
}

TEST(ParserTest, RejectsEmptyInput) {
  EXPECT_THROW(parse_expression(""), std::runtime_error);
}

TEST(ParserTest, ErrorsCarryLineInformation) {
  try {
    parse_expression("a &\n& b");
    FAIL() << "expected syntax error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace covest::expr
