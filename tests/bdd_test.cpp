// Unit and property tests for the BDD package.
#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <vector>

namespace covest::bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr{6};
  Bdd v(Var i) { return mgr.var(i); }
};

// --------------------------------------------------------------------------
// Terminals, literals, canonicity
// --------------------------------------------------------------------------

TEST_F(BddTest, TerminalsAreDistinctAndCanonical) {
  EXPECT_TRUE(mgr.bdd_true().is_true());
  EXPECT_TRUE(mgr.bdd_false().is_false());
  EXPECT_NE(mgr.bdd_true(), mgr.bdd_false());
  EXPECT_EQ(mgr.bdd_true(), mgr.bdd_true());
}

TEST_F(BddTest, LiteralsAreCanonical) {
  EXPECT_EQ(v(0), v(0));
  EXPECT_NE(v(0), v(1));
  EXPECT_EQ(mgr.nvar(0), !v(0));
}

TEST_F(BddTest, CanonicityMergesEquivalentFunctions) {
  const Bdd a = v(0), b = v(1);
  EXPECT_EQ((a & b) | (a & (!b)), a);
  EXPECT_EQ(a ^ b, (a & (!b)) | ((!a) & b));
  EXPECT_EQ(!(a & b), (!a) | (!b));  // De Morgan.
  EXPECT_EQ(a.implies(b), (!a) | b);
  EXPECT_EQ(a.iff(b), !(a ^ b));
}

TEST_F(BddTest, ConstantFoldingIdentities) {
  const Bdd a = v(0);
  const Bdd t = mgr.bdd_true(), f = mgr.bdd_false();
  EXPECT_EQ(a & t, a);
  EXPECT_EQ(a & f, f);
  EXPECT_EQ(a | t, t);
  EXPECT_EQ(a | f, a);
  EXPECT_EQ(a ^ a, f);
  EXPECT_EQ(a ^ (!a), t);
  EXPECT_EQ(a & a, a);
  EXPECT_EQ(a - a, f);
  EXPECT_EQ(t - a, !a);
}

TEST_F(BddTest, IteIdentities) {
  const Bdd a = v(0), b = v(1), c = v(2);
  EXPECT_EQ(ite(mgr.bdd_true(), b, c), b);
  EXPECT_EQ(ite(mgr.bdd_false(), b, c), c);
  EXPECT_EQ(ite(a, b, b), b);
  EXPECT_EQ(ite(a, mgr.bdd_true(), mgr.bdd_false()), a);
  EXPECT_EQ(ite(a, b, c), (a & b) | ((!a) & c));
}

TEST_F(BddTest, SubsetAndIntersection) {
  const Bdd a = v(0), b = v(1);
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_FALSE(a.subset_of(a & b));
  EXPECT_TRUE(a.intersects(a | b));
  EXPECT_FALSE(a.intersects(!a));
  EXPECT_TRUE(mgr.bdd_false().subset_of(a));
}

// --------------------------------------------------------------------------
// Randomized truth-table equivalence (the core soundness property)
// --------------------------------------------------------------------------

// A random expression over `n` variables evaluated two ways: as a BDD and
// directly on every assignment. Catches ordering, caching and reduction bugs.
struct RandomExpr {
  enum Kind { kVar, kNot, kAnd, kOr, kXor, kIte };
  Kind kind;
  int var = 0;
  std::vector<RandomExpr> children;

  static RandomExpr generate(std::mt19937& rng, int num_vars, int depth) {
    std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
    if (depth == 0) {
      return RandomExpr{kVar, var_dist(rng), {}};
    }
    std::uniform_int_distribution<int> kind_dist(0, 5);
    const Kind k = static_cast<Kind>(kind_dist(rng));
    RandomExpr e{k, 0, {}};
    const int arity = k == kVar ? 0 : (k == kNot ? 1 : (k == kIte ? 3 : 2));
    if (k == kVar) {
      e.var = var_dist(rng);
      return e;
    }
    for (int i = 0; i < arity; ++i) {
      e.children.push_back(generate(rng, num_vars, depth - 1));
    }
    return e;
  }

  bool eval(const std::vector<bool>& a) const {
    switch (kind) {
      case kVar: return a[var];
      case kNot: return !children[0].eval(a);
      case kAnd: return children[0].eval(a) && children[1].eval(a);
      case kOr: return children[0].eval(a) || children[1].eval(a);
      case kXor: return children[0].eval(a) != children[1].eval(a);
      case kIte:
        return children[0].eval(a) ? children[1].eval(a)
                                   : children[2].eval(a);
    }
    return false;
  }

  Bdd build(BddManager& mgr) const {
    switch (kind) {
      case kVar: return mgr.var(var);
      case kNot: return !children[0].build(mgr);
      case kAnd: return children[0].build(mgr) & children[1].build(mgr);
      case kOr: return children[0].build(mgr) | children[1].build(mgr);
      case kXor: return children[0].build(mgr) ^ children[1].build(mgr);
      case kIte:
        return ite(children[0].build(mgr), children[1].build(mgr),
                   children[2].build(mgr));
    }
    return mgr.bdd_false();
  }
};

class BddRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomEquivalence, BddMatchesDirectEvaluation) {
  std::mt19937 rng(GetParam());
  constexpr int kNumVars = 5;
  BddManager mgr(kNumVars);
  const RandomExpr expr = RandomExpr::generate(rng, kNumVars, 5);
  const Bdd f = expr.build(mgr);

  std::vector<bool> assignment(kNumVars);
  for (unsigned bits = 0; bits < (1u << kNumVars); ++bits) {
    for (int i = 0; i < kNumVars; ++i) assignment[i] = (bits >> i) & 1;
    EXPECT_EQ(mgr.eval(f, assignment), expr.eval(assignment))
        << "assignment bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomEquivalence,
                         ::testing::Range(0, 40));

// --------------------------------------------------------------------------
// Quantification
// --------------------------------------------------------------------------

TEST_F(BddTest, ExistsIsDisjunctionOfCofactors) {
  const Bdd f = (v(0) & v(1)) | (v(2) & !v(1));
  const Bdd q = mgr.exists(f, v(1));
  EXPECT_EQ(q, mgr.cofactor(f, 1, false) | mgr.cofactor(f, 1, true));
}

TEST_F(BddTest, ForallIsConjunctionOfCofactors) {
  const Bdd f = (v(0) & v(1)) | (v(2) & !v(1));
  const Bdd q = mgr.forall(f, v(1));
  EXPECT_EQ(q, mgr.cofactor(f, 1, false) & mgr.cofactor(f, 1, true));
}

TEST_F(BddTest, QuantifyingNonSupportVariableIsIdentity) {
  const Bdd f = v(0) & v(2);
  EXPECT_EQ(mgr.exists(f, v(1)), f);
  EXPECT_EQ(mgr.forall(f, v(1)), f);
}

TEST_F(BddTest, MultiVariableCubeQuantification) {
  const Bdd f = (v(0) & v(1) & v(2)) | (v(3) & !v(1));
  const Bdd cube = mgr.cube({1, 2});
  Bdd expected = f;
  for (Var q : {Var{1}, Var{2}}) {
    expected = mgr.cofactor(expected, q, false) | mgr.cofactor(expected, q, true);
  }
  EXPECT_EQ(mgr.exists(f, cube), expected);
}

TEST_F(BddTest, DualityOfQuantifiers) {
  const Bdd f = (v(0) ^ v(1)) | (v(2) & v(3));
  const Bdd cube = mgr.cube({0, 3});
  EXPECT_EQ(mgr.forall(f, cube), !mgr.exists(!f, cube));
}

TEST_F(BddTest, AndExistsEqualsExistsOfAnd) {
  const Bdd f = (v(0) & v(1)) | v(2);
  const Bdd g = ((!v(1)) | v(3)) & (v(4) ^ v(0));
  const Bdd cube = mgr.cube({1, 4});
  EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
}

class AndExistsRandom : public ::testing::TestWithParam<int> {};

TEST_P(AndExistsRandom, MatchesComposition) {
  std::mt19937 rng(GetParam() + 1000);
  constexpr int kNumVars = 6;
  BddManager mgr(kNumVars);
  const Bdd f = RandomExpr::generate(rng, kNumVars, 4).build(mgr);
  const Bdd g = RandomExpr::generate(rng, kNumVars, 4).build(mgr);
  const Bdd cube = mgr.cube({0, 2, 4});
  EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndExistsRandom, ::testing::Range(0, 20));

// --------------------------------------------------------------------------
// Composition, cofactors, renaming
// --------------------------------------------------------------------------

TEST_F(BddTest, ShannonExpansion) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3));
  for (Var x : {Var{0}, Var{1}, Var{2}, Var{3}}) {
    EXPECT_EQ(f, ite(v(x), mgr.cofactor(f, x, true), mgr.cofactor(f, x, false)));
  }
}

TEST_F(BddTest, ComposeSubstitutesFunction) {
  const Bdd f = v(0) & v(1);
  const Bdd g = v(2) | v(3);
  // f[v1 := g] == v0 & (v2 | v3)
  EXPECT_EQ(mgr.compose(f, 1, g), v(0) & (v(2) | v(3)));
}

TEST_F(BddTest, ComposeWithFunctionAboveRoot) {
  // The substituted function's support is above the composed variable.
  const Bdd f = v(3) & v(4);
  const Bdd g = v(0) ^ v(1);
  EXPECT_EQ(mgr.compose(f, 4, g), v(3) & (v(0) ^ v(1)));
}

TEST_F(BddTest, ComposeOfAbsentVariableIsIdentity) {
  const Bdd f = v(0) | v(2);
  EXPECT_EQ(mgr.compose(f, 1, v(3)), f);
}

TEST_F(BddTest, PermuteRenamesVariables) {
  const Bdd f = (v(0) & v(1)) | v(2);
  // 0->3, 1->4, 2->5.
  std::vector<Var> perm{3, 4, 5};
  const Bdd renamed = mgr.permute(f, perm);
  EXPECT_EQ(renamed, (v(3) & v(4)) | v(5));
  // Renaming back is the identity.
  std::vector<Var> back{0, 1, 2, 0, 1, 2};
  EXPECT_EQ(mgr.permute(renamed, back), f);
}

TEST_F(BddTest, PermuteInterleavedCurrentNext) {
  // The usage pattern of image computation: swap adjacent var pairs.
  BddManager m(0);
  const Var c0 = m.new_var("c0"), n0 = m.new_var("n0");
  const Var c1 = m.new_var("c1"), n1 = m.new_var("n1");
  const Bdd f = (m.var(c0) ^ m.var(c1)) & m.var(c1);
  std::vector<Var> to_next{n0, n0, n1, n1};
  to_next[c0] = n0;
  to_next[n0] = c0;
  to_next[c1] = n1;
  to_next[n1] = c1;
  const Bdd g = m.permute(f, to_next);
  EXPECT_EQ(g, (m.var(n0) ^ m.var(n1)) & m.var(n1));
  EXPECT_EQ(m.permute(g, to_next), f);
}

// --------------------------------------------------------------------------
// Counting and minterms
// --------------------------------------------------------------------------

TEST_F(BddTest, SatCountBasics) {
  const std::vector<Var> all{0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false(), all), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true(), all), 64.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0), all), 32.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) & v(1), all), 16.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) | v(1), all), 48.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(v(0) ^ v(1), all), 32.0);
}

TEST_F(BddTest, SatCountOverSubsetOfVariables) {
  const Bdd f = v(1) & !v(3);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, {1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, {0, 1, 3}), 2.0);
}

class SatCountRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatCountRandom, MatchesExhaustiveEnumeration) {
  std::mt19937 rng(GetParam() + 2000);
  constexpr int kNumVars = 6;
  BddManager mgr(kNumVars);
  const RandomExpr expr = RandomExpr::generate(rng, kNumVars, 4);
  const Bdd f = expr.build(mgr);

  unsigned expected = 0;
  std::vector<bool> assignment(kNumVars);
  for (unsigned bits = 0; bits < (1u << kNumVars); ++bits) {
    for (int i = 0; i < kNumVars; ++i) assignment[i] = (bits >> i) & 1;
    if (expr.eval(assignment)) ++expected;
  }
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, {0, 1, 2, 3, 4, 5}), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatCountRandom, ::testing::Range(0, 25));

TEST_F(BddTest, SatOneReturnsSatisfyingCube) {
  const Bdd f = (v(0) & !v(2)) | (v(1) & v(3));
  const auto cube = mgr.sat_one(f);
  ASSERT_FALSE(cube.empty());
  Bdd check = mgr.bdd_true();
  for (const auto& [var, val] : cube) check &= mgr.literal(var, val);
  EXPECT_TRUE(check.subset_of(f));
}

TEST_F(BddTest, SatOneOfFalseIsEmpty) {
  EXPECT_TRUE(mgr.sat_one(mgr.bdd_false()).empty());
}

TEST_F(BddTest, PickMintermSatisfiesFunction) {
  const Bdd f = (v(0) & !v(2)) | (v(1) & v(3));
  const std::vector<Var> vars{0, 1, 2, 3};
  const auto minterm = mgr.pick_minterm(f, vars);
  ASSERT_EQ(minterm.size(), vars.size());
  std::vector<bool> assignment(mgr.num_vars(), false);
  for (const auto& [var, val] : minterm) assignment[var] = val;
  EXPECT_TRUE(mgr.eval(f, assignment));
}

TEST_F(BddTest, EnumerateMintermsIsExhaustive) {
  const Bdd f = v(0) ^ v(1);
  const auto minterms = mgr.enumerate_minterms(f, {0, 1}, 100);
  EXPECT_EQ(minterms.size(), 2u);
  for (const auto& m : minterms) {
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (const auto& [var, val] : m) assignment[var] = val;
    EXPECT_TRUE(mgr.eval(f, assignment));
  }
}

TEST_F(BddTest, EnumerateMintermsHonoursLimit) {
  const auto minterms = mgr.enumerate_minterms(mgr.bdd_true(), {0, 1, 2}, 3);
  EXPECT_EQ(minterms.size(), 3u);
}

TEST_F(BddTest, EnumerateCountMatchesSatCount) {
  const Bdd f = (v(0) | v(1)) & (v(2) ^ v(3));
  const std::vector<Var> vars{0, 1, 2, 3};
  const auto minterms = mgr.enumerate_minterms(f, vars, 10000);
  EXPECT_DOUBLE_EQ(static_cast<double>(minterms.size()),
                   mgr.sat_count(f, vars));
}

// --------------------------------------------------------------------------
// Support, node counts
// --------------------------------------------------------------------------

TEST_F(BddTest, SupportListsExactlyTheUsedVariables) {
  const Bdd f = (v(0) & v(3)) | (v(0) & v(5));
  EXPECT_EQ(mgr.support(f), (std::vector<Var>{0, 3, 5}));
  EXPECT_TRUE(mgr.support(mgr.bdd_true()).empty());
}

TEST_F(BddTest, SupportExcludesReducedVariables) {
  // v1 cancels out of the function entirely.
  const Bdd f = (v(1) & v(0)) | ((!v(1)) & v(0));
  EXPECT_EQ(mgr.support(f), (std::vector<Var>{0}));
}

TEST_F(BddTest, NodeCountSingleVariable) {
  EXPECT_EQ(mgr.node_count(v(0)), 1u);
  EXPECT_EQ(mgr.node_count(mgr.bdd_true()), 0u);
}

TEST_F(BddTest, NodeCountSharedSubgraphs) {
  // With complement edges, parity needs just one node per level: the two
  // polarities of each tail share a node through complemented edges.
  const Bdd f = v(0) ^ v(1) ^ v(2);
  EXPECT_EQ(mgr.node_count(f), 3u);
  // Counting a vector shares common nodes (g is f's tail).
  const Bdd g = v(1) ^ v(2);
  EXPECT_EQ(mgr.node_count(std::vector<Bdd>{f, g}), 3u);
}

// --------------------------------------------------------------------------
// Cubes
// --------------------------------------------------------------------------

TEST_F(BddTest, CubeIsConjunctionOfPositiveLiterals) {
  EXPECT_EQ(mgr.cube({0, 2, 4}), v(0) & v(2) & v(4));
  EXPECT_EQ(mgr.cube({}), mgr.bdd_true());
}

TEST_F(BddTest, CubeOrderIndependent) {
  EXPECT_EQ(mgr.cube({4, 0, 2}), mgr.cube({0, 2, 4}));
}

// --------------------------------------------------------------------------
// Garbage collection
// --------------------------------------------------------------------------

TEST_F(BddTest, GcFreesUnreferencedNodes) {
  {
    Bdd garbage = (v(0) ^ v(1)) & (v(2) ^ v(3)) & (v(4) | v(5));
    EXPECT_GT(mgr.live_node_count(), 6u);
  }
  const std::size_t freed = mgr.gc();
  EXPECT_GT(freed, 0u);
}

TEST_F(BddTest, GcPreservesReferencedFunctions) {
  Bdd keep = (v(0) & v(1)) | (v(2) ^ v(3));
  const std::size_t nodes_before = mgr.node_count(keep);
  {
    Bdd garbage = (v(0) | v(4)) ^ v(5);
  }
  mgr.gc();
  EXPECT_EQ(mgr.node_count(keep), nodes_before);
  // Function still evaluates correctly after collection.
  std::vector<bool> a(mgr.num_vars(), false);
  a[0] = a[1] = true;
  EXPECT_TRUE(mgr.eval(keep, a));
}

TEST_F(BddTest, NodesAreReusedAfterGc) {
  {
    Bdd garbage = v(0) ^ v(1) ^ v(2) ^ v(3);
  }
  mgr.gc();
  const std::size_t allocated_before = mgr.stats().unique_misses;
  Bdd rebuilt = v(0) ^ v(1) ^ v(2) ^ v(3);
  // Rebuilding allocates again (nodes were freed) but from the free list.
  EXPECT_GE(mgr.stats().unique_misses, allocated_before);
  EXPECT_FALSE(rebuilt.is_false());
}

TEST_F(BddTest, HandleCopySemanticsKeepNodesAlive) {
  Bdd a = v(0) & v(1);
  Bdd b = a;          // copy
  Bdd c = std::move(a);  // move leaves `a` detached
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b, c);
  mgr.gc();
  EXPECT_EQ(b, v(0) & v(1));
}

// --------------------------------------------------------------------------
// Reordering
// --------------------------------------------------------------------------

// Evaluates `f` on every assignment over `num_vars` variables and returns
// the truth table as a bit vector; used to prove reordering is semantics-
// preserving.
std::vector<bool> truth_table(BddManager& mgr, const Bdd& f, int num_vars) {
  std::vector<bool> table;
  std::vector<bool> assignment(num_vars);
  for (unsigned bits = 0; bits < (1u << num_vars); ++bits) {
    for (int i = 0; i < num_vars; ++i) assignment[i] = (bits >> i) & 1;
    table.push_back(mgr.eval(f, assignment));
  }
  return table;
}

TEST_F(BddTest, AdjacentSwapPreservesFunctions) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3)) | ((!v(4)) & v(5));
  const auto before = truth_table(mgr, f, 6);
  for (unsigned lvl = 0; lvl + 1 < mgr.num_vars(); ++lvl) {
    mgr.swap_adjacent_levels(lvl);
    EXPECT_EQ(truth_table(mgr, f, 6), before) << "after swap at level " << lvl;
  }
}

TEST_F(BddTest, SwapIsItsOwnInverse) {
  const Bdd f = ite(v(2), v(0) ^ v(1), v(3) & v(4));
  const std::size_t nodes_before = mgr.node_count(f);
  mgr.swap_adjacent_levels(1);
  mgr.swap_adjacent_levels(1);
  EXPECT_EQ(mgr.node_count(f), nodes_before);
  EXPECT_EQ(mgr.var_at_level(1), Var{1});
}

TEST_F(BddTest, SiftingPreservesSemantics) {
  const Bdd f = (v(0) & v(3)) | (v(1) & v(4)) | (v(2) & v(5));
  const auto before = truth_table(mgr, f, 6);
  mgr.reorder_sift();
  EXPECT_EQ(truth_table(mgr, f, 6), before);
}

TEST(BddReorderTest, SiftingImprovesPathologicalOrder) {
  // f = x0&y0 | x1&y1 | ... with all x's before all y's is exponential;
  // the interleaved order x0 y0 x1 y1 ... is linear. Sifting should get
  // close to the interleaved size.
  constexpr int kPairs = 6;
  BddManager mgr(2 * kPairs);
  Bdd f = mgr.bdd_false();
  // Variables 0..5 are x0..x5, 6..11 are y0..y5 — the bad order.
  for (int i = 0; i < kPairs; ++i) {
    f |= mgr.var(i) & mgr.var(kPairs + i);
  }
  const std::size_t before = mgr.node_count(f);
  mgr.reorder_sift();
  const std::size_t after = mgr.node_count(f);
  EXPECT_LT(after, before);
  EXPECT_LE(after, 3u * 2 * kPairs);  // Linear-size bound.
}

TEST(BddReorderTest, SetOrderInstallsExactPermutation) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) & mgr.var(2)) | mgr.var(3);
  const auto before = truth_table(mgr, f, 4);
  mgr.set_order({3, 1, 0, 2});
  EXPECT_EQ(mgr.var_at_level(0), Var{3});
  EXPECT_EQ(mgr.var_at_level(1), Var{1});
  EXPECT_EQ(mgr.var_at_level(2), Var{0});
  EXPECT_EQ(mgr.var_at_level(3), Var{2});
  EXPECT_EQ(truth_table(mgr, f, 4), before);
}

class ReorderRandom : public ::testing::TestWithParam<int> {};

TEST_P(ReorderRandom, RandomOrdersPreserveRandomFunctions) {
  std::mt19937 rng(GetParam() + 3000);
  constexpr int kNumVars = 6;
  BddManager mgr(kNumVars);
  const Bdd f = RandomExpr::generate(rng, kNumVars, 5).build(mgr);
  const auto before = truth_table(mgr, f, kNumVars);

  std::vector<Var> order{0, 1, 2, 3, 4, 5};
  std::shuffle(order.begin(), order.end(), rng);
  mgr.set_order(order);
  EXPECT_EQ(truth_table(mgr, f, kNumVars), before);

  mgr.reorder_sift();
  EXPECT_EQ(truth_table(mgr, f, kNumVars), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderRandom, ::testing::Range(0, 20));

// --------------------------------------------------------------------------
// Diagnostics
// --------------------------------------------------------------------------

TEST_F(BddTest, DotExportMentionsVariablesAndTerminals) {
  std::ostringstream os;
  mgr.set_var_name(0, "req");
  mgr.write_dot(os, v(0) & !v(1), "example");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("req"), std::string::npos);
  EXPECT_NE(dot.find("t1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST_F(BddTest, StatsTrackCacheAndUniqueTable) {
  Bdd f = (v(0) & v(1)) | (v(2) & v(3));
  Bdd g = (v(0) & v(1)) | (v(2) & v(3));  // Same ops again: cache hits.
  EXPECT_EQ(f, g);
  EXPECT_GT(mgr.stats().cache_lookups, 0u);
  EXPECT_GT(mgr.stats().unique_misses, 0u);
}

TEST(BddStressTest, LargeXorChainHasLinearNodes) {
  constexpr int kNumVars = 24;
  BddManager mgr(kNumVars);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < kNumVars; ++i) f ^= mgr.var(i);
  // Parity of n variables has exactly n nodes with complement edges
  // (2n-1 without them: both polarities per level minus the shared root).
  EXPECT_EQ(mgr.node_count(f), static_cast<std::size_t>(kNumVars));
}

TEST(BddStressTest, AdderEqualityRelation) {
  // Builds bit-blasted (a + b) mod 2^8 == c as a single relation and counts
  // solutions: for every (a, b) there is exactly one c -> 2^16 models.
  constexpr int kWidth = 8;
  BddManager mgr(3 * kWidth);
  std::vector<Var> all;
  for (Var i = 0; i < 3 * kWidth; ++i) all.push_back(i);
  const auto a = [&](int i) { return mgr.var(i); };
  const auto b = [&](int i) { return mgr.var(kWidth + i); };
  const auto c = [&](int i) { return mgr.var(2 * kWidth + i); };

  Bdd relation = mgr.bdd_true();
  Bdd carry = mgr.bdd_false();
  for (int i = 0; i < kWidth; ++i) {
    const Bdd sum = a(i) ^ b(i) ^ carry;
    relation &= c(i).iff(sum);
    carry = (a(i) & b(i)) | (carry & (a(i) ^ b(i)));
  }
  EXPECT_DOUBLE_EQ(mgr.sat_count(relation, all), std::exp2(2 * kWidth));
}


// --------------------------------------------------------------------------
// Generalized cofactor (Coudert-Madre restrict)
// --------------------------------------------------------------------------

TEST_F(BddTest, SimplifyAgreesOnCareSet) {
  const Bdd f = (v(0) & v(1)) | (v(2) ^ v(3));
  const Bdd care = v(0) | v(2);
  const Bdd s = mgr.simplify(f, care);
  EXPECT_EQ(s & care, f & care);
}

TEST_F(BddTest, SimplifyWithFullCareIsIdentity) {
  const Bdd f = v(0) ^ v(1);
  EXPECT_EQ(mgr.simplify(f, mgr.bdd_true()), f);
}

TEST_F(BddTest, SimplifyShrinksAgainstTightCare) {
  // Within care = (v0 & v1), f = v0 & v1 & v2 collapses to v2.
  const Bdd f = v(0) & v(1) & v(2);
  const Bdd care = v(0) & v(1);
  const Bdd s = mgr.simplify(f, care);
  EXPECT_EQ(s, v(2));
  EXPECT_LT(mgr.node_count(s), mgr.node_count(f));
}

class SimplifyRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyRandom, CareSetIdentityHolds) {
  std::mt19937 rng(GetParam() + 4000);
  constexpr int kNumVars = 6;
  BddManager mgr(kNumVars);
  const Bdd f = RandomExpr::generate(rng, kNumVars, 4).build(mgr);
  Bdd care = RandomExpr::generate(rng, kNumVars, 4).build(mgr);
  if (care.is_false()) care = mgr.var(0);
  const Bdd s = mgr.simplify(f, care);
  EXPECT_EQ(s & care, f & care);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace covest::bdd
